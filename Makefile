# Targets mirror .github/workflows/ci.yml one-for-one so a green
# `make ci` locally means a green CI run. Keep the two in sync: if you
# change a recipe here, change the matching workflow step.

GO ?= go

.PHONY: all build test lint sarif vet fmt race chaos tracesmoke batchsmoke crashsmoke servesmoke metricssmoke bench ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the blocking CI gate: vet, gofmt, then the repo's own
# spotlightlint analyzers (determinism, hygiene & concurrency-lifecycle
# invariants), package-parallel, followed by the suppression audit that
# fails on any //lint:allow without a reason.
lint: vet fmt
	$(GO) run ./cmd/lint -parallel 0 ./...
	$(GO) run ./cmd/lint -allows ./...

# sarif renders the lint findings as SARIF 2.1.0, the format CI uploads
# so findings annotate pull requests inline.
sarif:
	$(GO) run ./cmd/lint -parallel 0 -format sarif -o spotlightlint.sarif ./... || true
	@echo wrote spotlightlint.sarif

vet:
	$(GO) vet ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

race:
	$(GO) test -race -count=1 ./...

chaos:
	$(GO) test -race -run 'Chaos|Checkpoint|Cancel' -count=2 ./...

# tracesmoke proves the observe-only invariant end to end through the
# CLI: a traced and an untraced fig6 run produce byte-identical CSVs,
# and the trace passes schema validation. Mirrors the CI step.
tracesmoke:
	$(GO) test -run=NONE -bench=BenchmarkTraceOverhead -benchtime=1x ./internal/eval/...
	$(GO) build -o /tmp/experiments ./cmd/experiments
	$(GO) build -o /tmp/tracestat ./cmd/tracestat
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -out /tmp/untraced
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -out /tmp/traced -trace /tmp/run.jsonl
	cmp /tmp/untraced/fig6.csv /tmp/traced/fig6.csv
	/tmp/tracestat -check /tmp/run.jsonl
	/tmp/tracestat /tmp/run.jsonl

# batchsmoke proves the batching invariant end to end through the CLI:
# fig6 CSVs are byte-identical batched vs unbatched (-nobatch), at 1 and
# 8 workers, traced or untraced, and the batched trace (which carries
# eval.batch events) passes schema validation. Mirrors the CI step.
batchsmoke:
	$(GO) test -run=NONE -bench 'BenchmarkMaestroEvaluateBatch|BenchmarkTransformerLayerSearch' -benchtime=1x .
	$(GO) build -o /tmp/experiments ./cmd/experiments
	$(GO) build -o /tmp/tracestat ./cmd/tracestat
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -workers 1 -out /tmp/batched1
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -workers 8 -out /tmp/batched8 -trace /tmp/batched.jsonl
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -workers 1 -nobatch -out /tmp/unbatched1
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -workers 8 -nobatch -out /tmp/unbatched8
	cmp /tmp/batched1/fig6.csv /tmp/unbatched1/fig6.csv
	cmp /tmp/batched1/fig6.csv /tmp/batched8/fig6.csv
	cmp /tmp/batched1/fig6.csv /tmp/unbatched8/fig6.csv
	/tmp/tracestat -check /tmp/batched.jsonl
	/tmp/tracestat /tmp/batched.jsonl

# crashsmoke proves the persistent cache's crash-safety invariant end to
# end through the CLI: a cold run, a warm run over the same cache
# directory, and a run after the journal's tail is torn off (the
# deterministic stand-in for a crash mid-append) all produce
# byte-identical fig6 CSVs, and the warm trace carries cache.persist
# events. Mirrors the CI step.
crashsmoke:
	$(GO) build -o /tmp/experiments ./cmd/experiments
	$(GO) build -o /tmp/tracestat ./cmd/tracestat
	rm -rf /tmp/evalcache && mkdir -p /tmp/evalcache
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -cache-dir /tmp/evalcache -out /tmp/cachecold
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -cache-dir /tmp/evalcache -out /tmp/cachewarm -trace /tmp/warm.jsonl
	cmp /tmp/cachecold/fig6.csv /tmp/cachewarm/fig6.csv
	S=$$(stat -c %s /tmp/evalcache/sim-hybrid.journal); \
	  head -c $$((S - 7)) /tmp/evalcache/sim-hybrid.journal > /tmp/evalcache/torn && \
	  mv /tmp/evalcache/torn /tmp/evalcache/sim-hybrid.journal
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -cache-dir /tmp/evalcache -out /tmp/cacherecovered
	cmp /tmp/cachecold/fig6.csv /tmp/cacherecovered/fig6.csv
	/tmp/tracestat -check /tmp/warm.jsonl
	/tmp/tracestat /tmp/warm.jsonl | grep "persistent cache:"

# servesmoke proves the engine-relocation invariant end to end over
# HTTP: a fig6 CSV produced by spotlightd is byte-identical to the one
# cmd/experiments writes with the same spec, the SSE trace stream closes
# with `event: end`, a duplicate submission is served from the shared
# pipeline's cache (trace.cache.hit on /metrics), and SIGTERM drains to
# a clean exit. Mirrors the CI step.
servesmoke:
	$(GO) build -o /tmp/experiments ./cmd/experiments
	$(GO) build -o /tmp/spotlightd ./cmd/spotlightd
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -out /tmp/clifig6
	set -e; \
	/tmp/spotlightd -addr 127.0.0.1:7077 -jobs 2 & SD=$$!; \
	trap 'kill $$SD 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do curl -sf http://127.0.0.1:7077/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:7077/healthz >/dev/null; \
	BODY='{"kind":"experiment","steps":["fig6"],"models":["MobileNetV2"],"hw_samples":4,"sw_samples":6,"trials":1,"eval":"sim,cache,stats"}'; \
	curl -sf -X POST http://127.0.0.1:7077/jobs -d "$$BODY" >/dev/null; \
	curl -sf -X POST http://127.0.0.1:7077/jobs -d "$$BODY" >/dev/null; \
	curl -sN http://127.0.0.1:7077/jobs/job-1/trace | grep -q '^event: end'; \
	for i in $$(seq 300); do curl -s http://127.0.0.1:7077/jobs/job-2 | grep -q '"state": "done"' && break; sleep 0.5; done; \
	curl -s http://127.0.0.1:7077/jobs/job-2 | grep -q '"state": "done"'; \
	curl -sf http://127.0.0.1:7077/jobs/job-1/artifacts/fig6.csv > /tmp/served1.csv; \
	curl -sf http://127.0.0.1:7077/jobs/job-2/artifacts/fig6.csv > /tmp/served2.csv; \
	curl -sf http://127.0.0.1:7077/metrics | grep -q 'trace.cache.hit'; \
	kill -TERM $$SD; wait $$SD
	cmp /tmp/clifig6/fig6.csv /tmp/served1.csv
	cmp /tmp/clifig6/fig6.csv /tmp/served2.csv

# metricssmoke proves the Prometheus exposition end to end: spotlightd's
# /metrics negotiates the 0.0.4 text format (validated by the strict
# parser behind cmd/promcheck), answers HEAD with the same Content-Type,
# keeps JSON as the default representation, and publishes per-job
# progress both as JSON (/jobs/{id}/progress) and as labeled per-job
# gauges on the scrape. Mirrors the CI step.
metricssmoke:
	$(GO) build -o /tmp/spotlightd ./cmd/spotlightd
	$(GO) build -o /tmp/promcheck ./cmd/promcheck
	set -e; \
	/tmp/spotlightd -addr 127.0.0.1:7078 -jobs 2 & SD=$$!; \
	trap 'kill $$SD 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do curl -sf http://127.0.0.1:7078/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:7078/healthz >/dev/null; \
	BODY='{"kind":"experiment","steps":["fig6"],"models":["MobileNetV2"],"hw_samples":4,"sw_samples":6,"trials":1,"eval":"sim,cache,stats"}'; \
	curl -sf -X POST http://127.0.0.1:7078/jobs -d "$$BODY" >/dev/null; \
	for i in $$(seq 300); do curl -s http://127.0.0.1:7078/jobs/job-1 | grep -q '"state": "done"' && break; sleep 0.5; done; \
	curl -s http://127.0.0.1:7078/jobs/job-1 | grep -q '"state": "done"'; \
	curl -sf http://127.0.0.1:7078/jobs/job-1/progress | grep -q '"trials_done"'; \
	curl -sf http://127.0.0.1:7078/metrics | grep -q 'trace.cache.hit'; \
	curl -sf -H 'Accept: text/plain' http://127.0.0.1:7078/metrics > /tmp/scrape.prom; \
	/tmp/promcheck /tmp/scrape.prom; \
	grep -q 'job_trials_done{job="job-1"}' /tmp/scrape.prom; \
	grep -q '^go_goroutines ' /tmp/scrape.prom; \
	curl -sfI -H 'Accept: text/plain' http://127.0.0.1:7078/metrics | grep -qi 'content-type: text/plain; version=0.0.4'; \
	kill -TERM $$SD; wait $$SD

# bench runs the batching benchmarks at measurement length and records
# them in BENCH_6.json next to the frozen pre-batching baseline (the
# "before" block below was measured at the seed of the batching change
# on the reference CI-class host).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMaestroEvaluate$$|BenchmarkMaestroEvaluateBatch' -benchmem -benchtime=1s -count=1 . | tee /tmp/bench6.txt
	awk 'BEGIN { batch_n = 64 } \
	  /^BenchmarkMaestroEvaluate[-\t ]/                  { ev_ns = $$3 } \
	  /^BenchmarkMaestroEvaluateBatch\/batch[-\t ]/      { b_ns = $$3; b_allocs = $$7 } \
	  /^BenchmarkMaestroEvaluateBatch\/sequential[-\t ]/ { s_ns = $$3; s_allocs = $$7 } \
	  END { \
	    printf "{\n"; \
	    printf "  \"issue\": 6,\n"; \
	    printf "  \"title\": \"batched, allocation-free cost evaluation\",\n"; \
	    printf "  \"batch_size\": %d,\n", batch_n; \
	    printf "  \"before\": {\n"; \
	    printf "    \"note\": \"pre-batching seed, measured on the same host class\",\n"; \
	    printf "    \"maestro_evaluate_ns_per_op\": 402.4,\n"; \
	    printf "    \"maestro_evaluate_allocs_per_op\": 0,\n"; \
	    printf "    \"sequential_64_evals_ns\": 25754,\n"; \
	    printf "    \"eval_cache_hit_ns_per_op\": 596.6,\n"; \
	    printf "    \"eval_cache_hit_allocs_per_op\": 0\n"; \
	    printf "  },\n"; \
	    printf "  \"after\": {\n"; \
	    printf "    \"maestro_evaluate_ns_per_op\": %s,\n", ev_ns; \
	    printf "    \"batch_64_ns_per_op\": %s,\n", b_ns; \
	    printf "    \"batch_64_allocs_per_op\": %s,\n", b_allocs; \
	    printf "    \"sequential_64_ns_per_op\": %s,\n", s_ns; \
	    printf "    \"sequential_64_allocs_per_op\": %s,\n", s_allocs; \
	    printf "    \"throughput_ratio\": %.2f,\n", s_ns / b_ns; \
	    printf "    \"allocs_ratio\": %.1f\n", (s_allocs + 0) / (b_allocs + 0); \
	    printf "  }\n"; \
	    printf "}\n"; \
	  }' /tmp/bench6.txt > BENCH_6.json
	cat BENCH_6.json

ci: lint build test race chaos tracesmoke batchsmoke crashsmoke servesmoke metricssmoke
