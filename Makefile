# Targets mirror .github/workflows/ci.yml one-for-one so a green
# `make ci` locally means a green CI run. Keep the two in sync: if you
# change a recipe here, change the matching workflow step.

GO ?= go

.PHONY: all build test lint vet fmt race chaos ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the blocking CI gate: vet, gofmt, then the repo's own
# spotlightlint analyzers (determinism & hygiene invariants).
lint: vet fmt
	$(GO) run ./cmd/lint ./...

vet:
	$(GO) vet ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

race:
	$(GO) test -race -count=1 ./...

chaos:
	$(GO) test -race -run 'Chaos|Checkpoint|Cancel' -count=2 ./...

ci: lint build test race chaos
