# Targets mirror .github/workflows/ci.yml one-for-one so a green
# `make ci` locally means a green CI run. Keep the two in sync: if you
# change a recipe here, change the matching workflow step.

GO ?= go

.PHONY: all build test lint vet fmt race chaos tracesmoke ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the blocking CI gate: vet, gofmt, then the repo's own
# spotlightlint analyzers (determinism & hygiene invariants).
lint: vet fmt
	$(GO) run ./cmd/lint ./...

vet:
	$(GO) vet ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

race:
	$(GO) test -race -count=1 ./...

chaos:
	$(GO) test -race -run 'Chaos|Checkpoint|Cancel' -count=2 ./...

# tracesmoke proves the observe-only invariant end to end through the
# CLI: a traced and an untraced fig6 run produce byte-identical CSVs,
# and the trace passes schema validation. Mirrors the CI step.
tracesmoke:
	$(GO) test -run=NONE -bench=BenchmarkTraceOverhead -benchtime=1x ./internal/eval/...
	$(GO) build -o /tmp/experiments ./cmd/experiments
	$(GO) build -o /tmp/tracestat ./cmd/tracestat
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -out /tmp/untraced
	/tmp/experiments -fig 6 -models MobileNetV2 -hw 4 -sw 6 -trials 1 -eval sim,cache,stats -out /tmp/traced -trace /tmp/run.jsonl
	cmp /tmp/untraced/fig6.csv /tmp/traced/fig6.csv
	/tmp/tracestat -check /tmp/run.jsonl
	/tmp/tracestat /tmp/run.jsonl

ci: lint build test race chaos tracesmoke
