package sched

import (
	"testing"

	"spotlight/internal/workload"
)

func FuzzDivisors(f *testing.F) {
	for _, seed := range []int{0, 1, 2, 12, 97, 1024, 230} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, n int) {
		if n > 1<<20 {
			n %= 1 << 20
		}
		divs := Divisors(n)
		if n <= 0 {
			if divs != nil {
				t.Fatalf("Divisors(%d) = %v, want nil", n, divs)
			}
			return
		}
		prev := 0
		for _, d := range divs {
			if d <= prev {
				t.Fatalf("Divisors(%d) not strictly increasing: %v", n, divs)
			}
			if n%d != 0 {
				t.Fatalf("Divisors(%d) contains non-divisor %d", n, d)
			}
			prev = d
		}
		if len(divs) == 0 || divs[0] != 1 || divs[len(divs)-1] != n {
			t.Fatalf("Divisors(%d) missing endpoints: %v", n, divs)
		}
	})
}

func FuzzFitTiles(f *testing.F) {
	f.Add(8, 8, 3, 20, int64(512), int64(1<<16))
	f.Add(64, 32, 1, 14, int64(64), int64(1<<20))
	f.Add(1, 1, 1, 1, int64(1), int64(1))
	f.Fuzz(func(t *testing.T, k, c, rs, xy int, rfBytes, l2Bytes int64) {
		k = clamp(k, 1, 512)
		c = clamp(c, 1, 512)
		rs = clamp(rs, 1, 7)
		xy = clamp(xy, rs, 64)
		rfBytes = clamp64(rfBytes, 1, 1<<20)
		l2Bytes = clamp64(l2Bytes, 1, 1<<24)
		l := workload.Conv("fuzz", 1, k, c, rs, rs, xy, xy)
		if l.Validate() != nil {
			t.Skip()
		}
		t1, t2 := FitTiles(l, rfBytes, l2Bytes)
		for i, d := range workload.AllDims {
			if t1[i] < 1 || t2[i] < 1 {
				t.Fatalf("non-positive tile at %v: %v %v", d, t1[i], t2[i])
			}
			if l.Size(d)%t2[i] != 0 || t2[i]%t1[i] != 0 {
				t.Fatalf("divisibility broken at %v: size=%d t2=%d t1=%d", d, l.Size(d), t2[i], t1[i])
			}
		}
	})
}

func clamp(v, lo, hi int) int {
	if v < lo {
		v = -v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return lo + v%(hi-lo+1)
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		v = -v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return lo + v%(hi-lo+1)
	}
	return v
}
