package sched

import (
	"math/rand"
	"strings"
	"testing"

	"spotlight/internal/workload"
)

func TestToMaestroMappingStructure(t *testing.T) {
	l := workload.Conv("conv1_1", 1, 64, 32, 3, 3, 18, 18)
	rng := rand.New(rand.NewSource(1))
	s := Free().Random(rng, l, 512, 128<<10)
	out := ToMaestroMapping(l, s, 14)
	if !strings.Contains(out, "Mapping {") || !strings.Contains(out, "Cluster(14, P);") {
		t.Fatalf("missing structure:\n%s", out)
	}
	// Exactly two SpatialMap directives: one per tile level.
	if n := strings.Count(out, "SpatialMap"); n != 2 {
		t.Fatalf("got %d SpatialMap directives, want 2:\n%s", n, out)
	}
	// Seven temporal/spatial directives per level.
	if n := strings.Count(out, "Map("); n != 14 {
		t.Fatalf("got %d directives, want 14:\n%s", n, out)
	}
}

func TestToMaestroMappingBatchComment(t *testing.T) {
	l := workload.FromDepthwise("dw", 32, 3, 3, 18, 18, 1) // N=32
	rng := rand.New(rand.NewSource(2))
	s := Free().Random(rng, l, 512, 128<<10)
	out := ToMaestroMapping(l, s, 8)
	if !strings.Contains(out, "batch N=32") {
		t.Fatalf("batch note missing:\n%s", out)
	}
}

func TestToMaestroLayer(t *testing.T) {
	l := workload.Conv("res2a_3x3", 1, 64, 64, 3, 3, 58, 58)
	out := ToMaestroLayer(l)
	if !strings.Contains(out, "Layer res2a_3x3 {") ||
		!strings.Contains(out, "K: 64, C: 64, R: 3, S: 3, Y: 58, X: 58") {
		t.Fatalf("layer rendering wrong:\n%s", out)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("b2a_dw/3x3-full"); got != "b2a_dw_3x3_full" {
		t.Fatalf("sanitize = %q", got)
	}
}
