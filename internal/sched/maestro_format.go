package sched

import (
	"fmt"
	"strings"

	"spotlight/internal/workload"
)

// ToMaestroMapping renders a schedule in MAESTRO's data-centric mapping
// syntax (Kwon et al.), so schedules found by this tool can be fed to
// the real MAESTRO ecosystem for cross-checking. The two tile levels
// become two directive blocks: the DRAM→L2 level lists TemporalMap
// directives over T2 tiles with a SpatialMap on the outer-unrolled
// dimension (cluster rows), and the L2→RF level does the same over T1
// tiles with a SpatialMap on the inner-unrolled dimension (PE columns),
// separated by a Cluster directive carrying the row width.
//
// MAESTRO's dimension letters differ slightly from Figure 1: its Y/X are
// input rows/columns and C/K channels; batch N has no directive and is
// emitted as a comment when it is non-trivial.
func ToMaestroMapping(l workload.Layer, s Schedule, clusterWidth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// generated for layer %s\n", l.Name)
	if l.N > 1 {
		fmt.Fprintf(&b, "// note: batch N=%d folded outside the mapping\n", l.N)
	}
	b.WriteString("Mapping {\n")
	writeLevel(&b, s.OuterOrder, s.T2, s.OuterUnroll, 1)
	fmt.Fprintf(&b, "  Cluster(%d, P);\n", clusterWidth)
	writeLevel(&b, s.InnerOrder, s.T1, s.InnerUnroll, 1)
	b.WriteString("}\n")
	return b.String()
}

// maestroDim maps Figure 1 dimensions onto MAESTRO's directive letters.
var maestroDim = map[workload.Dim]string{
	workload.DimN: "N",
	workload.DimK: "K",
	workload.DimC: "C",
	workload.DimR: "R",
	workload.DimS: "S",
	workload.DimX: "Y'", // output rows
	workload.DimY: "X'", // output columns
}

// writeLevel emits one tile level's directives, outermost first.
func writeLevel(b *strings.Builder, order [workload.NumDims]workload.Dim,
	tiles [workload.NumDims]int, unroll workload.Dim, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, d := range order {
		size := tiles[d]
		kind := "TemporalMap"
		if d == unroll {
			kind = "SpatialMap"
		}
		fmt.Fprintf(b, "%s%s(%d,%d) %s;\n", pad, kind, size, size, maestroDim[d])
	}
}

// ToMaestroLayer renders the layer's shape in MAESTRO's network syntax.
func ToMaestroLayer(l workload.Layer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Layer %s {\n", sanitize(l.Name))
	b.WriteString("  Type: CONV\n")
	fmt.Fprintf(&b, "  Dimensions { K: %d, C: %d, R: %d, S: %d, Y: %d, X: %d }\n",
		l.K, l.C, l.R, l.S, l.X, l.Y)
	b.WriteString("}\n")
	return b.String()
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
