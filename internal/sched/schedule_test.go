package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spotlight/internal/workload"
)

func testLayer() workload.Layer {
	return workload.Conv("t", 1, 64, 32, 3, 3, 18, 18) // out 16x16
}

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{16, []int{1, 2, 4, 8, 16}},
		{7, []int{1, 7}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
	if Divisors(0) != nil {
		t.Fatal("Divisors(0) should be nil")
	}
}

func TestDivisorsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		divs := Divisors(n)
		prev := 0
		for _, d := range divs {
			if d <= prev || n%d != 0 {
				return false
			}
			prev = d
		}
		return divs[0] == 1 && divs[len(divs)-1] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSchedulesValidate(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(7))
	c := Free()
	for i := 0; i < 200; i++ {
		s := c.Random(rng, l, 512, 128<<10)
		if err := s.Validate(l); err != nil {
			t.Fatalf("random schedule %d invalid: %v\n%s", i, err, s)
		}
	}
}

func TestRandomConstrainedRespectsDataflow(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(3))
	c := NVDLALike()
	for i := 0; i < 50; i++ {
		s := c.Random(rng, l, 512, 128<<10)
		if s.OuterUnroll != workload.DimK || s.InnerUnroll != workload.DimC {
			t.Fatalf("NVDLA-like schedule unrolls %v/%v", s.OuterUnroll, s.InnerUnroll)
		}
		if s.OuterOrder[0] != workload.DimN || s.OuterOrder[6] != workload.DimS {
			t.Fatalf("NVDLA-like order not fixed: %v", s.OuterOrder)
		}
		if err := s.Validate(l); err != nil {
			t.Fatalf("invalid constrained schedule: %v", err)
		}
	}
}

func TestSpotlightFOnlyRetilesKC(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(5))
	c := SpotlightF(EyerissLike())
	base1, base2 := FitTiles(l, 512, 128<<10)
	for i := 0; i < 50; i++ {
		s := c.Random(rng, l, 512, 128<<10)
		for j, d := range workload.AllDims {
			if d == workload.DimK || d == workload.DimC {
				continue
			}
			if s.T1[j] != base1[j] || s.T2[j] != base2[j] {
				t.Fatalf("Spotlight-F changed tiling of %s", d)
			}
		}
	}
}

func TestFitTilesWithinBudget(t *testing.T) {
	l := testLayer()
	t1, t2 := FitTiles(l, 512, 64<<10)
	if TileFootprint(l, t1) > 512 {
		t.Fatalf("RF tile footprint %d exceeds 512", TileFootprint(l, t1))
	}
	if TileFootprint(l, t2) > 64<<10 {
		t.Fatalf("L2 tile footprint %d exceeds 64KB", TileFootprint(l, t2))
	}
	for i := range workload.AllDims {
		if t2[i]%t1[i] != 0 {
			t.Fatalf("T1 does not divide T2 at dim %d", i)
		}
	}
}

func TestFitTilesGrowsWithBudget(t *testing.T) {
	l := testLayer()
	_, small := FitTiles(l, 128, 8<<10)
	_, large := FitTiles(l, 4096, 1<<20)
	prodSmall, prodLarge := int64(1), int64(1)
	for i := range workload.AllDims {
		prodSmall *= int64(small[i])
		prodLarge *= int64(large[i])
	}
	if prodLarge <= prodSmall {
		t.Fatalf("larger budget did not grow tiles: %d vs %d", prodLarge, prodSmall)
	}
}

func TestFitTilesTinyBudgetStillValid(t *testing.T) {
	l := testLayer()
	t1, t2 := FitTiles(l, 1, 1)
	for i := range workload.AllDims {
		if t1[i] != 1 || t2[i] != 1 {
			t.Fatalf("tiny budget should give unit tiles, got %v/%v", t1, t2)
		}
	}
}

func TestTileFootprintKnown(t *testing.T) {
	l := testLayer() // stride 1, R=S=3
	var tiles [workload.NumDims]int
	for i := range tiles {
		tiles[i] = 1
	}
	// All-unit tiles: 1 input element, 1 weight, 1 output.
	if got := TileFootprint(l, tiles); got != 3 {
		t.Fatalf("footprint = %d, want 3", got)
	}
	// Full-filter tile over a 2x2 output: input halo 4x4, weight 3x3,
	// output 2x2.
	tiles[workload.DimR], tiles[workload.DimS] = 3, 3
	tiles[workload.DimX], tiles[workload.DimY] = 2, 2
	want := int64(16 + 9 + 4)
	if got := TileFootprint(l, tiles); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestValidateRejectsBadTiles(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(1))
	s := Free().Random(rng, l, 512, 128<<10)
	bad := s
	bad.T2[workload.DimK] = 5 // 5 does not divide 64
	if bad.Validate(l) == nil {
		t.Fatal("non-divisor T2 accepted")
	}
	bad = s
	bad.T1[workload.DimK] = 0
	if bad.Validate(l) == nil {
		t.Fatal("zero T1 accepted")
	}
	bad = s
	bad.OuterOrder[0] = bad.OuterOrder[1]
	if bad.Validate(l) == nil {
		t.Fatal("non-permutation order accepted")
	}
	bad = s
	bad.InnerUnroll = workload.Dim(9)
	if bad.Validate(l) == nil {
		t.Fatal("out-of-range unroll accepted")
	}
}

func TestTrips(t *testing.T) {
	l := testLayer()
	var s Schedule
	for i, d := range workload.AllDims {
		s.T2[i] = l.Size(d)
		s.T1[i] = 1
	}
	s.OuterOrder = CanonicalOrder()
	s.InnerOrder = CanonicalOrder()
	outer := s.OuterTrips(l)
	inner := s.InnerTrips(l)
	for i, d := range workload.AllDims {
		if outer[i] != 1 {
			t.Fatalf("outer trips for %s = %d, want 1", d, outer[i])
		}
		if inner[i] != l.Size(d) {
			t.Fatalf("inner trips for %s = %d, want %d", d, inner[i], l.Size(d))
		}
	}
}

func TestNeighborStaysValid(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(11))
	c := Free()
	s := c.Random(rng, l, 512, 128<<10)
	for i := 0; i < 300; i++ {
		s = c.Neighbor(rng, s, l)
		if err := s.Validate(l); err != nil {
			t.Fatalf("neighbor %d invalid: %v", i, err)
		}
	}
}

func TestNeighborRespectsFixedOrder(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(13))
	c := EyerissLike()
	s := c.Random(rng, l, 512, 128<<10)
	want := s.OuterOrder
	for i := 0; i < 100; i++ {
		s = c.Neighbor(rng, s, l)
		if s.OuterOrder != want {
			t.Fatal("neighbor mutated a fixed loop order")
		}
		if s.OuterUnroll != workload.DimY {
			t.Fatal("neighbor mutated a pinned unroll dimension")
		}
	}
}

func TestCrossoverProducesValid(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(17))
	c := Free()
	for i := 0; i < 100; i++ {
		a := c.Random(rng, l, 512, 128<<10)
		b := c.Random(rng, l, 512, 128<<10)
		child := Crossover(rng, a, b)
		if err := child.Validate(l); err != nil {
			t.Fatalf("crossover child invalid: %v", err)
		}
	}
}

func TestFixedDataflowsDistinct(t *testing.T) {
	dfs := FixedDataflows()
	if len(dfs) != 3 {
		t.Fatalf("got %d fixed dataflows, want 3", len(dfs))
	}
	seen := map[string]bool{}
	for _, d := range dfs {
		if seen[d.Name] {
			t.Fatalf("duplicate dataflow %s", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestSpaceSizeIsAstronomical(t *testing.T) {
	// A mid ResNet-50 layer should have a space around 10^18 (paper §I).
	l := workload.Conv("res3", 1, 128, 128, 3, 3, 30, 30)
	size := SpaceSize(l)
	if size < 1e15 {
		t.Fatalf("space size = %g, expected astronomically large", size)
	}
}

func TestMAERILikeIsFree(t *testing.T) {
	c := MAERILike()
	if c.FixedOuterOrder != nil || len(c.OuterUnrollChoices) != 0 || c.TilableDims != nil {
		t.Fatal("MAERI-like should be unconstrained")
	}
}

func TestScheduleString(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(19))
	s := Free().Random(rng, l, 512, 128<<10)
	if s.String() == "" {
		t.Fatal("empty schedule string")
	}
}
