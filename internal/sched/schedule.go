// Package sched defines the software half of the co-design space: the
// loop transformations of §IV-A2 of the paper (loop tiling with
// independent per-level factors, loop reordering of both tile levels, and
// spatial unrolling of one dimension per level), plus the constrained
// schedule spaces used by the baselines (Eyeriss-like, NVDLA-like,
// ShiDianNao-like dataflows and the pruned spaces of ConfuciuX, HASCO and
// Spotlight-F).
//
// A Schedule describes how the 7-level CONV loop of Figure 1 executes on
// a two-level accelerator (global L2 scratchpad + per-PE register file):
// each dimension d is split into an L2 tile T2[d] and an RF tile T1[d]
// with T1[d] | T2[d] | Size(d); the DRAM-level loops (stepping T2 tiles)
// run in OuterOrder; the L2-level loops (stepping T1 subtiles) run in
// InnerOrder; OuterUnroll distributes DRAM-level tiles across the rows of
// the PE array, and InnerUnroll distributes L2-level subtiles across the
// columns.
package sched

import (
	"fmt"
	"sync"

	"spotlight/internal/workload"
)

// Schedule is one point in the software design space for a single layer.
type Schedule struct {
	T2          [workload.NumDims]int          // L2 tile size per dimension
	T1          [workload.NumDims]int          // RF tile size per dimension
	OuterOrder  [workload.NumDims]workload.Dim // DRAM-level loop order, outermost first
	InnerOrder  [workload.NumDims]workload.Dim // L2-level loop order, outermost first
	OuterUnroll workload.Dim                   // dimension unrolled across PE rows
	InnerUnroll workload.Dim                   // dimension unrolled across PE columns
}

// Validate checks the structural invariants of the schedule against the
// layer: positive tiles, divisibility at both levels, and both orders
// being permutations of the seven dimensions. Buffer-capacity validity is
// the cost model's concern, not Validate's — capacity depends on the
// hardware configuration.
func (s Schedule) Validate(l workload.Layer) error {
	for i, d := range workload.AllDims {
		size := l.Size(d)
		t2, t1 := s.T2[i], s.T1[i]
		if t1 <= 0 || t2 <= 0 {
			return fmt.Errorf("sched: non-positive tile for %s: T2=%d T1=%d", d, t2, t1)
		}
		if size%t2 != 0 {
			return fmt.Errorf("sched: T2[%s]=%d does not divide size %d", d, t2, size)
		}
		if t2%t1 != 0 {
			return fmt.Errorf("sched: T1[%s]=%d does not divide T2 %d", d, t1, t2)
		}
	}
	if !isPermutation(s.OuterOrder) {
		return fmt.Errorf("sched: outer order %v is not a permutation", s.OuterOrder)
	}
	if !isPermutation(s.InnerOrder) {
		return fmt.Errorf("sched: inner order %v is not a permutation", s.InnerOrder)
	}
	if s.OuterUnroll < 0 || int(s.OuterUnroll) >= workload.NumDims ||
		s.InnerUnroll < 0 || int(s.InnerUnroll) >= workload.NumDims {
		return fmt.Errorf("sched: unroll dims out of range: %v/%v", s.OuterUnroll, s.InnerUnroll)
	}
	return nil
}

func isPermutation(order [workload.NumDims]workload.Dim) bool {
	var seen [workload.NumDims]bool
	for _, d := range order {
		if d < 0 || int(d) >= workload.NumDims || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// OuterTrips returns the DRAM-level trip count for each dimension:
// Size(d) / T2[d].
func (s Schedule) OuterTrips(l workload.Layer) [workload.NumDims]int {
	var n [workload.NumDims]int
	for i, d := range workload.AllDims {
		n[i] = l.Size(d) / s.T2[i]
	}
	return n
}

// InnerTrips returns the L2-level trip count for each dimension:
// T2[d] / T1[d].
func (s Schedule) InnerTrips(l workload.Layer) [workload.NumDims]int {
	var n [workload.NumDims]int
	for i := range workload.AllDims {
		n[i] = s.T2[i] / s.T1[i]
	}
	return n
}

// TripCounts fuses Validate, OuterTrips, and InnerTrips into one
// allocation-free pass for batched evaluation: given the layer's
// dimension extents (as returned by workload.Layer.Sizes, precomputed
// once per batch), it reports the DRAM-level and L2-level trip counts
// and whether the schedule is structurally valid. ok is false exactly
// when Validate would return an error for a layer with these extents;
// callers needing the reason re-run Validate, off the hot path. Each
// dimension costs two fused div/mod pairs instead of Validate's
// separate mod checks followed by OuterTrips/InnerTrips divisions.
func (s Schedule) TripCounts(sizes [workload.NumDims]int) (n2, n1 [workload.NumDims]int, ok bool) {
	for i := range sizes {
		t2, t1 := s.T2[i], s.T1[i]
		if t1 <= 0 || t2 <= 0 {
			return n2, n1, false
		}
		q2 := sizes[i] / t2
		if q2*t2 != sizes[i] {
			return n2, n1, false
		}
		q1 := t2 / t1
		if q1*t1 != t2 {
			return n2, n1, false
		}
		n2[i], n1[i] = q2, q1
	}
	if !isPermutation(s.OuterOrder) || !isPermutation(s.InnerOrder) {
		return n2, n1, false
	}
	if s.OuterUnroll < 0 || int(s.OuterUnroll) >= workload.NumDims ||
		s.InnerUnroll < 0 || int(s.InnerUnroll) >= workload.NumDims {
		return n2, n1, false
	}
	return n2, n1, true
}

// String renders the schedule compactly for logs and reports.
func (s Schedule) String() string {
	return fmt.Sprintf("T2=%v T1=%v outer=%v inner=%v unroll=%v/%v",
		s.T2, s.T1, s.OuterOrder, s.InnerOrder, s.OuterUnroll, s.InnerUnroll)
}

// Divisors returns the positive divisors of n in increasing order. The
// result is memoized (layer dimensions repeat constantly during search)
// and must not be mutated by the caller.
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	divisorMu.RLock()
	cached, ok := divisorCache[n]
	divisorMu.RUnlock()
	if ok {
		return cached
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	divisorMu.Lock()
	divisorCache[n] = small
	divisorMu.Unlock()
	return small
}

var (
	divisorMu    sync.RWMutex
	divisorCache = map[int][]int{}
)

// CanonicalOrder is the identity loop order [N K C R S X Y].
func CanonicalOrder() [workload.NumDims]workload.Dim {
	return workload.AllDims
}

// SpaceSize estimates the number of software design points for the layer
// under the unconstrained space: per-level tiling choices × (7!)² loop
// orders × 7² unroll choices. The result is a float64 because the space
// is astronomically large (O(10^18) for mid ResNet-50 layers, matching
// §I of the paper).
func SpaceSize(l workload.Layer) float64 {
	size := 1.0
	for _, d := range workload.AllDims {
		// Tiling choices per dim: pairs (T1, T2) with T1 | T2 | size.
		var pairs int
		for _, t2 := range Divisors(l.Size(d)) {
			pairs += len(Divisors(t2))
		}
		size *= float64(pairs)
	}
	const fact7 = 5040
	size *= fact7 * fact7 // both loop orders
	size *= 49            // unroll dimension choices
	return size
}
