package sched

import (
	"math/rand"

	"spotlight/internal/workload"
)

// Constraint restricts the software design space. Spotlight searches the
// unconstrained space (Free); hand-designed accelerators and prior
// co-design tools search restricted spaces, which is central to the
// paper's comparison (§VII-A: "ConfuciuX and HASCO produce inefficient
// designs primarily because of their limited design spaces").
type Constraint struct {
	Name string

	// OuterUnrollChoices / InnerUnrollChoices list the dimensions the
	// schedule may spatially unroll at each level. A single-element list
	// pins the dataflow's unrolling.
	OuterUnrollChoices []workload.Dim
	InnerUnrollChoices []workload.Dim

	// FixedOuterOrder / FixedInnerOrder pin the loop orders; nil means
	// the order is free (sampled uniformly over permutations).
	FixedOuterOrder []workload.Dim
	FixedInnerOrder []workload.Dim

	// TilableDims lists the dimensions whose tiling factors are searched.
	// Dimensions not listed get heuristic greedy-fit tiles (see FitTiles).
	// nil means every dimension is searched.
	TilableDims []workload.Dim
}

// Free returns the unconstrained Spotlight software space of §IV-A2:
// all loop orders, all unroll dimensions, all divisor tilings.
func Free() Constraint {
	return Constraint{Name: "free"}
}

// allDimsSlice returns the seven dims as a slice.
func allDimsSlice() []workload.Dim {
	out := make([]workload.Dim, workload.NumDims)
	copy(out, workload.AllDims[:])
	return out
}

// EyerissLike returns the rigid row-stationary-style dataflow attributed
// to Eyeriss in the paper: X/Y spatial unrolling with a weight-stationary
// loop order (weight dimensions outermost so filter tiles stay resident).
func EyerissLike() Constraint {
	order := []workload.Dim{workload.DimK, workload.DimC, workload.DimR, workload.DimS,
		workload.DimN, workload.DimY, workload.DimX}
	return Constraint{
		Name:               "eyeriss-like",
		OuterUnrollChoices: []workload.Dim{workload.DimY},
		InnerUnrollChoices: []workload.Dim{workload.DimX},
		FixedOuterOrder:    order,
		FixedInnerOrder:    order,
		TilableDims:        []workload.Dim{},
	}
}

// NVDLALike returns the NVDLA-style dataflow: K/C spatial unrolling with
// an output-stationary loop order (output dimensions outermost, reduction
// dimensions innermost).
func NVDLALike() Constraint {
	order := []workload.Dim{workload.DimN, workload.DimK, workload.DimX, workload.DimY,
		workload.DimC, workload.DimR, workload.DimS}
	return Constraint{
		Name:               "nvdla-like",
		OuterUnrollChoices: []workload.Dim{workload.DimK},
		InnerUnrollChoices: []workload.Dim{workload.DimC},
		FixedOuterOrder:    order,
		FixedInnerOrder:    order,
		TilableDims:        []workload.Dim{},
	}
}

// ShiDianNaoLike returns the ShiDianNao-style dataflow: output-stationary
// with X/Y spatial unrolling, the third fixed schedule ConfuciuX selects
// among.
func ShiDianNaoLike() Constraint {
	order := []workload.Dim{workload.DimN, workload.DimK, workload.DimC,
		workload.DimX, workload.DimY, workload.DimR, workload.DimS}
	return Constraint{
		Name:               "shidiannao-like",
		OuterUnrollChoices: []workload.Dim{workload.DimX},
		InnerUnrollChoices: []workload.Dim{workload.DimY},
		FixedOuterOrder:    order,
		FixedInnerOrder:    order,
		TilableDims:        []workload.Dim{},
	}
}

// MAERILike returns the flexible-dataflow space attributed to MAERI: free
// unrolling and loop orders (the reconfigurable interconnect can realize
// arbitrary mappings), with full tiling freedom. MAERI's rigidity is in
// its fixed hardware, not its software.
func MAERILike() Constraint {
	c := Free()
	c.Name = "maeri-like"
	return c
}

// FixedDataflows returns the three rigid dataflow constraints that
// ConfuciuX (and Spotlight-F) select among.
func FixedDataflows() []Constraint {
	return []Constraint{EyerissLike(), NVDLALike(), ShiDianNaoLike()}
}

// SpotlightF returns the Spotlight-F space of §VII-E: the given fixed
// dataflow's orders and unrolls, but with tiling searched only in the K
// and C dimensions.
func SpotlightF(dataflow Constraint) Constraint {
	dataflow.Name = "spotlight-f/" + dataflow.Name
	dataflow.TilableDims = []workload.Dim{workload.DimK, workload.DimC}
	return dataflow
}

// WithTilingSearch relaxes a rigid dataflow so that all tiling factors
// are searched while the loop orders and unroll dimensions stay pinned.
// This is how the hand-designed accelerators are evaluated in §VII:
// their dataflows are fixed in silicon, but mapping a layer onto them
// still involves choosing tile sizes, which daBO_SW optimizes.
func (c Constraint) WithTilingSearch() Constraint {
	c.Name += "+tiling"
	c.TilableDims = nil
	return c
}

// outerChoices returns the effective outer-unroll choices.
func (c Constraint) outerChoices() []workload.Dim {
	if len(c.OuterUnrollChoices) == 0 {
		return allDimsSlice()
	}
	return c.OuterUnrollChoices
}

// innerChoices returns the effective inner-unroll choices.
func (c Constraint) innerChoices() []workload.Dim {
	if len(c.InnerUnrollChoices) == 0 {
		return allDimsSlice()
	}
	return c.InnerUnrollChoices
}

// tilable reports whether dimension d's tiling is searched under c.
func (c Constraint) tilable(d workload.Dim) bool {
	if c.TilableDims == nil {
		return true
	}
	for _, t := range c.TilableDims {
		if t == d {
			return true
		}
	}
	return false
}

// Random samples a uniformly random schedule from the constrained space.
// Heuristically tiled (non-searchable) dimensions are greedily fit to the
// provided per-PE register file and L2 scratchpad capacities so that
// rigid-dataflow baselines produce mostly valid schedules, mirroring how
// hand-designed accelerators ship with working tilings. Searchable
// dimensions draw independent divisor pairs, which may or may not fit —
// those are the invalid regions the cost model rejects.
func (c Constraint) Random(rng *rand.Rand, l workload.Layer, rfBytesPerPE, l2Bytes int64) Schedule {
	var s Schedule
	s.OuterUnroll = c.outerChoices()[rng.Intn(len(c.outerChoices()))]
	s.InnerUnroll = c.innerChoices()[rng.Intn(len(c.innerChoices()))]
	s.OuterOrder = orderFrom(c.FixedOuterOrder, rng)
	s.InnerOrder = orderFrom(c.FixedInnerOrder, rng)

	// Heuristically fit the non-searchable dimensions (none under Free),
	// then resample the searchable ones uniformly over divisor pairs.
	if c.TilableDims != nil {
		s.T1, s.T2 = FitTiles(l, rfBytesPerPE, l2Bytes)
	}
	for i, d := range workload.AllDims {
		if !c.tilable(d) {
			continue
		}
		size := l.Size(d)
		divs := Divisors(size)
		t2v := divs[rng.Intn(len(divs))]
		subDivs := Divisors(t2v)
		t1v := subDivs[rng.Intn(len(subDivs))]
		s.T2[i], s.T1[i] = t2v, t1v
	}
	return s
}

// orderFrom returns the fixed order if given, else a random permutation.
func orderFrom(fixed []workload.Dim, rng *rand.Rand) [workload.NumDims]workload.Dim {
	var out [workload.NumDims]workload.Dim
	if len(fixed) == workload.NumDims {
		copy(out[:], fixed)
		return out
	}
	copy(out[:], workload.AllDims[:])
	rng.Shuffle(workload.NumDims, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Neighbor returns a schedule one mutation away from s within the
// constraint: it perturbs one of the searchable components (a tiling
// factor, an unroll dimension, or a swap in a free loop order). Used by
// the genetic-algorithm baseline.
func (c Constraint) Neighbor(rng *rand.Rand, s Schedule, l workload.Layer) Schedule {
	out := s
	switch rng.Intn(4) {
	case 0: // re-tile one searchable dimension
		var idx []int
		for i, d := range workload.AllDims {
			if c.tilable(d) {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return out
		}
		i := idx[rng.Intn(len(idx))]
		size := l.Size(workload.AllDims[i])
		divs := Divisors(size)
		out.T2[i] = divs[rng.Intn(len(divs))]
		sub := Divisors(out.T2[i])
		out.T1[i] = sub[rng.Intn(len(sub))]
	case 1: // re-pick an unroll dimension
		if rng.Intn(2) == 0 {
			ch := c.outerChoices()
			out.OuterUnroll = ch[rng.Intn(len(ch))]
		} else {
			ch := c.innerChoices()
			out.InnerUnroll = ch[rng.Intn(len(ch))]
		}
	case 2: // swap two loops in the outer order, if free
		if c.FixedOuterOrder == nil {
			i, j := rng.Intn(workload.NumDims), rng.Intn(workload.NumDims)
			out.OuterOrder[i], out.OuterOrder[j] = out.OuterOrder[j], out.OuterOrder[i]
		}
	case 3: // swap two loops in the inner order, if free
		if c.FixedInnerOrder == nil {
			i, j := rng.Intn(workload.NumDims), rng.Intn(workload.NumDims)
			out.InnerOrder[i], out.InnerOrder[j] = out.InnerOrder[j], out.InnerOrder[i]
		}
	}
	return out
}

// Crossover mixes two schedules dimension-wise (uniform crossover on
// tiles, coin flips on orders and unrolls). Used by the GA baseline.
func Crossover(rng *rand.Rand, a, b Schedule) Schedule {
	out := a
	for i := range workload.AllDims {
		if rng.Intn(2) == 0 {
			out.T2[i], out.T1[i] = b.T2[i], b.T1[i]
		}
	}
	if rng.Intn(2) == 0 {
		out.OuterOrder = b.OuterOrder
	}
	if rng.Intn(2) == 0 {
		out.InnerOrder = b.InnerOrder
	}
	if rng.Intn(2) == 0 {
		out.OuterUnroll = b.OuterUnroll
	}
	if rng.Intn(2) == 0 {
		out.InnerUnroll = b.InnerUnroll
	}
	return out
}

// FitTiles greedily grows per-dimension tiles, innermost level first,
// while the working set fits the given per-PE register file and L2
// scratchpad capacities (in bytes, 8-bit elements). It returns maximal
// divisor tiles under the capacity bound, visiting dimensions round-robin
// so no dimension starves. The resulting schedule is conservative — it is
// how a designer would hand-tile a rigid dataflow.
func FitTiles(l workload.Layer, rfBytesPerPE, l2Bytes int64) (t1, t2 [workload.NumDims]int) {
	for i := range workload.AllDims {
		t1[i], t2[i] = 1, 1
	}
	growLevel(l, &t1, nil, rfBytesPerPE)
	// L2 tiles start from the RF tiles (T1 | T2 invariant).
	t2 = t1
	growLevel(l, &t2, &t1, l2Bytes)
	return t1, t2
}

// growLevel grows tiles round-robin: each pass tries to bump every
// dimension's tile to the next admissible divisor while the footprint
// stays within budget. lower, when non-nil, is the lower-level tiling
// that must keep dividing the grown tiles, so only divisors that are
// multiples of it are admissible.
func growLevel(l workload.Layer, tiles *[workload.NumDims]int, lower *[workload.NumDims]int, budget int64) {
	for {
		grew := false
		for i, d := range workload.AllDims {
			mult := 1
			if lower != nil {
				mult = lower[i]
			}
			next, ok := nextDivisor(l.Size(d), tiles[i], mult)
			if !ok {
				continue
			}
			old := tiles[i]
			tiles[i] = next
			if TileFootprint(l, *tiles) > budget {
				tiles[i] = old
				continue
			}
			grew = true
		}
		if !grew {
			return
		}
	}
}

// nextDivisor returns the smallest divisor of n strictly greater than cur
// that is a multiple of mult.
func nextDivisor(n, cur, mult int) (int, bool) {
	for _, d := range Divisors(n) {
		if d > cur && d%mult == 0 {
			return d, true
		}
	}
	return 0, false
}

// TileFootprint returns the bytes of buffer needed to hold one tile of
// each tensor at 8-bit precision: the input halo region, the weight tile,
// and the output tile.
func TileFootprint(l workload.Layer, t [workload.NumDims]int) int64 {
	tn := int64(t[workload.DimN])
	tk := int64(t[workload.DimK])
	tc := int64(t[workload.DimC])
	tr := int64(t[workload.DimR])
	ts := int64(t[workload.DimS])
	tx := int64(t[workload.DimX])
	ty := int64(t[workload.DimY])
	inX := (tx-1)*int64(l.StrideX) + tr
	inY := (ty-1)*int64(l.StrideY) + ts
	input := tn * tc * inX * inY
	weight := tk * tc * tr * ts
	output := tn * tk * tx * ty
	return input + weight + output
}
