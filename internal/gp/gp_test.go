package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearKernelRecoversLinearFunction(t *testing.T) {
	// y = 3x0 - 2x1 + 5 is exactly representable: predictions at held-out
	// points should be close.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	f := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 5 }
	for i := 0; i < 40; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	g := New(Linear{Bias: 1}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		mean, _, err := g.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-f(x)) > 0.05*(1+math.Abs(f(x))) {
			t.Fatalf("linear GP off at %v: got %v, want %v", x, mean, f(x))
		}
	}
}

func TestRBFInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{1, 3, 2, 5}
	g := New(RBF{LengthScale: 1, Variance: 1}, 1e-8)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, std, err := g.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-ys[i]) > 0.05 {
			t.Fatalf("RBF GP does not interpolate: f(%v) = %v, want %v", x, mean, ys[i])
		}
		if std > 0.5 {
			t.Fatalf("high uncertainty at training point: %v", std)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{0, 0.25, 1}
	g := New(RBF{LengthScale: 0.5, Variance: 1}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	_, stdNear, _ := g.Predict([]float64{0.5})
	_, stdFar, _ := g.Predict([]float64{10})
	if stdFar <= stdNear {
		t.Fatalf("uncertainty did not grow away from data: near %v, far %v", stdNear, stdFar)
	}
}

func TestMatern52Properties(t *testing.T) {
	k := Matern52{LengthScale: 1, Variance: 2}
	if v := k.Eval([]float64{1, 2}, []float64{1, 2}); math.Abs(v-2) > 1e-12 {
		t.Fatalf("Matern at zero distance = %v, want variance 2", v)
	}
	// Decreasing in distance.
	prev := math.Inf(1)
	for d := 0.0; d < 5; d += 0.5 {
		v := k.Eval([]float64{0}, []float64{d})
		if v > prev {
			t.Fatalf("Matern not decreasing at distance %v", d)
		}
		prev = v
	}
}

func TestKernelNames(t *testing.T) {
	if (Linear{}).Name() != "linear" || (RBF{}).Name() != "rbf" || (Matern52{}).Name() != "matern52" {
		t.Fatal("unexpected kernel names")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-6)
	if _, _, err := g.Predict([]float64{1}); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
}

func TestFitEmpty(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-6)
	if err := g.Fit(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-6)
	if err := g.Fit([][]float64{{1, 2}}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Predict([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestConstantTargetsHandled(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{7, 7, 7}
	g := New(RBF{LengthScale: 1, Variance: 1}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mean, _, err := g.Predict([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-7) > 0.1 {
		t.Fatalf("constant-target prediction = %v, want ~7", mean)
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	xs := [][]float64{{1, 0}, {1, 1}, {1, 2}}
	ys := []float64{0, 1, 2}
	g := New(Linear{Bias: 1}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatalf("constant feature broke fit: %v", err)
	}
	mean, _, err := g.Predict([]float64{1, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1.5) > 0.1 {
		t.Fatalf("prediction = %v, want ~1.5", mean)
	}
}

func TestLCB(t *testing.T) {
	if LCB(10, 2, 1.5) != 7 {
		t.Fatalf("LCB = %v, want 7", LCB(10, 2, 1.5))
	}
	if LCB(10, 2, 0) != 10 {
		t.Fatal("kappa=0 LCB should equal the mean")
	}
}

// Property: predictions are invariant to the order of training samples.
func TestFitOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			ys[i] = xs[i][0]*xs[i][0] + rng.NormFloat64()*0.01
		}
		g1 := New(RBF{LengthScale: 1, Variance: 1}, 1e-4)
		if err := g1.Fit(xs, ys); err != nil {
			return false
		}
		// Reversed order.
		rx := make([][]float64, n)
		ry := make([]float64, n)
		for i := range xs {
			rx[i] = xs[n-1-i]
			ry[i] = ys[n-1-i]
		}
		g2 := New(RBF{LengthScale: 1, Variance: 1}, 1e-4)
		if err := g2.Fit(rx, ry); err != nil {
			return false
		}
		probe := []float64{rng.NormFloat64(), rng.NormFloat64()}
		m1, s1, _ := g1.Predict(probe)
		m2, s2, _ := g2.Predict(probe)
		return math.Abs(m1-m2) < 1e-6 && math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: posterior std is never negative and never NaN.
func TestStdNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64() * 5}
			ys[i] = rng.NormFloat64()
		}
		g := New(Matern52{LengthScale: 1, Variance: 1}, 1e-5)
		if err := g.Fit(xs, ys); err != nil {
			return true // jitter exhaustion is acceptable, not a std bug
		}
		for i := 0; i < 10; i++ {
			_, std, err := g.Predict([]float64{rng.NormFloat64() * 10})
			if err != nil || std < 0 || math.IsNaN(std) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		ys = append(ys, x[0]*x[0]-x[1]+0.1*rng.NormFloat64())
	}
	g := New(RBF{LengthScale: 1, Variance: 1}, 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 10)
	for i := range probes {
		probes[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	means := make([]float64, len(probes))
	stds := make([]float64, len(probes))
	if err := g.PredictBatch(probes, means, stds); err != nil {
		t.Fatal(err)
	}
	for i, p := range probes {
		m, s, err := g.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if m != means[i] || s != stds[i] {
			t.Fatalf("probe %d: batch (%v, %v) != single (%v, %v)", i, means[i], stds[i], m, s)
		}
	}
	// After the first call warmed the scratch buffers, batch prediction
	// must not allocate.
	if allocs := testing.AllocsPerRun(20, func() {
		if err := g.PredictBatch(probes, means, stds); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("PredictBatch allocates %v per run, want 0", allocs)
	}
}

func TestPredictBatchLengthMismatch(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-4)
	if err := g.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.PredictBatch([][]float64{{0}}, make([]float64, 2), make([]float64, 1)); err == nil {
		t.Fatal("mismatched means length accepted")
	}
}

func TestFitRejectsNonFiniteData(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-6)
	if err := g.Fit([][]float64{{1}, {math.NaN()}}, []float64{1, 2}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN input: err = %v, want ErrNonFinite", err)
	}
	if err := g.Fit([][]float64{{1}, {2}}, []float64{1, math.Inf(1)}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf target: err = %v, want ErrNonFinite", err)
	}
	// The GP must remain usable after a rejected fit.
	if err := g.Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}); err != nil {
		t.Fatalf("clean fit after rejection failed: %v", err)
	}
	if _, _, err := g.Predict([]float64{1.5}); err != nil {
		t.Fatalf("predict after recovery failed: %v", err)
	}
}
