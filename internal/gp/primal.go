package gp

import (
	"fmt"
	"math"

	"spotlight/internal/linalg"
)

// This file implements the primal form of the linear-kernel GP. The dual
// form in gp.go prices every kernel alike: an n×n Cholesky per fit
// (O(n³)) and an O(n²) solve per prediction. But the paper's default
// kernel k(x,y) = bias + x·y has a finite feature map φ(x) = [√bias, x]
// of dimension D = d+1 (a dozen or so for the Figure 4 feature spaces),
// so the identical posterior can be computed from the D×D system
//
//	A = Φ̃ᵀΦ̃ + σ²I,   w = A⁻¹Φ̃ᵀỹ
//	mean(x*) = φ̃*·w,   var(x*) = σ²(1 + φ̃*ᵀA⁻¹φ̃*)
//
// (push-through identity: Φᵀ(ΦΦᵀ+σ²I)⁻¹ = (ΦᵀΦ+σ²I)⁻¹Φᵀ), where tildes
// denote the same per-feature/target standardization the dual form
// applies. PrimalStats maintains the raw second moments incrementally —
// one rank-1 update per observation, O(d²) — and Fit assembles and
// factorizes the standardized D×D system in O(d³), independent of n.
// Prediction costs O(d) for the mean and O(d²) for the variance.
//
// daBO's invalid-region penalty retargets every infeasible observation
// whenever the worst valid cost changes, which would break a naive
// incremental design; penalized rows are therefore accumulated as a
// separate moment group whose shared target is supplied at Fit time.

// PrimalStats accumulates the sufficient statistics of a linear-kernel
// GP incrementally. Add and AddPenalized are O(d²) rank-1 updates; Fit
// produces an immutable fitted PrimalLinear in O(d³) regardless of how
// many observations were absorbed.
type PrimalStats struct {
	bias  float64
	noise float64
	dim   int // fixed by the first Add/AddPenalized

	n   int            // valid observations
	m   *linalg.Matrix // Σ u·uᵀ over valid rows, u = [1, x], (d+1)×(d+1)
	ty  []float64      // Σ y·u over valid rows
	syy float64        // Σ y² over valid rows

	pn int            // penalized observations (shared target set at Fit)
	pm *linalg.Matrix // Σ u·uᵀ over penalized rows
}

// NewPrimalStats returns an empty accumulator for the kernel
// k(x,y) = bias + x·y with the given observation noise variance.
func NewPrimalStats(bias, noise float64) *PrimalStats {
	if noise <= 0 {
		noise = 1e-6
	}
	return &PrimalStats{bias: bias, noise: noise}
}

// Counts returns how many valid and penalized observations have been
// absorbed.
func (p *PrimalStats) Counts() (valid, penalized int) { return p.n, p.pn }

// Add absorbs one valid observation (feature vector x, target y) as a
// rank-1 update of the raw moment matrices. All observations must share
// one dimensionality.
func (p *PrimalStats) Add(x []float64, y float64) {
	p.ensureDim(len(x))
	p.n++
	accumulate(p.m, x)
	p.ty[0] += y
	for j, v := range x {
		p.ty[j+1] += y * v
	}
	p.syy += y * y
}

// AddPenalized absorbs one observation whose target is the shared
// penalty value chosen later, at Fit time.
func (p *PrimalStats) AddPenalized(x []float64) {
	p.ensureDim(len(x))
	p.pn++
	accumulate(p.pm, x)
}

func (p *PrimalStats) ensureDim(d int) {
	if p.m == nil {
		p.dim = d
		p.m = linalg.NewMatrix(d+1, d+1)
		p.pm = linalg.NewMatrix(d+1, d+1)
		p.ty = make([]float64, d+1)
	}
	if d != p.dim {
		panic(fmt.Sprintf("gp: primal observation has %d features, accumulator holds %d", d, p.dim))
	}
}

// accumulate adds u·uᵀ for u = [1, x] to the upper triangle of m (the
// lower triangle is never read before Fit mirrors it).
func accumulate(m *linalg.Matrix, x []float64) {
	m.Set(0, 0, m.At(0, 0)+1)
	row0 := m.Row(0)
	for j, v := range x {
		row0[j+1] += v
	}
	for j, vj := range x {
		row := m.Row(j + 1)
		for k := j; k < len(x); k++ {
			row[k+1] += vj * x[k]
		}
	}
}

// finite reports whether every accumulated moment is a finite number; a
// single non-finite observation slipped past the caller's filters would
// otherwise surface only as NaN predictions much later.
func (p *PrimalStats) finite() bool {
	for j := 0; j <= p.dim; j++ {
		for k := j; k <= p.dim; k++ {
			if v := p.m.At(j, k) + p.pm.At(j, k); math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		if v := p.ty[j]; math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return !(math.IsNaN(p.syy) || math.IsInf(p.syy, 0))
}

// constRelTol is the relative-variance floor below which a feature (or
// the target) is treated as constant and its scale clamped to 1, exactly
// as the dual form clamps an exactly-zero standard deviation. Moment
// subtraction cannot distinguish relative variances below ~1e-12 from
// cancellation noise, so near-constant columns are folded into the same
// clamp rather than standardized by a garbage scale.
const constRelTol = 1e-12

// momentScale derives (mean, std) from a count, a sum, and a sum of
// squares, with the dual form's clamping rules.
func momentScale(n float64, sum, sumSq float64) (mean, std float64) {
	mean = sum / n
	msq := sumSq / n
	v := msq - mean*mean
	if n < 2 || v <= constRelTol*msq {
		return mean, 1
	}
	return mean, math.Sqrt(v)
}

// Fit assembles the standardized primal system — penalized rows take the
// given target — and returns the fitted surrogate. It returns ErrNoData
// when nothing has been absorbed. The accumulator is unchanged and can
// keep absorbing observations for the next fit.
func (p *PrimalStats) Fit(penalty float64) (*PrimalLinear, error) {
	nt := p.n + p.pn
	if nt == 0 {
		return nil, ErrNoData
	}
	if math.IsNaN(penalty) || math.IsInf(penalty, 0) {
		return nil, fmt.Errorf("%w: penalty %v", ErrNonFinite, penalty)
	}
	if !p.finite() {
		return nil, fmt.Errorf("%w: accumulated moments", ErrNonFinite)
	}
	d := p.dim
	fn := float64(nt)

	// Combined raw moments over valid + penalized rows (upper triangle).
	mc := linalg.NewMatrix(d+1, d+1)
	for i := 0; i <= d; i++ {
		for j := i; j <= d; j++ {
			mc.Set(i, j, p.m.At(i, j)+p.pm.At(i, j))
		}
	}
	// Combined target sums: penalized rows contribute penalty·u.
	ty := make([]float64, d+1)
	for j := 0; j <= d; j++ {
		ty[j] = p.ty[j] + penalty*p.pm.At(0, j)
	}
	syy := p.syy + penalty*penalty*float64(p.pn)

	xMean := make([]float64, d)
	xStd := make([]float64, d)
	for j := 0; j < d; j++ {
		xMean[j], xStd[j] = momentScale(fn, mc.At(0, j+1), mc.At(j+1, j+1))
	}
	yMean, yStd := momentScale(fn, ty[0], syy)

	// Standardized system A·w = b over the basis [√bias, x̃₁ … x̃d].
	sb := math.Sqrt(p.bias)
	a := linalg.NewMatrix(d+1, d+1)
	b := make([]float64, d+1)
	a.Set(0, 0, p.bias*fn+p.noise)
	b[0] = sb * (ty[0] - fn*yMean) / yStd
	for j := 0; j < d; j++ {
		cross := sb * (mc.At(0, j+1) - fn*xMean[j]) / xStd[j]
		a.Set(0, j+1, cross)
		a.Set(j+1, 0, cross)
		b[j+1] = (ty[j+1] - fn*yMean*xMean[j]) / (yStd * xStd[j])
		for k := j; k < d; k++ {
			v := (mc.At(j+1, k+1) - fn*xMean[j]*xMean[k]) / (xStd[j] * xStd[k])
			if k == j {
				v += p.noise
			}
			a.Set(j+1, k+1, v)
			a.Set(k+1, j+1, v)
		}
	}
	chol, err := linalg.NewCholesky(a)
	if err != nil {
		return nil, fmt.Errorf("gp: primal system factorization failed: %w", err)
	}
	return &PrimalLinear{
		bias:  p.bias,
		noise: p.noise,
		xMean: xMean, xStd: xStd,
		yMean: yMean, yStd: yStd,
		w:    chol.SolveVec(b),
		chol: chol,
		phi:  make([]float64, d+1),
		sol:  make([]float64, d+1),
	}, nil
}

// PrimalLinear is a fitted primal-form linear surrogate. Its posterior
// matches the dual GP with kernel Linear{Bias: bias} and the same noise
// on the same data (see TestPrimalMatchesDualGP). Fit once, predict
// cheaply: O(d) mean, O(d²) standard deviation, no allocation. Like the
// dense GP it reuses scratch buffers, so it must not be used from
// multiple goroutines concurrently.
type PrimalLinear struct {
	bias, noise float64
	xMean, xStd []float64
	yMean, yStd float64
	w           []float64 // posterior weights over [√bias, x̃]
	chol        *linalg.Cholesky
	phi, sol    []float64 // scratch: standardized point, triangular solve
}

// Predict implements Predictor.
func (p *PrimalLinear) Predict(x []float64) (mean, std float64, err error) {
	if len(x) != len(p.xMean) {
		return 0, 0, fmt.Errorf("gp: input has %d features, trained on %d", len(x), len(p.xMean))
	}
	p.phi[0] = math.Sqrt(p.bias)
	for j := range x {
		p.phi[j+1] = (x[j] - p.xMean[j]) / p.xStd[j]
	}
	mu := linalg.Dot(p.phi, p.w)
	// φᵀA⁻¹φ = ‖L⁻¹φ‖² — the forward solve alone is enough.
	p.chol.SolveLowerTo(p.sol, p.phi)
	q := linalg.Dot(p.sol, p.sol)
	if q < 0 {
		q = 0
	}
	variance := p.noise * (1 + q)
	return mu*p.yStd + p.yMean, math.Sqrt(variance) * p.yStd, nil
}

// PredictBatch implements Predictor.
func (p *PrimalLinear) PredictBatch(xs [][]float64, means, stds []float64) error {
	if len(means) != len(xs) || len(stds) != len(xs) {
		return fmt.Errorf("gp: batch size mismatch: %d inputs, %d/%d outputs",
			len(xs), len(means), len(stds))
	}
	for i, x := range xs {
		m, s, err := p.Predict(x)
		if err != nil {
			return err
		}
		means[i], stds[i] = m, s
	}
	return nil
}

// FitPrimalLinear fits the primal linear surrogate on a whole dataset in
// one call — the batch-oriented counterpart of New(Linear{bias},
// noise).Fit(x, y) and interchangeable with it (same posterior, built in
// O(n·d²) instead of O(n³)).
func FitPrimalLinear(bias, noise float64, x [][]float64, y []float64) (*PrimalLinear, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	s := NewPrimalStats(bias, noise)
	for i, row := range x {
		s.Add(row, y[i])
	}
	return s.Fit(0)
}
