package gp

import (
	"math"

	"spotlight/internal/linalg"
)

// LogMarginalLikelihood returns the log marginal likelihood of the
// training data under the fitted GP (in standardized-target units):
//
//	log p(y|X) = −½ yᵀK⁻¹y − ½ log|K| − n/2·log(2π)
//
// Higher is better. It returns ErrNoData before a successful Fit.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if !g.fitted {
		return 0, ErrNoData
	}
	n := float64(len(g.xs))
	return -0.5*linalg.Dot(g.ys, g.alpha) - 0.5*g.chol.LogDet() - 0.5*n*math.Log(2*math.Pi), nil
}

// KernelFactory builds a kernel from a length-scale hyperparameter, for
// SelectLengthScale. Linear kernels have no length scale; this is for the
// RBF/Matérn alternatives of §VII-D.
type KernelFactory func(lengthScale float64) Kernel

// RBFFactory builds unit-variance RBF kernels.
func RBFFactory(lengthScale float64) Kernel { return RBF{LengthScale: lengthScale, Variance: 1} }

// Matern52Factory builds unit-variance Matérn-5/2 kernels.
func Matern52Factory(lengthScale float64) Kernel {
	return Matern52{LengthScale: lengthScale, Variance: 1}
}

// DefaultLengthScales is a log-spaced grid that covers standardized
// feature spaces well.
func DefaultLengthScales() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2, 4, 8}
}

// SelectLengthScale fits one GP per candidate length scale and returns
// the fitted GP maximizing the log marginal likelihood, along with the
// chosen scale. Candidates whose kernel matrix cannot be factorized are
// skipped; ErrNoData is returned if none survive.
func SelectLengthScale(factory KernelFactory, noise float64, x [][]float64, y []float64, scales []float64) (*GP, float64, error) {
	if len(scales) == 0 {
		scales = DefaultLengthScales()
	}
	var best *GP
	bestScale := 0.0
	bestML := math.Inf(-1)
	for _, ls := range scales {
		g := New(factory(ls), noise)
		if err := g.Fit(x, y); err != nil {
			continue
		}
		ml, err := g.LogMarginalLikelihood()
		if err != nil {
			continue
		}
		if ml > bestML {
			best, bestScale, bestML = g, ls, ml
		}
	}
	if best == nil {
		return nil, 0, ErrNoData
	}
	return best, bestScale, nil
}
