// Package gp implements the Gaussian process surrogate model at the
// heart of daBO (§V-A of the paper): a GP over feature vectors with a
// choice of kernel. The paper's daBO uses a simple linear kernel — chosen
// because the hand-designed features have linear trends and the linear
// kernel avoids the overfitting and cost of Matérn/RBF — but the other
// kernels are provided for the §VII-D kernel comparison.
//
// Inputs are standardized per feature and targets are standardized after
// fitting, so callers can pass raw feature values and (log-)costs.
package gp

import (
	"errors"
	"fmt"
	"math"

	"spotlight/internal/linalg"
)

// Predictor is the read side of a fitted surrogate: the dense GP and the
// primal linear surrogate both satisfy it, so daBO and the analysis code
// are agnostic to which representation was fit. Implementations reuse
// internal scratch buffers, so a single Predictor must not be used from
// multiple goroutines concurrently.
type Predictor interface {
	// Predict returns the posterior mean and standard deviation at x, in
	// the original target units.
	Predict(x []float64) (mean, std float64, err error)
	// PredictBatch predicts every row of xs into means[i] and stds[i]
	// without per-candidate allocation. len(means) and len(stds) must
	// equal len(xs).
	PredictBatch(xs [][]float64, means, stds []float64) error
}

// Kernel is a positive semi-definite covariance function over feature
// vectors.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// Linear is the paper's default kernel: k(x,y) = bias + x·y. It has O(N)
// evaluation cost, matches feature spaces engineered for linear trends,
// and resists overfitting on small sample budgets.
type Linear struct {
	Bias float64
}

// Eval implements Kernel.
func (l Linear) Eval(x, y []float64) float64 { return l.Bias + linalg.Dot(x, y) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the radial basis function (squared exponential) kernel.
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (r RBF) Eval(x, y []float64) float64 {
	d2 := sqDist(x, y)
	return r.Variance * math.Exp(-d2/(2*r.LengthScale*r.LengthScale))
}

// Name implements Kernel.
func (RBF) Name() string { return "rbf" }

// Matern52 is the Matérn kernel with ν = 5/2, the common default in BO
// libraries and the alternative evaluated in §VII-D.
type Matern52 struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (m Matern52) Eval(x, y []float64) float64 {
	d := math.Sqrt(sqDist(x, y)) / m.LengthScale
	s5 := math.Sqrt(5)
	return m.Variance * (1 + s5*d + 5*d*d/3) * math.Exp(-s5*d)
}

// Name implements Kernel.
func (Matern52) Name() string { return "matern52" }

func sqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("gp: dimension mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// GP is a Gaussian process regressor. The zero value is unusable; use New.
type GP struct {
	kernel Kernel
	noise  float64

	xs    [][]float64 // standardized training inputs
	ys    []float64   // standardized training targets
	chol  *linalg.Cholesky
	alpha []float64

	xMean, xStd []float64
	yMean, yStd float64
	fitted      bool

	// Scratch buffers reused across Predict/PredictBatch calls; their
	// presence makes a GP unsafe for concurrent prediction.
	xbuf, kstar, ksolve []float64
}

// New returns a GP with the given kernel and observation noise variance
// (added to the kernel diagonal; must be positive for stability).
func New(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{kernel: k, noise: noise}
}

// Kernel returns the GP's kernel.
func (g *GP) Kernel() Kernel { return g.kernel }

// ErrNoData is returned when Fit is called with no observations or when
// Predict is called before a successful Fit.
var ErrNoData = errors.New("gp: no training data")

// ErrNonFinite is returned by Fit when the training data (or, for the
// primal path, the accumulated moments) contain NaN or ±Inf. Fitting
// would not panic, but every prediction out of such a model would be
// NaN; failing loudly lets the caller fall back (daBO degrades to
// random suggestion) instead of silently searching on garbage.
var ErrNonFinite = errors.New("gp: non-finite training data")

// Fit trains the GP on the observations. X rows are feature vectors and y
// the corresponding targets. Both are standardized internally; constant
// features and constant targets are handled by clamping their scale to 1.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	for i, row := range x {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: input row %d", ErrNonFinite, i)
			}
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return fmt.Errorf("%w: target %d", ErrNonFinite, i)
		}
	}
	dim := len(x[0])
	g.xMean = make([]float64, dim)
	g.xStd = make([]float64, dim)
	col := make([]float64, len(x))
	for j := 0; j < dim; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		g.xMean[j] = linalg.Mean(col)
		g.xStd[j] = linalg.StdDev(col)
		if g.xStd[j] == 0 {
			g.xStd[j] = 1
		}
	}
	g.yMean = linalg.Mean(y)
	g.yStd = linalg.StdDev(y)
	if g.yStd == 0 {
		g.yStd = 1
	}

	g.xs = make([][]float64, len(x))
	for i, row := range x {
		g.xs[i] = g.standardize(row)
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - g.yMean) / g.yStd
	}
	g.ys = ys

	n := len(g.xs)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel.Eval(g.xs[i], g.xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.noise)
	}
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix factorization failed: %w", err)
	}
	g.chol = chol
	g.alpha = chol.SolveVec(ys)
	g.fitted = true
	return nil
}

func (g *GP) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = (x[i] - g.xMean[i]) / g.xStd[i]
	}
	return out
}

// Predict returns the posterior mean and standard deviation at x, in the
// original target units. It returns ErrNoData before a successful Fit.
// Predict reuses internal scratch buffers; do not call it concurrently
// on the same GP.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	if !g.fitted {
		return 0, 0, ErrNoData
	}
	return g.predictOne(x)
}

// PredictBatch implements Predictor: it ranks a whole candidate batch
// with the O(n) kernel evaluations and O(n²) triangular solves of the
// dual form, but factors every per-candidate allocation out into reused
// scratch buffers.
func (g *GP) PredictBatch(xs [][]float64, means, stds []float64) error {
	if !g.fitted {
		return ErrNoData
	}
	if len(means) != len(xs) || len(stds) != len(xs) {
		return fmt.Errorf("gp: batch size mismatch: %d inputs, %d/%d outputs",
			len(xs), len(means), len(stds))
	}
	for i, x := range xs {
		m, s, err := g.predictOne(x)
		if err != nil {
			return err
		}
		means[i], stds[i] = m, s
	}
	return nil
}

// predictOne is the shared allocation-free prediction core.
func (g *GP) predictOne(x []float64) (mean, std float64, err error) {
	if len(x) != len(g.xMean) {
		return 0, 0, fmt.Errorf("gp: input has %d features, trained on %d", len(x), len(g.xMean))
	}
	n := len(g.xs)
	if len(g.xbuf) != len(g.xMean) {
		g.xbuf = make([]float64, len(g.xMean))
	}
	if len(g.kstar) != n {
		g.kstar = make([]float64, n)
		g.ksolve = make([]float64, n)
	}
	for i := range x {
		g.xbuf[i] = (x[i] - g.xMean[i]) / g.xStd[i]
	}
	for i := range g.xs {
		g.kstar[i] = g.kernel.Eval(g.xbuf, g.xs[i])
	}
	mu := linalg.Dot(g.kstar, g.alpha)
	g.chol.SolveVecTo(g.ksolve, g.kstar)
	variance := g.kernel.Eval(g.xbuf, g.xbuf) + g.noise - linalg.Dot(g.kstar, g.ksolve)
	if variance < 0 {
		variance = 0
	}
	return mu*g.yStd + g.yMean, math.Sqrt(variance) * g.yStd, nil
}

// LCB returns the Lower Confidence Bound acquisition value for a
// minimization problem: mean − kappa·std. daBO evaluates a batch of
// candidates on the surrogate and selects the candidate with the lowest
// LCB (§V-B; the paper phrases this as maximizing the acquisition).
func LCB(mean, std, kappa float64) float64 { return mean - kappa*std }
