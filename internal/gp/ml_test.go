package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLogMarginalLikelihoodBeforeFit(t *testing.T) {
	g := New(Linear{Bias: 1}, 1e-6)
	if _, err := g.LogMarginalLikelihood(); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
}

func TestLogMarginalLikelihoodFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		v := rng.NormFloat64()
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	g := New(RBF{LengthScale: 1, Variance: 1}, 1e-4)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ml, err := g.LogMarginalLikelihood()
	if err != nil || math.IsNaN(ml) || math.IsInf(ml, 0) {
		t.Fatalf("bad LML: %v, %v", ml, err)
	}
}

func TestLMLPrefersMatchingLengthScale(t *testing.T) {
	// Data drawn from a smooth, wide function: a tiny length scale
	// (pure interpolation noise) must score worse than a well-matched one.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		v := rng.Float64()*6 - 3
		x = append(x, []float64{v})
		y = append(y, v*v)
	}
	lml := func(ls float64) float64 {
		g := New(RBF{LengthScale: ls, Variance: 1}, 1e-3)
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		v, err := g.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if lml(1) <= lml(0.01) {
		t.Fatalf("matched scale LML %v not above mismatched %v", lml(1), lml(0.01))
	}
}

func TestSelectLengthScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		v := rng.Float64()*4 - 2
		x = append(x, []float64{v})
		y = append(y, math.Cos(v))
	}
	g, scale, err := SelectLengthScale(RBFFactory, 1e-4, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || scale <= 0 {
		t.Fatalf("no model selected: scale=%v", scale)
	}
	// The selected model must predict the training function reasonably.
	mean, _, err := g.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 0.3 {
		t.Fatalf("selected GP predicts cos(0) = %v", mean)
	}
}

func TestSelectLengthScaleNoData(t *testing.T) {
	if _, _, err := SelectLengthScale(Matern52Factory, 1e-4, nil, nil, nil); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestFactories(t *testing.T) {
	if RBFFactory(2).Name() != "rbf" || Matern52Factory(2).Name() != "matern52" {
		t.Fatal("factory kernels mislabeled")
	}
	if len(DefaultLengthScales()) == 0 {
		t.Fatal("no default scales")
	}
}
