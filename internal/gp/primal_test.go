package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

const primalTol = 1e-8

// comparePosteriors fits the dual GP and asserts the primal surrogate
// agrees at every probe within primalTol.
func comparePosteriors(t *testing.T, bias, noise float64, x [][]float64, y []float64,
	primal *PrimalLinear, probes [][]float64) {
	t.Helper()
	dual := New(Linear{Bias: bias}, noise)
	if err := dual.Fit(x, y); err != nil {
		t.Fatalf("dual fit failed: %v", err)
	}
	for _, p := range probes {
		dm, ds, err := dual.Predict(p)
		if err != nil {
			t.Fatalf("dual predict failed: %v", err)
		}
		pm, ps, err := primal.Predict(p)
		if err != nil {
			t.Fatalf("primal predict failed: %v", err)
		}
		// 1e-8 relative to the posterior's magnitude (floored at 1e-8
		// absolute): both forms solve systems with condition number
		// ~‖φ‖²/σ², so agreement scales with the output.
		tolM := primalTol * math.Max(1, math.Abs(dm))
		tolS := primalTol * math.Max(1, math.Abs(ds))
		if math.Abs(dm-pm) > tolM || math.Abs(ds-ps) > tolS {
			t.Fatalf("posterior mismatch at %v:\n  dual   mean=%.12g std=%.12g\n  primal mean=%.12g std=%.12g",
				p, dm, ds, pm, ps)
		}
	}
}

func randomData(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = 3*rng.NormFloat64() + 2
		}
		y[i] = 10*rng.NormFloat64() - 5
	}
	return x, y
}

// TestPrimalMatchesDualGP is the §V-A property test: the primal-form
// linear surrogate must produce the same posterior mean and standard
// deviation as the dense dual GP with kernel Linear{Bias} on identical
// data, across sizes from a single observation to well past the feature
// dimension.
func TestPrimalMatchesDualGP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 8, 40, 100} {
		for _, d := range []int{1, 3, 11} {
			for _, bias := range []float64{0, 1, 4} {
				x, y := randomData(rng, n, d)
				primal, err := FitPrimalLinear(bias, 1e-4, x, y)
				if err != nil {
					t.Fatalf("n=%d d=%d bias=%v: primal fit failed: %v", n, d, bias, err)
				}
				probes, _ := randomData(rng, 16, d)
				probes = append(probes, x[0]) // on-sample probe
				comparePosteriors(t, bias, 1e-4, x, y, primal, probes)
			}
		}
	}
}

// TestPrimalMatchesDualGPConstantFeature covers the standardization edge
// cases: a constant (zero-variance) feature column, and all-constant
// targets — both clamp their scale to 1 in the dual form.
func TestPrimalMatchesDualGPConstantFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := randomData(rng, 25, 4)
	for i := range x {
		x[i][2] = 6.5 // constant column
	}
	primal, err := FitPrimalLinear(1, 1e-4, x, y)
	if err != nil {
		t.Fatalf("primal fit failed: %v", err)
	}
	probes, _ := randomData(rng, 8, 4)
	comparePosteriors(t, 1, 1e-4, x, y, primal, probes)
}

func TestPrimalMatchesDualGPConstantTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := randomData(rng, 25, 4)
	for i := range y {
		y[i] = -3.25
	}
	primal, err := FitPrimalLinear(1, 1e-4, x, y)
	if err != nil {
		t.Fatalf("primal fit failed: %v", err)
	}
	probes, _ := randomData(rng, 8, 4)
	comparePosteriors(t, 1, 1e-4, x, y, primal, probes)
	// A constant target must predict itself everywhere.
	m, _, err := primal.Predict(probes[0])
	if err != nil || math.Abs(m-(-3.25)) > primalTol {
		t.Fatalf("constant-target mean = %v (err %v), want -3.25", m, err)
	}
}

// TestPrimalPenaltyGroupMatchesDual checks the incremental penalty-group
// path: AddPenalized rows with a Fit-time target must equal a dual GP
// fit on the explicit concatenation.
func TestPrimalPenaltyGroupMatchesDual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := randomData(rng, 30, 5)
	inv, _ := randomData(rng, 12, 5)
	const penalty = 4.75

	s := NewPrimalStats(1, 1e-4)
	for i := range x {
		s.Add(x[i], y[i])
	}
	for _, f := range inv {
		s.AddPenalized(f)
	}
	if v, p := s.Counts(); v != 30 || p != 12 {
		t.Fatalf("counts = (%d, %d), want (30, 12)", v, p)
	}
	primal, err := s.Fit(penalty)
	if err != nil {
		t.Fatalf("primal fit failed: %v", err)
	}

	allX := append(append([][]float64{}, x...), inv...)
	allY := append([]float64{}, y...)
	for range inv {
		allY = append(allY, penalty)
	}
	probes, _ := randomData(rng, 8, 5)
	comparePosteriors(t, 1, 1e-4, allX, allY, primal, probes)

	// Refitting the same stats with a different penalty must retarget
	// every penalized row — the behavior daBO relies on.
	primal2, err := s.Fit(penalty + 3)
	if err != nil {
		t.Fatalf("refit failed: %v", err)
	}
	for i := range allY[30:] {
		allY[30+i] = penalty + 3
	}
	comparePosteriors(t, 1, 1e-4, allX, allY, primal2, probes)
}

// TestPrimalIncrementalMatchesBatch interleaves Add calls with Fits, the
// way daBO refits mid-stream, and checks each snapshot against a batch
// fit of the data seen so far.
func TestPrimalIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := randomData(rng, 60, 6)
	s := NewPrimalStats(1, 1e-4)
	probes, _ := randomData(rng, 4, 6)
	for i := range x {
		s.Add(x[i], y[i])
		if (i+1)%20 != 0 {
			continue
		}
		snap, err := s.Fit(0)
		if err != nil {
			t.Fatalf("fit after %d: %v", i+1, err)
		}
		comparePosteriors(t, 1, 1e-4, x[:i+1], y[:i+1], snap, probes)
	}
}

func TestPrimalErrors(t *testing.T) {
	if _, err := NewPrimalStats(1, 1e-4).Fit(0); err == nil {
		t.Fatal("fit of empty accumulator succeeded")
	}
	if _, err := FitPrimalLinear(1, 1e-4, nil, nil); err == nil {
		t.Fatal("fit of empty dataset succeeded")
	}
	m, err := FitPrimalLinear(1, 1e-4, [][]float64{{1, 2}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := m.PredictBatch([][]float64{{1, 2}}, make([]float64, 2), make([]float64, 1)); err == nil {
		t.Fatal("batch size mismatch accepted")
	}
}

// TestPrimalPredictBatchAllocationFree pins the perf contract: batch
// prediction on a fitted primal surrogate performs no allocations.
func TestPrimalPredictBatchAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := randomData(rng, 50, 11)
	m, err := FitPrimalLinear(1, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	cands, _ := randomData(rng, 64, 11)
	means := make([]float64, len(cands))
	stds := make([]float64, len(cands))
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.PredictBatch(cands, means, stds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch allocated %v times per run, want 0", allocs)
	}
}

func TestPrimalFitRejectsNonFiniteMoments(t *testing.T) {
	s := NewPrimalStats(1, 1e-6)
	s.Add([]float64{1, 2}, 1)
	s.Add([]float64{math.NaN(), 2}, 1) // slips past: Add does not filter
	if _, err := s.Fit(0); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestPrimalFitRejectsNonFinitePenalty(t *testing.T) {
	s := NewPrimalStats(1, 1e-6)
	s.Add([]float64{1, 2}, 1)
	s.AddPenalized([]float64{3, 4})
	if _, err := s.Fit(math.Inf(1)); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf penalty: err = %v, want ErrNonFinite", err)
	}
	if _, err := s.Fit(math.NaN()); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN penalty: err = %v, want ErrNonFinite", err)
	}
	if _, err := s.Fit(5); err != nil {
		t.Fatalf("finite penalty after rejections failed: %v", err)
	}
}
