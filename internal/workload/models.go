package workload

import "fmt"

// Model is a named sequence of CONV-space layers. Layers with identical
// shapes are stored once with a Repeat count.
type Model struct {
	Name   string
	Layers []Layer
}

// Validate validates every layer of the model.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("workload: model %q has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

// TotalMACs returns the repeat-weighted MAC count of the whole model.
func (m Model) TotalMACs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.MACs() * int64(l.Repeat)
	}
	return s
}

// VGG16 returns the 13 convolutional and 3 fully connected layers of
// VGG16 (Simonyan & Zisserman) at 224×224 input, batch 1. Inputs to each
// convolution are padded by 1, which we fold into the X/Y extents so that
// output extents match the published architecture.
func VGG16() Model {
	return Model{
		Name: "VGG16",
		Layers: []Layer{
			Conv("conv1_1", 1, 64, 3, 3, 3, 226, 226),
			Conv("conv1_2", 1, 64, 64, 3, 3, 226, 226),
			Conv("conv2_1", 1, 128, 64, 3, 3, 114, 114),
			Conv("conv2_2", 1, 128, 128, 3, 3, 114, 114),
			Conv("conv3_1", 1, 256, 128, 3, 3, 58, 58),
			Conv("conv3_2", 1, 256, 256, 3, 3, 58, 58).Times(2),
			Conv("conv4_1", 1, 512, 256, 3, 3, 30, 30),
			Conv("conv4_2", 1, 512, 512, 3, 3, 30, 30).Times(2),
			Conv("conv5", 1, 512, 512, 3, 3, 16, 16).Times(3),
			FromFC("fc6", 25088, 4096),
			FromFC("fc7", 4096, 4096),
			FromFC("fc8", 4096, 1000),
		},
	}
}

// ResNet50 returns the unique layer shapes of ResNet-50 (He et al.) at
// 224×224 input, batch 1, with Repeat counts covering the bottleneck
// blocks of each stage. Projection shortcuts are included.
func ResNet50() Model {
	ls := []Layer{
		Conv("conv1", 1, 64, 3, 7, 7, 230, 230).Strided(2),
	}
	// Each stage: bottleneck blocks [1x1 reduce, 3x3, 1x1 expand].
	// Stage parameters: spatial extent of the 3x3 (output side), mid
	// channels, output channels, block count.
	stages := []struct {
		name          string
		side          int // output spatial side of this stage
		mid, out, in  int
		blocks        int
		entryStride   int // stride of the first 3x3 in the stage
		entrySpatialX int // padded input side for the strided 3x3
	}{
		{"res2", 56, 64, 256, 64, 3, 1, 58},
		{"res3", 28, 128, 512, 256, 4, 2, 58},
		{"res4", 14, 256, 1024, 512, 6, 2, 30},
		{"res5", 7, 512, 2048, 1024, 3, 2, 16},
	}
	for _, st := range stages {
		pad := st.side + 2 // 3x3 pad-1 input side for stride-1 blocks
		// First block of the stage (may downsample).
		ls = append(ls,
			Conv(st.name+"a_1x1r", 1, st.mid, st.in, 1, 1, st.entrySpatialX-2, st.entrySpatialX-2).Strided(st.entryStride),
			Conv(st.name+"a_3x3", 1, st.mid, st.mid, 3, 3, pad, pad),
			Conv(st.name+"a_1x1e", 1, st.out, st.mid, 1, 1, st.side, st.side),
			Conv(st.name+"a_proj", 1, st.out, st.in, 1, 1, st.entrySpatialX-2, st.entrySpatialX-2).Strided(st.entryStride),
		)
		// Remaining identical blocks.
		if st.blocks > 1 {
			n := st.blocks - 1
			ls = append(ls,
				Conv(st.name+"b_1x1r", 1, st.mid, st.out, 1, 1, st.side, st.side).Times(n),
				Conv(st.name+"b_3x3", 1, st.mid, st.mid, 3, 3, pad, pad).Times(n),
				Conv(st.name+"b_1x1e", 1, st.out, st.mid, 1, 1, st.side, st.side).Times(n),
			)
		}
	}
	ls = append(ls, FromFC("fc", 2048, 1000))
	return Model{Name: "ResNet-50", Layers: ls}
}

// MobileNetV2 returns the unique layer shapes of MobileNetV2 (Sandler et
// al.) at 224×224 input, batch 1. Each inverted-residual bottleneck is
// lowered to three layers: a 1×1 expansion, a depth-wise 3×3 (decomposed
// per channel via FromDepthwise), and a 1×1 projection.
func MobileNetV2() Model {
	ls := []Layer{
		Conv("conv0", 1, 32, 3, 3, 3, 226, 226).Strided(2),
	}
	// Inverted residual settings (t expansion, c output, n repeats,
	// s stride of the first block), from Table 2 of the paper, plus the
	// spatial side of each stage's input.
	type ir struct {
		name       string
		t, c, n, s int
		in         int // input channels
		side       int // input spatial side (pre-stride)
	}
	cfg := []ir{
		{"b1", 1, 16, 1, 1, 32, 112},
		{"b2", 6, 24, 2, 2, 16, 112},
		{"b3", 6, 32, 3, 2, 24, 56},
		{"b4", 6, 64, 4, 2, 32, 28},
		{"b5", 6, 96, 3, 1, 64, 14},
		{"b6", 6, 160, 3, 2, 96, 14},
		{"b7", 6, 320, 1, 1, 160, 7},
	}
	for _, b := range cfg {
		exp := b.in * b.t
		outSide := b.side / b.s
		// First block (possibly strided).
		if b.t > 1 {
			ls = append(ls, Conv(b.name+"a_exp", 1, exp, b.in, 1, 1, b.side, b.side))
		}
		ls = append(ls,
			FromDepthwise(b.name+"a_dw", exp, 3, 3, b.side+2-(b.s-1)*1, b.side+2-(b.s-1)*1, b.s),
			Conv(b.name+"a_proj", 1, b.c, exp, 1, 1, outSide, outSide),
		)
		// Remaining stride-1 blocks at the output resolution.
		if b.n > 1 {
			n := b.n - 1
			exp2 := b.c * b.t
			ls = append(ls,
				Conv(b.name+"b_exp", 1, exp2, b.c, 1, 1, outSide, outSide).Times(n),
				FromDepthwise(b.name+"b_dw", exp2, 3, 3, outSide+2, outSide+2, 1).Times(n),
				Conv(b.name+"b_proj", 1, b.c, exp2, 1, 1, outSide, outSide).Times(n),
			)
		}
	}
	ls = append(ls,
		Conv("conv_last", 1, 1280, 320, 1, 1, 7, 7),
		FromFC("fc", 1280, 1000),
	)
	return Model{Name: "MobileNetV2", Layers: ls}
}

// MnasNet returns the unique layer shapes of MnasNet-A1 (Tan et al.) at
// 224×224 input, batch 1. Squeeze-and-excitation blocks are lowered to
// their two fully connected layers; MBConv blocks are lowered like
// MobileNetV2's inverted residuals, including 5×5 depth-wise variants.
func MnasNet() Model {
	ls := []Layer{
		Conv("conv0", 1, 32, 3, 3, 3, 226, 226).Strided(2),
		// SepConv 3x3, 32 -> 16 at 112.
		FromDepthwise("sep_dw", 32, 3, 3, 114, 114, 1),
		Conv("sep_pw", 1, 16, 32, 1, 1, 112, 112),
	}
	type mb struct {
		name          string
		t, k, c, n, s int
		in, side      int
		se            bool
	}
	cfg := []mb{
		{"mb1", 6, 3, 24, 2, 2, 16, 112, false},
		{"mb2", 3, 5, 40, 3, 2, 24, 56, true},
		{"mb3", 6, 3, 80, 4, 2, 40, 28, false},
		{"mb4", 6, 3, 112, 2, 1, 80, 14, true},
		{"mb5", 6, 5, 160, 3, 2, 112, 14, true},
		{"mb6", 6, 3, 320, 1, 1, 160, 7, false},
	}
	for _, b := range cfg {
		exp := b.in * b.t
		outSide := b.side / b.s
		pad := b.k / 2
		ls = append(ls,
			Conv(b.name+"a_exp", 1, exp, b.in, 1, 1, b.side, b.side),
			FromDepthwise(b.name+"a_dw", exp, b.k, b.k, b.side+2*pad-(b.s-1), b.side+2*pad-(b.s-1), b.s),
			Conv(b.name+"a_proj", 1, b.c, exp, 1, 1, outSide, outSide),
		)
		if b.se {
			sq := exp / 4
			if sq < 1 {
				sq = 1
			}
			ls = append(ls,
				FromFC(b.name+"a_se1", exp, sq),
				FromFC(b.name+"a_se2", sq, exp),
			)
		}
		if b.n > 1 {
			n := b.n - 1
			exp2 := b.c * b.t
			ls = append(ls,
				Conv(b.name+"b_exp", 1, exp2, b.c, 1, 1, outSide, outSide).Times(n),
				FromDepthwise(b.name+"b_dw", exp2, b.k, b.k, outSide+2*pad, outSide+2*pad, 1).Times(n),
				Conv(b.name+"b_proj", 1, b.c, exp2, 1, 1, outSide, outSide).Times(n),
			)
			if b.se {
				sq := exp2 / 4
				ls = append(ls,
					FromFC(b.name+"b_se1", exp2, sq).Times(n),
					FromFC(b.name+"b_se2", sq, exp2).Times(n),
				)
			}
		}
	}
	ls = append(ls,
		Conv("conv_last", 1, 1280, 320, 1, 1, 7, 7),
		FromFC("fc", 1280, 1000),
	)
	return Model{Name: "MnasNet", Layers: ls}
}

// Transformer returns a single Transformer encoder block (Vaswani et al.,
// base configuration: d_model = 512, 8 heads, d_ff = 2048) over a
// 128-token sequence, the building block of ALBERT-style NLP models. All
// GEMMs are lowered to 1×1 CONVs via col2im; per-head attention GEMMs
// carry Repeat counts for the 8 heads.
func Transformer() Model {
	const (
		seq   = 128
		dm    = 512
		heads = 8
		dh    = dm / heads // 64
		dff   = 2048
	)
	return Model{
		Name: "Transformer",
		Layers: []Layer{
			// Q, K, V projections: (dm×dm)·(dm×seq).
			FromGEMM("qkv_proj", dm, dm, seq).Times(3),
			// Attention scores per head: (seq×dh)·(dh×seq).
			FromGEMM("attn_qk", seq, dh, seq).Times(heads),
			// Attention-weighted values per head: (dh×seq)·(seq×seq).
			FromGEMM("attn_v", dh, seq, seq).Times(heads),
			// Output projection.
			FromGEMM("out_proj", dm, dm, seq),
			// Feed-forward network.
			FromGEMM("ffn1", dff, dm, seq),
			FromGEMM("ffn2", dm, dff, seq),
		},
	}
}

// Models returns the five evaluation models in the order the paper's
// figures present them.
func Models() []Model {
	return []Model{VGG16(), ResNet50(), MobileNetV2(), MnasNet(), Transformer()}
}

// ByName returns the model with the given name (case-sensitive, matching
// the names used by Models) or an error listing the available names.
func ByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, 0, 5)
	for _, m := range Models() {
		names = append(names, m.Name)
	}
	return Model{}, fmt.Errorf("workload: unknown model %q (available: %v)", name, names)
}
