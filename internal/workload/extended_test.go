package workload

import "testing"

func TestExtendedModelsValidate(t *testing.T) {
	ms := ExtendedModels()
	if len(ms) != 3 {
		t.Fatalf("got %d extended models, want 3", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestExtendedModelsNotInPaperZoo(t *testing.T) {
	for _, m := range ExtendedModels() {
		if _, err := ByName(m.Name); err == nil {
			t.Errorf("%s leaked into the paper's evaluation zoo", m.Name)
		}
	}
}

// Published MAC counts: single-tower (ungrouped) AlexNet ~1.1 G,
// ResNet-18 ~1.8 G, one BERT-base block at 256 tokens ~1.9 G.
func TestExtendedModelMACs(t *testing.T) {
	cases := []struct {
		model  Model
		lo, hi int64
	}{
		{AlexNet(), 1_000_000_000, 1_300_000_000},
		{ResNet18(), 1_500_000_000, 2_200_000_000},
		{BERTBase(), 1_600_000_000, 2_200_000_000},
	}
	for _, c := range cases {
		if macs := c.model.TotalMACs(); macs < c.lo || macs > c.hi {
			t.Errorf("%s MACs = %d, want in [%d, %d]", c.model.Name, macs, c.lo, c.hi)
		}
	}
}

func TestAlexNetShapes(t *testing.T) {
	m := AlexNet()
	if m.Layers[0].OutX() != 55 {
		t.Fatalf("conv1 out = %d, want 55", m.Layers[0].OutX())
	}
	if m.Layers[1].OutX() != 27 {
		t.Fatalf("conv2 out = %d, want 27", m.Layers[1].OutX())
	}
}

func TestResNet18Shapes(t *testing.T) {
	for _, l := range ResNet18().Layers {
		if l.Name == "res5b" {
			if l.OutX() != 7 {
				t.Fatalf("res5b out = %d, want 7", l.OutX())
			}
			return
		}
	}
	t.Fatal("res5b not found")
}

func TestBERTBaseIsGEMMOnly(t *testing.T) {
	for _, l := range BERTBase().Layers {
		if l.Op != OpGEMM {
			t.Fatalf("layer %s is %v, want GEMM", l.Name, l.Op)
		}
	}
}
