package workload

import "testing"

func TestAllModelsValidate(t *testing.T) {
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m.Name, err)
		}
	}
}

func TestModelsOrderAndNames(t *testing.T) {
	want := []string{"VGG16", "ResNet-50", "MobileNetV2", "MnasNet", "Transformer"}
	ms := Models()
	if len(ms) != len(want) {
		t.Fatalf("got %d models, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Fatalf("model %d = %q, want %q", i, m.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("ResNet-50")
	if err != nil || m.Name != "ResNet-50" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("NoSuchModel"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// Published MAC counts (batch 1, 224x224 where applicable):
//
//	VGG16       ~15.5 GMACs (incl. ~124M FC MACs)
//	ResNet-50   ~3.9-4.1 GMACs
//	MobileNetV2 ~300 MMACs
//	MnasNet-A1  ~310-330 MMACs
//
// Our layer tables should land near these; generous bands absorb the
// padding-folding approximation.
func TestModelMACsNearPublished(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi int64
	}{
		{"VGG16", 14_000_000_000, 17_000_000_000},
		{"ResNet-50", 3_300_000_000, 4_700_000_000},
		{"MobileNetV2", 220_000_000, 420_000_000},
		{"MnasNet", 230_000_000, 450_000_000},
		{"Transformer", 350_000_000, 500_000_000},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		macs := m.TotalMACs()
		if macs < c.lo || macs > c.hi {
			t.Errorf("%s MACs = %d, want in [%d, %d]", c.name, macs, c.lo, c.hi)
		}
	}
}

func TestVGG16LayerShapes(t *testing.T) {
	m := VGG16()
	first := m.Layers[0]
	if first.C != 3 || first.K != 64 || first.OutX() != 224 {
		t.Fatalf("conv1_1 shape unexpected: %+v", first)
	}
	// 13 conv shapes collapse to 10 unique entries + 3 FC.
	if len(m.Layers) != 12 {
		t.Fatalf("VGG16 has %d unique layers, want 12", len(m.Layers))
	}
	var convCount int
	for _, l := range m.Layers {
		if l.Op == OpConv {
			convCount += l.Repeat
		}
	}
	if convCount != 13 {
		t.Fatalf("VGG16 has %d conv layers (with repeats), want 13", convCount)
	}
}

func TestResNet50StageOutputs(t *testing.T) {
	m := ResNet50()
	if m.Layers[0].OutX() != 112 {
		t.Fatalf("conv1 output = %d, want 112", m.Layers[0].OutX())
	}
	// Find the res5 3x3 and check it computes at 7x7.
	for _, l := range m.Layers {
		if l.Name == "res5a_3x3" {
			if l.OutX() != 7 || l.OutY() != 7 {
				t.Fatalf("res5a_3x3 output = %dx%d, want 7x7", l.OutX(), l.OutY())
			}
			return
		}
	}
	t.Fatal("res5a_3x3 not found")
}

func TestResNet50BlockCounts(t *testing.T) {
	// ResNet-50 has 3+4+6+3 = 16 bottleneck blocks = 48 convs in blocks,
	// plus conv1, 4 projections, and the FC.
	m := ResNet50()
	var convs int
	for _, l := range m.Layers {
		if l.Op == OpConv {
			convs += l.Repeat
		}
	}
	if convs != 1+48+4 {
		t.Fatalf("ResNet-50 conv count = %d, want 53", convs)
	}
}

func TestMobileNetV2DepthwisePresent(t *testing.T) {
	m := MobileNetV2()
	var dw, pw int
	for _, l := range m.Layers {
		switch l.Op {
		case OpDepthwise:
			dw += l.Repeat
		case OpConv:
			pw += l.Repeat
		}
	}
	// 17 inverted-residual blocks => 17 depth-wise convolutions.
	if dw != 17 {
		t.Fatalf("MobileNetV2 depthwise count = %d, want 17", dw)
	}
	if pw == 0 {
		t.Fatal("MobileNetV2 has no pointwise convs")
	}
}

func TestMobileNetV2SpatialChain(t *testing.T) {
	// The final projection should compute at 7x7.
	m := MobileNetV2()
	for _, l := range m.Layers {
		if l.Name == "b7a_proj" {
			if l.OutX() != 7 {
				t.Fatalf("b7a_proj out = %d, want 7", l.OutX())
			}
			return
		}
	}
	t.Fatal("b7a_proj not found")
}

func TestMnasNetHasSEAndFiveByFive(t *testing.T) {
	m := MnasNet()
	var se, five int
	for _, l := range m.Layers {
		if l.Op == OpFC && l.Name != "fc" {
			se++
		}
		if l.Op == OpDepthwise && l.R == 5 {
			five++
		}
	}
	if se == 0 {
		t.Fatal("MnasNet squeeze-excitation layers missing")
	}
	if five == 0 {
		t.Fatal("MnasNet 5x5 depthwise layers missing")
	}
}

func TestTransformerIsAllGEMM(t *testing.T) {
	m := Transformer()
	for _, l := range m.Layers {
		if l.Op != OpGEMM {
			t.Fatalf("layer %s op = %v, want GEMM", l.Name, l.Op)
		}
		if l.R != 1 || l.S != 1 {
			t.Fatalf("layer %s not lowered to 1x1 conv", l.Name)
		}
	}
	// 8 attention heads on both score and value GEMMs.
	for _, l := range m.Layers {
		if l.Name == "attn_qk" && l.Repeat != 8 {
			t.Fatalf("attn_qk repeat = %d, want 8", l.Repeat)
		}
	}
}

func TestEmptyModelInvalid(t *testing.T) {
	if err := (Model{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
}
