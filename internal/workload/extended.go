package workload

// Extended model zoo: architectures beyond the paper's five evaluation
// models, provided for users of the library. ExtendedModels keeps them
// separate from Models() so the reproduction experiments stay exactly on
// the paper's workload set.

// AlexNet returns the five convolutional and three fully connected
// layers of AlexNet (Krizhevsky et al.) at 227×227 input, batch 1, in
// its single-tower form (the original's two-GPU channel grouping is not
// expressible in the 7-loop CONV abstraction and is omitted).
func AlexNet() Model {
	return Model{
		Name: "AlexNet",
		Layers: []Layer{
			Conv("conv1", 1, 96, 3, 11, 11, 227, 227).Strided(4),
			Conv("conv2", 1, 256, 96, 5, 5, 31, 31),
			Conv("conv3", 1, 384, 256, 3, 3, 15, 15),
			Conv("conv4", 1, 384, 384, 3, 3, 15, 15),
			Conv("conv5", 1, 256, 384, 3, 3, 15, 15),
			FromFC("fc6", 9216, 4096),
			FromFC("fc7", 4096, 4096),
			FromFC("fc8", 4096, 1000),
		},
	}
}

// ResNet18 returns the unique layer shapes of ResNet-18 (He et al.) at
// 224×224 input, batch 1: basic blocks (two 3×3 convolutions) instead of
// ResNet-50's bottlenecks.
func ResNet18() Model {
	ls := []Layer{
		Conv("conv1", 1, 64, 3, 7, 7, 230, 230).Strided(2),
	}
	stages := []struct {
		name        string
		side        int // output side of the stage
		out, in     int
		entryStride int
		entryInSide int // padded input side for the strided entry conv
	}{
		{"res2", 56, 64, 64, 1, 58},
		{"res3", 28, 128, 64, 2, 58},
		{"res4", 14, 256, 128, 2, 30},
		{"res5", 7, 512, 256, 2, 16},
	}
	for _, st := range stages {
		pad := st.side + 2
		ls = append(ls,
			Conv(st.name+"a_1", 1, st.out, st.in, 3, 3, st.entryInSide, st.entryInSide).Strided(st.entryStride),
			Conv(st.name+"a_2", 1, st.out, st.out, 3, 3, pad, pad),
		)
		if st.entryStride != 1 {
			ls = append(ls,
				Conv(st.name+"a_proj", 1, st.out, st.in, 1, 1, st.entryInSide-2, st.entryInSide-2).Strided(st.entryStride))
		}
		// Second basic block (stride 1).
		ls = append(ls,
			Conv(st.name+"b", 1, st.out, st.out, 3, 3, pad, pad).Times(2))
	}
	ls = append(ls, FromFC("fc", 512, 1000))
	return Model{Name: "ResNet-18", Layers: ls}
}

// BERTBase returns one BERT-base encoder block (Devlin et al.: d_model
// 768, 12 heads, d_ff 3072) over a 256-token sequence, lowered to CONV
// via col2im like the paper's Transformer workload.
func BERTBase() Model {
	const (
		seq   = 256
		dm    = 768
		heads = 12
		dh    = dm / heads // 64
		dff   = 3072
	)
	return Model{
		Name: "BERT-base",
		Layers: []Layer{
			FromGEMM("qkv_proj", dm, dm, seq).Times(3),
			FromGEMM("attn_qk", seq, dh, seq).Times(heads),
			FromGEMM("attn_v", dh, seq, seq).Times(heads),
			FromGEMM("out_proj", dm, dm, seq),
			FromGEMM("ffn1", dff, dm, seq),
			FromGEMM("ffn2", dm, dff, seq),
		},
	}
}

// ExtendedModels returns the extra architectures in the extended zoo.
func ExtendedModels() []Model {
	return []Model{AlexNet(), ResNet18(), BERTBase()}
}
