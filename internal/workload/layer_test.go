package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimString(t *testing.T) {
	want := []string{"N", "K", "C", "R", "S", "X", "Y"}
	for i, d := range AllDims {
		if d.String() != want[i] {
			t.Fatalf("dim %d = %q, want %q", i, d.String(), want[i])
		}
	}
	if Dim(99).String() != "Dim(99)" {
		t.Fatalf("out-of-range dim string = %q", Dim(99).String())
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "CONV" || OpGEMM.String() != "GEMM" ||
		OpDepthwise.String() != "DWCONV" || OpFC.String() != "FC" {
		t.Fatal("unexpected op kind names")
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Fatal("unexpected unknown op kind name")
	}
}

func TestConvOutputDims(t *testing.T) {
	l := Conv("c", 1, 64, 3, 3, 3, 226, 226)
	if l.OutX() != 224 || l.OutY() != 224 {
		t.Fatalf("out = %dx%d, want 224x224", l.OutX(), l.OutY())
	}
}

func TestStridedOutputDims(t *testing.T) {
	l := Conv("c", 1, 64, 3, 7, 7, 230, 230).Strided(2)
	if l.OutX() != 112 {
		t.Fatalf("strided out = %d, want 112", l.OutX())
	}
}

func TestSizeUsesOutputExtent(t *testing.T) {
	l := Conv("c", 2, 8, 4, 3, 3, 10, 12)
	if l.Size(DimX) != 8 || l.Size(DimY) != 10 {
		t.Fatalf("Size(X,Y) = %d,%d, want 8,10", l.Size(DimX), l.Size(DimY))
	}
	if l.Size(DimN) != 2 || l.Size(DimK) != 8 || l.Size(DimC) != 4 ||
		l.Size(DimR) != 3 || l.Size(DimS) != 3 {
		t.Fatal("unexpected dim sizes")
	}
	sizes := l.Sizes()
	for i, d := range AllDims {
		if sizes[i] != l.Size(d) {
			t.Fatalf("Sizes[%d] mismatch", i)
		}
	}
}

func TestMACsKnown(t *testing.T) {
	// 1x1 conv: MACs = K*C*X'*Y'.
	l := Conv("c", 1, 16, 32, 1, 1, 4, 4)
	if got := l.MACs(); got != 16*32*4*4 {
		t.Fatalf("MACs = %d, want %d", got, 16*32*4*4)
	}
}

func TestFromGEMMPreservesMACs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(64)
		k := 1 + rng.Intn(64)
		n := 1 + rng.Intn(64)
		l := FromGEMM("g", m, k, n)
		return l.MACs() == int64(m)*int64(k)*int64(n) &&
			l.X*l.Y == n && l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromFC(t *testing.T) {
	l := FromFC("fc", 2048, 1000)
	if l.MACs() != 2048*1000 {
		t.Fatalf("FC MACs = %d", l.MACs())
	}
	if l.Op != OpFC {
		t.Fatal("FC op kind incorrect")
	}
}

func TestFromDepthwisePreservesMACs(t *testing.T) {
	// Depth-wise 3x3 over 32 channels at 16x16 output.
	l := FromDepthwise("dw", 32, 3, 3, 18, 18, 1)
	want := int64(32) * 3 * 3 * 16 * 16
	if l.MACs() != want {
		t.Fatalf("depthwise MACs = %d, want %d", l.MACs(), want)
	}
	if l.Op != OpDepthwise || l.K != 1 || l.C != 1 || l.N != 32 {
		t.Fatalf("depthwise lowering shape unexpected: %+v", l)
	}
}

func TestValidate(t *testing.T) {
	good := Conv("g", 1, 2, 3, 3, 3, 8, 8)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid layer rejected: %v", err)
	}
	bad := good
	bad.K = 0
	if bad.Validate() == nil {
		t.Fatal("zero dimension accepted")
	}
	bad = good
	bad.R = 10
	if bad.Validate() == nil {
		t.Fatal("filter larger than input accepted")
	}
	bad = good
	bad.StrideX = 0
	if bad.Validate() == nil {
		t.Fatal("zero stride accepted")
	}
	bad = good
	bad.Repeat = 0
	if bad.Validate() == nil {
		t.Fatal("zero repeat accepted")
	}
}

func TestElemCounts(t *testing.T) {
	l := Conv("c", 2, 4, 3, 3, 3, 10, 10)
	if l.InputElems() != 2*3*10*10 {
		t.Fatal("input elems incorrect")
	}
	if l.WeightElems() != 4*3*3*3 {
		t.Fatal("weight elems incorrect")
	}
	if l.OutputElems() != 2*4*8*8 {
		t.Fatal("output elems incorrect")
	}
}

func TestTimes(t *testing.T) {
	l := Conv("c", 1, 2, 3, 3, 3, 8, 8).Times(4)
	if l.Repeat != 4 {
		t.Fatalf("repeat = %d, want 4", l.Repeat)
	}
}

func TestFactorNearSquare(t *testing.T) {
	cases := []struct{ n, x, y int }{
		{1, 1, 1}, {16, 4, 4}, {128, 8, 16}, {7, 1, 7}, {12, 3, 4},
	}
	for _, c := range cases {
		x, y := factorNear(c.n)
		if x != c.x || y != c.y {
			t.Fatalf("factorNear(%d) = %d,%d, want %d,%d", c.n, x, y, c.x, c.y)
		}
	}
}

func TestLayerString(t *testing.T) {
	s := Conv("c", 1, 2, 3, 3, 3, 8, 8).String()
	if s == "" {
		t.Fatal("empty layer string")
	}
}
