// Package workload defines the deep-learning workloads that Spotlight
// co-designs accelerators for: the CONV layer abstraction (the paper's
// 7-level loop of Figure 1), the transformations that lower other layer
// types onto CONV (col2im for GEMM, per-channel decomposition for
// depth-wise convolutions), and the five-model zoo used throughout the
// evaluation (VGG16, ResNet-50, MobileNetV2, MnasNet, Transformer).
package workload

import "fmt"

// Dim identifies one of the seven loop dimensions of a CONV layer
// (Figure 1 of the paper).
type Dim int

// The seven CONV loop dimensions.
const (
	DimN Dim = iota // batch
	DimK            // output channels (number of weight kernels)
	DimC            // input channels
	DimR            // kernel height
	DimS            // kernel width
	DimX            // input height
	DimY            // input width
)

// NumDims is the number of CONV loop dimensions.
const NumDims = 7

// AllDims lists the seven dimensions in canonical order.
var AllDims = [NumDims]Dim{DimN, DimK, DimC, DimR, DimS, DimX, DimY}

var dimNames = [NumDims]string{"N", "K", "C", "R", "S", "X", "Y"}

// String returns the conventional single-letter name of the dimension.
func (d Dim) String() string {
	if d < 0 || int(d) >= NumDims {
		return fmt.Sprintf("Dim(%d)", int(d))
	}
	return dimNames[d]
}

// OpKind records the original operation a layer was lowered from. All
// kinds are executed as CONV; the kind is retained for reporting.
type OpKind int

// Layer operation kinds.
const (
	OpConv      OpKind = iota // native convolution
	OpDepthwise               // depth-wise convolution, decomposed per channel
	OpGEMM                    // matrix multiply, lowered via col2im
	OpFC                      // fully connected, lowered as 1x1 CONV
)

var opNames = map[OpKind]string{
	OpConv:      "CONV",
	OpDepthwise: "DWCONV",
	OpGEMM:      "GEMM",
	OpFC:        "FC",
}

// String returns a short name for the operation kind.
func (o OpKind) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(o))
}

// Layer is one CONV-space layer: a weight tensor of size K×C×R×S applied
// to N input tensors of size C×X×Y with the given strides. Layers lowered
// from GEMM or depth-wise convolutions record their origin in Op.
//
// Repeat counts how many times this exact shape occurs in the parent
// model, so model-level aggregates weight each unique shape correctly
// without evaluating duplicates.
type Layer struct {
	Name    string
	Op      OpKind
	N       int // batch size
	K       int // output channels
	C       int // input channels
	R       int // filter height
	S       int // filter width
	X       int // input height
	Y       int // input width
	StrideX int
	StrideY int
	Repeat  int
}

// Conv builds a standard convolution layer with stride 1 and Repeat 1.
func Conv(name string, n, k, c, r, s, x, y int) Layer {
	return Layer{Name: name, Op: OpConv, N: n, K: k, C: c, R: r, S: s, X: x, Y: y,
		StrideX: 1, StrideY: 1, Repeat: 1}
}

// Strided returns a copy of l with the given stride in both dimensions.
func (l Layer) Strided(stride int) Layer {
	l.StrideX, l.StrideY = stride, stride
	return l
}

// Times returns a copy of l with the given repeat count.
func (l Layer) Times(n int) Layer {
	l.Repeat = n
	return l
}

// FromGEMM lowers a GEMM of shape (M×Kd)·(Kd×Nd) onto a 1×1 CONV using the
// col2im transformation: the Nd output columns become spatial positions
// (X×Y with X·Y = Nd, factored as squarely as Nd permits), the reduction
// dimension Kd becomes input channels, and the M output rows become output
// channels. As the paper notes for Transformer, this can produce large and
// uneven layer shapes.
func FromGEMM(name string, m, kd, nd int) Layer {
	x, y := factorNear(nd)
	return Layer{Name: name, Op: OpGEMM, N: 1, K: m, C: kd, R: 1, S: 1,
		X: x, Y: y, StrideX: 1, StrideY: 1, Repeat: 1}
}

// FromFC lowers a fully connected layer with the given input and output
// widths onto a 1×1 CONV over a single spatial position.
func FromFC(name string, in, out int) Layer {
	return Layer{Name: name, Op: OpFC, N: 1, K: out, C: in, R: 1, S: 1,
		X: 1, Y: 1, StrideX: 1, StrideY: 1, Repeat: 1}
}

// FromDepthwise lowers a depth-wise convolution over ch channels into a
// single-channel CONV repeated once per channel: the channel loop is
// folded into the batch dimension, which preserves total MAC count and
// per-position data movement while keeping the layer expressible in the
// 7-loop CONV form.
func FromDepthwise(name string, ch, r, s, x, y, stride int) Layer {
	return Layer{Name: name, Op: OpDepthwise, N: ch, K: 1, C: 1, R: r, S: s,
		X: x, Y: y, StrideX: stride, StrideY: stride, Repeat: 1}
}

// factorNear factors n into (x, y) with x·y == n and x as close to sqrt(n)
// as possible, preferring the more square factorization.
func factorNear(n int) (int, int) {
	if n <= 0 {
		return 1, 1
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// OutX returns the output height (X - R)/StrideX + 1.
func (l Layer) OutX() int { return (l.X-l.R)/l.StrideX + 1 }

// OutY returns the output width (Y - S)/StrideY + 1.
func (l Layer) OutY() int { return (l.Y-l.S)/l.StrideY + 1 }

// Size returns the extent of dimension d. For X and Y this is the *output*
// extent, which is what the loop bounds of Figure 1 iterate over; the
// input footprint is derived from the output tile plus the filter halo.
func (l Layer) Size(d Dim) int {
	switch d {
	case DimN:
		return l.N
	case DimK:
		return l.K
	case DimC:
		return l.C
	case DimR:
		return l.R
	case DimS:
		return l.S
	case DimX:
		return l.OutX()
	case DimY:
		return l.OutY()
	}
	panic(fmt.Sprintf("workload: invalid dim %d", int(d)))
}

// Sizes returns the extents of all seven dimensions in canonical order.
func (l Layer) Sizes() [NumDims]int {
	var s [NumDims]int
	for i, d := range AllDims {
		s[i] = l.Size(d)
	}
	return s
}

// MACs returns the number of multiply-accumulate operations needed to
// compute the layer once (not weighted by Repeat).
func (l Layer) MACs() int64 {
	return int64(l.N) * int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S) *
		int64(l.OutX()) * int64(l.OutY())
}

// InputElems returns the number of input tensor elements.
func (l Layer) InputElems() int64 {
	return int64(l.N) * int64(l.C) * int64(l.X) * int64(l.Y)
}

// WeightElems returns the number of weight tensor elements.
func (l Layer) WeightElems() int64 {
	return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
}

// OutputElems returns the number of output tensor elements.
func (l Layer) OutputElems() int64 {
	return int64(l.N) * int64(l.K) * int64(l.OutX()) * int64(l.OutY())
}

// Validate reports an error when the layer shape is degenerate (any
// non-positive dimension, filter larger than input, or invalid stride).
func (l Layer) Validate() error {
	if l.N <= 0 || l.K <= 0 || l.C <= 0 || l.R <= 0 || l.S <= 0 || l.X <= 0 || l.Y <= 0 {
		return fmt.Errorf("workload: layer %q has a non-positive dimension: %+v", l.Name, l)
	}
	if l.StrideX <= 0 || l.StrideY <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive stride", l.Name)
	}
	if l.R > l.X || l.S > l.Y {
		return fmt.Errorf("workload: layer %q filter %dx%d exceeds input %dx%d", l.Name, l.R, l.S, l.X, l.Y)
	}
	if l.Repeat <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive repeat %d", l.Name, l.Repeat)
	}
	return nil
}

// String renders the layer in a compact shape notation.
func (l Layer) String() string {
	return fmt.Sprintf("%s[%s N%d K%d C%d R%d S%d X%d Y%d /%d x%d]",
		l.Name, l.Op, l.N, l.K, l.C, l.R, l.S, l.X, l.Y, l.StrideX, l.Repeat)
}
