// Package maestro implements the primary analytical cost model that
// Spotlight uses to evaluate candidate designs, playing the role MAESTRO
// (Kwon et al., IEEE Micro 2020) plays in the paper. Given an accelerator
// configuration, a software schedule, and a CONV layer, it reports delay,
// energy, EDP, area, power, utilization, and data-movement statistics.
//
// The model is a data-centric loop-nest analysis of the two-level
// accelerator of Figure 2:
//
//   - The DRAM-level loops step L2 tiles (T2) in the schedule's outer
//     order; the loop over the outer-unrolled dimension is distributed
//     across the rows of the PE array.
//   - The L2-level loops step RF tiles (T1) in the inner order; the loop
//     over the inner-unrolled dimension is distributed across the columns
//     of each row, fed by the row's dedicated uni-/multi-cast bus.
//   - Tensors are refetched according to the classic stationarity rule:
//     a tile stays resident while only loops the tensor does not depend
//     on iterate below its innermost dependent loop.
//
// Schedules whose tiles overflow the register file or scratchpad are
// invalid — these are the "large and unpredictable invalid regions" of
// the co-design space that §IV of the paper highlights; Evaluate returns
// an error for them rather than a cost.
package maestro

import (
	"errors"
	"fmt"
	"math"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Cost is the evaluation of one (accelerator, schedule, layer) triple.
// Cycle counts assume a 1 GHz clock, so pJ/cycle equals mW.
type Cost struct {
	DelayCycles float64 // end-to-end layer delay
	EnergyNJ    float64 // total energy, nJ
	AreaMM2     float64
	PowerMW     float64 // average power while running
	Utilization float64 // time-averaged fraction of PEs doing useful work

	ComputeCycles float64 // cycles if never stalled
	DRAMCycles    float64 // cycles implied by DRAM traffic alone
	NoCCycles     float64 // cycles implied by on-chip traffic alone

	DRAMBytes float64 // total off-chip traffic
	NoCBytes  float64 // total L2→RF traffic across all rows
	L2Bytes   float64 // total scratchpad accesses
	RFBytes   float64 // total register-file accesses

	// Per-tensor DRAM traffic breakdown (sums to DRAMBytes).
	DRAMInputBytes  float64
	DRAMWeightBytes float64
	DRAMOutputBytes float64

	// Reads-per-fill reuse metrics for the §VII-C discussion: how many
	// times each byte delivered into a level is consumed before being
	// replaced.
	RFInputReuse float64
	L2InputReuse float64
}

// EDP returns the energy-delay product in nJ·cycles, the paper's primary
// comparison metric.
func (c Cost) EDP() float64 { return c.EnergyNJ * c.DelayCycles }

// Finite reports whether every field of the cost is a finite number. A
// cost model that hangs or crashes is easy to notice; one that returns
// NaN or ±Inf silently corrupts downstream statistics, so the search
// runtime classifies non-finite costs as invalid samples.
func (c Cost) Finite() bool {
	for _, v := range [...]float64{
		c.DelayCycles, c.EnergyNJ, c.AreaMM2, c.PowerMW, c.Utilization,
		c.ComputeCycles, c.DRAMCycles, c.NoCCycles,
		c.DRAMBytes, c.NoCBytes, c.L2Bytes, c.RFBytes,
		c.DRAMInputBytes, c.DRAMWeightBytes, c.DRAMOutputBytes,
		c.RFInputReuse, c.L2InputReuse,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ThroughputPerJoule returns useful MACs per nJ, used by the §VII-C
// throughput-per-Joule comparison.
func (c Cost) ThroughputPerJoule(macs int64) float64 {
	if c.EnergyNJ == 0 {
		return 0
	}
	return float64(macs) / c.EnergyNJ
}

// ErrInvalid is wrapped by all validity errors returned from Evaluate, so
// searchers can distinguish "this design point is outside the feasible
// region" from programming errors.
var ErrInvalid = errors.New("maestro: invalid configuration")

// EDRAMPerByte is the off-chip access energy coefficient (pJ per byte at
// 8-bit precision, 1 GHz). It is exported because the hybrid trace-driven
// backend (internal/sim) re-derives energy from simulated DRAM traffic
// and must price that traffic identically to the analytical model.
const EDRAMPerByte = 200.0

// Energy and bandwidth coefficients (pJ per byte / per MAC at 8-bit
// precision, 1 GHz). Relative magnitudes follow the usual storage
// hierarchy: DRAM ≫ scratchpad ≫ register file ≈ MAC.
const (
	eL2BasePJ     = 6.0 // at the 128 KB reference size, scaled by sqrt
	eRFPerByte    = 1.0
	eMACPerOp     = 0.2
	eNoCBase      = 0.2  // per byte entering a row bus
	eNoCPerColumn = 0.02 // wire length term
	leakPerMM2    = 0.05 // pJ per cycle per mm²
	rampCycles    = 1.0  // pipeline fill per array diagonal step
)

// Model is the MAESTRO-like evaluator. The zero value is not usable; use
// New. DRAM bandwidth scales with the on-chip interconnect width, so
// cloud-scale parts see proportionally faster memory systems.
type Model struct{}

// New returns the evaluator.
func New() *Model { return &Model{} }

// Name identifies the model in cross-validation reports (§VII-F).
func (*Model) Name() string { return "maestro" }

// CostModelVersion is bumped on ANY change to the analytical cost
// math or to the Cost struct layout: it feeds the persistent eval
// cache's record keys, so bumping it cleanly invalidates every on-disk
// result the old model produced.
const CostModelVersion = "cost-v1"

// ModelFingerprint identifies this backend's cost model for persistent
// caching (see eval.BackendFingerprint).
func (*Model) ModelFingerprint() string { return "maestro/" + CostModelVersion }

// dependence sets of the three tensors over the seven loop dimensions.
var (
	depInput  = dimSet(workload.DimN, workload.DimC, workload.DimX, workload.DimY, workload.DimR, workload.DimS)
	depWeight = dimSet(workload.DimK, workload.DimC, workload.DimR, workload.DimS)
	depOutput = dimSet(workload.DimN, workload.DimK, workload.DimX, workload.DimY)
)

func dimSet(ds ...workload.Dim) [workload.NumDims]bool {
	var s [workload.NumDims]bool
	for _, d := range ds {
		s[d] = true
	}
	return s
}

// Evaluate runs the analytical model. It returns an error wrapping
// ErrInvalid when the schedule's tiles overflow the register file or
// scratchpad, or when inputs are structurally invalid.
func (m *Model) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (Cost, error) {
	if err := a.Validate(); err != nil {
		return Cost{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := l.Validate(); err != nil {
		return Cost{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := s.Validate(l); err != nil {
		return Cost{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}

	// --- Capacity validity -------------------------------------------------
	// Each PE's register file holds one T1 tile working set; the global
	// scratchpad holds one T2 tile working set (both spatial unrolls
	// distribute L2-level loops, so the rows and columns all consume from
	// the same resident T2 tile).
	rfNeed := sched.TileFootprint(l, s.T1)
	if rfNeed > a.RFBytesPerPE() {
		return Cost{}, fmt.Errorf("%w: RF tile needs %d B, PE register file holds %d B",
			ErrInvalid, rfNeed, a.RFBytesPerPE())
	}
	l2Need := sched.TileFootprint(l, s.T2)
	if l2Need > a.L2Bytes() {
		return Cost{}, fmt.Errorf("%w: L2 working set needs %d B, scratchpad holds %d B",
			ErrInvalid, l2Need, a.L2Bytes())
	}

	ctx := newLayerCtx(a, l)
	return ctx.costOf(&s, s.OuterTrips(l), s.InnerTrips(l)), nil
}

// layerCtx caches every model input that depends only on the
// (accelerator, layer) pair, so a batch of candidate schedules for the
// same pair pays for validation, byte-size scalars, and the two sqrt
// coefficients exactly once. Each cached scalar is a whole value the
// sequential path computes with the identical expression — never a
// refactored sub-product — which keeps costOf bit-identical to the
// pre-batch Evaluate for every schedule.
type layerCtx struct {
	l     workload.Layer
	h, w  int
	sizes [workload.NumDims]int // layer extents in canonical dim order

	rfCap, l2Cap int64 // per-PE RF and scratchpad capacity bounds
	simd         int64

	macs    float64 // float64(l.MACs())
	areaMM2 float64 // a.AreaMM2()
	eL2     float64 // scratchpad energy/byte at this L2 size
	eNoC    float64 // row-bus energy/byte at this array width
	dramBW  float64 // off-chip bytes/cycle
	nocBW   float64 // float64(a.NoCBW)
	ramp    float64 // pipeline-fill cycles for this array
}

func newLayerCtx(a hw.Accel, l workload.Layer) layerCtx {
	h, w := a.Height(), a.Width
	return layerCtx{
		l:       l,
		h:       h,
		w:       w,
		sizes:   l.Sizes(),
		rfCap:   a.RFBytesPerPE(),
		l2Cap:   a.L2Bytes(),
		simd:    int64(a.SIMDLanes),
		macs:    float64(l.MACs()),
		areaMM2: a.AreaMM2(),
		eL2:     eL2BasePJ * math.Sqrt(float64(a.L2KB)/128),
		eNoC:    eNoCBase + eNoCPerColumn*float64(w),
		dramBW:  math.Max(16, float64(a.NoCBW)/2), // off-chip channel tracks on-chip width
		nocBW:   float64(a.NoCBW),
		ramp:    rampCycles * float64(h+w),
	}
}

// costOf evaluates one already-validated schedule against the cached
// context. n2 and n1 are the DRAM- and L2-level trip counts (from
// OuterTrips/InnerTrips or the fused TripCounts). It allocates nothing.
func (c *layerCtx) costOf(s *sched.Schedule, n2, n1 [workload.NumDims]int) Cost {
	h, w := c.h, c.w
	uo, ui := s.OuterUnroll, s.InnerUnroll

	// --- Iteration structure ----------------------------------------------
	// DRAM-level loops are purely temporal; the L2-level loop over the
	// outer-unrolled dimension is distributed across the h rows and the
	// loop over the inner-unrolled dimension across the w columns. When
	// both unrolls name the same dimension, its subtiles spread over the
	// whole h×w array.
	innerTemporal := n1
	var lanes spatialLanes
	if uo == ui {
		lanes = combinedLanes(n1[uo], h, w)
		innerTemporal[uo] = ceilDiv(n1[uo], h*w)
	} else {
		lanes = spatialLanes{rows: minInt(h, n1[uo]), cols: minInt(w, n1[ui])}
		innerTemporal[uo] = ceilDiv(n1[uo], h)
		innerTemporal[ui] = ceilDiv(n1[ui], w)
	}

	outerIters := prod(n2)
	innerIters := prod(innerTemporal)

	macsPerT1 := int64(1)
	for i := range workload.AllDims {
		macsPerT1 *= int64(s.T1[i])
	}
	cyclesPerT1 := float64(ceilDiv64(macsPerT1, c.simd))
	computeCycles := outerIters * innerIters * cyclesPerT1

	// --- DRAM traffic -------------------------------------------------------
	inBytes2 := inputTileBytes(c.l, s.T2)
	wBytes2 := weightTileBytes(s.T2)
	outBytes2 := outputTileBytes(s.T2)

	fillsIn2 := fills(s.OuterOrder, n2, depInput)
	fillsW2 := fills(s.OuterOrder, n2, depWeight)
	fillsOut2 := fills(s.OuterOrder, n2, depOutput)
	distinctOut2 := distinctTiles(n2, depOutput)

	dramIn := fillsIn2 * inBytes2
	dramW := fillsW2 * wBytes2
	// Outputs: every fill is eventually written back; refetches beyond the
	// first visit also read the partial sums back in.
	dramOut := fillsOut2*outBytes2 + (fillsOut2-distinctOut2)*outBytes2
	dramBytes := dramIn + dramW + dramOut

	// --- NoC (L2→RF) traffic ------------------------------------------------
	// Temporal fills follow the stationarity rule over the inner order;
	// each fill moves one T1 tile per spatially distinct copy. Tensors
	// independent of an unrolled dimension are multicast along it (one
	// copy serves the whole row or column).
	inBytes1 := inputTileBytes(c.l, s.T1)
	wBytes1 := weightTileBytes(s.T1)
	outBytes1 := outputTileBytes(s.T1)

	fillsIn1 := fills(s.InnerOrder, innerTemporal, depInput)
	fillsW1 := fills(s.InnerOrder, innerTemporal, depWeight)
	fillsOut1 := fills(s.InnerOrder, innerTemporal, depOutput)
	distinctOut1 := distinctTiles(innerTemporal, depOutput)

	nocIn := fillsIn1 * inBytes1 * lanes.copies(depInput, uo, ui)
	nocW := fillsW1 * wBytes1 * lanes.copies(depWeight, uo, ui)
	outCopies := lanes.copies(depOutput, uo, ui)
	nocOut := fillsOut1*outBytes1*outCopies + (fillsOut1-distinctOut1)*outBytes1*outCopies
	perOuterBytes := nocIn + nocW + nocOut

	nocBytes := outerIters * perOuterBytes

	// --- Stalls and delay ----------------------------------------------------
	dramCycles := dramBytes / c.dramBW
	// Each row has a dedicated bus of NoCBW bytes/cycle; traffic spreads
	// over the active rows.
	nocCycles := nocBytes / (c.nocBW * float64(lanes.rows))
	delay := math.Max(computeCycles, math.Max(dramCycles, nocCycles)) + c.ramp

	// --- Energy ---------------------------------------------------------------
	macs := c.macs
	// Scratchpad accesses: DRAM fills write into L2 once, and every byte
	// sent down a row bus is read from L2 once (the bus itself multicasts
	// across the columns of the row).
	l2AccessBytes := dramBytes + nocBytes
	rfAccessBytes := macs * 4 // two operand reads + psum read + write per MAC

	energyPJ := macs*eMACPerOp +
		dramBytes*EDRAMPerByte +
		l2AccessBytes*c.eL2 +
		nocBytes*c.eNoC +
		rfAccessBytes*eRFPerByte +
		delay*leakPerMM2*c.areaMM2

	// --- Derived metrics -------------------------------------------------------
	var spatialUtil float64
	if uo == ui {
		spatialUtil = float64(n1[uo]) / (float64(innerTemporal[uo]) * float64(h*w))
	} else {
		spatialUtil = (float64(n1[uo]) / (float64(innerTemporal[uo]) * float64(h))) *
			(float64(n1[ui]) / (float64(innerTemporal[ui]) * float64(w)))
	}
	util := spatialUtil * computeCycles / delay

	cost := Cost{
		DelayCycles:     delay,
		EnergyNJ:        energyPJ / 1000,
		AreaMM2:         c.areaMM2,
		ComputeCycles:   computeCycles,
		DRAMCycles:      dramCycles,
		NoCCycles:       nocCycles,
		DRAMBytes:       dramBytes,
		DRAMInputBytes:  dramIn,
		DRAMWeightBytes: dramW,
		DRAMOutputBytes: dramOut,
		NoCBytes:        nocBytes,
		L2Bytes:         l2AccessBytes,
		RFBytes:         rfAccessBytes,
		Utilization:     util,
	}
	cost.PowerMW = cost.EnergyNJ * 1000 / delay
	if nocInTotal := outerIters * nocIn; nocInTotal > 0 {
		cost.RFInputReuse = macs / nocInTotal
		if dramIn > 0 {
			cost.L2InputReuse = nocInTotal / dramIn
		}
	}
	return cost
}

// spatialLanes is the concurrently active extent of the PE array.
type spatialLanes struct {
	rows, cols int
}

// combinedLanes spreads trip iterations over the whole h×w array when the
// same dimension is unrolled at both levels.
func combinedLanes(trip, h, w int) spatialLanes {
	total := minInt(h*w, trip)
	cols := minInt(w, total)
	rows := minInt(h, ceilDiv(total, cols))
	return spatialLanes{rows: rows, cols: cols}
}

// copies returns how many spatially distinct copies of a tensor's tile
// one temporal fill must deliver: tensors that depend on an unrolled
// dimension need one copy per active lane along it; independent tensors
// are multicast (one copy serves the whole extent).
func (s spatialLanes) copies(dep [workload.NumDims]bool, uo, ui workload.Dim) float64 {
	c := 1.0
	if uo == ui {
		if dep[uo] {
			c = float64(s.rows * s.cols)
		}
		return c
	}
	if dep[uo] {
		c *= float64(s.rows)
	}
	if dep[ui] {
		c *= float64(s.cols)
	}
	return c
}

// fills implements the stationarity rule: the number of times a tensor's
// tile must be (re)filled from the level above equals the product of the
// temporal trip counts of all loops from the outermost down to the
// tensor's innermost dependent loop. Loops below that point only iterate
// dimensions the tensor does not depend on, so the tile stays resident.
func fills(order [workload.NumDims]workload.Dim, trips [workload.NumDims]int, dep [workload.NumDims]bool) float64 {
	innermost := -1
	for i := workload.NumDims - 1; i >= 0; i-- {
		if dep[order[i]] && trips[order[i]] > 1 {
			innermost = i
			break
		}
	}
	f := 1.0
	for i := 0; i <= innermost; i++ {
		f *= float64(trips[order[i]])
	}
	return f
}

// distinctTiles counts the distinct tiles of a tensor across a tiling
// level: the product of trip counts over the tensor's dependent dims.
func distinctTiles(trips [workload.NumDims]int, dep [workload.NumDims]bool) float64 {
	f := 1.0
	for i, d := range workload.AllDims {
		if dep[d] {
			f *= float64(trips[i])
		}
	}
	return f
}

func inputTileBytes(l workload.Layer, t [workload.NumDims]int) float64 {
	inX := float64(t[workload.DimX]-1)*float64(l.StrideX) + float64(t[workload.DimR])
	inY := float64(t[workload.DimY]-1)*float64(l.StrideY) + float64(t[workload.DimS])
	return float64(t[workload.DimN]) * float64(t[workload.DimC]) * inX * inY
}

func weightTileBytes(t [workload.NumDims]int) float64 {
	return float64(t[workload.DimK]) * float64(t[workload.DimC]) * float64(t[workload.DimR]) * float64(t[workload.DimS])
}

func outputTileBytes(t [workload.NumDims]int) float64 {
	return float64(t[workload.DimN]) * float64(t[workload.DimK]) * float64(t[workload.DimX]) * float64(t[workload.DimY])
}

func prod(a [workload.NumDims]int) float64 {
	f := 1.0
	for _, x := range a {
		f *= float64(x)
	}
	return f
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
