package maestro

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func testAccel() hw.Accel {
	return hw.Accel{PEs: 168, Width: 14, SIMDLanes: 2, RFKB: 80, L2KB: 128, NoCBW: 64}
}

func testLayer() workload.Layer {
	return workload.Conv("t", 1, 64, 32, 3, 3, 18, 18) // 16x16 output
}

// fullSchedule returns a simple valid schedule: T2 = full dims, T1 = 1.
func fullSchedule(l workload.Layer) sched.Schedule {
	var s sched.Schedule
	for i, d := range workload.AllDims {
		s.T2[i] = l.Size(d)
		s.T1[i] = 1
	}
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll = workload.DimK
	s.InnerUnroll = workload.DimC
	return s
}

// fittedSchedule returns a schedule whose tiles fit the accelerator.
func fittedSchedule(a hw.Accel, l workload.Layer) sched.Schedule {
	s := fullSchedule(l)
	s.T1, s.T2 = sched.FitTiles(l, a.RFBytesPerPE(), a.L2Bytes()/4)
	return s
}

func TestEvaluateValidSchedule(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	c, err := m.Evaluate(a, fittedSchedule(a, l), l)
	if err != nil {
		t.Fatalf("evaluate failed: %v", err)
	}
	if c.DelayCycles <= 0 || c.EnergyNJ <= 0 || c.EDP() <= 0 {
		t.Fatalf("non-positive cost: %+v", c)
	}
	if c.Utilization <= 0 || c.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", c.Utilization)
	}
	if c.AreaMM2 != a.AreaMM2() {
		t.Fatal("area mismatch")
	}
	if c.PowerMW <= 0 {
		t.Fatal("non-positive power")
	}
}

func TestEvaluateRejectsRFOverflow(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	s := fullSchedule(l)
	// T1 = full layer cannot fit in a per-PE register file.
	s.T1 = s.T2
	_, err := m.Evaluate(a, s, l)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("expected ErrInvalid for RF overflow, got %v", err)
	}
}

func TestEvaluateRejectsL2Overflow(t *testing.T) {
	m := New()
	a := testAccel()
	a.L2KB = 64
	// A big layer whose full-size T2 cannot fit in 64 KB.
	l := workload.Conv("big", 1, 512, 512, 3, 3, 30, 30)
	s := fullSchedule(l)
	_, err := m.Evaluate(a, s, l)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("expected ErrInvalid for L2 overflow, got %v", err)
	}
}

func TestEvaluateRejectsBadInputs(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)

	badA := a
	badA.Width = 13
	if _, err := m.Evaluate(badA, s, l); !errors.Is(err, ErrInvalid) {
		t.Fatal("invalid accel accepted")
	}
	badL := l
	badL.K = 0
	if _, err := m.Evaluate(a, s, badL); !errors.Is(err, ErrInvalid) {
		t.Fatal("invalid layer accepted")
	}
	badS := s
	badS.T2[0] = 7 // does not divide N=1
	if _, err := m.Evaluate(a, badS, l); !errors.Is(err, ErrInvalid) {
		t.Fatal("invalid schedule accepted")
	}
}

func TestComputeLowerBound(t *testing.T) {
	// Delay can never beat MACs / (PEs × SIMD).
	m := New()
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(1))
	c := sched.Free()
	bound := float64(l.MACs()) / float64(a.PEs*a.SIMDLanes)
	for i := 0; i < 300; i++ {
		s := c.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		cost, err := m.Evaluate(a, s, l)
		if err != nil {
			continue
		}
		if cost.DelayCycles < bound {
			t.Fatalf("delay %v below roofline bound %v for %s", cost.DelayCycles, bound, s)
		}
	}
}

func TestDRAMTrafficLowerBound(t *testing.T) {
	// Every tensor must cross the DRAM boundary at least once.
	m := New()
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(2))
	c := sched.Free()
	minBytes := float64(l.WeightElems() + l.OutputElems()) // input halo makes input bound fuzzy
	for i := 0; i < 300; i++ {
		s := c.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		cost, err := m.Evaluate(a, s, l)
		if err != nil {
			continue
		}
		if cost.DRAMBytes < minBytes {
			t.Fatalf("DRAM bytes %v below compulsory traffic %v", cost.DRAMBytes, minBytes)
		}
	}
}

func TestLoopOrderChangesTraffic(t *testing.T) {
	// Weight-stationary vs weight-thrashing outer orders must differ in
	// DRAM traffic when the weight tile is refetched across X iterations.
	m := New()
	a := testAccel()
	a.L2KB = 256
	l := workload.Conv("t", 1, 64, 64, 3, 3, 34, 34) // 32x32 out
	s := fullSchedule(l)
	// Tile X and K at L2 so outer loops have temporal trips > 1 even
	// after K is spatially unrolled across the 12 rows (64 K-tiles over
	// 12 rows leaves 6 temporal iterations).
	s.T2[workload.DimX] = 8
	s.T2[workload.DimK] = 1
	s.T1, _ = sched.FitTiles(l, a.RFBytesPerPE(), 1)
	s.T1[workload.DimK] = 1

	stationary := s // K outer, X inner: weights refetched only over K
	stationary.OuterOrder = [7]workload.Dim{workload.DimN, workload.DimK, workload.DimC,
		workload.DimR, workload.DimS, workload.DimX, workload.DimY}
	thrash := s // X outer of K: weights refetched per X iteration
	thrash.OuterOrder = [7]workload.Dim{workload.DimN, workload.DimX, workload.DimK,
		workload.DimC, workload.DimR, workload.DimS, workload.DimY}

	cs, err1 := m.Evaluate(a, stationary, l)
	ct, err2 := m.Evaluate(a, thrash, l)
	if err1 != nil || err2 != nil {
		t.Fatalf("evaluate failed: %v / %v", err1, err2)
	}
	// The two orders trade weight refetches against input refetches, so
	// the totals must differ — loop order is a real degree of freedom.
	if ct.DRAMBytes == cs.DRAMBytes {
		t.Fatalf("loop order had no traffic effect: both %v", cs.DRAMBytes)
	}
	// Keeping K outer (weight-stationary) refetches inputs once per K
	// iteration, so its input reuse at L2 must be no better than the
	// X-outer order that holds each input tile across all K.
	if cs.L2InputReuse > ct.L2InputReuse {
		t.Fatalf("K-outer input reuse %v exceeds X-outer %v", cs.L2InputReuse, ct.L2InputReuse)
	}
}

func TestUnrollDimAffectsUtilization(t *testing.T) {
	// Unrolling the batch dimension (size 1) wastes the whole array
	// relative to unrolling the 64-wide K dimension.
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)
	s.T2[workload.DimK] = 4 // 16 outer K trips, plenty to unroll
	s.T2[workload.DimC] = 4
	s.T1[workload.DimK] = 1
	s.T1[workload.DimC] = 1

	good := s
	good.OuterUnroll, good.InnerUnroll = workload.DimK, workload.DimC
	bad := s
	bad.OuterUnroll, bad.InnerUnroll = workload.DimN, workload.DimN

	cg, err1 := m.Evaluate(a, good, l)
	cb, err2 := m.Evaluate(a, bad, l)
	if err1 != nil || err2 != nil {
		t.Fatalf("evaluate failed: %v / %v", err1, err2)
	}
	if cb.Utilization >= cg.Utilization {
		t.Fatalf("N-unroll utilization %v not below K/C-unroll %v", cb.Utilization, cg.Utilization)
	}
	if cb.DelayCycles <= cg.DelayCycles {
		t.Fatalf("N-unroll delay %v not above K/C-unroll %v", cb.DelayCycles, cg.DelayCycles)
	}
}

func TestSIMDSpeedsCompute(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)
	c1, err := m.Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	a2 := a
	a2.SIMDLanes = 8
	c2, err := m.Evaluate(a2, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ComputeCycles >= c1.ComputeCycles {
		t.Fatalf("SIMD did not speed compute: %v vs %v", c2.ComputeCycles, c1.ComputeCycles)
	}
}

func TestMulticastSavesTraffic(t *testing.T) {
	// With inner unroll on K, the input tile (independent of K) is
	// multicast; with inner unroll on X it must be unicast per column.
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)
	s.T2[workload.DimK] = 8
	s.T2[workload.DimX] = 2
	s.T1[workload.DimK] = 1
	s.T1[workload.DimX] = 1

	multicast := s
	multicast.InnerUnroll = workload.DimK
	unicast := s
	unicast.InnerUnroll = workload.DimX

	cm, err1 := m.Evaluate(a, multicast, l)
	cu, err2 := m.Evaluate(a, unicast, l)
	if err1 != nil || err2 != nil {
		t.Fatalf("evaluate failed: %v / %v", err1, err2)
	}
	// Same number of inner iterations is not guaranteed, but for input-
	// dominated tiles the unicast variant must move at least as much data
	// per delivered MAC. Compare input reuse instead of raw bytes.
	if cu.RFInputReuse > cm.RFInputReuse {
		t.Fatalf("unicast input reuse %v exceeds multicast %v", cu.RFInputReuse, cm.RFInputReuse)
	}
}

func TestFillsStationarityRule(t *testing.T) {
	order := [7]workload.Dim{workload.DimK, workload.DimC, workload.DimR,
		workload.DimS, workload.DimN, workload.DimX, workload.DimY}
	trips := [7]int{1, 4, 2, 1, 1, 8, 8} // N=1 K=4 C=2 R=1 S=1 X=8 Y=8
	// Weights depend on K,C,R,S; innermost dependent loop in this order
	// is C (R,S have trip 1), so fills = K*C = 8.
	if f := fills(order, trips, depWeight); f != 8 {
		t.Fatalf("weight fills = %v, want 8", f)
	}
	// Outputs depend on N,K,X,Y; innermost dependent loop is Y, so every
	// loop above counts: 4*2*8*8 = 512.
	if f := fills(order, trips, depOutput); f != 512 {
		t.Fatalf("output fills = %v, want 512", f)
	}
	// A tensor with no moving dependent loops is filled exactly once.
	if f := fills(order, [7]int{1, 1, 1, 1, 1, 1, 1}, depInput); f != 1 {
		t.Fatalf("static fills = %v, want 1", f)
	}
}

func TestSpatialCopies(t *testing.T) {
	lanes := spatialLanes{rows: 4, cols: 8}
	// Weights depend on K but not X: unrolling K over rows and X over
	// columns needs one copy per row, multicast across columns.
	if c := lanes.copies(depWeight, workload.DimK, workload.DimX); c != 4 {
		t.Fatalf("row-dependent copies = %v, want 4", c)
	}
	// Unrolling X over rows and Y over columns multicasts weights fully.
	if c := lanes.copies(depWeight, workload.DimX, workload.DimY); c != 1 {
		t.Fatalf("multicast copies = %v, want 1", c)
	}
	// K on both axes: dependent tensors need a copy per PE.
	if c := lanes.copies(depWeight, workload.DimK, workload.DimK); c != 32 {
		t.Fatalf("combined copies = %v, want 32", c)
	}
	if c := lanes.copies(depInput, workload.DimK, workload.DimK); c != 1 {
		t.Fatalf("combined multicast copies = %v, want 1", c)
	}
}

func TestCombinedLanes(t *testing.T) {
	l := combinedLanes(100, 4, 8)
	if l.rows != 4 || l.cols != 8 {
		t.Fatalf("saturated lanes = %+v, want 4x8", l)
	}
	l = combinedLanes(5, 4, 8)
	if l.cols != 5 || l.rows != 1 {
		t.Fatalf("small-trip lanes = %+v, want 1x5", l)
	}
}

func TestEDPAndThroughput(t *testing.T) {
	c := Cost{DelayCycles: 10, EnergyNJ: 5}
	if c.EDP() != 50 {
		t.Fatalf("EDP = %v, want 50", c.EDP())
	}
	if tp := c.ThroughputPerJoule(100); tp != 20 {
		t.Fatalf("throughput = %v, want 20", tp)
	}
	if (Cost{}).ThroughputPerJoule(100) != 0 {
		t.Fatal("zero-energy throughput should be 0")
	}
}

// Property: every successfully evaluated random design has positive,
// finite delay and energy, and utilization within (0, 1].
func TestEvaluateInvariantsProperty(t *testing.T) {
	m := New()
	space := hw.EdgeSpace()
	l := testLayer()
	con := sched.Free()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := space.Random(rng)
		s := con.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		c, err := m.Evaluate(a, s, l)
		if err != nil {
			return errors.Is(err, ErrInvalid)
		}
		return c.DelayCycles > 0 && c.EnergyNJ > 0 &&
			c.Utilization > 0 && c.Utilization <= 1 &&
			c.DRAMBytes > 0 && c.NoCBytes > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModelName(t *testing.T) {
	if New().Name() != "maestro" {
		t.Fatal("unexpected model name")
	}
}

func TestFullTileScheduleHasCompulsoryTrafficOnly(t *testing.T) {
	// When T2 covers the whole layer, every tensor crosses DRAM exactly
	// once: inputs and weights are read once, outputs written once with
	// no partial-sum readback.
	m := New()
	a := testAccel()
	a.L2KB = 256
	l := workload.Conv("t", 1, 16, 8, 3, 3, 18, 18)
	s := fullSchedule(l)
	s.T1, _ = sched.FitTiles(l, a.RFBytesPerPE(), 1)
	c, err := m.Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMWeightBytes != float64(l.WeightElems()) {
		t.Fatalf("weight traffic %v, want exactly %v", c.DRAMWeightBytes, l.WeightElems())
	}
	if c.DRAMOutputBytes != float64(l.OutputElems()) {
		t.Fatalf("output traffic %v, want exactly %v", c.DRAMOutputBytes, l.OutputElems())
	}
	if c.DRAMInputBytes != float64(l.InputElems()) {
		t.Fatalf("input traffic %v, want exactly %v", c.DRAMInputBytes, l.InputElems())
	}
	if c.DRAMBytes != c.DRAMInputBytes+c.DRAMWeightBytes+c.DRAMOutputBytes {
		t.Fatal("breakdown does not sum to total")
	}
}

func TestBreakdownSumsToTotalProperty(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(31))
	free := sched.Free()
	checked := 0
	for i := 0; i < 200 && checked < 50; i++ {
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		c, err := m.Evaluate(a, s, l)
		if err != nil {
			continue
		}
		checked++
		sum := c.DRAMInputBytes + c.DRAMWeightBytes + c.DRAMOutputBytes
		if sum != c.DRAMBytes {
			t.Fatalf("breakdown %v != total %v", sum, c.DRAMBytes)
		}
		if c.DRAMInputBytes < float64(l.InputElems()) ||
			c.DRAMWeightBytes < float64(l.WeightElems()) ||
			c.DRAMOutputBytes < float64(l.OutputElems()) {
			t.Fatalf("per-tensor traffic below compulsory: %+v", c)
		}
	}
	if checked < 20 {
		t.Fatalf("too few valid schedules to check: %d", checked)
	}
}

func TestPowerEnergyDelayConsistency(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	c, err := m.Evaluate(a, fittedSchedule(a, l), l)
	if err != nil {
		t.Fatal(err)
	}
	// At 1 GHz, avg power (mW) = energy (pJ) / delay (cycles).
	want := c.EnergyNJ * 1000 / c.DelayCycles
	if math.Abs(c.PowerMW-want) > 1e-9*want {
		t.Fatalf("power %v inconsistent with E/D %v", c.PowerMW, want)
	}
}

func TestDelayIsRooflineMax(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	c, err := m.Evaluate(a, fittedSchedule(a, l), l)
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Max(c.ComputeCycles, math.Max(c.DRAMCycles, c.NoCCycles))
	if c.DelayCycles < bound {
		t.Fatalf("delay %v below roofline %v", c.DelayCycles, bound)
	}
	// The ramp overhead is the only addition beyond the roofline.
	ramp := float64(a.Height() + a.Width)
	if c.DelayCycles > bound+ramp+1e-9 {
		t.Fatalf("delay %v exceeds roofline+ramp %v", c.DelayCycles, bound+ramp)
	}
}

func TestSameDimDoubleUnroll(t *testing.T) {
	// Unrolling the same dimension at both levels spreads its subtiles
	// over the whole array; the schedule must still evaluate cleanly.
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)
	s.T2[workload.DimK] = 64
	s.T1[workload.DimK] = 1 // 64 K-subtiles over a 12x14 array
	s.OuterUnroll, s.InnerUnroll = workload.DimK, workload.DimK
	c, err := m.Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if c.Utilization <= 0 || c.Utilization > 1 {
		t.Fatalf("double-unroll utilization out of range: %v", c.Utilization)
	}
}
