package maestro

import (
	"fmt"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// EvaluateBatch evaluates many candidate schedules against one
// (accelerator, layer) pair in a single call. Results are positional:
// costs[i] and errs[i] correspond to ss[i], and each pair is bit-for-bit
// identical to what Evaluate(a, ss[i], l) returns — same cost fields,
// same error strings, same errors.Is(err, ErrInvalid) classification.
//
// The win over calling Evaluate in a loop comes from amortization:
// accelerator and layer validation run once per batch, the per-layer
// context (dimension extents, capacity bounds, MAC count, the sqrt-based
// energy coefficients) is built once, schedule validation is fused with
// trip-count computation, and invalid schedules get lazy errors whose
// messages are only formatted if something actually reads them. The
// inner loop allocates nothing; the whole call allocates the two result
// slices plus at most one error slab.
func (m *Model) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]Cost, []error) {
	costs := make([]Cost, len(ss))
	errs := make([]error, len(ss))
	if len(ss) == 0 {
		return costs, errs
	}
	if err := a.Validate(); err != nil {
		shared := fmt.Errorf("%w: %v", ErrInvalid, err)
		for i := range errs {
			errs[i] = shared
		}
		return costs, errs
	}
	if err := l.Validate(); err != nil {
		shared := fmt.Errorf("%w: %v", ErrInvalid, err)
		for i := range errs {
			errs[i] = shared
		}
		return costs, errs
	}

	ctx := newLayerCtx(a, l)
	// Lazy-error slab: preallocated to len(ss) on first use so appends
	// never reallocate while &slab[i] pointers are held in errs.
	var slab []batchInvalid
	push := func(e batchInvalid) *batchInvalid {
		if slab == nil {
			slab = make([]batchInvalid, 0, len(ss))
		}
		slab = append(slab, e)
		return &slab[len(slab)-1]
	}

	for i := range ss {
		s := &ss[i]
		n2, n1, ok := s.TripCounts(ctx.sizes)
		if !ok {
			errs[i] = push(batchInvalid{op: invalidSched, s: *s, l: l})
			continue
		}
		if rfNeed := sched.TileFootprint(l, s.T1); rfNeed > ctx.rfCap {
			errs[i] = push(batchInvalid{op: invalidRF, need: rfNeed, cap_: ctx.rfCap})
			continue
		}
		if l2Need := sched.TileFootprint(l, s.T2); l2Need > ctx.l2Cap {
			errs[i] = push(batchInvalid{op: invalidL2, need: l2Need, cap_: ctx.l2Cap})
			continue
		}
		costs[i] = ctx.costOf(s, n2, n1)
	}
	return costs, errs
}

// batchInvalidOp names which validity check a batched schedule failed.
type batchInvalidOp int

const (
	invalidSched batchInvalidOp = iota // structural: Validate(l) fails
	invalidRF                          // T1 footprint exceeds the PE register file
	invalidL2                          // T2 footprint exceeds the scratchpad
)

// batchInvalid is the lazy counterpart of the fmt.Errorf-wrapped
// ErrInvalid errors Evaluate returns: formatting is deferred to Error(),
// so batches full of invalid candidates (the common case during random
// search, per §IV of the paper) never pay for message construction the
// searchers immediately discard. Error() reproduces the sequential
// message byte-for-byte; Unwrap preserves errors.Is(err, ErrInvalid).
type batchInvalid struct {
	op   batchInvalidOp
	s    sched.Schedule // structural failures re-run Validate for the reason
	l    workload.Layer
	need int64 // capacity failures: bytes needed ...
	cap_ int64 // ... vs bytes available
}

// Unwrap matches fmt.Errorf("%w: ...", ErrInvalid, ...): only ErrInvalid
// is in the wrap chain, never the inner validation error.
func (e *batchInvalid) Unwrap() error { return ErrInvalid }

func (e *batchInvalid) Error() string {
	switch e.op {
	case invalidRF:
		return fmt.Sprintf("%v: RF tile needs %d B, PE register file holds %d B",
			ErrInvalid, e.need, e.cap_)
	case invalidL2:
		return fmt.Sprintf("%v: L2 working set needs %d B, scratchpad holds %d B",
			ErrInvalid, e.need, e.cap_)
	default:
		// TripCounts only reports that the schedule is structurally
		// invalid; recover the reason by re-running the full validation.
		if err := e.s.Validate(e.l); err != nil {
			return fmt.Sprintf("%v: %v", ErrInvalid, err)
		}
		return ErrInvalid.Error()
	}
}
