package maestro

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// batchCandidates builds a schedule mix like the one a real software
// search produces: mostly constraint-sampled schedules (valid or
// capacity-invalid), salted with structurally corrupt ones.
func batchCandidates(rng *rand.Rand, a hw.Accel, l workload.Layer, n int) []sched.Schedule {
	ss := make([]sched.Schedule, n)
	free := sched.Free()
	for i := range ss {
		ss[i] = free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		switch i % 7 {
		case 3: // tile does not divide the dimension
			ss[i].T2[workload.DimK] = l.K + 1
		case 5: // broken permutation
			ss[i].InnerOrder[0] = ss[i].InnerOrder[1]
		case 6: // unroll out of range
			ss[i].OuterUnroll = workload.Dim(workload.NumDims)
		}
	}
	return ss
}

// assertBatchMatchesSequential is the core equivalence check: every
// batched (cost, err) pair must be bitwise identical to the sequential
// Evaluate result — identical float bits in every cost field, identical
// error strings, identical errors.Is(err, ErrInvalid) classification.
func assertBatchMatchesSequential(t *testing.T, m *Model, a hw.Accel, ss []sched.Schedule, l workload.Layer) {
	t.Helper()
	costs, errs := m.EvaluateBatch(a, ss, l)
	if len(costs) != len(ss) || len(errs) != len(ss) {
		t.Fatalf("batch returned %d costs / %d errs for %d schedules", len(costs), len(errs), len(ss))
	}
	for i := range ss {
		wantCost, wantErr := m.Evaluate(a, ss[i], l)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("schedule %d: batch err=%v, sequential err=%v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Fatalf("schedule %d: error strings differ:\nbatch:      %q\nsequential: %q",
					i, errs[i].Error(), wantErr.Error())
			}
			if errors.Is(errs[i], ErrInvalid) != errors.Is(wantErr, ErrInvalid) {
				t.Fatalf("schedule %d: ErrInvalid classification differs", i)
			}
			continue
		}
		if costs[i] != wantCost {
			t.Fatalf("schedule %d: costs differ:\nbatch:      %+v\nsequential: %+v",
				i, costs[i], wantCost)
		}
	}
}

func TestEvaluateBatchMatchesSequential(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(61))
	space := hw.EdgeSpace()
	layers := []workload.Layer{
		testLayer(),
		workload.Conv("wide", 1, 128, 64, 1, 1, 14, 14),
		workload.FromGEMM("gemm", 512, 64, 196),
		workload.FromDepthwise("dw", 32, 3, 3, 28, 28, 1),
	}
	for trial := 0; trial < 8; trial++ {
		a := space.Random(rng)
		l := layers[trial%len(layers)]
		assertBatchMatchesSequential(t, m, a, batchCandidates(rng, a, l, 64), l)
	}
}

func TestEvaluateBatchInvalidAccelAndLayer(t *testing.T) {
	m := New()
	l := testLayer()
	ss := batchCandidates(rand.New(rand.NewSource(7)), testAccel(), l, 8)

	badAccel := testAccel()
	badAccel.PEs = 0
	assertBatchMatchesSequential(t, m, badAccel, ss, l)

	badLayer := l
	badLayer.K = -1
	assertBatchMatchesSequential(t, m, testAccel(), ss, badLayer)
}

func TestEvaluateBatchEmptyAndSingle(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	costs, errs := m.EvaluateBatch(a, nil, l)
	if len(costs) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(costs), len(errs))
	}
	assertBatchMatchesSequential(t, m, a, []sched.Schedule{fittedSchedule(a, l)}, l)
}

// TestEvaluateBatchConcurrent races 8 workers over batches against the
// one shared Model, each checking bitwise equivalence against its own
// sequential replay — EvaluateBatch must be as concurrency-safe as
// Evaluate (satellite 1 of the batching issue).
func TestEvaluateBatchConcurrent(t *testing.T) {
	m := New()
	space := hw.EdgeSpace()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for trial := 0; trial < 6; trial++ {
				a := space.Random(rng)
				l := workload.Conv("race", 1, 32+w, 16, 3, 3, 14, 14)
				assertBatchMatchesSequential(t, m, a, batchCandidates(rng, a, l, 32), l)
			}
		}(w)
	}
	wg.Wait()
}

// TestTripCountsMatchesValidate pins the fused fast path to the slow
// one: for random (and corrupted) schedules, TripCounts must say ok
// exactly when Validate returns nil, and on ok its trip counts must
// equal OuterTrips/InnerTrips.
func TestTripCountsMatchesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := testAccel()
	l := testLayer()
	sizes := l.Sizes()
	for _, s := range batchCandidates(rng, a, l, 256) {
		n2, n1, ok := s.TripCounts(sizes)
		if wantOK := s.Validate(l) == nil; ok != wantOK {
			t.Fatalf("TripCounts ok=%v, Validate ok=%v for %s", ok, wantOK, s)
		}
		if !ok {
			continue
		}
		if n2 != s.OuterTrips(l) || n1 != s.InnerTrips(l) {
			t.Fatalf("trip counts diverge for %s", s)
		}
	}
	var zero sched.Schedule
	if _, _, ok := zero.TripCounts(sizes); ok {
		t.Fatal("zero schedule reported valid")
	}
}

// FuzzEvaluateBatch pairs the batch and sequential paths on fuzzed
// layer shapes and seeded-random schedule mixes.
func FuzzEvaluateBatch(f *testing.F) {
	f.Add(int64(1), 16, 8, 3, 12)
	f.Add(int64(2), 64, 32, 1, 8)
	f.Add(int64(3), 1, 1, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, k, c, rs, xy int) {
		k = bound(k, 1, 256)
		c = bound(c, 1, 256)
		rs = bound(rs, 1, 7)
		xy = bound(xy, rs, 64)
		l := workload.Conv("fuzz", 1, k, c, rs, rs, xy, xy)
		if l.Validate() != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := hw.EdgeSpace().Random(rng)
		m := New()
		ss := batchCandidates(rng, a, l, 16)
		assertBatchMatchesSequential(t, m, a, ss, l)

		costs, errs := m.EvaluateBatch(a, ss, l)
		for i := range ss {
			if errs[i] != nil {
				continue
			}
			if !costs[i].Finite() || costs[i].DelayCycles <= 0 {
				t.Fatalf("schedule %d: non-finite or non-positive batched cost: %+v", i, costs[i])
			}
			if math.IsNaN(costs[i].EDP()) {
				t.Fatalf("schedule %d: NaN EDP", i)
			}
		}
	})
}
