package maestro

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// FuzzEvaluate drives the analytical model with arbitrary (bounded)
// layers and seeded-random schedules: every outcome must be either a
// wrapped ErrInvalid or a finite, positive cost.
func FuzzEvaluate(f *testing.F) {
	f.Add(int64(1), 16, 8, 3, 12)
	f.Add(int64(2), 64, 32, 1, 8)
	f.Add(int64(3), 1, 1, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, k, c, rs, xy int) {
		k = bound(k, 1, 256)
		c = bound(c, 1, 256)
		rs = bound(rs, 1, 7)
		xy = bound(xy, rs, 64)
		l := workload.Conv("fuzz", 1, k, c, rs, rs, xy, xy)
		if l.Validate() != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := hw.EdgeSpace().Random(rng)
		s := sched.Free().Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		m := New()
		cost, err := m.Evaluate(a, s, l)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("non-ErrInvalid failure: %v", err)
			}
			return
		}
		for name, v := range map[string]float64{
			"delay":  cost.DelayCycles,
			"energy": cost.EnergyNJ,
			"dram":   cost.DRAMBytes,
			"noc":    cost.NoCBytes,
			"power":  cost.PowerMW,
		} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v for %s on %s", name, v, l, a)
			}
		}
		if cost.Utilization <= 0 || cost.Utilization > 1 {
			t.Fatalf("utilization = %v", cost.Utilization)
		}
	})
}

func bound(v, lo, hi int) int {
	if v < 0 {
		v = -v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return lo + v%(hi-lo+1)
	}
	return v
}
