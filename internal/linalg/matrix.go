// Package linalg provides the small dense linear algebra kernel needed by
// the Gaussian process surrogate: dense matrices, Cholesky factorization,
// triangular solves, and a handful of vector helpers.
//
// The package is deliberately minimal — the GP operates on at most a few
// hundred observations, so simple O(n^3) dense algorithms are the right
// tool and keep the module dependency-free.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = Dot(a.Row(i), x)
	}
	return y
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// ErrNotPD reports that a matrix passed to Cholesky was not (numerically)
// positive definite even after jitter was applied.
var ErrNotPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A such that A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factorizes the symmetric matrix a. If the factorization fails
// it retries with exponentially increasing diagonal jitter up to maxJitter;
// GP kernel matrices are frequently near-singular, and jitter is the
// standard remedy. Returns ErrNotPD when no jitter in range succeeds.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	const maxJitter = 1e-2
	jitter := 0.0
	for {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return &Cholesky{L: l}, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 10
		}
		if jitter > maxJitter {
			return nil, ErrNotPD
		}
	}
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = a.At(j, j) + jitter - d
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return l, true
}

// SolveVec solves A·x = b for x using the factorization (forward then
// backward substitution).
func (c *Cholesky) SolveVec(b []float64) []float64 {
	x := make([]float64, len(b))
	c.SolveVecTo(x, b)
	return x
}

// SolveVecTo solves A·x = b into dst without allocating, for hot loops
// that reuse a scratch buffer. dst and b may be the same slice.
func (c *Cholesky) SolveVecTo(dst, b []float64) {
	c.SolveLowerTo(dst, b)
	c.backwardSolve(dst)
}

// SolveLowerTo solves the triangular system L·y = b into dst without
// allocating. dst and b may be the same slice. Solving against L alone
// is the cheap half of SolveVecTo and enough for quadratic forms:
// bᵀ·A⁻¹·b = ‖L⁻¹b‖².
func (c *Cholesky) SolveLowerTo(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("linalg: solve length mismatch %d/%d vs %d", len(dst), len(b), n))
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
}

// backwardSolve solves Lᵀ·x = y in place: x[i] depends only on y[i] and
// already-computed x[k] for k > i, so overwriting is safe.
func (c *Cholesky) backwardSolve(y []float64) {
	n := c.L.Rows
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
}

// LogDet returns log(det(A)) = 2·Σ log(L[i][i]) of the factorized matrix.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v, or 0 for fewer
// than two elements.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
