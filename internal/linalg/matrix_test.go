package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m := NewMatrixFromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("shape = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestNewMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	y := MulVec(a, []float64{4, 5, 6})
	if y[0] != 16 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [16 15]", y)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product incorrect")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("norm incorrect")
	}
}

func TestCholeskyIdentity(t *testing.T) {
	n := 4
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("cholesky failed: %v", err)
	}
	for i := 0; i < n; i++ {
		if !almostEqual(ch.L.At(i, i), 1, 1e-9) {
			t.Fatalf("L[%d][%d] = %v, want 1", i, i, ch.L.At(i, i))
		}
	}
	x := ch.SolveVec([]float64{1, 2, 3, 4})
	for i, v := range []float64{1, 2, 3, 4} {
		if !almostEqual(x[i], v, 1e-9) {
			t.Fatalf("solve identity x[%d] = %v, want %v", i, x[i], v)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
	a := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("cholesky failed: %v", err)
	}
	if !almostEqual(ch.L.At(0, 0), 2, 1e-9) ||
		!almostEqual(ch.L.At(1, 0), 1, 1e-9) ||
		!almostEqual(ch.L.At(1, 1), math.Sqrt2, 1e-9) {
		t.Fatalf("unexpected factor %v", ch.L.Data)
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		// Build SPD matrix A = B·Bᵀ + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := Mul(b, b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := MulVec(a, xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: cholesky failed: %v", trial, err)
		}
		x := ch.SolveVec(rhs)
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-6) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0}, {0, -5}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure for indefinite matrix")
	}
}

func TestCholeskyJitterRecoversSingular(t *testing.T) {
	// Rank-deficient PSD matrix: ones matrix. Jitter should rescue it.
	n := 3
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = 1
	}
	if _, err := NewCholesky(a); err != nil {
		t.Fatalf("jitter did not rescue PSD matrix: %v", err)
	}
}

func TestLogDet(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ch.LogDet(), math.Log(36), 1e-9) {
		t.Fatalf("logdet = %v, want %v", ch.LogDet(), math.Log(36))
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean incorrect")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("stddev of single element should be 0")
	}
	if !almostEqual(StdDev([]float64{2, 4}), 1, 1e-12) {
		t.Fatal("stddev incorrect")
	}
}

// Property: for any SPD matrix built as B·Bᵀ+I, Cholesky reconstructs it.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := Mul(b, b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		recon := Mul(ch.L, ch.L.T())
		for i := range a.Data {
			if !almostEqual(recon.Data[i], a.Data[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return almostEqual(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
