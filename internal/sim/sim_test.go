package sim

import (
	"errors"
	"math/rand"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func testAccel() hw.Accel {
	return hw.Accel{PEs: 64, Width: 8, SIMDLanes: 2, RFKB: 64, L2KB: 128, NoCBW: 64}
}

func testLayer() workload.Layer {
	return workload.Conv("t", 1, 16, 8, 3, 3, 10, 10) // 8x8 out
}

// smallSchedule tiles every searched dim at 2 so the nest is walkable.
func smallSchedule(l workload.Layer) sched.Schedule {
	var s sched.Schedule
	for i, d := range workload.AllDims {
		size := l.Size(d)
		t2 := size
		if size%2 == 0 {
			t2 = size / 2
		}
		s.T2[i] = t2
		s.T1[i] = 1
	}
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll = workload.DimK
	s.InnerUnroll = workload.DimC
	return s
}

func TestSimulateBasics(t *testing.T) {
	tr, err := Simulate(testAccel(), smallSchedule(testLayer()), testLayer(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Trips with halved tiles: N1 K2 C2 R1 S1 X2 Y2 => 16 iterations.
	if tr.Iterations != 16 {
		t.Fatalf("walked %d iterations, want 16", tr.Iterations)
	}
	for _, tensor := range []Tensor{TensorInput, TensorWeight, TensorOutput} {
		if tr.Fetches[tensor] == 0 {
			t.Fatalf("%v never fetched", tensor)
		}
	}
	if tr.DRAMBytes() <= 0 {
		t.Fatal("no DRAM traffic")
	}
}

// The headline validation: with a single working set, the simulator's
// traffic must match the analytical model's stationarity-rule DRAM
// traffic exactly, across random schedules and loop orders.
func TestSimulatorMatchesAnalyticalModel(t *testing.T) {
	a := testAccel()
	l := testLayer()
	m := maestro.New()
	rng := rand.New(rand.NewSource(7))
	free := sched.Free()
	checked := 0
	for i := 0; i < 400 && checked < 60; i++ {
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		cost, err := m.Evaluate(a, s, l)
		if err != nil {
			continue
		}
		tr, err := Simulate(a, s, l, Options{SingleWorkingSet: true})
		if err != nil {
			continue
		}
		checked++
		if got, want := tr.DRAMBytes(), cost.DRAMBytes; got != want {
			t.Fatalf("schedule %d: simulated DRAM %v != analytical %v\n%s", i, got, want, s)
		}
	}
	if checked < 30 {
		t.Fatalf("only %d schedules checked", checked)
	}
}

func TestLargerCacheNeverIncreasesTraffic(t *testing.T) {
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(9))
	free := sched.Free()
	checked := 0
	for i := 0; i < 300 && checked < 40; i++ {
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		single, err1 := Simulate(a, s, l, Options{SingleWorkingSet: true})
		full, err2 := Simulate(a, s, l, Options{})
		if err1 != nil || err2 != nil {
			continue
		}
		checked++
		if full.DRAMBytes() > single.DRAMBytes() {
			t.Fatalf("full cache moved more data (%v) than single working set (%v)\n%s",
				full.DRAMBytes(), single.DRAMBytes(), s)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d schedules checked", checked)
	}
}

func TestCompulsoryTraffic(t *testing.T) {
	// Reads can never go below one pass over inputs and weights, and
	// writes never below one pass over outputs.
	a := testAccel()
	l := testLayer()
	s := smallSchedule(l)
	tr, err := Simulate(a, s, l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DRAMWriteBytes < float64(l.OutputElems()) {
		t.Fatalf("writes %v below output size %v", tr.DRAMWriteBytes, l.OutputElems())
	}
	if tr.DRAMReadBytes < float64(l.WeightElems()) {
		t.Fatalf("reads %v below weight size %v", tr.DRAMReadBytes, l.WeightElems())
	}
}

func TestHitRate(t *testing.T) {
	a := testAccel()
	l := testLayer()
	tr, err := Simulate(a, l2Friendly(l), l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tensor := range []Tensor{TensorInput, TensorWeight, TensorOutput} {
		hr := tr.HitRate(tensor)
		if hr < 0 || hr > 1 {
			t.Fatalf("%v hit rate %v out of range", tensor, hr)
		}
	}
	if (Trace{}).HitRate(TensorInput) != 0 {
		t.Fatal("empty trace hit rate should be 0")
	}
}

// l2Friendly makes small weight tiles so several fit in L2 and hits occur.
func l2Friendly(l workload.Layer) sched.Schedule {
	s := smallSchedule(l)
	s.T2[workload.DimK] = 1
	return s
}

func TestRejectsHugeNest(t *testing.T) {
	l := workload.Conv("big", 1, 512, 512, 3, 3, 226, 226)
	var s sched.Schedule
	for i := range workload.AllDims {
		s.T2[i] = 1
		s.T1[i] = 1
	}
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	_, err := Simulate(testAccel(), s, l, Options{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestRejectsOversizedWorkingSet(t *testing.T) {
	a := testAccel()
	a.L2KB = 64
	l := workload.Conv("fat", 1, 256, 256, 3, 3, 18, 18)
	var s sched.Schedule
	for i, d := range workload.AllDims {
		s.T2[i] = l.Size(d)
		s.T1[i] = 1
	}
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	if _, err := Simulate(a, s, l, Options{}); err == nil {
		t.Fatal("oversized working set accepted")
	}
}

func TestTensorString(t *testing.T) {
	if TensorInput.String() != "input" || TensorWeight.String() != "weight" ||
		TensorOutput.String() != "output" {
		t.Fatal("tensor names wrong")
	}
	if Tensor(9).String() != "Tensor(9)" {
		t.Fatal("unknown tensor name wrong")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(10)
	if c.touch(tileKey{TensorInput, 1}, 6, false) {
		t.Fatal("cold miss reported as hit")
	}
	if !c.touch(tileKey{TensorInput, 1}, 6, false) {
		t.Fatal("resident tile reported as miss")
	}
	// Insert a second tile that forces eviction of the first.
	c.touch(tileKey{TensorWeight, 1}, 6, false)
	if c.touch(tileKey{TensorInput, 1}, 6, false) {
		t.Fatal("evicted tile reported as hit")
	}
}

func TestLRUDirtyWriteback(t *testing.T) {
	c := newLRU(10)
	c.touch(tileKey{TensorOutput, 1}, 6, true)
	c.touch(tileKey{TensorInput, 1}, 6, false) // evicts the dirty output
	if c.writebackBytes != 6 {
		t.Fatalf("writeback bytes = %d, want 6", c.writebackBytes)
	}
	c.touch(tileKey{TensorOutput, 2}, 6, true)
	c.flushDirty()
	if c.writebackBytes != 12 {
		t.Fatalf("writeback bytes after flush = %d, want 12", c.writebackBytes)
	}
	// Flushing twice must not double-count.
	c.flushDirty()
	if c.writebackBytes != 12 {
		t.Fatal("flush double-counted")
	}
}

func TestAdvanceWalksFullNest(t *testing.T) {
	var idx [workload.NumDims]int
	trips := [workload.NumDims]int{1, 2, 3, 1, 1, 2, 1}
	order := sched.CanonicalOrder()
	count := 1
	for advance(&idx, order, trips) {
		count++
	}
	if count != 2*3*2 {
		t.Fatalf("walked %d iterations, want 12", count)
	}
}
