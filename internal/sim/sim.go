// Package sim is a trace-driven simulator of the accelerator's
// DRAM↔scratchpad traffic: it walks the schedule's outer loop nest
// iteration by iteration, modeling the L2 scratchpad as an LRU cache of
// tensor tiles with dirty-output writeback. It serves two purposes:
//
//  1. Validation: with the scratchpad restricted to a single working
//     set, the simulated fetch counts must equal the analytical model's
//     stationarity-rule fills exactly — a ground-truth check on
//     internal/maestro (the role RTL validation plays for MAESTRO).
//  2. Extension: with the full scratchpad capacity, the simulator
//     quantifies the reuse a multi-tile cache would add over the
//     analytical single-working-set assumption — the "more costly but
//     more accurate evaluation backend" direction of the paper's §VIII.
//
// Simulation cost is linear in the outer iteration count, so it is for
// small-to-medium layers; Simulate rejects nests above MaxIterations.
package sim

import (
	"container/list"
	"errors"
	"fmt"

	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Tensor identifies one of the CONV operands.
type Tensor int

// The three CONV tensors.
const (
	TensorInput Tensor = iota
	TensorWeight
	TensorOutput
)

var tensorNames = [3]string{"input", "weight", "output"}

// String returns the tensor's name.
func (t Tensor) String() string {
	if t < 0 || int(t) >= len(tensorNames) {
		return fmt.Sprintf("Tensor(%d)", int(t))
	}
	return tensorNames[int(t)]
}

// Options bounds and configures a simulation.
type Options struct {
	// MaxIterations rejects outer loop nests with more iterations
	// (default 4e6).
	MaxIterations float64
	// SingleWorkingSet restricts the scratchpad to exactly one tile per
	// tensor, matching the analytical model's residency assumption. When
	// false the full L2 capacity is used as an LRU tile cache.
	SingleWorkingSet bool
}

// Trace is the result of simulating a schedule's DRAM-level behavior.
type Trace struct {
	Iterations int // outer loop iterations walked

	Fetches [3]int64 // per-tensor tile fetches from DRAM
	Hits    [3]int64 // per-tensor scratchpad hits

	DRAMReadBytes  float64
	DRAMWriteBytes float64 // dirty output writebacks, including the final flush
}

// DRAMBytes is the total off-chip traffic.
func (t Trace) DRAMBytes() float64 { return t.DRAMReadBytes + t.DRAMWriteBytes }

// HitRate returns the scratchpad hit rate for one tensor.
func (t Trace) HitRate(tensor Tensor) float64 {
	total := t.Fetches[tensor] + t.Hits[tensor]
	if total == 0 {
		return 0
	}
	return float64(t.Hits[tensor]) / float64(total)
}

// ErrTooLarge reports an outer loop nest beyond Options.MaxIterations.
var ErrTooLarge = errors.New("sim: loop nest too large to walk")

// tileKey identifies one resident tile.
type tileKey struct {
	tensor Tensor
	id     int64
}

// cacheEntry is one scratchpad-resident tile.
type cacheEntry struct {
	key   tileKey
	bytes int64
	dirty bool
}

// lruCache is the scratchpad model: byte-capacity LRU over tiles.
type lruCache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	index    map[tileKey]*list.Element

	writebackBytes int64
}

func newLRU(capacity int64) *lruCache {
	return &lruCache{capacity: capacity, order: list.New(), index: map[tileKey]*list.Element{}}
}

// touch accesses a tile, returning true on hit. On miss the tile is
// fetched (evicting LRU tiles as needed, accumulating writebacks for
// dirty ones).
func (c *lruCache) touch(key tileKey, bytes int64, dirty bool) bool {
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		if dirty {
			el.Value.(*cacheEntry).dirty = true
		}
		return true
	}
	for c.used+bytes > c.capacity && c.order.Len() > 0 {
		back := c.order.Back()
		e := back.Value.(*cacheEntry)
		if e.dirty {
			c.writebackBytes += e.bytes
		}
		c.used -= e.bytes
		delete(c.index, e.key)
		c.order.Remove(back)
	}
	e := &cacheEntry{key: key, bytes: bytes, dirty: dirty}
	c.index[key] = c.order.PushFront(e)
	c.used += bytes
	return false
}

// flushDirty writes back every dirty resident tile.
func (c *lruCache) flushDirty() {
	for el := c.order.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.dirty {
			c.writebackBytes += e.bytes
			e.dirty = false
		}
	}
}

// tensor dependence sets (which loop dims select a tensor's tile).
var deps = [3][workload.NumDims]bool{
	TensorInput:  dimSet(workload.DimN, workload.DimC, workload.DimX, workload.DimY, workload.DimR, workload.DimS),
	TensorWeight: dimSet(workload.DimK, workload.DimC, workload.DimR, workload.DimS),
	TensorOutput: dimSet(workload.DimN, workload.DimK, workload.DimX, workload.DimY),
}

func dimSet(ds ...workload.Dim) [workload.NumDims]bool {
	var s [workload.NumDims]bool
	for _, d := range ds {
		s[d] = true
	}
	return s
}

// Simulate walks the DRAM-level loop nest of the schedule and returns
// the traffic trace. The accelerator contributes only its scratchpad
// capacity; compute and on-chip traffic are below this level.
func Simulate(a hw.Accel, s sched.Schedule, l workload.Layer, opts Options) (Trace, error) {
	if err := a.Validate(); err != nil {
		return Trace{}, err
	}
	if err := l.Validate(); err != nil {
		return Trace{}, err
	}
	if err := s.Validate(l); err != nil {
		return Trace{}, err
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 4e6
	}

	trips := s.OuterTrips(l)
	total := 1.0
	for _, n := range trips {
		total *= float64(n)
	}
	if total > opts.MaxIterations {
		return Trace{}, fmt.Errorf("%w: %.3g iterations > bound %.3g", ErrTooLarge, total, opts.MaxIterations)
	}

	tileBytes := [3]int64{
		TensorInput:  inputTileBytes(l, s.T2),
		TensorWeight: weightTileBytes(s.T2),
		TensorOutput: outputTileBytes(s.T2),
	}
	capacity := a.L2Bytes()
	if opts.SingleWorkingSet {
		capacity = tileBytes[0] + tileBytes[1] + tileBytes[2]
	}
	if capacity < tileBytes[0]+tileBytes[1]+tileBytes[2] {
		return Trace{}, fmt.Errorf("sim: T2 working set (%d B) exceeds scratchpad (%d B)",
			tileBytes[0]+tileBytes[1]+tileBytes[2], capacity)
	}
	cache := newLRU(capacity)

	// Walk the nest in the schedule's outer order; idx holds the loop
	// counter of each dimension (by canonical dim index).
	var idx [workload.NumDims]int
	var trace Trace
	for {
		trace.Iterations++
		for _, tensor := range []Tensor{TensorInput, TensorWeight, TensorOutput} {
			id := tileID(idx, trips, deps[tensor])
			dirty := tensor == TensorOutput
			if cache.touch(tileKey{tensor, id}, tileBytes[tensor], dirty) {
				trace.Hits[tensor]++
			} else {
				trace.Fetches[tensor]++
				trace.DRAMReadBytes += float64(tileBytes[tensor])
			}
		}
		if !advance(&idx, s.OuterOrder, trips) {
			break
		}
	}
	cache.flushDirty()
	// A freshly produced output tile's first fetch has nothing useful to
	// read from DRAM; its "fetch" allocates space only. Remove those
	// reads: each distinct output tile's first touch is an allocation.
	distinctOut := int64(1)
	for i, d := range workload.AllDims {
		if deps[TensorOutput][d] {
			distinctOut *= int64(trips[i])
		}
	}
	trace.DRAMReadBytes -= float64(distinctOut * tileBytes[TensorOutput])
	trace.DRAMWriteBytes = float64(cache.writebackBytes)
	return trace, nil
}

// advance increments the loop nest's counters in the given order
// (innermost first), returning false when the nest completes.
func advance(idx *[workload.NumDims]int, order [workload.NumDims]workload.Dim, trips [workload.NumDims]int) bool {
	for i := workload.NumDims - 1; i >= 0; i-- {
		d := order[i]
		idx[d]++
		if idx[d] < trips[d] {
			return true
		}
		idx[d] = 0
	}
	return false
}

// tileID flattens the dependent loop counters into a tile identifier.
func tileID(idx, trips [workload.NumDims]int, dep [workload.NumDims]bool) int64 {
	var id int64
	for i, d := range workload.AllDims {
		if dep[d] {
			id = id*int64(trips[i]) + int64(idx[i])
		}
	}
	return id
}

func inputTileBytes(l workload.Layer, t [workload.NumDims]int) int64 {
	inX := int64(t[workload.DimX]-1)*int64(l.StrideX) + int64(t[workload.DimR])
	inY := int64(t[workload.DimY]-1)*int64(l.StrideY) + int64(t[workload.DimS])
	return int64(t[workload.DimN]) * int64(t[workload.DimC]) * inX * inY
}

func weightTileBytes(t [workload.NumDims]int) int64 {
	return int64(t[workload.DimK]) * int64(t[workload.DimC]) * int64(t[workload.DimR]) * int64(t[workload.DimS])
}

func outputTileBytes(t [workload.NumDims]int) int64 {
	return int64(t[workload.DimN]) * int64(t[workload.DimK]) * int64(t[workload.DimX]) * int64(t[workload.DimY])
}
