package sim

import (
	"math"
	"sync/atomic"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Backend is a hybrid cost-model backend in the spirit of the paper's
// §VIII future-work direction ("more costly but more accurate evaluation
// backends"): it runs the primary analytical model, then — whenever the
// schedule's outer loop nest is small enough to walk — replaces the
// analytical DRAM traffic with the trace-driven LRU-cache simulation and
// re-derives delay, energy, and the dependent metrics. Schedules whose
// nests are too large to simulate fall back to the analytical estimate,
// so the backend is usable as a drop-in core.Evaluator.
//
// Energy re-derivation uses the same coefficients as the analytical
// model, so differences reflect only the more accurate traffic.
type Backend struct {
	analytical *maestro.Model
	opts       Options

	// Evaluation counters are atomic because the core driver may call
	// Evaluate from several layer workers at once (RunConfig.Workers).
	simulated atomic.Int64
	fallback  atomic.Int64
}

// Counts reports how many evaluations used the trace simulator and how
// many fell back to the analytical estimate, for tests and reporting.
func (b *Backend) Counts() (simulated, fallback int) {
	return int(b.simulated.Load()), int(b.fallback.Load())
}

// NewBackend returns a hybrid backend with the given simulation bounds
// (zero-value Options give the defaults).
func NewBackend(opts Options) *Backend {
	return &Backend{analytical: maestro.New(), opts: opts}
}

// Name implements core.Evaluator.
func (*Backend) Name() string { return "sim-hybrid" }

// Energy coefficient shared with the analytical model's DRAM term.
const eDRAMPerByte = 200.0

// Evaluate implements core.Evaluator.
func (b *Backend) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	cost, err := b.analytical.Evaluate(a, s, l)
	if err != nil {
		return cost, err
	}
	trace, err := Simulate(a, s, l, b.opts)
	if err != nil {
		// Nest too large (or working set edge case): keep the analytical
		// numbers.
		b.fallback.Add(1)
		return cost, nil
	}
	b.simulated.Add(1)

	// Swap in the simulated DRAM traffic and re-derive the dependents.
	oldDRAM := cost.DRAMBytes
	newDRAM := trace.DRAMBytes()
	dramBW := math.Max(16, float64(a.NoCBW)/2)
	cost.DRAMBytes = newDRAM
	cost.DRAMCycles = newDRAM / dramBW
	ramp := cost.DelayCycles - math.Max(cost.ComputeCycles, math.Max(oldDRAM/dramBW, cost.NoCCycles))
	oldDelay := cost.DelayCycles
	cost.DelayCycles = math.Max(cost.ComputeCycles, math.Max(cost.DRAMCycles, cost.NoCCycles)) + ramp

	// Energy: remove the analytical DRAM + L2-fill term, add the
	// simulated one (L2 accesses include one write per DRAM byte).
	eL2 := 6.0 * math.Sqrt(float64(a.L2KB)/128)
	cost.EnergyNJ += (newDRAM - oldDRAM) * (eDRAMPerByte + eL2) / 1000
	cost.L2Bytes += newDRAM - oldDRAM
	cost.PowerMW = cost.EnergyNJ * 1000 / cost.DelayCycles
	// Utilization is time-averaged over the run; rescale to the new delay.
	cost.Utilization *= oldDelay / cost.DelayCycles
	return cost, nil
}
