package sim

import (
	"math"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Backend event names reported to the EventSink: which of the two
// evaluation paths a call took.
const (
	EventSimulated = "simulated" // trace-driven DRAM simulation replaced the analytical traffic
	EventFallback  = "fallback"  // nest too large; analytical estimate kept
)

// EventSink receives named backend events. The evaluation pipeline's
// stats middleware (internal/eval) implements it, so path counters live
// with the rest of the per-backend statistics instead of inside the
// backend; a nil sink drops the events. Implementations must be safe for
// concurrent use — Evaluate may be called from several layer workers at
// once (core.RunConfig.Workers).
type EventSink interface {
	Event(name string)
}

// Backend is a hybrid cost-model backend in the spirit of the paper's
// §VIII future-work direction ("more costly but more accurate evaluation
// backends"): it runs the primary analytical model, then — whenever the
// schedule's outer loop nest is small enough to walk — replaces the
// analytical DRAM traffic with the trace-driven LRU-cache simulation and
// re-derives delay, energy, and the dependent metrics. Schedules whose
// nests are too large to simulate fall back to the analytical estimate,
// so the backend is usable as a drop-in evaluator.
//
// Energy re-derivation uses the same coefficients as the analytical
// model, so differences reflect only the more accurate traffic.
type Backend struct {
	analytical *maestro.Model
	opts       Options

	// Events, when non-nil, is told which path each evaluation took
	// (EventSimulated or EventFallback). Set it before the first
	// Evaluate call; the pipeline builder wires it to the stats
	// middleware.
	Events EventSink
}

// NewBackend returns a hybrid backend with the given simulation bounds
// (zero-value Options give the defaults).
func NewBackend(opts Options) *Backend {
	return &Backend{analytical: maestro.New(), opts: opts}
}

// Name implements the evaluator contract.
func (*Backend) Name() string { return "sim-hybrid" }

// simVersion is bumped on any change to the simulation math or the
// simulate/fallback decision, either of which changes what a cached
// result would contain.
const simVersion = "sim-v1"

// ModelFingerprint identifies this backend's cost model for persistent
// caching. The hybrid falls back to the analytical model, so its
// fingerprint incorporates maestro's: a maestro change invalidates
// sim-hybrid stores too.
func (*Backend) ModelFingerprint() string {
	return "sim-hybrid/" + simVersion + "+maestro/" + maestro.CostModelVersion
}

// event reports one path decision to the sink, if any.
func (b *Backend) event(name string) {
	if b.Events != nil {
		b.Events.Event(name)
	}
}

// Evaluate implements the evaluator contract.
func (b *Backend) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	cost, err := b.analytical.Evaluate(a, s, l)
	if err != nil {
		return cost, err
	}
	trace, err := Simulate(a, s, l, b.opts)
	if err != nil {
		// Nest too large (or working set edge case): keep the analytical
		// numbers.
		b.event(EventFallback)
		return cost, nil
	}
	b.event(EventSimulated)

	// Swap in the simulated DRAM traffic and re-derive the dependents.
	oldDRAM := cost.DRAMBytes
	newDRAM := trace.DRAMBytes()
	dramBW := math.Max(16, float64(a.NoCBW)/2)
	cost.DRAMBytes = newDRAM
	cost.DRAMCycles = newDRAM / dramBW
	ramp := cost.DelayCycles - math.Max(cost.ComputeCycles, math.Max(oldDRAM/dramBW, cost.NoCCycles))
	oldDelay := cost.DelayCycles
	cost.DelayCycles = math.Max(cost.ComputeCycles, math.Max(cost.DRAMCycles, cost.NoCCycles)) + ramp

	// Energy: remove the analytical DRAM + L2-fill term, add the
	// simulated one (L2 accesses include one write per DRAM byte). The
	// DRAM coefficient is the analytical model's, so the only difference
	// between the two paths is the traffic itself.
	eL2 := 6.0 * math.Sqrt(float64(a.L2KB)/128)
	cost.EnergyNJ += (newDRAM - oldDRAM) * (maestro.EDRAMPerByte + eL2) / 1000
	cost.L2Bytes += newDRAM - oldDRAM
	cost.PowerMW = cost.EnergyNJ * 1000 / cost.DelayCycles
	// Utilization is time-averaged over the run; rescale to the new delay.
	cost.Utilization *= oldDelay / cost.DelayCycles
	return cost, nil
}
