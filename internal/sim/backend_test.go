package sim

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Compile-time: the hybrid backend is a drop-in cost model.
var _ core.Evaluator = (*Backend)(nil)

// recordingSink counts backend events, standing in for the pipeline's
// stats middleware.
type recordingSink struct {
	mu     sync.Mutex
	events map[string]int
}

func (r *recordingSink) Event(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = make(map[string]int)
	}
	r.events[name]++
}

func (r *recordingSink) count(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events[name]
}

func TestBackendSimulatesSmallNests(t *testing.T) {
	b := NewBackend(Options{})
	sink := &recordingSink{}
	b.Events = sink
	a := testAccel()
	l := testLayer()
	c, err := b.Evaluate(a, smallSchedule(l), l)
	if err != nil {
		t.Fatal(err)
	}
	if sim, fb := sink.count(EventSimulated), sink.count(EventFallback); sim != 1 || fb != 0 {
		t.Fatalf("expected one simulated evaluation, got sim=%d fb=%d", sim, fb)
	}
	if c.DelayCycles <= 0 || c.EnergyNJ <= 0 {
		t.Fatalf("bad hybrid cost: %+v", c)
	}
	if c.Utilization <= 0 || c.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", c.Utilization)
	}
	// The LRU cache can only reduce DRAM traffic relative to the
	// analytical single-working-set assumption.
	analytic, err := maestro.New().Evaluate(a, smallSchedule(l), l)
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMBytes > analytic.DRAMBytes {
		t.Fatalf("hybrid DRAM %v above analytical %v", c.DRAMBytes, analytic.DRAMBytes)
	}
	if c.EnergyNJ > analytic.EnergyNJ {
		t.Fatalf("hybrid energy %v above analytical %v", c.EnergyNJ, analytic.EnergyNJ)
	}
}

func TestBackendFallsBackOnHugeNests(t *testing.T) {
	b := NewBackend(Options{MaxIterations: 4})
	sink := &recordingSink{}
	b.Events = sink
	a := testAccel()
	l := testLayer()
	s := smallSchedule(l) // 16 iterations > bound 4
	c, err := b.Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if sim, fb := sink.count(EventSimulated), sink.count(EventFallback); fb != 1 || sim != 0 {
		t.Fatalf("expected fallback, got sim=%d fb=%d", sim, fb)
	}
	analytic, err := maestro.New().Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if c != analytic {
		t.Fatal("fallback result differs from the analytical model")
	}
}

func TestBackendPropagatesInvalidity(t *testing.T) {
	b := NewBackend(Options{})
	a := testAccel()
	l := testLayer()
	s := smallSchedule(l)
	s.T2[workload.DimK] = 3 // not a divisor of K=16
	if _, err := b.Evaluate(a, s, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatalf("expected ErrInvalid, got %v", err)
	}
}

func TestBackendUsableInCoDesign(t *testing.T) {
	// Spotlight runs end-to-end with the hybrid backend as its cost
	// model (the paper's "more accurate backend" slot).
	tiny := workload.Model{
		Name:   "tiny",
		Layers: []workload.Layer{workload.Conv("a", 1, 8, 4, 3, 3, 6, 6)},
	}
	cfg := core.RunConfig{
		Models:    []workload.Model{tiny},
		Objective: core.MinEDP,
		HWSamples: 5,
		SWSamples: 8,
		Seed:      2,
		Eval:      NewBackend(Options{}),
	}
	res, err := core.Run(cfg, core.NewSpotlight())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Objective <= 0 {
		t.Fatalf("bad objective %v", res.Best.Objective)
	}
}

func TestBackendName(t *testing.T) {
	if NewBackend(Options{}).Name() != "sim-hybrid" {
		t.Fatal("unexpected backend name")
	}
}

func TestBackendDelayConsistent(t *testing.T) {
	// With random valid schedules, hybrid delay must never exceed the
	// analytical delay (traffic can only shrink) and power must stay
	// consistent with energy/delay.
	b := NewBackend(Options{})
	m := maestro.New()
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(3))
	free := sched.Free()
	checked := 0
	for i := 0; i < 200 && checked < 30; i++ {
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		hybrid, err1 := b.Evaluate(a, s, l)
		analytic, err2 := m.Evaluate(a, s, l)
		if err1 != nil || err2 != nil {
			continue
		}
		checked++
		if hybrid.DelayCycles > analytic.DelayCycles+1e-9 {
			t.Fatalf("hybrid delay %v above analytical %v", hybrid.DelayCycles, analytic.DelayCycles)
		}
		wantPower := hybrid.EnergyNJ * 1000 / hybrid.DelayCycles
		if diff := hybrid.PowerMW - wantPower; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("power inconsistent: %v vs %v", hybrid.PowerMW, wantPower)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d schedules checked", checked)
	}
}
