package obs

import (
	"path/filepath"
	"testing"
)

func TestTelemetryInertWithoutFlags(t *testing.T) {
	tele, err := StartTelemetry("", "")
	if err != nil {
		t.Fatal(err)
	}
	if tele.Tracer != nil {
		t.Error("Tracer should be nil with both flags empty")
	}
	if tele.Addr != "" {
		t.Errorf("Addr = %q, want empty", tele.Addr)
	}
	if err := tele.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestTelemetryEventsSurvivesClose pins the CLI exit-path contract: the
// deferred handler closes the sink first (to learn the sticky write
// error) and reports the event count second, so Events must keep
// answering after Close.
func TestTelemetryEventsSurvivesClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tele, err := StartTelemetry(path, "")
	if err != nil {
		t.Fatal(err)
	}
	tele.Tracer.Emit(Event{Type: CacheHit})
	tele.Tracer.Emit(Event{Type: CacheMiss})
	if err := tele.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := tele.Events(); got != 2 {
		t.Errorf("Events after Close = %d, want 2", got)
	}
}

func TestTelemetryMetricsOnly(t *testing.T) {
	tele, err := StartTelemetry("", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	if tele.Addr == "" {
		t.Error("Addr should be the bound address")
	}
	if !Enabled(tele.Tracer) {
		t.Error("Tracer should be live with -metrics-addr set")
	}
	if got := tele.Events(); got != 0 {
		t.Errorf("Events = %d, want 0 without a trace file", got)
	}
}
