package obs

import (
	"sync"
	"testing"
)

// collector is an enabled tracer that retains every event, for
// asserting on the span wire protocol.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) Enabled() bool { return true }

func (c *collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// TestSpanNilSafety proves the nil-span discipline: a disabled tracer
// yields a nil span, and every method on a nil span is an inert no-op,
// so untraced call sites pay one branch and zero allocations.
func TestSpanNilSafety(t *testing.T) {
	for _, tr := range []Tracer{nil, Nop} {
		if sp := StartSpan(tr, "job"); sp != nil {
			t.Fatalf("StartSpan(%T) = %v, want nil", tr, sp)
		}
	}
	var sp *Span
	if c := sp.Child("trial"); c != nil {
		t.Errorf("nil.Child = %v, want nil", c)
	}
	if c := sp.ChildSample("trial", 1); c != nil {
		t.Errorf("nil.ChildSample = %v, want nil", c)
	}
	if c := sp.ChildLabel("sw.layer", "mm1"); c != nil {
		t.Errorf("nil.ChildLabel = %v, want nil", c)
	}
	if id := sp.ID(); id != 0 {
		t.Errorf("nil.ID = %d, want 0", id)
	}
	if tr := sp.Tracer(); tr != nil {
		t.Errorf("nil.Tracer = %v, want nil", tr)
	}
	sp.Emit(Event{Type: CacheHit}) // must not panic
	sp.End()                       // must not panic
	if Active(nil, nil) {
		t.Error("Active(nil, nil) = true")
	}
	if Active(nil, Nop) {
		t.Error("Active(nil, Nop) = true")
	}
	if !Active(nil, &collector{}) {
		t.Error("Active(nil, enabled) = false")
	}
}

// TestSpanTree proves the wire protocol of a small span tree: fresh ids,
// parent linkage on span.start/span.end and on annotated events, labels
// on ChildSample/ChildLabel, a measured duration on span.end, idempotent
// End, and every emitted event passing schema validation.
func TestSpanTree(t *testing.T) {
	c := &collector{}
	job := StartSpan(c, "job")
	if job == nil {
		t.Fatal("StartSpan on enabled tracer returned nil")
	}
	if !Active(job, nil) {
		t.Error("Active(span, nil) = false")
	}
	trial := job.ChildSample("trial", 3)
	trial.Emit(Event{Type: CacheHit})
	layer := trial.ChildLabel("sw.layer", "bert/mm1")
	layer.End()
	layer.End() // idempotent: must not emit a second span.end
	trial.End()
	job.End()

	want := []struct {
		typ    EventType
		kind   string
		sample int
		layer  string
	}{
		{SpanStart, "job", 0, ""},
		{SpanStart, "trial", 3, ""},
		{CacheHit, "", 0, ""},
		{SpanStart, "sw.layer", 0, "bert/mm1"},
		{SpanEnd, "sw.layer", 0, ""},
		{SpanEnd, "trial", 0, ""},
		{SpanEnd, "job", 0, ""},
	}
	if len(c.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(c.events), len(want), c.events)
	}
	for i, e := range c.events {
		if e.Type != want[i].typ {
			t.Fatalf("event %d: type %s, want %s", i, e.Type, want[i].typ)
		}
		if e.Type == SpanStart || e.Type == SpanEnd {
			if e.Detail != want[i].kind {
				t.Errorf("event %d: kind %q, want %q", i, e.Detail, want[i].kind)
			}
		}
		if e.Sample != want[i].sample || e.Layer != want[i].layer {
			t.Errorf("event %d: sample/layer = %d/%q, want %d/%q",
				i, e.Sample, e.Layer, want[i].sample, want[i].layer)
		}
		e.Seq, e.TMS = int64(i)+1, float64(i) // validation needs sink-side stamps
		if err := e.Validate(); err != nil {
			t.Errorf("event %d fails validation: %v", i, err)
		}
	}

	jobID, trialID, layerID := c.events[0].Span, c.events[1].Span, c.events[3].Span
	if jobID == trialID || trialID == layerID || jobID == layerID {
		t.Fatalf("span ids not distinct: %d %d %d", jobID, trialID, layerID)
	}
	if got := c.events[1].Parent; got != jobID {
		t.Errorf("trial parent = %d, want job id %d", got, jobID)
	}
	if got := c.events[2].Parent; got != trialID {
		t.Errorf("annotated event parent = %d, want trial id %d", got, trialID)
	}
	if got := c.events[3].Parent; got != trialID {
		t.Errorf("layer parent = %d, want trial id %d", got, trialID)
	}
	for _, i := range []int{4, 5, 6} {
		start := map[int64]Event{jobID: c.events[0], trialID: c.events[1], layerID: c.events[3]}[c.events[i].Span]
		if c.events[i].Parent != start.Parent {
			t.Errorf("span.end %d parent = %d, want %d", i, c.events[i].Parent, start.Parent)
		}
		if c.events[i].DurMS < 0 {
			t.Errorf("span.end %d has negative duration %v", i, c.events[i].DurMS)
		}
	}
}

// TestChildOrRoot proves the entry-point idiom: under a span it is
// Child, stand-alone it is StartSpan, and with neither it stays nil.
func TestChildOrRoot(t *testing.T) {
	if sp := ChildOrRoot(nil, nil, "run"); sp != nil {
		t.Fatalf("ChildOrRoot(nil, nil) = %v, want nil", sp)
	}
	c := &collector{}
	root := ChildOrRoot(nil, c, "run")
	if root == nil || c.events[0].Parent != 0 {
		t.Fatalf("ChildOrRoot(nil, enabled) did not open a root span: %+v", c.events)
	}
	child := ChildOrRoot(root, nil, "run")
	if child == nil || c.events[1].Parent != root.ID() {
		t.Fatalf("ChildOrRoot(parent, nil) did not open a child span: %+v", c.events)
	}
	child.End()
	root.End()
}

// TestEmitTo proves the middleware emission idiom: with a span the event
// is parented and follows the span's sink; without one it falls back to
// the construction-time tracer unparented; with neither it is dropped.
func TestEmitTo(t *testing.T) {
	spanSink, fallback := &collector{}, &collector{}
	sp := StartSpan(spanSink, "job")
	sp.EmitTo(fallback, Event{Type: CacheHit})
	if len(fallback.events) != 0 {
		t.Errorf("EmitTo with span leaked to fallback: %+v", fallback.events)
	}
	if got := len(spanSink.events); got != 2 { // span.start + cache.hit
		t.Fatalf("span sink has %d events, want 2", got)
	}
	if e := spanSink.events[1]; e.Parent != sp.ID() {
		t.Errorf("EmitTo parent = %d, want %d", e.Parent, sp.ID())
	}
	sp.End()

	var none *Span
	none.EmitTo(fallback, Event{Type: CacheMiss})
	if len(fallback.events) != 1 || fallback.events[0].Parent != 0 {
		t.Fatalf("EmitTo fallback path wrong: %+v", fallback.events)
	}
	none.EmitTo(Nop, Event{Type: CacheMiss}) // disabled fallback: dropped, no panic
	none.EmitTo(nil, Event{Type: CacheMiss}) // nil fallback: dropped, no panic
}
