package obs

// Telemetry bundles the sinks a CLI run wires up from its -trace and
// -metrics-addr flags: a JSONL trace file, a metrics registry with its
// HTTP introspection server, or both, behind one Tracer handle.
type Telemetry struct {
	// Tracer fans events out to every configured sink; nil when neither
	// flag was given, which every instrumentation site treats as "off".
	Tracer Tracer
	// Addr is the bound metrics address ("" when -metrics-addr is off);
	// useful to print, especially when the caller asked for ":0".
	Addr string

	jsonl  *JSONL
	srv    *Server
	events int64 // trace event count, preserved across Close for exit reporting
}

// StartTelemetry opens the sinks the two flag values ask for. Either
// argument may be empty; with both empty the returned Telemetry is
// inert (nil Tracer) and Close is a no-op, so callers need no
// conditionals around the flag plumbing.
func StartTelemetry(tracePath, metricsAddr string) (*Telemetry, error) {
	t := &Telemetry{}
	var sinks []Tracer
	if tracePath != "" {
		j, err := CreateJSONL(tracePath)
		if err != nil {
			return nil, err
		}
		t.jsonl = j
		sinks = append(sinks, j)
	}
	if metricsAddr != "" {
		reg := NewRegistry()
		srv, err := Serve(metricsAddr, reg)
		if err != nil {
			if t.jsonl != nil {
				t.jsonl.Close()
			}
			return nil, err
		}
		t.srv = srv
		t.Addr = srv.Addr
		sinks = append(sinks, NewMetricsTracer(reg))
	}
	t.Tracer = Tee(sinks...)
	return t, nil
}

// Events returns how many events the trace file received (0 without
// -trace). It keeps answering after Close, so exit paths can close the
// sink first and report the final count second.
func (t *Telemetry) Events() int64 {
	if t.jsonl == nil {
		return t.events
	}
	return t.jsonl.Events()
}

// Close flushes and closes the trace file and stops the metrics server.
// The returned error is the trace sink's sticky write error, if any —
// the one failure worth surfacing, since it means the trace on disk is
// incomplete.
func (t *Telemetry) Close() error {
	if t.srv != nil {
		t.srv.Close()
		t.srv = nil
	}
	if t.jsonl == nil {
		return nil
	}
	t.events = t.jsonl.Events()
	err := t.jsonl.Close()
	t.jsonl = nil
	return err
}
