package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidatePrometheus strictly parses a Prometheus text-format 0.0.4
// exposition and reports the first violation. It is the check behind
// the metricssmoke CI gate (via cmd/promcheck) and the exposition unit
// tests: rather than trusting that WritePrometheus and a real scraper
// agree, the format contract is written down once and enforced on real
// /metrics bodies.
//
// Enforced rules:
//
//   - the body ends with a newline; every line is a HELP/TYPE comment, a
//     plain comment, blank, or a sample
//   - metric and label names match the exposition charsets; label values
//     use only the \\, \", and \n escapes
//   - every sample belongs to a family declared by a preceding # TYPE
//     line (one per family, known type keyword)
//   - no duplicate series (same name and label set)
//   - sample values parse as floats and are not NaN
//   - histogram families expose only _bucket/_sum/_count samples; per
//     label set, bucket `le` bounds strictly increase, cumulative counts
//     never decrease, an `le="+Inf"` bucket exists and equals `_count`,
//     and `_sum` is present
func ValidatePrometheus(data []byte) error {
	body := string(data)
	if body == "" {
		return fmt.Errorf("promcheck: empty exposition")
	}
	if !strings.HasSuffix(body, "\n") {
		return fmt.Errorf("promcheck: body does not end with a newline")
	}
	v := &promValidator{
		types:  map[string]string{},
		series: map[string]bool{},
		hists:  map[string]map[string]*histAccum{},
	}
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("promcheck: line %d: %w", i+1, err)
		}
	}
	return v.finish()
}

var (
	promNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histAccum collects one histogram series group (one label set without
// le) for the end-of-body consistency checks.
type histAccum struct {
	lastLE  float64
	lastCum float64
	buckets int
	infCum  float64
	hasInf  bool
	sum     *float64
	count   *float64
}

type promValidator struct {
	types  map[string]string                // family -> type keyword
	series map[string]bool                  // name + canonical labels -> seen
	hists  map[string]map[string]*histAccum // family -> label group -> accum
}

func (v *promValidator) line(line string) error {
	switch {
	case line == "":
		return nil
	case strings.HasPrefix(line, "#"):
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *promValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !promNameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %s", name)
		}
		v.types[name] = typ
	case "HELP":
		if len(fields) < 3 || !promNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// splitSample breaks a sample line into name, raw label block (without
// braces, "" when absent), and the remainder (value and optional
// timestamp).
func splitSample(line string) (name, labels, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
		return name, labels, rest, nil
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	return line[:i], "", strings.TrimSpace(line[i+1:]), nil
}

// parseLabels scans an inside-the-braces block, checking name charset
// and escape validity, and returns the labels sorted canonically.
func parseLabels(block string) (pairs []string, byName map[string]string, err error) {
	byName = map[string]string{}
	s := block
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, nil, fmt.Errorf("label without '=' in %q", block)
		}
		name := s[:eq]
		if !promLabelRE.MatchString(name) {
			return nil, nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, nil, fmt.Errorf("label %s value is not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
	scan:
		for len(s) > 0 {
			switch c := s[0]; c {
			case '\\':
				if len(s) < 2 {
					return nil, nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, nil, fmt.Errorf("invalid escape \\%c in label %s", s[1], name)
				}
				s = s[2:]
			case '"':
				closed = true
				s = s[1:]
				break scan
			default:
				val.WriteByte(c)
				s = s[1:]
			}
		}
		if !closed {
			return nil, nil, fmt.Errorf("unterminated value for label %s", name)
		}
		if _, dup := byName[name]; dup {
			return nil, nil, fmt.Errorf("duplicate label %s", name)
		}
		byName[name] = val.String()
		pairs = append(pairs, name+`="`+escapeLabelValue(val.String())+`"`)
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, ",") {
			return nil, nil, fmt.Errorf("expected ',' between labels in %q", block)
		}
		s = s[1:]
		if s == "" {
			return nil, nil, fmt.Errorf("trailing ',' in label block %q", block)
		}
	}
	sort.Strings(pairs)
	return pairs, byName, nil
}

// family resolves a sample name to its declared family, peeling the
// histogram suffixes.
func (v *promValidator) family(name string) (fam, typ, suffix string, err error) {
	if t, ok := v.types[name]; ok {
		if t == "histogram" {
			return "", "", "", fmt.Errorf("histogram family %s exposed as a bare sample", name)
		}
		return name, t, "", nil
	}
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base == name {
			continue
		}
		if t, ok := v.types[base]; ok {
			if t != "histogram" && t != "summary" {
				return "", "", "", fmt.Errorf("sample %s uses suffix %s but %s is a %s", name, sfx, base, t)
			}
			return base, t, sfx, nil
		}
	}
	return "", "", "", fmt.Errorf("sample %s has no preceding # TYPE line", name)
}

func (v *promValidator) sample(line string) error {
	name, block, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	if !promNameRE.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if rest == "" {
		return fmt.Errorf("sample %s has no value", name)
	}
	parts := strings.Fields(rest)
	if len(parts) > 2 {
		return fmt.Errorf("sample %s has trailing garbage %q", name, rest)
	}
	val, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("sample %s has unparsable value %q", name, parts[0])
	}
	if math.IsNaN(val) {
		return fmt.Errorf("sample %s is NaN", name)
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return fmt.Errorf("sample %s has invalid timestamp %q", name, parts[1])
		}
	}
	pairs, byName, err := parseLabels(block)
	if err != nil {
		return err
	}
	key := name + "{" + strings.Join(pairs, ",") + "}"
	if v.series[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	v.series[key] = true
	fam, typ, suffix, err := v.family(name)
	if err != nil {
		return err
	}
	if typ != "histogram" {
		return nil
	}
	// Group histogram samples by their label set without le.
	group := make([]string, 0, len(pairs))
	for _, p := range pairs {
		if !strings.HasPrefix(p, `le="`) {
			group = append(group, p)
		}
	}
	groupKey := strings.Join(group, ",")
	hg := v.hists[fam]
	if hg == nil {
		hg = map[string]*histAccum{}
		v.hists[fam] = hg
	}
	acc := hg[groupKey]
	if acc == nil {
		acc = &histAccum{lastLE: math.Inf(-1)}
		hg[groupKey] = acc
	}
	switch suffix {
	case "_bucket":
		leStr, ok := byName["le"]
		if !ok {
			return fmt.Errorf("histogram bucket %s missing le label", name)
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return fmt.Errorf("histogram bucket %s has unparsable le %q", name, leStr)
		}
		if math.IsInf(le, 1) {
			if acc.hasInf {
				return fmt.Errorf("histogram %s has two +Inf buckets", fam)
			}
			acc.hasInf, acc.infCum = true, val
		} else {
			if acc.hasInf {
				return fmt.Errorf("histogram %s has a finite bucket after +Inf", fam)
			}
			if le <= acc.lastLE {
				return fmt.Errorf("histogram %s bucket bounds not increasing (le=%v after %v)", fam, le, acc.lastLE)
			}
			acc.lastLE = le
		}
		if val < acc.lastCum {
			return fmt.Errorf("histogram %s cumulative bucket counts decrease at le=%q", fam, leStr)
		}
		acc.lastCum = val
		acc.buckets++
	case "_sum":
		if acc.sum != nil {
			return fmt.Errorf("histogram %s has two _sum samples for one label set", fam)
		}
		acc.sum = &val
	case "_count":
		if acc.count != nil {
			return fmt.Errorf("histogram %s has two _count samples for one label set", fam)
		}
		acc.count = &val
	}
	return nil
}

func (v *promValidator) finish() error {
	for _, fam := range sortedKeys(v.hists) {
		for _, group := range sortedKeys(v.hists[fam]) {
			acc := v.hists[fam][group]
			where := fam
			if group != "" {
				where += "{" + group + "}"
			}
			switch {
			case !acc.hasInf:
				return fmt.Errorf("promcheck: histogram %s has no +Inf bucket", where)
			case acc.sum == nil:
				return fmt.Errorf("promcheck: histogram %s has no _sum", where)
			case acc.count == nil:
				return fmt.Errorf("promcheck: histogram %s has no _count", where)
			case *acc.count != acc.infCum: //lint:allow floateq(both are exact observation counts parsed from the exposition; the format requires literal equality)
				return fmt.Errorf("promcheck: histogram %s _count %v != +Inf bucket %v", where, *acc.count, acc.infCum)
			}
		}
	}
	for _, name := range sortedKeys(v.types) {
		if v.types[name] != "histogram" {
			continue
		}
		if v.hists[name] == nil {
			return fmt.Errorf("promcheck: histogram family %s declared but has no samples", name)
		}
	}
	return nil
}
