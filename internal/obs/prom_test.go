package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusRoundTrip proves the emitter and the strict
// validator agree: a registry exercising every metric kind — counters,
// gauges (including negative and labeled), multi-bucket histograms —
// renders to an exposition that ValidatePrometheus accepts, and two
// scrapes of an unchanged registry are byte-identical.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("trace.eval.done").Add(41)
	reg.Counter(Labeled("job.evals", "job", "job-1")).Add(7)
	reg.Gauge("search.best_objective").Set(-12.75)
	reg.Gauge(Labeled("job.trials.done", "job", "job-1")).Set(3)
	reg.Gauge(Labeled("job.trials.done", "job", "job-2")).Set(1)
	h := reg.Histogram("dur.span.trial")
	for _, d := range []time.Duration{
		500 * time.Nanosecond, 3 * time.Microsecond, 900 * time.Microsecond,
		2 * time.Millisecond, 2 * time.Millisecond, 40 * time.Millisecond,
	} {
		h.Observe(d)
	}

	var a, b bytes.Buffer
	if err := WritePrometheus(&a, reg.Scrape()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidatePrometheus(a.Bytes()); err != nil {
		t.Fatalf("exposition rejected by validator:\n%s\nerror: %v", a.Bytes(), err)
	}
	if err := WritePrometheus(&b, reg.Scrape()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two scrapes of an unchanged registry differ")
	}
	for _, want := range []string{
		"# TYPE trace_eval_done counter\n",
		"trace_eval_done 41\n",
		`job_evals{job="job-1"} 7` + "\n",
		"search_best_objective -12.75\n",
		`job_trials_done{job="job-1"} 3` + "\n",
		`job_trials_done{job="job-2"} 1` + "\n",
		"# TYPE dur_span_trial_seconds histogram\n",
		`dur_span_trial_seconds_bucket{le="+Inf"} 6` + "\n",
		"dur_span_trial_seconds_count 6\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

// TestWritePrometheusHistogramEdges pins the histogram edge cases: a
// created-but-never-observed histogram still renders a valid family
// (just the +Inf bucket, zero _sum/_count), and a single observation
// yields one cumulative bucket that agrees with +Inf and _count.
func TestWritePrometheusHistogramEdges(t *testing.T) {
	t.Run("zero observations", func(t *testing.T) {
		reg := NewRegistry()
		reg.Histogram("dur.eval.done") // registered, never observed
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg.Scrape()); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := ValidatePrometheus(buf.Bytes()); err != nil {
			t.Fatalf("empty histogram rejected:\n%s\nerror: %v", buf.Bytes(), err)
		}
		for _, want := range []string{
			`dur_eval_done_seconds_bucket{le="+Inf"} 0` + "\n",
			"dur_eval_done_seconds_sum 0\n",
			"dur_eval_done_seconds_count 0\n",
		} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("exposition missing %q:\n%s", want, buf.String())
			}
		}
	})
	t.Run("single bucket", func(t *testing.T) {
		reg := NewRegistry()
		reg.Histogram("dur.one").Observe(3 * time.Microsecond) // bit length 2: (2, 4] µs
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg.Scrape()); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := ValidatePrometheus(buf.Bytes()); err != nil {
			t.Fatalf("single-bucket histogram rejected:\n%s\nerror: %v", buf.Bytes(), err)
		}
		for _, want := range []string{
			`dur_one_seconds_bucket{le="4e-06"} 1` + "\n",
			`dur_one_seconds_bucket{le="+Inf"} 1` + "\n",
			"dur_one_seconds_count 1\n",
		} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("exposition missing %q:\n%s", want, buf.String())
			}
		}
	})
}

// TestWritePrometheusLabelEscaping proves label values survive the trip
// through Labeled → exposition → validator with backslash, quote, and
// newline escaped per the text format.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	key := Labeled("job.evals", "job", "a\\b\"c\nd")
	reg.Counter(key).Add(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Scrape()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("escaped labels rejected:\n%s\nerror: %v", buf.Bytes(), err)
	}
	want := `job_evals{job="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}

// TestHistogramObserveDuringScrape races workers observing into a
// histogram against continuous scrapes; under -race this proves the
// lock-free Observe path and the snapshot path are safe concurrently,
// and every rendered exposition is internally consistent.
func TestHistogramObserveDuringScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("dur.race") // exists before the first scrape
	reg.Counter("trace.race")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram("dur.race")
			c := reg.Counter("trace.race")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				c.Add(1)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg.Scrape()); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := ValidatePrometheus(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, buf.Bytes())
		}
	}
	close(stop)
	wg.Wait()
}

// TestRuntimeMetricsOnScrape proves EnableRuntimeMetrics is a pure
// scrape-time hook: no gauges exist before the first scrape, every
// scrape refreshes them, and repeated Enable calls install one hook.
func TestRuntimeMetricsOnScrape(t *testing.T) {
	reg := NewRegistry()
	reg.EnableRuntimeMetrics()
	reg.EnableRuntimeMetrics() // idempotent
	if snap := reg.Snapshot(); len(snap.Gauges) != 0 {
		t.Fatalf("gauges exist before first scrape: %v", snap.Gauges)
	}
	snap := reg.Scrape()
	for _, name := range []string{
		"go.goroutines", "go.heap.alloc.bytes", "go.heap.objects",
		"go.gc.cycles", "go.gc.pause.total.ms",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("scrape missing runtime gauge %s", name)
		}
	}
	if g := snap.Gauges["go.goroutines"]; g < 1 {
		t.Errorf("go.goroutines = %v, want >= 1", g)
	}
}
