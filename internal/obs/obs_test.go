package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestJSONLRoundTrip proves every emitted event comes back out of
// ParseLine schema-valid, with monotone sequence numbers and
// non-decreasing timestamps.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Type: RunStart, Detail: "Spotlight", N: 4})
	j.Emit(Event{Type: HWPropose, Sample: 1, Detail: "pe=64"})
	j.Emit(Event{Type: SWEnd, Sample: 1, Layer: "ResNet-50/conv1", Detail: "valid", DurMS: 1.25, Value: 3.5})
	j.Emit(Event{Type: Incumbent, Sample: 1, Value: 3.5})
	j.Emit(Event{Type: RunEnd, N: 4})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := j.Events(); got != 5 {
		t.Fatalf("Events() = %d, want 5", got)
	}

	sc := bufio.NewScanner(&buf)
	var seq int64
	var lastT float64
	n := 0
	for sc.Scan() {
		e, err := ParseLine(sc.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if e.Seq != seq+1 {
			t.Fatalf("line %d: seq %d, want %d", n+1, e.Seq, seq+1)
		}
		if e.TMS < lastT {
			t.Fatalf("line %d: t_ms regressed %v -> %v", n+1, lastT, e.TMS)
		}
		seq, lastT = e.Seq, e.TMS
		n++
	}
	if n != 5 {
		t.Fatalf("read %d lines, want 5", n)
	}
}

// TestJSONLConcurrentEmit hammers one sink from many goroutines: every
// line must still be valid with a dense 1..N sequence.
func TestJSONLConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(Event{Type: CacheHit})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seen := map[int64]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		e, err := ParseLine(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d events, want %d", len(seen), workers*per)
	}
}

// TestValidateRejects covers the schema's failure modes.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown type", Event{Seq: 1, Type: "nope"}, "unknown event type"},
		{"missing seq", Event{Type: RunEnd}, "seq"},
		{"missing sample", Event{Seq: 1, Type: HWPropose, Detail: "a"}, "missing sample"},
		{"missing layer", Event{Seq: 1, Type: SWStart}, "missing layer"},
		{"missing scope", Event{Seq: 1, Type: DABODegraded}, "missing scope"},
		{"missing detail", Event{Seq: 1, Type: EvalDone}, "missing detail"},
		{"missing value", Event{Seq: 1, Type: Incumbent, Sample: 1}, "missing value"},
		{"missing n", Event{Seq: 1, Type: PoolQueue}, "missing n"},
		{"negative dur", Event{Seq: 1, Type: RunEnd, DurMS: -1}, "negative"},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestParseLineStrict rejects lines with unknown fields: schema drift
// between writer and reader must be loud.
func TestParseLineStrict(t *testing.T) {
	if _, err := ParseLine([]byte(`{"seq":1,"t_ms":0,"type":"run.end","bogus":3}`)); err == nil {
		t.Fatal("ParseLine accepted an unknown field")
	}
}

// TestEventTypesCoverSchema: every type returned by EventTypes validates
// when its required fields are filled, and the list is sorted.
func TestEventTypesCoverSchema(t *testing.T) {
	ts := EventTypes()
	if len(ts) != len(schema) {
		t.Fatalf("EventTypes returned %d types, schema has %d", len(ts), len(schema))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatalf("EventTypes not sorted: %q after %q", ts[i], ts[i-1])
		}
	}
	for _, typ := range ts {
		ev := Event{Seq: 1, Type: typ, Sample: 1, Layer: "m/l", Scope: "hw",
			Detail: "x", Value: 1, N: 1}
		if schema[typ].span {
			ev.Span, ev.Parent = 2, 1
		}
		if err := ev.Validate(); err != nil {
			t.Errorf("fully populated %s event invalid: %v", typ, err)
		}
	}
}

// TestEnabledAndNop: nil and Nop are disabled, JSONL is enabled, and the
// Enabled helper guards both.
func TestEnabledAndNop(t *testing.T) {
	if Enabled(nil) {
		t.Error("Enabled(nil) = true")
	}
	if Enabled(Nop) {
		t.Error("Enabled(Nop) = true")
	}
	Nop.Emit(Event{Type: RunEnd}) // must not panic
	if !Enabled(NewJSONL(&bytes.Buffer{})) {
		t.Error("Enabled(JSONL) = false")
	}
}

// TestTee: nil and disabled members are dropped, a single live sink is
// returned unwrapped, and a real fan-out reaches every sink.
func TestTee(t *testing.T) {
	if tr := Tee(nil, Nop); tr != nil {
		t.Fatalf("Tee(nil, Nop) = %v, want nil", tr)
	}
	j := NewJSONL(&bytes.Buffer{})
	if tr := Tee(nil, j); tr != Tracer(j) {
		t.Fatalf("Tee with one live sink should return it unwrapped")
	}
	var b1, b2 bytes.Buffer
	j1, j2 := NewJSONL(&b1), NewJSONL(&b2)
	tr := Tee(j1, Nop, j2)
	tr.Emit(Event{Type: RunEnd})
	if j1.Events() != 1 || j2.Events() != 1 {
		t.Fatalf("tee reached (%d, %d) sinks, want (1, 1)", j1.Events(), j2.Events())
	}
}

// errWriter fails after n bytes, for sticky-error behaviour.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

// TestJSONLStickyError: after the first write error the sink drops
// events quietly and Close reports the error — tracing degrades, the
// caller is never disturbed mid-run.
func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&errWriter{left: 1})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		j.Emit(Event{Type: CacheHit})
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close() = nil, want the sticky write error")
	}
}
