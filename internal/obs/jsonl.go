package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// JSONL writes trace events as one JSON object per line. It is safe for
// concurrent Emit calls: a mutex serializes encoding and stamps each
// event with a monotone sequence number and the milliseconds elapsed
// since the sink was opened. Write errors are sticky — the first one is
// retained, later events are dropped, and Close reports it — so a full
// disk degrades tracing, never the search.
type JSONL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // underlying file, when the sink owns one
	start time.Time
	seq   int64
	err   error
}

// NewJSONL returns a JSONL sink over w. The caller owns w's lifetime;
// call Close to flush buffered events before reading what was written.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), start: time.Now()}
}

// CreateJSONL creates (truncating) a trace file at path and returns a
// sink that owns it: Close flushes and closes the file.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJSONL(f)
	j.c = f
	return j, nil
}

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Emit implements Tracer: stamps and appends one line.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	e.Seq = j.seq
	e.TMS = MS(time.Since(j.start))
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

// Events returns how many events have been written.
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes buffered lines (and closes the underlying file when the
// sink owns one), returning the first error the sink encountered.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.c = nil
	}
	return j.err
}
