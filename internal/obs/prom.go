package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, which is what /metrics serves to scrapers.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Labeled builds a registry metric name carrying Prometheus-style
// labels: Labeled("job.trials.done", "job", "job-1") returns
// `job.trials.done{job="job-1"}`. Pairs are sorted by key and values are
// escaped, so equal label sets always produce the same name (and with
// it the same registry entry). WritePrometheus splits the block back
// out into exposition labels; the JSON snapshot carries the full string
// as the metric key. Panics on an odd number of kv arguments — label
// sets are static at call sites.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format label escaping: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promName maps a registry metric name onto the exposition name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: dots (our namespace separator) and anything
// else illegal become underscores, and a leading digit gains one.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// splitLabels separates a registry key made by Labeled back into base
// name and the inside-the-braces label block ("" when unlabeled).
func splitLabels(key string) (base, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, ""
	}
	return key[:i], key[i+1 : len(key)-1]
}

// promSeries is one exposition sample line, pre-rendered except for the
// family name.
type promSeries struct {
	labels string // inside-braces block, "" when none
	value  string // rendered sample value
	isLE   bool   // a histogram _bucket sample
	suffix string // _sum or _count for histogram samples
}

// promFamily is one metric family: a TYPE plus its samples.
type promFamily struct {
	name   string
	typ    string
	series []promSeries
}

// sortedKeys returns m's keys in ascending order, which is what makes
// the exposition deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:allow maporder(sorted before return)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges an existing label block with one extra label.
func joinLabels(block, extra string) string {
	if block == "" {
		return extra
	}
	return block + "," + extra
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format 0.0.4. Counters and gauges map directly; duration
// histograms become cumulative `_bucket{le="<seconds>"}` series (the
// registry's log₂-microsecond buckets, sparse buckets elided, `+Inf`
// always present) with `_sum` in seconds and `_count`. Output is
// sorted — families by name, series by label block — so scrapes of an
// unchanged registry are byte-identical.
func WritePrometheus(w io.Writer, s RegistrySnapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}
	for _, key := range sortedKeys(s.Counters) {
		base, labels := splitLabels(key)
		f := family(promName(base), "counter")
		f.series = append(f.series, promSeries{labels: labels, value: strconv.FormatInt(s.Counters[key], 10)})
	}
	for _, key := range sortedKeys(s.Gauges) {
		base, labels := splitLabels(key)
		f := family(promName(base), "gauge")
		f.series = append(f.series, promSeries{labels: labels, value: formatFloat(s.Gauges[key])})
	}
	for _, key := range sortedKeys(s.Histograms) {
		h := s.Histograms[key]
		base, labels := splitLabels(key)
		f := family(promName(base)+"_seconds", "histogram")
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := formatFloat(float64(b.UpperUS) / 1e6)
			f.series = append(f.series, promSeries{
				labels: joinLabels(labels, `le="`+le+`"`),
				value:  strconv.FormatInt(cum, 10),
				isLE:   true,
			})
		}
		f.series = append(f.series,
			promSeries{labels: joinLabels(labels, `le="+Inf"`), value: strconv.FormatInt(h.Count, 10), isLE: true},
			promSeries{labels: labels, value: formatFloat(h.SumMS / 1e3), suffix: "_sum"},
			promSeries{labels: labels, value: strconv.FormatInt(h.Count, 10), suffix: "_count"},
		)
	}
	names := make([]string, 0, len(fams))
	for name := range fams { //lint:allow maporder(sorted on the next line)
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		if f.typ != "histogram" {
			sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		}
		for _, sr := range f.series {
			line := name
			switch {
			case sr.isLE:
				line += "_bucket"
			case sr.suffix != "":
				line += sr.suffix
			}
			if sr.labels != "" {
				line += "{" + sr.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", line, sr.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnableRuntimeMetrics registers a scrape hook that samples the Go
// runtime into gauges — goroutine count, heap allocation, GC cycles and
// cumulative pause — so every /metrics scrape carries process health
// next to the search metrics. Idempotent: Mount calls it for each mux
// the registry is exposed on, and only the first call installs the
// hook. There is no background sampler goroutine; the cost is paid on
// scrape (ReadMemStats briefly stops the world, which a scrape interval
// amortizes to nothing).
func (r *Registry) EnableRuntimeMetrics() {
	r.runtimeOnce.Do(func() {
		r.OnScrape(func() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			r.Gauge("go.goroutines").Set(float64(runtime.NumGoroutine()))
			r.Gauge("go.heap.alloc.bytes").Set(float64(ms.HeapAlloc))
			r.Gauge("go.heap.objects").Set(float64(ms.HeapObjects))
			r.Gauge("go.gc.cycles").Set(float64(ms.NumGC))
			r.Gauge("go.gc.pause.total.ms").Set(float64(ms.PauseTotalNs) / 1e6)
		})
	})
}
