package obs

import (
	"sync/atomic"
	"time"
)

// spanIDs allocates process-unique span ids. Ids are causal handles, not
// ordinals: uniqueness is all that matters, and a process-wide atomic
// keeps allocation allocation-free and safe from any goroutine.
var spanIDs atomic.Int64

// Span is one node of the causal trace tree: a timed region of work
// (job, trial, hw.propose, sw.layer, ...) under which other events
// happen. StartSpan emits span.start immediately and End emits span.end
// with the measured duration; events emitted through the span (Emit,
// EmitTo) carry Parent = the span's id, which is how tracestat
// reconstructs the tree and attributes wall-clock.
//
// Spans are observe-only like every other trace construct: a nil *Span
// is valid everywhere (every method no-ops), and StartSpan returns nil
// when the tracer is disabled, so an untraced run pays one branch and
// allocates nothing. A span must be closed exactly once on every return
// path (defer sp.End() is the idiom); spotlightlint's spanbalance
// analyzer enforces that, and End is idempotent as a second line of
// defense. A span is owned by the goroutine that started it — End and
// Emit are not synchronized against each other — but distinct spans may
// live on distinct goroutines freely, which is how the layer pool runs
// one sw.layer span per worker.
type Span struct {
	tr     Tracer
	id     int64
	parent int64
	kind   string
	start  time.Time
	ended  bool
}

// StartSpan opens a root span of the given kind on tr, emitting
// span.start. It returns nil — a valid, inert span — when tr is
// disabled.
func StartSpan(tr Tracer, kind string) *Span {
	if !Enabled(tr) {
		return nil
	}
	return newSpan(tr, 0, kind, "", 0)
}

func newSpan(tr Tracer, parent int64, kind, label string, sample int) *Span {
	s := &Span{tr: tr, id: spanIDs.Add(1), parent: parent, kind: kind, start: Now()}
	tr.Emit(Event{Type: SpanStart, Span: s.id, Parent: parent, Detail: kind, Layer: label, Sample: sample})
	return s
}

// Child opens a sub-span of s. Nil-safe: a nil receiver yields nil.
func (s *Span) Child(kind string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s.id, kind, "", 0)
}

// ChildSample opens a sub-span annotated with a 1-based sample index
// (the trial spans of a search run). Nil-safe.
func (s *Span) ChildSample(kind string, sample int) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s.id, kind, "", sample)
}

// ChildLabel opens a sub-span annotated with a layer/step label (the
// sw.layer and exp.step spans). Nil-safe.
func (s *Span) ChildLabel(kind, label string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s.id, kind, label, 0)
}

// ChildOrRoot returns parent.Child(kind) when parent is non-nil, and
// otherwise a root span on tr (nil when tr is disabled). It is the
// entry-point idiom for code that is sometimes called under a span and
// sometimes stand-alone (core.RunContext under engine vs. direct use).
func ChildOrRoot(parent *Span, tr Tracer, kind string) *Span {
	if parent != nil {
		return parent.Child(kind)
	}
	return StartSpan(tr, kind)
}

// End closes the span, emitting span.end with the measured duration.
// Nil-safe and idempotent: only the first End on a non-nil span emits.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.Emit(Event{Type: SpanEnd, Span: s.id, Parent: s.parent, Detail: s.kind, DurMS: MS(Since(s.start))})
}

// ID returns the span's id, or 0 for nil.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Tracer returns the sink the span emits to, or nil for nil. A non-nil
// span's tracer is always enabled.
func (s *Span) Tracer() Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Emit records e under the span: Parent is stamped with the span's id
// and the event goes to the span's tracer. Nil-safe no-op, so callers
// that hold a span need no Enabled guard — but note the event struct
// (and any Now() calls filling it) is built before the nil check, so
// hot paths should still guard with `if sp != nil`.
func (s *Span) Emit(e Event) {
	if s == nil {
		return
	}
	e.Parent = s.id
	s.tr.Emit(e)
}

// EmitTo records e under the span when one is present, and otherwise
// falls back to tr (unparented, only if enabled). It is the emission
// idiom for middleware that holds a construction-time tracer but may be
// called with a per-call span: events follow the span's sink — in
// spotlightd that is the per-job tee — rather than the shared one.
func (s *Span) EmitTo(tr Tracer, e Event) {
	if s != nil {
		e.Parent = s.id
		s.tr.Emit(e)
		return
	}
	if Enabled(tr) {
		tr.Emit(e)
	}
}

// Active reports whether an emission through sp.EmitTo(tr, ...) would
// record anything: the one-branch guard for sites with an optional span
// and a fallback tracer.
func Active(sp *Span, tr Tracer) bool { return sp != nil || Enabled(tr) }
