package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named metrics table: counters, gauges, and duration
// histograms. The hot path — bumping an already-created metric — is a
// single atomic operation; the registry lock is taken only to create (or
// look up) a metric by name, so callers that cache the returned handle
// never contend. Get-or-create semantics make instrumentation sites
// self-registering: asking for a name creates it on first use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	hookMu      sync.Mutex
	hooks       []func()
	runtimeOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotone event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric (float64, atomically stored as bits).
type Gauge struct{ v atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the last value set (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts durations whose microsecond count has bit-length i, i.e.
// [2^(i-1), 2^i) µs, which spans sub-microsecond calls to ~9 hours.
const histBuckets = 45

// Histogram accumulates durations into log₂ microsecond buckets with
// atomic count/sum/min/max, so Observe is lock-free and safe from any
// number of workers.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	minNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// newHistogram returns a histogram whose min tracker starts above any
// observable value.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minNS.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		cur := h.minNS.Load()
		if cur <= int64(d) {
			break
		}
		if h.minNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.maxNS.Load()
		if cur >= int64(d) {
			break
		}
		if h.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// ObserveMS records a duration given in milliseconds, the unit trace
// events carry.
func (h *Histogram) ObserveMS(ms float64) {
	h.Observe(time.Duration(ms * float64(time.Millisecond)))
}

// Count returns how many durations were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// BucketCount is one non-empty histogram bucket: Count durations fell in
// (UpperUS/2, UpperUS] microseconds.
type BucketCount struct {
	UpperUS int64 `json:"upper_us"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumMS   float64       `json:"sum_ms"`
	AvgMS   float64       `json:"avg_ms"`
	MinMS   float64       `json:"min_ms"`
	MaxMS   float64       `json:"max_ms"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns the histogram's current totals and non-empty buckets
// in ascending bound order. Buckets are read before the totals: Observe
// bumps count before its bucket, so this order guarantees the bucket sum
// never exceeds the count even while observers race the snapshot —
// which is what keeps the Prometheus rendering's cumulative-bucket /
// +Inf invariant intact under concurrent load.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperUS: 1 << i, Count: n})
		}
	}
	s.Count = h.count.Load()
	s.SumMS = MS(time.Duration(h.sumNS.Load()))
	s.MaxMS = MS(time.Duration(h.maxNS.Load()))
	if s.Count > 0 {
		s.MinMS = MS(time.Duration(h.minNS.Load()))
		s.AvgMS = s.SumMS / float64(s.Count)
	}
	return s
}

// RegistrySnapshot is a point-in-time copy of every metric, as exported
// at /metrics. encoding/json marshals map keys sorted, so the JSON form
// is deterministic however the metrics were created.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// OnScrape registers a hook run by Scrape before the snapshot is taken:
// the pull-model complement to MetricsTracer's push. Hooks refresh
// gauges whose source of truth lives elsewhere — the runtime collector,
// spotlightd's per-job progress rollup — exactly when a scraper asks,
// with no background sampler to leak. Hooks run unlocked and may
// therefore use the full registry API; they must be safe for concurrent
// scrapes.
func (r *Registry) OnScrape(fn func()) {
	if fn == nil {
		return
	}
	r.hookMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.hookMu.Unlock()
}

// Scrape runs the OnScrape hooks, then snapshots: the read path behind
// /metrics in both exposition formats.
func (r *Registry) Scrape() RegistrySnapshot {
	r.hookMu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	return r.Snapshot()
}

// WriteJSON writes the snapshot as indented JSON (the /metrics body).
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteJSONSnapshot(w, r.Snapshot())
}

// WriteJSONSnapshot writes an already-taken snapshot as indented JSON.
func WriteJSONSnapshot(w io.Writer, s RegistrySnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MetricsTracer folds trace events into a registry: every event bumps a
// per-type counter, events carrying a duration feed a per-type
// histogram, and search-progress events keep live gauges current — which
// is how `-metrics-addr` exposes a running search's state without a
// second instrumentation path.
type MetricsTracer struct{ reg *Registry }

// NewMetricsTracer returns a tracer feeding reg.
func NewMetricsTracer(reg *Registry) *MetricsTracer { return &MetricsTracer{reg: reg} }

// Enabled implements Tracer.
func (m *MetricsTracer) Enabled() bool { return true }

// Emit implements Tracer.
func (m *MetricsTracer) Emit(e Event) {
	m.reg.Counter("trace." + string(e.Type)).Add(1)
	if e.DurMS > 0 {
		name := "dur." + string(e.Type)
		if e.Type == SpanEnd && e.Detail != "" {
			// Span durations histogram per span kind — dur.span.trial,
			// dur.span.sw.layer — which is what the /jobs/{id}/progress
			// and critical-path views aggregate.
			name = "dur.span." + e.Detail
		}
		m.reg.Histogram(name).ObserveMS(e.DurMS)
	}
	switch e.Type {
	case RunStart:
		m.reg.Gauge("search.budget").Set(float64(e.N))
	case HWPropose:
		m.reg.Gauge("search.sample").Set(float64(e.Sample))
	case Incumbent:
		m.reg.Gauge("search.best_objective").Set(e.Value)
		m.reg.Gauge("search.incumbent_sample").Set(float64(e.Sample))
	}
}
