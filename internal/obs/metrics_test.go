package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryBasics covers get-or-create identity and the three metric
// kinds.
func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evals")
	c.Add(2)
	r.Counter("evals").Add(3)
	if got := r.Counter("evals").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("best").Set(1.5)
	if got := r.Gauge("best").Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("fit")
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 || s.SumMS != 6 || s.MinMS != 2 || s.MaxMS != 4 || s.AvgMS != 3 {
		t.Fatalf("histogram snapshot = %+v", s)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("bucket counts sum to %d, want 2", total)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// the totals must come out exact (the race detector checks the rest).
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.MinMS != 0.001 || s.MaxMS != 0.008 {
		t.Fatalf("min/max = %v/%v ms, want 0.001/0.008", s.MinMS, s.MaxMS)
	}
}

// TestMetricsTracer: events become counters, durations become
// histograms, search progress becomes gauges.
func TestMetricsTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewMetricsTracer(reg)
	if !tr.Enabled() {
		t.Fatal("MetricsTracer must be enabled")
	}
	tr.Emit(Event{Type: CacheHit})
	tr.Emit(Event{Type: CacheHit})
	tr.Emit(Event{Type: EvalDone, Detail: "ok", DurMS: 2})
	tr.Emit(Event{Type: HWPropose, Sample: 7, Detail: "a"})
	tr.Emit(Event{Type: Incumbent, Sample: 7, Value: 42.5})

	if got := reg.Counter("trace.cache.hit").Value(); got != 2 {
		t.Errorf("trace.cache.hit = %d, want 2", got)
	}
	if got := reg.Histogram("dur.eval.done").Count(); got != 1 {
		t.Errorf("dur.eval.done count = %d, want 1", got)
	}
	if got := reg.Gauge("search.best_objective").Value(); got != 42.5 {
		t.Errorf("search.best_objective = %v, want 42.5", got)
	}
	if got := reg.Gauge("search.sample").Value(); got != 7 {
		t.Errorf("search.sample = %v, want 7", got)
	}
}

// TestRegistryJSONDeterministic: two identical registries export
// byte-identical JSON (map keys are sorted by the encoder).
func TestRegistryJSONDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(1)
		}
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"a", "b", "c", "d"})
	b := build([]string{"d", "c", "b", "a"})
	if a != b {
		t.Fatalf("JSON export depends on creation order:\n%s\nvs\n%s", a, b)
	}
}

// TestServeMetricsAndPprof boots the introspection server on a loopback
// port and checks both endpoints answer — the acceptance criterion for
// -metrics-addr.
func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("trace.eval.done").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap RegistrySnapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Counters["trace.eval.done"] != 3 {
		t.Fatalf("/metrics counters = %+v, want trace.eval.done=3", snap.Counters)
	}
	if body := get("/debug/pprof/"); !strings.Contains(string(body), "profile") {
		t.Fatalf("/debug/pprof/ index looks wrong: %.80s", body)
	}
	get("/debug/pprof/cmdline")
}
