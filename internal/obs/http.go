package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry (and the runtime profiler) over HTTP for
// live introspection of a running search. It is started by the CLIs'
// -metrics-addr flag.
type Server struct {
	// Addr is the bound address, useful when the caller asked for ":0".
	Addr string
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve binds addr and serves, in a background goroutine:
//
//	/metrics        the registry snapshot as indented JSON
//	/debug/pprof/*  the standard Go profiling handlers
//
// The handlers are mounted on a private mux — nothing is registered on
// http.DefaultServeMux — and Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	Mount(mux, reg)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		// ErrServerClosed after Close; any other error just ends the
		// introspection endpoint, never the search.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the server immediately and joins the serve goroutine, so
// a caller that has seen Close return knows no introspection goroutine
// is still touching the registry (the shutdown tests assert exactly
// that with a goroutine snapshot).
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Mount registers the introspection handlers on mux:
//
//	/metrics        the registry snapshot as indented JSON
//	/debug/pprof/*  the standard Go profiling handlers
//
// Serve uses it on a private mux; spotlightd mounts the same endpoints
// alongside its job API so one address serves both.
func Mount(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// The snapshot is consistent per metric; an error here means the
		// client hung up, which is its problem, not the run's.
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
