package obs

import (
	"bytes"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Server exposes a registry (and the runtime profiler) over HTTP for
// live introspection of a running search. It is started by the CLIs'
// -metrics-addr flag.
type Server struct {
	// Addr is the bound address, useful when the caller asked for ":0".
	Addr string
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve binds addr and serves, in a background goroutine:
//
//	/metrics        the registry snapshot as indented JSON
//	/debug/pprof/*  the standard Go profiling handlers
//
// The handlers are mounted on a private mux — nothing is registered on
// http.DefaultServeMux — and Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	Mount(mux, reg)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		// ErrServerClosed after Close; any other error just ends the
		// introspection endpoint, never the search.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the server immediately and joins the serve goroutine, so
// a caller that has seen Close return knows no introspection goroutine
// is still touching the registry (the shutdown tests assert exactly
// that with a goroutine snapshot).
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Mount registers the introspection handlers on mux:
//
//	/metrics        the registry snapshot — indented JSON by default,
//	                Prometheus text format 0.0.4 when negotiated
//	/debug/pprof/*  the standard Go profiling handlers
//
// Serve uses it on a private mux; spotlightd mounts the same endpoints
// alongside its job API so one address serves both. Mounting also
// enables the runtime collector on reg, so every scrape carries
// goroutine/heap/GC gauges.
func Mount(mux *http.ServeMux, reg *Registry) {
	reg.EnableRuntimeMetrics()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := reg.Scrape()
		// The body is buffered so HEAD can answer with the same headers
		// (Content-Type, Content-Length) a GET would carry; an encode
		// error cannot happen into a bytes.Buffer, and a write error on
		// the response means the client hung up, which is its problem,
		// not the run's.
		var buf bytes.Buffer
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", PromContentType)
			_ = WritePrometheus(&buf, snap)
		} else {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSONSnapshot(&buf, snap)
		}
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		if r.Method == http.MethodHead {
			return
		}
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// wantsPrometheus decides the /metrics exposition format. JSON stays
// the default (curl, the existing tests, and the servesmoke gate all
// read it); the Prometheus text format is served when the client asks
// for it — `?format=prometheus`, or an Accept header naming text/plain
// or an openmetrics type, which is what real Prometheus scrapers send.
// Browsers also accept text/* via */*-less Accept lists, but a browser
// poking /metrics gets JSON unless text/plain is named explicitly.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
