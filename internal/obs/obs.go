// Package obs is the observability layer of the search runtime:
// structured trace events, a metrics registry, and the one place in the
// deterministic tree allowed to read the wall clock.
//
// The paper's headline claim is sample-efficiency, and the ROADMAP's
// north star is "fast as the hardware allows" — both need runs that can
// be *explained*: where wall-clock goes (surrogate fits vs. cost-model
// evaluations vs. pool scheduling), why daBO degraded to random, how the
// incumbent objective evolved per hardware sample. This package carries
// those signals out of the run without perturbing it:
//
//   - Tracer is the event sink contract. Instrumented sites in core,
//     eval, pool, and resilience emit typed Events; JSONL writes them as
//     one JSON object per line, MetricsTracer folds them into a
//     Registry, Tee fans one stream into several sinks, and a nil (or
//     Nop) tracer drops everything at the cost of one branch.
//   - Registry is a concurrent metrics table (counters, gauges,
//     duration histograms) with an atomic hot path, exported as
//     expvar-style JSON by Serve alongside the pprof handlers.
//   - Now/Since are the sanctioned wall-clock reads for deterministic
//     packages: latency is measured here, never fed back into the
//     search.
//
// Hard invariant (enforced by tests and spotlightlint): tracing is
// observe-only. Search History, CSV artifacts, and checkpoints are
// bit-identical with tracing on or off, at any worker count. Events
// carry wall-clock timestamps and durations precisely because those are
// the values the determinism contract excludes.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// EventType names one kind of trace event. The set is closed: Validate
// rejects unknown types, which is what lets the CI smoke run check every
// JSONL line against the schema.
type EventType string

// The event taxonomy, grouped by emitting layer. See DESIGN.md §11 for
// the field conventions of each type.
const (
	// Run lifecycle (internal/core).
	RunStart       EventType = "run.start"       // Detail: strategy; N: hardware-sample budget
	RunEnd         EventType = "run.end"         // N: completed hardware samples
	HWPropose      EventType = "hw.propose"      // Sample; Detail: proposed accelerator
	Incumbent      EventType = "incumbent"       // Sample; Value: new best objective
	SWStart        EventType = "sw.start"        // Sample; Layer: model/layer
	SWEnd          EventType = "sw.end"          // Sample; Layer; DurMS; Detail: valid|invalid; Value: best layer objective
	CheckpointSave EventType = "checkpoint.save" // Sample; DurMS
	CheckpointLoad EventType = "checkpoint.load" // N: samples restored

	// Surrogate (internal/core DABO).
	DABOFit      EventType = "dabo.fit"      // Scope: hw|sw; DurMS; N: observations; Value: invalid observations; Detail: ok|error
	DABODegraded EventType = "dabo.degraded" // Scope; N: consecutive fit failures

	// Worker pool (internal/pool).
	PoolQueue EventType = "pool.queue" // N: tasks queued
	PoolStart EventType = "pool.start" // N: task index
	PoolDone  EventType = "pool.done"  // N: task index; DurMS

	// Evaluation pipeline (internal/eval, internal/resilience).
	EvalDone     EventType = "eval.done"         // DurMS; Detail: ok|invalid|error
	EvalBatch    EventType = "eval.batch"        // N: batch size; DurMS: whole-batch duration
	BackendPath  EventType = "backend.path"      // Detail: backend event name (e.g. sim's simulated/fallback)
	CacheHit     EventType = "cache.hit"         //
	CacheMiss    EventType = "cache.miss"        //
	CachePanic   EventType = "cache.leaderpanic" //
	CachePersist EventType = "cache.persist"     // Detail: hit|append|recovered|readonly|invalidated|degraded; N: record count where relevant
	GuardRetry   EventType = "guard.retry"       // N: attempt; Detail: fault class
	GuardTimeout EventType = "guard.timeout"     // DurMS: configured bound; Detail: bound string

	// Causal spans (any layer, via the Span API). Span carries the span's
	// id; Parent the enclosing span (0 for a root). Every *other* event
	// type may carry Parent — the span it happened under — but never Span.
	SpanStart EventType = "span.start" // Span; Parent; Detail: span kind; Sample/Layer: optional labels
	SpanEnd   EventType = "span.end"   // Span; Parent; Detail: span kind; DurMS: span duration
)

// eventRule is the schema of one event type: which otherwise-optional
// fields must be present. Fields whose zero value is legitimate (a pool
// task index of 0, a sub-millisecond duration) are never required.
type eventRule struct {
	sample, layer, scope, detail, value, n bool
	span                                   bool // the Span field is required (and only legal) here
}

// schema is the closed event taxonomy. Adding an event type means adding
// a row here; Validate (and with it `tracestat -check` and the CI traced
// smoke run) rejects anything else.
var schema = map[EventType]eventRule{
	RunStart:       {detail: true, n: true},
	RunEnd:         {},
	HWPropose:      {sample: true, detail: true},
	Incumbent:      {sample: true, value: true},
	SWStart:        {layer: true},
	SWEnd:          {layer: true, detail: true},
	CheckpointSave: {sample: true},
	CheckpointLoad: {},
	DABOFit:        {scope: true, detail: true},
	DABODegraded:   {scope: true},
	PoolQueue:      {n: true},
	PoolStart:      {},
	PoolDone:       {},
	EvalDone:       {detail: true},
	EvalBatch:      {n: true},
	BackendPath:    {detail: true},
	CacheHit:       {},
	CacheMiss:      {},
	CachePanic:     {},
	CachePersist:   {detail: true},
	GuardRetry:     {detail: true},
	GuardTimeout:   {detail: true},
	SpanStart:      {detail: true, span: true},
	SpanEnd:        {detail: true, span: true},
}

// EventTypes returns every known event type, sorted, for documentation
// and tools.
func EventTypes() []EventType {
	out := make([]EventType, 0, len(schema))
	for t := range schema { //lint:allow maporder(sortTypes orders the result before it is returned)
		out = append(out, t)
	}
	sortTypes(out)
	return out
}

// sortTypes sorts event types lexically (a local insertion sort keeps
// the package dependency-free beyond the stdlib it already uses).
func sortTypes(ts []EventType) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Event is one structured trace record. Seq and TMS are stamped by the
// sink (per-sink monotone sequence and milliseconds since the sink was
// opened); every other field is set by the emitting site. Unused fields
// are omitted from the JSONL form.
type Event struct {
	Seq    int64     `json:"seq"`
	TMS    float64   `json:"t_ms"`
	Type   EventType `json:"type"`
	Sample int       `json:"sample,omitempty"` // 1-based hardware sample
	Layer  string    `json:"layer,omitempty"`  // model/layer identifier
	Scope  string    `json:"scope,omitempty"`  // e.g. "hw", "sw"
	Detail string    `json:"detail,omitempty"` // outcome class, accel string, error text
	DurMS  float64   `json:"dur_ms,omitempty"` // measured duration, milliseconds
	Value  float64   `json:"value,omitempty"`  // objective or auxiliary numeric
	N      int       `json:"n,omitempty"`      // count or index
	Span   int64     `json:"span,omitempty"`   // span id (span.start/span.end only)
	Parent int64     `json:"parent,omitempty"` // enclosing span id; 0 = unparented/root
}

// Validate checks an event against the schema: the type must be known,
// the sink stamps must be present and sane, required fields must be set,
// and no numeric field may be non-finite or negative where a magnitude
// is expected.
func (e Event) Validate() error {
	rule, ok := schema[e.Type]
	if !ok {
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	if e.Seq <= 0 {
		return fmt.Errorf("obs: %s event has seq %d, want >= 1", e.Type, e.Seq)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"t_ms", e.TMS}, {"dur_ms", e.DurMS}, {"value", e.Value}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("obs: %s event has non-finite %s", e.Type, f.name)
		}
	}
	if e.TMS < 0 || e.DurMS < 0 {
		return fmt.Errorf("obs: %s event has negative timestamp or duration", e.Type)
	}
	if e.Span < 0 || e.Parent < 0 {
		return fmt.Errorf("obs: %s event has negative span or parent id", e.Type)
	}
	if rule.span {
		if e.Span == 0 {
			return fmt.Errorf("obs: %s event missing span id", e.Type)
		}
	} else if e.Span != 0 {
		return fmt.Errorf("obs: %s event carries a span id (reserved for span.start/span.end)", e.Type)
	}
	switch {
	case rule.sample && e.Sample <= 0:
		return fmt.Errorf("obs: %s event missing sample", e.Type)
	case rule.layer && e.Layer == "":
		return fmt.Errorf("obs: %s event missing layer", e.Type)
	case rule.scope && e.Scope == "":
		return fmt.Errorf("obs: %s event missing scope", e.Type)
	case rule.detail && e.Detail == "":
		return fmt.Errorf("obs: %s event missing detail", e.Type)
	case rule.value && e.Value == 0:
		return fmt.Errorf("obs: %s event missing value", e.Type)
	case rule.n && e.N <= 0:
		return fmt.Errorf("obs: %s event missing n", e.Type)
	}
	return nil
}

// ParseLine decodes one JSONL trace line strictly (unknown fields are an
// error, so schema drift is caught) and validates it.
func ParseLine(line []byte) (Event, error) {
	var e Event
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return e, fmt.Errorf("obs: parsing trace line: %w", err)
	}
	if err := e.Validate(); err != nil {
		return e, err
	}
	return e, nil
}

// Tracer is the event sink contract. Emit must be safe for concurrent
// use — the layer-search pool emits from many goroutines at once — and
// must never influence what the caller computes: tracing is observe-only
// by invariant. Enabled lets hot paths skip event construction (and the
// wall-clock reads that fill duration fields) entirely.
type Tracer interface {
	Emit(Event)
	Enabled() bool
}

// Enabled reports whether t records events, treating nil as disabled.
// Instrumented sites guard with this so an untraced run pays one branch
// and nothing else.
func Enabled(t Tracer) bool { return t != nil && t.Enabled() }

// nop drops everything; Enabled is false so emit sites skip work.
type nop struct{}

func (nop) Emit(Event)    {}
func (nop) Enabled() bool { return false }

// Nop is the no-op tracer: always safe to pass, never records.
var Nop Tracer = nop{}

// tee fans events out to several sinks. Each sink stamps its own
// sequence numbers and timestamps.
type tee struct{ sinks []Tracer }

func (t *tee) Enabled() bool { return true }

func (t *tee) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Tee combines tracers into one. Nil and disabled tracers are dropped;
// zero live sinks yields nil (disabled), one is returned unwrapped.
func Tee(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if Enabled(t) {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{sinks: live}
}

// Now returns the current wall-clock instant. This helper — not
// time.Now — is what deterministic packages call to measure durations
// for trace events and latency counters: spotlightlint's nowallclock
// analyzer confines raw wall-clock reads to this package, so timing data
// has exactly one way to exist and it is visibly observe-only.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since a Now instant.
func Since(t time.Time) time.Duration { return time.Since(t) }

// MS converts a duration to the milliseconds carried by Event.DurMS.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
