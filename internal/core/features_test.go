package core

import (
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/gp"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func testPoint(seed int64) Point {
	rng := rand.New(rand.NewSource(seed))
	a := hw.EdgeSpace().Random(rng)
	l := workload.Conv("t", 1, 64, 32, 3, 3, 18, 18)
	s := sched.Free().Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
	return Point{Accel: a, Sched: s, Layer: l}
}

func TestSoftwareFeaturesFiniteAndStable(t *testing.T) {
	fs := SoftwareFeatures()
	if len(fs) < 8 {
		t.Fatalf("only %d software features; Figure 4 defines more", len(fs))
	}
	for seed := int64(0); seed < 50; seed++ {
		p := testPoint(seed)
		v := Transform(fs, p)
		if len(v) != len(fs) {
			t.Fatal("transform length mismatch")
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("feature %s is %v at seed %d", fs[i].Name, x, seed)
			}
		}
	}
}

func TestPEUtilizationRange(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := testPoint(seed)
		u := peUtilization(p)
		if u <= 0 || u > 1 {
			t.Fatalf("utilization %v out of (0,1] at seed %d", u, seed)
		}
	}
}

func TestPEUtilizationPerfectCase(t *testing.T) {
	// Unrolled trip counts exactly matching the array give utilization 1.
	a := hw.Accel{PEs: 64, Width: 8, SIMDLanes: 2, RFKB: 64, L2KB: 64, NoCBW: 64}
	l := workload.Conv("t", 1, 8, 8, 1, 1, 8, 8)
	var s sched.Schedule
	for i, d := range workload.AllDims {
		s.T2[i] = l.Size(d)
		s.T1[i] = l.Size(d)
	}
	// L2-level trips of 8 for both K (over the 8 rows) and C (over the 8
	// columns): T2 = full size, T1 = 1.
	s.T1[workload.DimK] = 1
	s.T1[workload.DimC] = 1
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll = workload.DimK
	s.InnerUnroll = workload.DimC
	u := peUtilization(Point{Accel: a, Sched: s, Layer: l})
	if math.Abs(u-1) > 1e-12 {
		t.Fatalf("perfect mapping utilization = %v, want 1", u)
	}
}

func TestFeatureNamesUnique(t *testing.T) {
	for _, mode := range []FeatureMode{FeatureSpotlight, FeatureVanilla, FeatureAll} {
		fs := FeaturesFor(mode, false)
		seen := map[string]bool{}
		for _, f := range fs {
			if seen[f.Name] {
				t.Fatalf("duplicate feature name %q in mode %v", f.Name, mode)
			}
			seen[f.Name] = true
		}
	}
}

func TestFeaturesForModes(t *testing.T) {
	sw := FeaturesFor(FeatureSpotlight, false)
	v := FeaturesFor(FeatureVanilla, false)
	all := FeaturesFor(FeatureAll, false)
	if len(all) != len(sw)+len(v) {
		t.Fatalf("FeatureAll has %d features, want %d", len(all), len(sw)+len(v))
	}
	hwF := FeaturesFor(FeatureSpotlight, true)
	if len(hwF) == 0 {
		t.Fatal("no hardware features")
	}
	// Hardware features must not touch the schedule (zero value is fine).
	p := Point{Accel: hw.EyerissEdge().Accel}
	for _, f := range hwF {
		x := f.Fn(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("hardware feature %s not schedule-independent", f.Name)
		}
	}
}

func TestVanillaFeaturesEncodeOrders(t *testing.T) {
	fs := VanillaSoftwareFeatures()
	// 8 scalar params + 4 per dimension.
	want := 8 + 4*workload.NumDims
	if len(fs) != want {
		t.Fatalf("vanilla feature count = %d, want %d", len(fs), want)
	}
	p := testPoint(1)
	v := Transform(fs, p)
	for i, x := range v {
		if math.IsNaN(x) {
			t.Fatalf("vanilla feature %s is NaN", fs[i].Name)
		}
	}
}

func TestNames(t *testing.T) {
	fs := SoftwareFeatures()
	names := Names(fs)
	if len(names) != len(fs) || names[0] != fs[0].Name {
		t.Fatal("Names mismatch")
	}
}

func TestFeatureModeString(t *testing.T) {
	if FeatureSpotlight.String() != "spotlight" ||
		FeatureVanilla.String() != "vanilla" ||
		FeatureAll.String() != "all" {
		t.Fatal("unexpected mode names")
	}
}

func TestPermutationImportanceFindsActiveFeature(t *testing.T) {
	// y depends strongly on feature 0 and not at all on feature 1.
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64()}
		x = append(x, row)
		y = append(y, 10*row[0])
	}
	model := gp.New(gp.Linear{Bias: 1}, 1e-6)
	if err := model.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(model, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] < 10*imp[1] {
		t.Fatalf("importances %v do not isolate the active feature", imp)
	}
}

func TestPermutationImportanceEmpty(t *testing.T) {
	model := gp.New(gp.Linear{Bias: 1}, 1e-6)
	if _, err := PermutationImportance(model, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestObjectiveHelpers(t *testing.T) {
	if MinEDP.String() != "EDP" || MinDelay.String() != "delay" {
		t.Fatal("objective names wrong")
	}
	c := maestroCost(5, 10)
	if MinDelay.LayerCost(c) != 10 {
		t.Fatal("delay layer cost wrong")
	}
	if MinEDP.LayerCost(c) != 50 {
		t.Fatal("EDP layer cost wrong")
	}
	if AggregateObjective(MinDelay, 5, 10) != 10 {
		t.Fatal("delay aggregation wrong")
	}
	if AggregateObjective(MinEDP, 5, 10) != 50 {
		t.Fatal("EDP aggregation wrong")
	}
}
