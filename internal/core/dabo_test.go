package core

import (
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/gp"
)

// syntheticCandidates draws n 1-D feature vectors uniform on [0, 10).
func syntheticCandidates(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.Float64() * 10}
	}
	return out
}

func TestDABOConvergesOnSmoothFunction(t *testing.T) {
	// Minimize (x-3)² + 0.1. After training, daBO's suggestions should
	// sit much closer to 3 than random sampling does.
	cost := func(x float64) float64 { return (x-3)*(x-3) + 0.1 }
	rng := rand.New(rand.NewSource(1))
	d := NewDABO(gp.RBF{LengthScale: 2, Variance: 1}, rng, WithWarmup(5), WithRefitEvery(1))

	for i := 0; i < 40; i++ {
		cands := syntheticCandidates(rng, 32)
		idx := d.SuggestIndex(cands)
		x := cands[idx][0]
		d.Observe(cands[idx], cost(x))
	}
	// Measure where the trained optimizer points.
	var sumDist float64
	const probes = 20
	for i := 0; i < probes; i++ {
		cands := syntheticCandidates(rng, 64)
		idx := d.SuggestIndex(cands)
		sumDist += math.Abs(cands[idx][0] - 3)
	}
	mean := sumDist / probes
	// Random choice over [0,10) has expected distance ≈ 2.6 from x=3.
	if mean > 1.0 {
		t.Fatalf("trained daBO mean distance to optimum = %v, want < 1.0", mean)
	}
}

func TestDABOAvoidsInvalidRegion(t *testing.T) {
	// Points with x > 5 are infeasible. After training, suggestions
	// should rarely land there.
	rng := rand.New(rand.NewSource(2))
	d := NewDABO(gp.RBF{LengthScale: 2, Variance: 1}, rng, WithWarmup(5), WithRefitEvery(1))
	cost := func(x float64) float64 { return 10 - x } // tempts toward the cliff

	for i := 0; i < 60; i++ {
		cands := syntheticCandidates(rng, 32)
		idx := d.SuggestIndex(cands)
		x := cands[idx][0]
		if x > 5 {
			d.ObserveInvalid(cands[idx])
		} else {
			d.Observe(cands[idx], cost(x))
		}
	}
	var invalidPicks int
	const probes = 30
	for i := 0; i < probes; i++ {
		cands := syntheticCandidates(rng, 64)
		idx := d.SuggestIndex(cands)
		if cands[idx][0] > 5 {
			invalidPicks++
		}
	}
	// Random sampling would land in the invalid half ~50% of the time.
	if invalidPicks > probes/4 {
		t.Fatalf("daBO picked invalid region %d/%d times", invalidPicks, probes)
	}
}

func TestDABOWarmupIsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDABO(gp.Linear{Bias: 1}, rng, WithWarmup(10))
	if v, iv := d.Observations(); v != 0 || iv != 0 {
		t.Fatal("fresh daBO has observations")
	}
	// During warmup, suggestions must be valid indices without a model.
	for i := 0; i < 5; i++ {
		cands := syntheticCandidates(rng, 8)
		idx := d.SuggestIndex(cands)
		if idx < 0 || idx >= len(cands) {
			t.Fatalf("warmup suggestion out of range: %d", idx)
		}
		d.Observe(cands[idx], 1.0)
	}
	if v, _ := d.Observations(); v != 5 {
		t.Fatalf("observation count = %d, want 5", v)
	}
}

func TestDABOEmptyCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDABO(gp.Linear{Bias: 1}, rng)
	if idx := d.SuggestIndex(nil); idx != -1 {
		t.Fatalf("empty candidate suggestion = %d, want -1", idx)
	}
}

func TestDABOOnlyInvalidObservations(t *testing.T) {
	// With nothing valid yet, the optimizer must still function.
	rng := rand.New(rand.NewSource(5))
	d := NewDABO(gp.Linear{Bias: 1}, rng, WithWarmup(0), WithRefitEvery(1))
	for i := 0; i < 10; i++ {
		cands := syntheticCandidates(rng, 8)
		idx := d.SuggestIndex(cands)
		if idx < 0 || idx >= len(cands) {
			t.Fatalf("suggestion out of range with invalid-only data: %d", idx)
		}
		d.ObserveInvalid(cands[idx])
	}
}

func TestDABOAllInvalidPenaltyWellDefined(t *testing.T) {
	// Regression: with zero valid observations the penalty used to be
	// derived from an empty worst-valid scan. The surrogate must instead
	// train on the explicit all-invalid penalty and stay finite.
	for _, kernel := range []gp.Kernel{gp.Linear{Bias: 1}, gp.RBF{LengthScale: 1, Variance: 1}} {
		rng := rand.New(rand.NewSource(5))
		d := NewDABO(kernel, rng, WithWarmup(0), WithRefitEvery(1))
		for i := 0; i < 8; i++ {
			d.ObserveInvalid([]float64{float64(i), 1})
		}
		d.SuggestIndex([][]float64{{0, 1}, {4, 1}}) // forces a fit
		m := d.Surrogate()
		if m == nil {
			t.Fatalf("%s: no surrogate after invalid-only observations", kernel.Name())
		}
		mean, std, err := m.Predict([]float64{3, 1})
		if err != nil {
			t.Fatalf("%s: predict failed: %v", kernel.Name(), err)
		}
		if math.IsNaN(mean) || math.IsInf(mean, 0) || math.IsNaN(std) || math.IsInf(std, 0) {
			t.Fatalf("%s: non-finite posterior (%v, %v)", kernel.Name(), mean, std)
		}
		// All targets equal the constant penalty, so the posterior mean is
		// flat at that constant.
		if math.Abs(mean-allInvalidPenalty) > 1e-6 {
			t.Fatalf("%s: mean = %v, want ≈ %v", kernel.Name(), mean, allInvalidPenalty)
		}
	}
}

// denseLinear defeats DABO's primal fast-path type assertion so the same
// linear kernel runs through the dense GP, for cross-checking.
type denseLinear struct{ gp.Linear }

func (denseLinear) Name() string { return "linear-dense" }

func TestDABOPrimalAgreesWithDenseGP(t *testing.T) {
	// The primal fast path and the dense GP are the same posterior, so
	// two otherwise-identical optimizers must make identical suggestions.
	lin := gp.Linear{Bias: 1}
	fast := NewDABO(lin, rand.New(rand.NewSource(12)), WithWarmup(0), WithRefitEvery(1))
	slow := NewDABO(denseLinear{lin}, rand.New(rand.NewSource(12)), WithWarmup(0), WithRefitEvery(1))
	if fast.Surrogate() != nil || slow.Surrogate() != nil {
		t.Fatal("surrogate before data")
	}
	data := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		x := []float64{data.Float64() * 4, data.NormFloat64()}
		if i%7 == 3 {
			fast.ObserveInvalid(x)
			slow.ObserveInvalid(x)
			continue
		}
		y := 2*x[0] - x[1] + 0.05*data.NormFloat64()
		fast.Observe(x, y)
		slow.Observe(x, y)
	}
	for trial := 0; trial < 10; trial++ {
		cands := make([][]float64, 16)
		for i := range cands {
			cands[i] = []float64{data.Float64() * 4, data.NormFloat64()}
		}
		fi, si := fast.SuggestIndex(cands), slow.SuggestIndex(cands)
		if fi != si {
			t.Fatalf("trial %d: primal picked %d, dense picked %d", trial, fi, si)
		}
	}
}

func TestDABOSurrogateExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDABO(gp.Linear{Bias: 1}, rng, WithWarmup(0), WithRefitEvery(1))
	if d.Surrogate() != nil {
		t.Fatal("surrogate available before any data")
	}
	for i := 0; i < 10; i++ {
		x := float64(i)
		d.Observe([]float64{x}, 1+x)
	}
	if d.Surrogate() == nil {
		t.Fatal("surrogate unavailable after observations")
	}
	if got := len(d.ValidObservations()); got != 10 {
		t.Fatalf("valid observations = %d, want 10", got)
	}
}

func TestDABOObservationCopied(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDABO(gp.Linear{Bias: 1}, rng)
	f := []float64{1, 2}
	d.Observe(f, 3)
	f[0] = 99
	if d.ValidObservations()[0][0] != 1 {
		t.Fatal("daBO aliased the caller's feature slice")
	}
}

func TestDABOKappaControlsExploration(t *testing.T) {
	// With identical observations, a high-kappa optimizer must pick
	// candidates with higher predictive uncertainty at least sometimes
	// when a low-kappa one exploits the known minimum.
	train := func(kappa float64, seed int64) *DABO {
		rng := rand.New(rand.NewSource(seed))
		d := NewDABO(gp.RBF{LengthScale: 0.5, Variance: 1}, rng,
			WithWarmup(0), WithRefitEvery(1), WithKappa(kappa))
		// Observations only in [0, 2]: far region is unexplored.
		for i := 0; i < 20; i++ {
			x := rng.Float64() * 2
			d.Observe([]float64{x}, 1+(x-1)*(x-1))
		}
		return d
	}
	// Candidates: near the observed minimum and in the unexplored region.
	cands := [][]float64{{1.0}, {9.0}}
	exploit := train(0.01, 1)
	explore := train(50, 1)
	if idx := exploit.SuggestIndex(cands); idx != 0 {
		t.Fatalf("low-kappa optimizer explored (picked %d)", idx)
	}
	if idx := explore.SuggestIndex(cands); idx != 1 {
		t.Fatalf("high-kappa optimizer exploited (picked %d)", idx)
	}
}

func TestDABORefitEveryBatchesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDABO(gp.Linear{Bias: 1}, rng, WithWarmup(0), WithRefitEvery(5))
	for i := 0; i < 3; i++ {
		d.Observe([]float64{float64(i)}, float64(i+1))
	}
	m1 := d.Surrogate()
	if m1 == nil {
		t.Fatal("no surrogate")
	}
	// Two more observations stay under the refit threshold: same model.
	d.Observe([]float64{10}, 11)
	if d.Surrogate() != m1 {
		t.Fatal("surrogate refit before the staleness threshold")
	}
	// Enough new observations force a refit.
	for i := 0; i < 5; i++ {
		d.Observe([]float64{float64(20 + i)}, float64(21+i))
	}
	if d.Surrogate() == m1 {
		t.Fatal("surrogate not refit after the staleness threshold")
	}
}

func TestDABOPenaltyScalesWithWorstValid(t *testing.T) {
	// The invalid-point penalty tracks the worst valid observation, so a
	// surrogate trained with both must predict invalid regions as worse
	// than anything valid.
	rng := rand.New(rand.NewSource(9))
	d := NewDABO(gp.RBF{LengthScale: 1, Variance: 1}, rng, WithWarmup(0), WithRefitEvery(1))
	for i := 0; i < 15; i++ {
		x := rng.Float64() * 3
		d.Observe([]float64{x}, 10+x)
	}
	for i := 0; i < 15; i++ {
		d.ObserveInvalid([]float64{8 + rng.Float64()})
	}
	m := d.Surrogate()
	if m == nil {
		t.Fatal("no surrogate")
	}
	validMean, _, err1 := m.Predict([]float64{1.5})
	invalidMean, _, err2 := m.Predict([]float64{8.5})
	if err1 != nil || err2 != nil {
		t.Fatalf("predict failed: %v %v", err1, err2)
	}
	if invalidMean <= validMean {
		t.Fatalf("invalid region predicted better (%v) than valid (%v)", invalidMean, validMean)
	}
}

func TestDABONonFiniteCostDemotedToInvalid(t *testing.T) {
	d := NewDABO(gp.Linear{Bias: 1}, rand.New(rand.NewSource(1)))
	d.Observe([]float64{1, 2}, math.NaN())
	d.Observe([]float64{3, 4}, math.Inf(1))
	d.Observe([]float64{5, 6}, math.Inf(-1))
	valid, invalid := d.Observations()
	if valid != 0 || invalid != 3 {
		t.Fatalf("observations = (%d valid, %d invalid), want (0, 3)", valid, invalid)
	}
}

func TestDABONonFiniteFeaturesDropped(t *testing.T) {
	d := NewDABO(gp.Linear{Bias: 1}, rand.New(rand.NewSource(1)))
	d.Observe([]float64{math.NaN(), 1}, 10)
	d.Observe([]float64{math.Inf(1), 1}, 10)
	d.ObserveInvalid([]float64{1, math.NaN()})
	valid, invalid := d.Observations()
	if valid != 0 || invalid != 0 {
		t.Fatalf("observations = (%d valid, %d invalid), want none recorded", valid, invalid)
	}
	// A clean observation after the garbage must still work.
	d.Observe([]float64{1, 2}, 10)
	if valid, _ := d.Observations(); valid != 1 {
		t.Fatalf("clean observation not recorded")
	}
}

func TestDABODegradesAfterRepeatedFitFailures(t *testing.T) {
	d := NewDABO(gp.RBF{LengthScale: 1, Variance: 1}, rand.New(rand.NewSource(2)),
		WithWarmup(1), WithRefitEvery(1))
	for i := 0; i < 4; i++ {
		d.Observe([]float64{float64(i), float64(i * i)}, float64(10+i))
	}
	// Corrupt the stored targets directly (Observe itself rejects
	// non-finite input), simulating a pathological observation set that
	// makes every dense fit fail.
	d.y[0] = math.NaN()
	cands := [][]float64{{0, 0}, {1, 1}, {2, 4}}
	for i := 0; i < maxFitFailures; i++ {
		if d.Degraded() {
			t.Fatalf("degraded after only %d failed fits", i)
		}
		if idx := d.SuggestIndex(cands); idx < 0 || idx >= len(cands) {
			t.Fatalf("SuggestIndex returned %d during fit failures", idx)
		}
	}
	if !d.Degraded() {
		t.Fatalf("not degraded after %d failed fits", maxFitFailures)
	}
	// Degraded mode must keep suggesting (randomly) and never re-fit.
	for i := 0; i < 10; i++ {
		if idx := d.SuggestIndex(cands); idx < 0 || idx >= len(cands) {
			t.Fatalf("SuggestIndex returned %d while degraded", idx)
		}
	}
}

func TestDABOFitFailureRecoveryResetsCounter(t *testing.T) {
	d := NewDABO(gp.RBF{LengthScale: 1, Variance: 1}, rand.New(rand.NewSource(3)),
		WithWarmup(1), WithRefitEvery(1))
	for i := 0; i < 4; i++ {
		d.Observe([]float64{float64(i)}, float64(10+i))
	}
	d.y[0] = math.NaN()
	cands := [][]float64{{0}, {1}}
	d.SuggestIndex(cands) // one failed fit
	d.y[0] = math.Log(10) // the data heals before the failure budget is spent
	d.SuggestIndex(cands)
	if d.fitAttempts != 0 {
		t.Fatalf("fit failure counter = %d after a successful fit, want 0", d.fitAttempts)
	}
	if d.Degraded() {
		t.Fatal("degraded despite a successful fit")
	}
}
