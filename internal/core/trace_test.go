package core

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"spotlight/internal/obs"
)

// TestTracedRunHistoryBitIdentical is the tentpole invariant: tracing is
// observe-only. A fully traced run — JSONL sink, every event class live —
// produces a History bit-identical to the untraced run's, at one worker
// and at eight. (Elapsed is wall clock by contract and zeroed before the
// comparison, as every determinism test here does.)
func TestTracedRunHistoryBitIdentical(t *testing.T) {
	run := func(tr obs.Tracer, workers int) Result {
		cfg := tinyConfig(21)
		cfg.Tracer = tr
		cfg.Workers = workers
		res, err := Run(cfg, NewSpotlight())
		if err != nil {
			t.Fatalf("run (workers=%d, traced=%v): %v", workers, obs.Enabled(tr), err)
		}
		return res
	}
	ref := run(nil, 1)
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		got := run(sink, workers)
		if err := sink.Close(); err != nil {
			t.Fatalf("workers=%d: sink close: %v", workers, err)
		}
		if !reflect.DeepEqual(stripElapsed(ref.History), stripElapsed(got.History)) {
			t.Fatalf("workers=%d: traced history differs from untraced", workers)
		}
		if ref.Best.Objective != got.Best.Objective {
			t.Fatalf("workers=%d: traced best %v != untraced %v",
				workers, got.Best.Objective, ref.Best.Objective)
		}
		checkTraceStream(t, &buf, len(ref.History))
	}
}

// checkTraceStream validates every line of a run's trace against the
// event schema and checks the stream's structural invariants: dense
// sequence numbers, one run.start and one run.end, and exactly one
// hw.propose per history point.
func checkTraceStream(t *testing.T, buf *bytes.Buffer, samples int) {
	t.Helper()
	byType := map[obs.EventType]int{}
	var seq int64
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		e, err := obs.ParseLine(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line %d: %v\n%s", seq+1, err, sc.Bytes())
		}
		if e.Seq != seq+1 {
			t.Fatalf("trace seq %d follows %d; want dense 1..N", e.Seq, seq)
		}
		seq = e.Seq
		byType[e.Type]++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if byType[obs.RunStart] != 1 || byType[obs.RunEnd] != 1 {
		t.Fatalf("run.start/run.end counts = %d/%d, want 1/1",
			byType[obs.RunStart], byType[obs.RunEnd])
	}
	if byType[obs.HWPropose] != samples {
		t.Fatalf("hw.propose count = %d, want %d", byType[obs.HWPropose], samples)
	}
	if byType[obs.SWStart] == 0 || byType[obs.SWStart] != byType[obs.SWEnd] {
		t.Fatalf("sw.start/sw.end counts = %d/%d, want equal and positive",
			byType[obs.SWStart], byType[obs.SWEnd])
	}
	if byType[obs.Incumbent] == 0 {
		t.Fatal("no incumbent events; a feasible run must improve at least once")
	}
	if byType[obs.DABOFit] == 0 {
		t.Fatal("no dabo.fit events; the surrogate must have been refit")
	}
}

// TestTracedCheckpointRoundTrip: checkpoint.save events carry the sample
// they cover, a resumed run emits checkpoint.load, and — the fingerprint
// half of the invariant — traced and untraced runs share checkpoints
// because the Tracer field is excluded from the fingerprint.
func TestTracedCheckpointRoundTrip(t *testing.T) {
	var cps []*Checkpoint
	cfg := tinyConfig(5)
	cfg.OnCheckpoint = func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	cfg.Tracer = sink
	full, err := Run(cfg, NewSpotlight())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	saves := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		e, err := obs.ParseLine(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if e.Type == obs.CheckpointSave {
			saves++
			if e.Sample != saves {
				t.Fatalf("checkpoint.save #%d carries sample %d", saves, e.Sample)
			}
		}
	}
	if saves != cfg.HWSamples {
		t.Fatalf("saw %d checkpoint.save events, want %d", saves, cfg.HWSamples)
	}

	// Resume the untraced twin from a mid-run checkpoint written by the
	// traced run: fingerprints must match, and the tail must emit
	// checkpoint.load.
	mid := cps[len(cps)/2]
	var tailBuf bytes.Buffer
	tailSink := obs.NewJSONL(&tailBuf)
	resumed := tinyConfig(5)
	resumed.Resume = mid
	resumed.Tracer = tailSink
	got, err := Run(resumed, NewSpotlight())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := tailSink.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(full.History), stripElapsed(got.History)) {
		t.Fatal("resumed traced run diverged from the uninterrupted run")
	}
	loads := 0
	sc = bufio.NewScanner(&tailBuf)
	for sc.Scan() {
		e, err := obs.ParseLine(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if e.Type == obs.CheckpointLoad {
			loads++
			if e.Sample != mid.Samples {
				t.Fatalf("checkpoint.load carries sample %d, want %d", e.Sample, mid.Samples)
			}
		}
	}
	if loads != 1 {
		t.Fatalf("saw %d checkpoint.load events, want 1", loads)
	}
}
