package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spotlight/internal/hw"
)

func designWith(objective float64, a hw.Accel) Design {
	return Design{Accel: a, Objective: objective}
}

func accelSized(pes, rf int) hw.Accel {
	return hw.Accel{PEs: pes, Width: 1, SIMDLanes: 2, RFKB: rf, L2KB: 64, NoCBW: 64}
}

func TestParetoDominance(t *testing.T) {
	small := accelSized(128, 64)
	big := accelSized(300, 256)
	// Better objective AND smaller silicon dominates.
	if !dominates(designWith(1, small), designWith(2, big)) {
		t.Fatal("clear dominance missed")
	}
	// Trade-off (better objective, bigger silicon) does not dominate.
	if dominates(designWith(1, big), designWith(2, small)) {
		t.Fatal("trade-off treated as dominance")
	}
	// Equal designs do not dominate each other.
	if dominates(designWith(1, small), designWith(1, small)) {
		t.Fatal("equal designs should not dominate")
	}
}

func TestParetoFrontierKeepsTradeoffs(t *testing.T) {
	var f ParetoFrontier
	if !f.Add(designWith(10, accelSized(300, 256))) { // fast, big
		t.Fatal("first design rejected")
	}
	if !f.Add(designWith(20, accelSized(128, 64))) { // slow, small
		t.Fatal("trade-off design rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("frontier size = %d, want 2", f.Len())
	}
	// A dominated design is rejected.
	if f.Add(designWith(30, accelSized(300, 256))) {
		t.Fatal("dominated design accepted")
	}
	// A dominating design evicts.
	if !f.Add(designWith(5, accelSized(128, 64))) {
		t.Fatal("dominating design rejected")
	}
	for _, d := range f.Designs() {
		if d.Objective == 20 {
			t.Fatal("dominated design not evicted")
		}
	}
}

func TestParetoDesignsSorted(t *testing.T) {
	var f ParetoFrontier
	f.Add(designWith(30, accelSized(128, 64)))
	f.Add(designWith(10, accelSized(300, 256)))
	f.Add(designWith(20, accelSized(200, 128)))
	prev := -1.0
	for _, d := range f.Designs() {
		if d.Objective < prev {
			t.Fatal("frontier not sorted by objective")
		}
		prev = d.Objective
	}
}

func TestSelectWithinBudget(t *testing.T) {
	var f ParetoFrontier
	small := accelSized(128, 64)
	big := accelSized(300, 256)
	f.Add(designWith(10, big))   // best objective, large
	f.Add(designWith(20, small)) // worse objective, small

	// A budget only the small design fits selects it despite the worse
	// objective.
	tight := hw.Budget{AreaMM2: small.AreaMM2() + 1, PowerMW: 1e9}
	d, ok := f.SelectWithinBudget(tight)
	if !ok || d.Objective != 20 {
		t.Fatalf("tight budget selected %+v, want the small design", d.Objective)
	}

	// A budget both fit selects the design closest to the allowance —
	// the big one (§VI-B: closest without exceeding).
	loose := hw.Budget{AreaMM2: big.AreaMM2() + 1, PowerMW: 1e9}
	d, ok = f.SelectWithinBudget(loose)
	if !ok || d.Objective != 10 {
		t.Fatalf("loose budget selected %+v, want the big design", d.Objective)
	}

	// A budget neither fits selects nothing.
	if _, ok := f.SelectWithinBudget(hw.Budget{AreaMM2: 0.001, PowerMW: 0.001}); ok {
		t.Fatal("impossible budget produced a selection")
	}
}

// Property: no frontier member dominates another, regardless of insertion
// order.
func TestParetoMutualNonDominationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fr ParetoFrontier
		for i := 0; i < 40; i++ {
			a := accelSized(128+rng.Intn(170), 64+8*rng.Intn(25))
			fr.Add(designWith(1+rng.Float64()*100, a))
		}
		ds := fr.Designs()
		for i := range ds {
			for j := range ds {
				if i != j && dominates(ds[i], ds[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopDesigns(t *testing.T) {
	top := TopDesigns{K: 3}
	for i, obj := range []float64{50, 10, 30, 20, 40} {
		top.Add(designWith(obj, accelSized(128+i, 64)))
	}
	got := top.Designs()
	if len(got) != 3 {
		t.Fatalf("kept %d designs, want 3", len(got))
	}
	want := []float64{10, 20, 30}
	for i, d := range got {
		if d.Objective != want[i] {
			t.Fatalf("top designs = %v at %d, want %v", d.Objective, i, want[i])
		}
	}
}

func TestTopDesignsDeduplicatesAccel(t *testing.T) {
	top := TopDesigns{K: 5}
	a := accelSized(128, 64)
	top.Add(designWith(30, a))
	top.Add(designWith(10, a)) // same accelerator, better objective
	got := top.Designs()
	if len(got) != 1 || got[0].Objective != 10 {
		t.Fatalf("dedup failed: %+v", got)
	}
	top.Add(designWith(50, a)) // worse duplicate ignored
	if top.Designs()[0].Objective != 10 {
		t.Fatal("worse duplicate replaced the better entry")
	}
}

func TestTopDesignsZeroK(t *testing.T) {
	var top TopDesigns
	top.Add(designWith(1, accelSized(128, 64)))
	if len(top.Designs()) != 0 {
		t.Fatal("K=0 collection retained a design")
	}
}

func TestRunPopulatesFrontierAndTop(t *testing.T) {
	res, err := Run(tinyConfig(21), NewSpotlight())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty pareto frontier after a successful run")
	}
	if len(res.Top) == 0 {
		t.Fatal("empty top-K after a successful run")
	}
	if res.Top[0].Objective != res.Best.Objective {
		t.Fatalf("top design %v != best %v", res.Top[0].Objective, res.Best.Objective)
	}
	// Frontier designs all fit the budget (out-of-budget samples are
	// invalid and never reach the frontier).
	for _, d := range res.Frontier {
		if !res.Config.Budget.Fits(d.Accel) {
			t.Fatal("frontier contains an over-budget design")
		}
	}
	// §VI-B selection returns something within budget.
	var fr ParetoFrontier
	for _, d := range res.Frontier {
		fr.Add(d)
	}
	if _, ok := fr.SelectWithinBudget(res.Config.Budget); !ok {
		t.Fatal("budget-closest selection failed on a populated frontier")
	}
}
