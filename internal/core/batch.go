package core

import (
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// BatchEvaluator is the optional fast path of Evaluator: backends and
// middleware that can evaluate many candidate schedules against one
// (accelerator, layer) pair in a single call implement it. The batch
// contract (see DESIGN.md §12):
//
//   - Results are positional: costs[i]/errs[i] correspond to ss[i], with
//     len(costs) == len(errs) == len(ss).
//   - Every (costs[i], errs[i]) pair is bit-for-bit what Evaluate(a,
//     ss[i], l) would return — same cost fields, same error strings,
//     same errors.Is classification — so batching is purely a
//     throughput optimization, never a semantic change.
//   - Implementations must be safe for concurrent EvaluateBatch calls
//     whenever their Evaluate is.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error)
}

// EvaluateBatch evaluates a batch through ev, using the native batch
// path when ev implements BatchEvaluator and falling back to a
// sequential loop otherwise. The fallback is what keeps every
// eval.FromSpec composition working unchanged: a non-batch layer
// anywhere in a middleware chain simply degrades that chain to per-item
// calls without changing a single result bit.
func EvaluateBatch(ev Evaluator, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	if b, ok := ev.(BatchEvaluator); ok {
		return b.EvaluateBatch(a, ss, l)
	}
	costs := make([]maestro.Cost, len(ss))
	errs := make([]error, len(ss))
	for i := range ss {
		costs[i], errs[i] = ev.Evaluate(a, ss[i], l)
	}
	return costs, errs
}

// RoundProposer is the optional batching hook of SWProposer: a proposer
// implements it when its next RoundSize() Suggest calls are independent
// of any intervening Observe calls, so the driver may collect that many
// candidates up front and evaluate them in one EvaluateBatch call,
// delivering the Observe feedback afterwards in suggestion order.
//
// RoundSize is consulted before each round and may change as the
// proposer's state evolves (a genetic searcher batches its whole
// initial population, then drops to 1 once selection pressure makes
// each suggestion depend on the previous observation). The driver caps
// the round at the remaining sample budget; proposers whose suggestions
// never depend on feedback simply return a number at least as large as
// any plausible budget. A RoundSize below 1 is treated as 1.
type RoundProposer interface {
	SWProposer
	RoundSize() int
}
