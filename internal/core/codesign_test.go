package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

func maestroCost(energy, delay float64) (c maestro.Cost) {
	c.EnergyNJ = energy
	c.DelayCycles = delay
	return c
}

// tinyModel is a small two-layer model that keeps end-to-end tests fast.
func tinyModel() workload.Model {
	return workload.Model{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.Conv("a", 1, 32, 16, 3, 3, 10, 10),
			workload.Conv("b", 1, 64, 32, 1, 1, 8, 8).Times(2),
		},
	}
}

func tinyConfig(seed int64) RunConfig {
	return RunConfig{
		Models:    []workload.Model{tinyModel()},
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: MinEDP,
		HWSamples: 8,
		SWSamples: 12,
		Seed:      seed,
		Eval:      maestro.New(),
	}
}

func TestRunSpotlightEndToEnd(t *testing.T) {
	res, err := Run(tinyConfig(1), NewSpotlight())
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Tool != "Spotlight" {
		t.Fatalf("tool = %q", res.Tool)
	}
	if len(res.History) != 8 {
		t.Fatalf("history has %d points, want 8", len(res.History))
	}
	if math.IsInf(res.Best.Objective, 1) || res.Best.Objective <= 0 {
		t.Fatalf("bad best objective: %v", res.Best.Objective)
	}
	// BestSoFar must be non-increasing.
	prev := math.Inf(1)
	for _, h := range res.History {
		if h.BestSoFar > prev {
			t.Fatalf("BestSoFar increased at sample %d", h.Sample)
		}
		prev = h.BestSoFar
	}
	// The winning design fits the budget and covers every layer.
	if !res.Config.Budget.Fits(res.Best.Accel) {
		t.Fatal("winning design exceeds budget")
	}
	if len(res.Best.Layers) != 2 {
		t.Fatalf("winning design has %d layer results, want 2", len(res.Best.Layers))
	}
	for _, lr := range res.Best.Layers {
		if !lr.Valid {
			t.Fatalf("layer %s has no valid schedule", lr.Layer.Name)
		}
		if err := lr.Schedule.Validate(lr.Layer); err != nil {
			t.Fatalf("winning schedule invalid: %v", err)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	r1, err1 := Run(tinyConfig(7), NewSpotlight())
	r2, err2 := Run(tinyConfig(7), NewSpotlight())
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	if r1.Best.Objective != r2.Best.Objective {
		t.Fatalf("same seed, different results: %v vs %v", r1.Best.Objective, r2.Best.Objective)
	}
	r3, err3 := Run(tinyConfig(8), NewSpotlight())
	if err3 != nil {
		t.Fatal(err3)
	}
	if r3.Best.Objective == r1.Best.Objective {
		t.Log("warning: different seeds produced identical objectives (possible but unlikely)")
	}
}

// stripElapsed copies a history with the wall-clock column zeroed, so
// determinism tests can compare the search trajectory byte for byte.
func stripElapsed(h []HistoryPoint) []HistoryPoint {
	out := append([]HistoryPoint(nil), h...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := tinyConfig(21)
	var ref Result
	for i, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg, NewSpotlight())
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(stripElapsed(ref.History), stripElapsed(res.History)) {
			t.Fatalf("Workers=%d produced a different history than Workers=1", workers)
		}
		if ref.Best.Objective != res.Best.Objective {
			t.Fatalf("Workers=%d best %v != Workers=1 best %v", workers, res.Best.Objective, ref.Best.Objective)
		}
	}
}

func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := tinyConfig(23) // Workers=0: pool width follows GOMAXPROCS
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	r1, err := Run(cfg, NewSpotlight())
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(runtime.NumCPU())
	r2, err := Run(cfg, NewSpotlight())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(r1.History), stripElapsed(r2.History)) {
		t.Fatal("history differs between GOMAXPROCS=1 and GOMAXPROCS=NumCPU")
	}
	if r1.Best.Objective != r2.Best.Objective {
		t.Fatalf("best objective differs: %v vs %v", r1.Best.Objective, r2.Best.Objective)
	}
}

func TestRunRejectsEmptyConfig(t *testing.T) {
	if _, err := Run(RunConfig{}, NewSpotlight()); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := tinyConfig(1)
	cfg.Eval = nil
	if _, err := Run(cfg, NewSpotlight()); err == nil {
		t.Fatal("missing evaluator accepted")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	cfg := RunConfig{
		Models:    []workload.Model{tinyModel()},
		Objective: MinDelay,
		HWSamples: 3,
		SWSamples: 5,
		Eval:      maestro.New(),
	}
	res, err := Run(cfg, NewSpotlight())
	if err != nil {
		t.Fatalf("run with defaults failed: %v", err)
	}
	if res.Config.Space.Name != "edge" {
		t.Fatal("edge space default not applied")
	}
	if res.Config.SWConstraint.Name != "free" {
		t.Fatal("free constraint default not applied")
	}
}

func TestOptimizeSoftwareOnBaseline(t *testing.T) {
	b := hw.EyerissEdge()
	cfg := tinyConfig(3)
	cfg.SWConstraint = b.Constraint
	design, err := OptimizeSoftware(cfg, NewSpotlight(), b.Accel)
	if err != nil {
		t.Fatalf("software optimization failed: %v", err)
	}
	if design.Accel != b.Accel {
		t.Fatal("accelerator changed during software-only optimization")
	}
	if design.Objective <= 0 || math.IsInf(design.Objective, 1) {
		t.Fatalf("bad objective: %v", design.Objective)
	}
	// Eyeriss-like schedules must respect the pinned dataflow.
	for _, lr := range design.Layers {
		if lr.Schedule.OuterUnroll != workload.DimY || lr.Schedule.InnerUnroll != workload.DimX {
			t.Fatalf("schedule escaped the Eyeriss dataflow: %v", lr.Schedule)
		}
	}
}

func TestModelObjectives(t *testing.T) {
	d := Design{Layers: []LayerResult{
		{Model: "m1", Layer: workload.Conv("a", 1, 1, 1, 1, 1, 1, 1), Cost: maestroCost(2, 3), Valid: true},
		{Model: "m1", Layer: workload.Conv("b", 1, 1, 1, 1, 1, 1, 1).Times(2), Cost: maestroCost(1, 1), Valid: true},
		{Model: "m2", Layer: workload.Conv("c", 1, 1, 1, 1, 1, 1, 1), Cost: maestroCost(4, 5), Valid: true},
	}}
	objs := ModelObjectives(MinDelay, d)
	if objs["m1"] != 5 { // 3 + 2×1
		t.Fatalf("m1 delay = %v, want 5", objs["m1"])
	}
	if objs["m2"] != 5 {
		t.Fatalf("m2 delay = %v, want 5", objs["m2"])
	}
	edp := ModelObjectives(MinEDP, d)
	if edp["m1"] != (2+2)*(3+2) {
		t.Fatalf("m1 EDP = %v, want 20", edp["m1"])
	}
}

func TestMultiModelAggregation(t *testing.T) {
	cfg := tinyConfig(5)
	second := tinyModel()
	second.Name = "tiny2"
	cfg.Models = append(cfg.Models, second)
	res, err := Run(cfg, NewSpotlight())
	if err != nil {
		t.Fatalf("multi-model run failed: %v", err)
	}
	objs := ModelObjectives(cfg.Objective, res.Best)
	if len(objs) != 2 {
		t.Fatalf("per-model objectives = %v, want 2 entries", objs)
	}
	var sum float64
	for _, v := range objs {
		sum += v
	}
	if math.Abs(sum-res.Best.Objective) > 1e-6*sum {
		t.Fatalf("per-model sum %v != aggregate %v", sum, res.Best.Objective)
	}
}

func TestSpotlightVariantNames(t *testing.T) {
	if NewSpotlight().Name() != "Spotlight" ||
		NewSpotlightV().Name() != "Spotlight-V" ||
		NewSpotlightA().Name() != "Spotlight-A" ||
		NewSpotlightF().Name() != "Spotlight-F" {
		t.Fatal("variant names wrong")
	}
}

func TestSpotlightVariantsRun(t *testing.T) {
	for _, strat := range []*Spotlight{NewSpotlightV(), NewSpotlightA(), NewSpotlightF()} {
		res, err := Run(tinyConfig(11), strat)
		if err != nil {
			t.Fatalf("%s failed: %v", strat.Name(), err)
		}
		if res.Best.Objective <= 0 {
			t.Fatalf("%s produced bad objective", strat.Name())
		}
	}
}

func TestSpotlightFStaysInFixedDataflows(t *testing.T) {
	res, err := Run(tinyConfig(13), NewSpotlightF())
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[workload.Dim]bool{
		workload.DimY: true, workload.DimK: true, workload.DimX: true,
	}
	for _, lr := range res.Best.Layers {
		if !allowed[lr.Schedule.OuterUnroll] {
			t.Fatalf("Spotlight-F escaped fixed dataflows: outer unroll %v", lr.Schedule.OuterUnroll)
		}
	}
}

func TestLastSWImportanceAvailableAfterRun(t *testing.T) {
	strat := NewSpotlight()
	res, err := Run(tinyConfig(17), strat)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	names, imp, ok := strat.LastSWImportance(randSource(17))
	if !ok {
		t.Fatal("no importance available after a full run")
	}
	if len(names) != len(imp) || len(names) == 0 {
		t.Fatalf("importance shape mismatch: %d names, %d values", len(names), len(imp))
	}
	for i, v := range imp {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("importance %s = %v", names[i], v)
		}
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
