// Package core implements the paper's primary contribution: daBO, the
// domain-aware Bayesian optimization framework (§V), the feature space
// that injects hardware/software co-design knowledge into the search
// (§IV-B, Figure 4), and Spotlight, the layerwise nested HW/SW co-design
// tool built on daBO (§VI).
package core

import (
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Point is one co-design point: an accelerator, a software schedule, and
// the layer the schedule runs. Features (Figure 4) are arbitrary
// transformations of a Point into ℝ.
type Point struct {
	Accel hw.Accel
	Sched sched.Schedule
	Layer workload.Layer
}

// Evaluator abstracts the analytical cost model backend so Spotlight can
// run against the primary MAESTRO-like model, the Timeloop-like model of
// §VII-F, or a test double.
type Evaluator interface {
	// Evaluate returns the cost of the design, or an error wrapping
	// maestro.ErrInvalid for points outside the feasible region.
	Evaluate(hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error)
	// Name identifies the backend in reports.
	Name() string
}

// Objective selects the single-objective metric Spotlight minimizes
// (§VI-B).
type Objective int

// The two objectives the paper evaluates.
const (
	MinEDP Objective = iota
	MinDelay
)

// String returns the metric's display name.
func (o Objective) String() string {
	if o == MinDelay {
		return "delay"
	}
	return "EDP"
}

// LayerCost reduces a per-layer cost to the objective's scalar for that
// layer. Model-level aggregation happens in AggregateObjective, because
// EDP does not sum across layers (energy and delay sum separately).
func (o Objective) LayerCost(c maestro.Cost) float64 {
	if o == MinDelay {
		return c.DelayCycles
	}
	return c.EDP()
}

// AggregateObjective combines per-layer costs (already weighted by layer
// repeat counts) into the model-level objective: total delay for
// MinDelay, total-energy × total-delay for MinEDP.
func AggregateObjective(o Objective, totalEnergyNJ, totalDelayCycles float64) float64 {
	if o == MinDelay {
		return totalDelayCycles
	}
	return totalEnergyNJ * totalDelayCycles
}
