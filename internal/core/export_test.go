package core

import (
	"bytes"
	"strings"
	"testing"

	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

func exportedRun(t *testing.T) (Result, DesignExport) {
	t.Helper()
	res, err := Run(tinyConfig(23), NewSpotlight())
	if err != nil {
		t.Fatal(err)
	}
	return res, Export(res.Tool, res.Config.Objective, res.Best)
}

func TestExportShape(t *testing.T) {
	res, e := exportedRun(t)
	if e.Version != exportVersion || e.Tool != "Spotlight" {
		t.Fatalf("header wrong: %+v", e)
	}
	if e.Value != res.Best.Objective {
		t.Fatal("objective value mismatch")
	}
	if e.Accel.PEs != res.Best.Accel.PEs || e.Accel.Height != res.Best.Accel.Height() {
		t.Fatal("accelerator fields mismatch")
	}
	if len(e.Layers) != len(res.Best.Layers) {
		t.Fatal("layer count mismatch")
	}
	if len(e.PerModel) != 1 {
		t.Fatalf("per-model map = %v", e.PerModel)
	}
	for _, l := range e.Layers {
		if !strings.Contains(l.OuterOrder, ">") {
			t.Fatalf("order not rendered: %q", l.OuterOrder)
		}
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	_, e := exportedRun(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != e.Value || got.Accel != e.Accel || len(got.Layers) != len(e.Layers) {
		t.Fatal("round trip lost data")
	}
}

func TestReadJSONRejectsBadVersion(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestScheduleFromExportRoundTrip(t *testing.T) {
	// An exported schedule must reconstruct to something that validates
	// and re-evaluates to the identical cost.
	res, e := exportedRun(t)
	eval := maestro.New()
	for i, le := range e.Layers {
		s, err := ScheduleFromExport(le)
		if err != nil {
			t.Fatalf("layer %s: %v", le.Layer, err)
		}
		orig := res.Best.Layers[i]
		if s != orig.Schedule {
			t.Fatalf("layer %s: schedule changed through export:\n%v\n%v",
				le.Layer, orig.Schedule, s)
		}
		c, err := eval.Evaluate(res.Best.Accel, s, orig.Layer)
		if err != nil {
			t.Fatalf("re-evaluating exported schedule: %v", err)
		}
		if c.DelayCycles != orig.Cost.DelayCycles {
			t.Fatalf("cost changed through export: %v vs %v", c.DelayCycles, orig.Cost.DelayCycles)
		}
	}
}

func TestParseOrderErrors(t *testing.T) {
	if _, err := parseOrder("N>K>C"); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := parseOrder("N>K>C>R>S>X>Q"); err == nil {
		t.Fatal("unknown dim accepted")
	}
	if _, err := parseOrder("N>K>C>R>S>X>Y>N"); err == nil {
		t.Fatal("overlong order accepted")
	}
}

func TestParseDim(t *testing.T) {
	for _, d := range workload.AllDims {
		got, err := parseDim(d.String())
		if err != nil || got != d {
			t.Fatalf("parseDim(%s) = %v, %v", d, got, err)
		}
	}
	if _, err := parseDim("Z"); err == nil {
		t.Fatal("unknown dim accepted")
	}
}
