package core

import (
	"sort"

	"spotlight/internal/hw"
)

// ParetoPoint is one candidate on the objective/area/power trade-off
// surface explored during a hardware search.
type ParetoPoint struct {
	Design Design
}

// dominates reports whether a is at least as good as b on every axis and
// strictly better on at least one (all axes minimized).
func dominates(a, b Design) bool {
	ao, aa, ap := a.Objective, a.Accel.AreaMM2(), a.Accel.PeakPowerMW()
	bo, ba, bp := b.Objective, b.Accel.AreaMM2(), b.Accel.PeakPowerMW()
	if ao > bo || aa > ba || ap > bp {
		return false
	}
	return ao < bo || aa < ba || ap < bp
}

// ParetoFrontier maintains the set of mutually non-dominated designs
// seen during a search, over (objective, area, peak power). Spotlight
// performs single-objective optimization, but §VI-B selects the final
// configuration from this frontier: the design closest to the area and
// power budgets without exceeding them.
type ParetoFrontier struct {
	points []Design
}

// Add offers a design to the frontier. Dominated offers are discarded;
// an accepted offer evicts any designs it dominates. Returns true if the
// design joined the frontier.
func (p *ParetoFrontier) Add(d Design) bool {
	for _, q := range p.points {
		if dominates(q, d) || (q.Accel == d.Accel && q.Objective == d.Objective) { //lint:allow floateq(exact dedup of a re-offered identical design; a tolerance would merge distinct designs)
			return false
		}
	}
	kept := p.points[:0]
	for _, q := range p.points {
		if !dominates(d, q) {
			kept = append(kept, q)
		}
	}
	p.points = append(kept, d)
	return true
}

// Len returns the number of designs on the frontier.
func (p *ParetoFrontier) Len() int { return len(p.points) }

// Designs returns the frontier sorted by ascending objective.
func (p *ParetoFrontier) Designs() []Design {
	out := append([]Design(nil), p.points...)
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// SelectWithinBudget implements the §VI-B selection rule: among frontier
// designs that fit the budget, return the one closest to the budget
// (maximizing normalized area + power utilization) — i.e., the design
// that spends the allowance rather than stranding it. Ties favor the
// better objective because Designs() is objective-sorted. The second
// return is false when no frontier design fits.
func (p *ParetoFrontier) SelectWithinBudget(b hw.Budget) (Design, bool) {
	best := -1.0
	var pick Design
	found := false
	for _, d := range p.Designs() {
		if !b.Fits(d.Accel) {
			continue
		}
		closeness := d.Accel.AreaMM2()/b.AreaMM2 + d.Accel.PeakPowerMW()/b.PowerMW
		if closeness > best {
			best = closeness
			pick = d
			found = true
		}
	}
	return pick, found
}

// TopDesigns is a bounded best-K collection of distinct designs by
// objective. §VII-F recommends carrying the top ~20 designs forward to a
// second evaluation medium rather than trusting a single optimum; the
// co-design driver fills one of these during the hardware search.
type TopDesigns struct {
	K       int
	designs []Design
}

// Add offers a design; it is kept if it ranks among the best K distinct
// accelerators seen.
func (t *TopDesigns) Add(d Design) {
	if t.K <= 0 {
		return
	}
	for i, q := range t.designs {
		if q.Accel == d.Accel {
			if d.Objective < q.Objective {
				t.designs[i] = d
				t.sort()
			}
			return
		}
	}
	t.designs = append(t.designs, d)
	t.sort()
	if len(t.designs) > t.K {
		t.designs = t.designs[:t.K]
	}
}

func (t *TopDesigns) sort() {
	sort.Slice(t.designs, func(i, j int) bool {
		return t.designs[i].Objective < t.designs[j].Objective
	})
}

// Designs returns the retained designs, best first.
func (t *TopDesigns) Designs() []Design {
	return append([]Design(nil), t.designs...)
}
