package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// FuzzParseOrder ensures arbitrary order strings never panic and are
// either rejected or round-trip losslessly.
func FuzzParseOrder(f *testing.F) {
	f.Add("N>K>C>R>S>X>Y")
	f.Add("Y>X>S>R>C>K>N")
	f.Add("")
	f.Add("N>N>N>N>N>N>N")
	f.Add("garbage>input")
	f.Fuzz(func(t *testing.T, s string) {
		order, err := parseOrder(s)
		if err != nil {
			return
		}
		if got := orderString(order); got != s {
			t.Fatalf("accepted order %q does not round-trip: %q", s, got)
		}
	})
}

// scriptedFaultEval corrupts the real cost model's answers according to
// a byte script: each evaluation consumes one opcode (cycling) choosing
// between a clean answer, a backend error, an invalid-design error, and
// NaN/±Inf cost corruption. It lives here rather than using
// resilience.ChaosEvaluator because core's internal tests cannot import
// a package that imports core.
type scriptedFaultEval struct {
	inner  Evaluator
	script []byte
	call   int
}

func (e *scriptedFaultEval) Name() string { return "scripted-faults" }

func (e *scriptedFaultEval) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	op := byte(0)
	if len(e.script) > 0 {
		op = e.script[e.call%len(e.script)]
	}
	e.call++
	cost, err := e.inner.Evaluate(a, s, l)
	switch op % 6 {
	case 1:
		return maestro.Cost{}, errors.New("fuzz: backend failure")
	case 2:
		cost.DelayCycles = math.NaN()
	case 3:
		cost.EnergyNJ = math.Inf(1)
	case 4:
		cost.DelayCycles = math.Inf(-1)
		cost.EnergyNJ = math.Inf(-1)
	case 5:
		return cost, fmt.Errorf("fuzz: %w", maestro.ErrInvalid)
	}
	return cost, err
}

// FuzzLayerSearchFaultSequences drives one per-layer software search
// against an evaluator misbehaving per an arbitrary fault script. The
// invariant: whatever the fault sequence, the LayerResult is either
// valid with a strictly finite cost and objective, or cleanly invalid
// with the zero cost — never a "valid" result carrying NaN/±Inf.
func FuzzLayerSearchFaultSequences(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5}, int64(2))
	f.Add([]byte{2, 2, 2, 2}, int64(3))
	f.Add([]byte{1, 5}, int64(4))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		cfg, err := tinyConfig(3).normalized()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		cfg.Eval = &scriptedFaultEval{inner: maestro.New(), script: script}
		layer := cfg.Models[0].Layers[0]
		accel := cfg.Space.Random(rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(deriveSeed(seed, 1, 0)))
		sw := NewSpotlight().NewSW(cfg, rng, accel, layer)
		res := runLayerSearch(context.Background(), cfg, sw, accel, layer, 8, nil)
		if res.Valid {
			if !res.Cost.Finite() {
				t.Fatalf("valid result with non-finite cost: %+v", res.Cost)
			}
			obj := cfg.Objective.LayerCost(res.Cost)
			if math.IsNaN(obj) || math.IsInf(obj, 0) {
				t.Fatalf("valid result with non-finite objective %v", obj)
			}
		} else if res.Cost != (maestro.Cost{}) {
			t.Fatalf("invalid result carries a cost: %+v", res.Cost)
		}
	})
}
