package core

import (
	"testing"
)

// FuzzParseOrder ensures arbitrary order strings never panic and are
// either rejected or round-trip losslessly.
func FuzzParseOrder(f *testing.F) {
	f.Add("N>K>C>R>S>X>Y")
	f.Add("Y>X>S>R>C>K>N")
	f.Add("")
	f.Add("N>N>N>N>N>N>N")
	f.Add("garbage>input")
	f.Fuzz(func(t *testing.T, s string) {
		order, err := parseOrder(s)
		if err != nil {
			return
		}
		if got := orderString(order); got != s {
			t.Fatalf("accepted order %q does not round-trip: %q", s, got)
		}
	})
}
