package core_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/resilience"
)

func testCheckpoint(samples int) *core.Checkpoint {
	return &core.Checkpoint{
		Version:     1,
		Tool:        "spotlight",
		Fingerprint: "test-fp",
		Samples:     samples,
		Observations: []core.Observation{
			{Accel: hw.Accel{PEs: 256, Width: 16, SIMDLanes: 2, RFKB: 64, L2KB: 1024, NoCBW: 128}, Objective: 42.5, Valid: true},
			{Accel: hw.Accel{PEs: 64, Width: 8, SIMDLanes: 1, RFKB: 16, L2KB: 256, NoCBW: 32}, Valid: false},
		},
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	cp := testCheckpoint(3)
	if err := core.WriteCheckpointFile(path, cp); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	got, err := core.ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("ReadCheckpointFile: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, cp)
	}
	// The atomic install leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left after successful write: %v", err)
	}

	// Overwrite replaces atomically.
	cp2 := testCheckpoint(7)
	if err := core.WriteCheckpointFile(path, cp2); err != nil {
		t.Fatalf("second WriteCheckpointFile: %v", err)
	}
	got, err = core.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != 7 {
		t.Fatalf("Samples = %d after overwrite, want 7", got.Samples)
	}
}

// TestTornTempPreservesCheckpoint simulates a crash mid-rewrite: a torn
// .tmp next to a valid checkpoint. The reader must keep serving the old
// checkpoint, and a later write must succeed over the debris.
func TestTornTempPreservesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	cp := testCheckpoint(3)
	if err := core.WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}

	// Serialize the successor and tear its write with the shared fault
	// injector — the same partial-prefix shape a crash leaves.
	var full bytes.Buffer
	if err := core.WriteCheckpoint(&full, testCheckpoint(9)); err != nil {
		t.Fatal(err)
	}
	fault := resilience.NewFileFault(int64(full.Len()/2), errors.New("crash"))
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.Writer(tmp).Write(full.Bytes()); err == nil {
		t.Fatal("fault writer did not tear the write")
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := core.ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("torn .tmp broke the reader: %v", err)
	}
	if got.Samples != 3 {
		t.Fatalf("Samples = %d, want the pre-crash 3", got.Samples)
	}

	// Recovery is just writing again: the rename replaces the debris path
	// atomically and the new checkpoint lands.
	if err := core.WriteCheckpointFile(path, testCheckpoint(9)); err != nil {
		t.Fatalf("write over torn temp: %v", err)
	}
	got, err = core.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != 9 {
		t.Fatalf("Samples = %d after recovery write, want 9", got.Samples)
	}
}

// TestTornCheckpointFailsCleanly: a checkpoint truncated mid-file (the
// pre-atomic-write failure mode, or filesystem loss) must produce an
// error, never a partial checkpoint.
func TestTornCheckpointFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	if err := core.WriteCheckpointFile(path, testCheckpoint(3)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := core.ReadCheckpointFile(path); err == nil {
		t.Fatal("truncated checkpoint read succeeded")
	}
}

// TestWriteCheckpointFileFailurePreservesOld: when the new checkpoint
// cannot be written (unwritable directory for the temp file), the
// existing checkpoint survives untouched.
func TestWriteCheckpointFileFailurePreservesOld(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.checkpoint")
	if err := core.WriteCheckpointFile(path, testCheckpoint(3)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := core.WriteCheckpointFile(path, testCheckpoint(9)); err == nil {
		t.Fatal("write into read-only directory succeeded")
	}
	got, err := core.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != 3 {
		t.Fatalf("Samples = %d, want the untouched 3", got.Samples)
	}
}

func TestReadCheckpointFileMissing(t *testing.T) {
	if _, err := core.ReadCheckpointFile(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want os.ErrNotExist", err)
	}
}
