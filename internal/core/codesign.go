package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/pool"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// ErrNoFeasible is returned by Run when a search exhausts its hardware
// budget without a single feasible design — a real outcome for
// restricted tools on hostile spaces (the paper notes Hypermapper often
// failed to terminate at all).
var ErrNoFeasible = errors.New("core: no feasible design found")

// RunConfig describes one co-design run: the workloads, the hardware
// space and budget, the objective, the sample budget (the paper's default
// is 100 hardware samples and 100 software samples per layer), and the
// cost-model backend.
type RunConfig struct {
	Models       []workload.Model
	Space        hw.Space
	Budget       hw.Budget
	Objective    Objective
	HWSamples    int
	SWSamples    int
	SWConstraint sched.Constraint // software space; zero value means Free
	Seed         int64
	// Eval is the cost-model pipeline the search drives — typically an
	// *eval.Pipeline built with eval.FromSpec (backend + middleware
	// stack), though any Evaluator works. When the evaluator can
	// validate its own composition (it implements Validate() error, as
	// pipelines do), normalized() checks it before the run starts, so a
	// mis-assembled pipeline fails fast instead of on sample one.
	Eval Evaluator
	// Workers bounds how many layers are optimized concurrently within
	// one hardware sample; the per-layer software searches are
	// independent given a fixed accelerator, so they scale with cores.
	// 0 means GOMAXPROCS, 1 forces sequential execution. Results are
	// bit-identical at every setting: each (sample, layer) search owns
	// an RNG seeded deterministically from Seed. The Evaluator must be
	// safe for concurrent Evaluate calls when Workers != 1 (the bundled
	// analytical models and the sim backend all are).
	Workers int

	// DisableBatch forces the per-layer software search onto the
	// one-Evaluate-per-sample path even when the proposer and evaluator
	// both support round batching (RoundProposer / BatchEvaluator). The
	// batched and sequential paths produce bit-identical Histories by
	// contract, so this switch exists for A/B verification of that
	// invariant (and for bisecting regressions), not for correctness.
	// Like Workers and Tracer, it is excluded from the checkpoint
	// fingerprint: batched and unbatched runs share checkpoints.
	DisableBatch bool

	// Tracer, when non-nil, receives structured trace events for every
	// phase of the nested search: run start/end, hardware proposals,
	// incumbent improvements, per-layer software searches, and
	// checkpoint activity. Tracing is observe-only — the History and
	// every downstream CSV are bit-identical with tracing on or off, at
	// any worker count — and the field is deliberately excluded from the
	// checkpoint fingerprint, so traced and untraced runs share
	// checkpoints. The Tracer must be safe for concurrent Emit calls
	// when Workers != 1 (all obs sinks are).
	Tracer obs.Tracer

	// Span, when non-nil, is the parent under which RunContext opens its
	// "run" span (engine passes its per-job "job" span here), rooting the
	// run → trial → hw.propose → sw.layer span tree. Without it — and
	// with a tracer — RunContext opens a root span itself. Like Tracer,
	// spans are observe-only and excluded from the checkpoint
	// fingerprint: the Fingerprint allowlist never sees this field.
	Span *obs.Span

	// Resume, when non-nil, restores the state of a previous run of the
	// *same* configuration and strategy (enforced by fingerprint) and
	// continues from the first hardware sample the checkpoint does not
	// cover. A resumed run is bit-identical to an uninterrupted one.
	Resume *Checkpoint

	// OnCheckpoint, when non-nil, is invoked after every completed
	// hardware sample with a self-contained snapshot of the run, from
	// which Resume can continue. The snapshot shares no memory with the
	// live run. A non-nil return aborts the run with the partial Result.
	OnCheckpoint func(*Checkpoint) error
}

// normalized fills defaults and validates.
func (c RunConfig) normalized() (RunConfig, error) {
	if len(c.Models) == 0 {
		return c, errors.New("core: no models to co-design for")
	}
	for _, m := range c.Models {
		if err := m.Validate(); err != nil {
			return c, err
		}
	}
	if c.Eval == nil {
		return c, errors.New("core: no evaluator configured")
	}
	// Evaluation pipelines know how to check their own composition; a
	// bare backend (or a test double) without Validate is taken as-is.
	if v, ok := c.Eval.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return c, fmt.Errorf("core: invalid evaluator pipeline: %w", err)
		}
	}
	if c.HWSamples <= 0 {
		c.HWSamples = 100
	}
	if c.SWSamples <= 0 {
		c.SWSamples = 100
	}
	if c.SWConstraint.Name == "" {
		c.SWConstraint = sched.Free()
	}
	if c.Space.PEMax == 0 {
		c.Space = hw.EdgeSpace()
	}
	if c.Budget.AreaMM2 == 0 {
		c.Budget = hw.EdgeBudget()
	}
	return c, nil
}

// LayerResult is the optimized schedule and cost for one layer.
type LayerResult struct {
	Model    string
	Layer    workload.Layer
	Schedule sched.Schedule
	Cost     maestro.Cost
	Valid    bool
}

// Design is one complete co-designed solution.
type Design struct {
	Accel     hw.Accel
	Layers    []LayerResult
	Objective float64 // aggregate objective across all models
}

// HistoryPoint records one hardware sample of a search, feeding the
// convergence curves of Figure 10 and the sample CDFs of Figure 11.
type HistoryPoint struct {
	Sample    int           // 1-based hardware sample index
	Elapsed   time.Duration // wall clock since the search started
	Value     float64       // this sample's aggregate objective (+Inf if invalid)
	BestSoFar float64       // best aggregate objective up to this sample
}

// Result is the outcome of a co-design run. Best is the minimum-
// objective feasible design; Frontier is the (objective, area, power)
// pareto set, from which §VI-B's budget-closest selection can be made
// with ParetoFrontier.SelectWithinBudget; Top holds the best 20 distinct
// designs for §VII-F-style cross-medium validation.
type Result struct {
	Tool     string
	Config   RunConfig
	Best     Design
	Frontier []Design
	Top      []Design
	History  []HistoryPoint
}

// topKDesigns is how many distinct designs a run retains for
// cross-medium validation (§VII-F recommends re-evaluating the top ~20).
const topKDesigns = 20

// HWProposer proposes hardware configurations and learns from aggregate
// feedback. err is nil for valid designs; an error wrapping
// maestro.ErrInvalid marks infeasible ones.
type HWProposer interface {
	Suggest() hw.Accel
	Observe(a hw.Accel, objective float64, err error)
}

// SWProposer proposes software schedules for one (accelerator, layer)
// pair and learns from per-sample feedback.
type SWProposer interface {
	Suggest() sched.Schedule
	Observe(s sched.Schedule, objective float64, err error)
}

// Strategy builds the hardware and software searchers for a co-design
// run. Spotlight, its ablation variants, and the prior-work tools are all
// Strategies over the same nested driver, so Figure 10's comparison is
// apples-to-apples.
//
// Concurrency contract: NewSW is always invoked sequentially, in layer
// order, but the returned proposer's Suggest/Observe loop may run on a
// worker goroutine concurrently with other layers' proposers. A proposer
// must therefore confine its mutable state (including the rng it was
// given, which is owned by that one proposer) to itself; only the
// Strategy value itself needs internal locking for any cross-layer
// bookkeeping.
type Strategy interface {
	Name() string
	NewHW(cfg RunConfig, rng *rand.Rand) HWProposer
	NewSW(cfg RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) SWProposer
	// SWBudget returns how many software samples this strategy spends
	// per layer given the configured budget; restricted tools like
	// ConfuciuX evaluate only their few fixed schedules.
	SWBudget(cfg RunConfig) int
}

// modelLayer pairs a layer with its parent model for aggregation.
type modelLayer struct {
	model string
	layer workload.Layer
}

// Run performs the nested layerwise co-design of §VI-A with the given
// strategy: for each hardware sample, every layer's schedule is optimized
// independently by a fresh software searcher; per-model energies and
// delays are aggregated into the objective, which feeds back into the
// hardware searcher. Run never stops early; use RunContext for
// cancellation and deadlines.
func Run(cfg RunConfig, strat Strategy) (Result, error) {
	return RunContext(context.Background(), cfg, strat)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between hardware samples and between software samples. When it is
// canceled (or its deadline passes), the run stops at the next check and
// returns the partial Result — every fully completed hardware sample's
// history, frontier, and top-K — together with an error wrapping
// ctx.Err() (context.Canceled or context.DeadlineExceeded). A hardware
// sample whose software search was cut short is discarded rather than
// half-reported, which keeps the partial Result a prefix of what the
// uninterrupted run would have produced.
func RunContext(ctx context.Context, cfg RunConfig, strat Strategy) (Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Result{}, fmt.Errorf("core: %s: %w", strat.Name(), err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hwSearch := strat.NewHW(cfg, rng)
	layers := collectLayers(cfg.Models)
	swBudget := strat.SWBudget(cfg)

	res := Result{Tool: strat.Name(), Config: cfg}
	res.Best.Objective = math.Inf(1)
	var frontier ParetoFrontier
	top := TopDesigns{K: topKDesigns}
	var observed []Observation
	startSample := 1
	var elapsedOffset time.Duration

	if cfg.Resume != nil {
		st, err := cfg.Resume.restore(cfg, strat, hwSearch)
		if err != nil {
			return Result{}, fmt.Errorf("core: %s: resume: %w", strat.Name(), err)
		}
		res.Best, res.History = st.best, st.history
		frontier, top, observed = st.frontier, st.top, st.obs
		startSample = len(observed) + 1
		elapsedOffset = st.elapsed
	}

	// runSpan is non-nil exactly when tracing is live (a parent span
	// implies an enabled tracer), so it doubles as the emission guard for
	// the run-lifecycle events, which all carry Parent = the run span.
	runSpan := obs.ChildOrRoot(cfg.Span, cfg.Tracer, "run")
	if runSpan != nil {
		runSpan.Emit(obs.Event{Type: obs.RunStart, Detail: strat.Name(), N: cfg.HWSamples})
		if cfg.Resume != nil {
			runSpan.Emit(obs.Event{Type: obs.CheckpointLoad, Sample: startSample - 1})
		}
	}
	finish := func() {
		res.Frontier = frontier.Designs()
		res.Top = top.Designs()
		if runSpan != nil {
			runSpan.Emit(obs.Event{Type: obs.RunEnd, N: len(res.History)})
			runSpan.End()
		}
	}
	// HistoryPoint.Elapsed is wall-clock by contract; the CSV column is
	// documented nondeterministic and dropped before determinism diffs.
	// The reads go through obs, the one package sanctioned to touch the
	// clock.
	start := obs.Now()
	for t := startSample; t <= cfg.HWSamples; t++ {
		if err := ctx.Err(); err != nil {
			finish()
			return res, stoppedErr(strat, t-1, cfg.HWSamples, err)
		}
		trialSpan := runSpan.ChildSample("trial", t)
		proposeSpan := trialSpan.Child("hw.propose")
		setSpan(hwSearch, proposeSpan)
		accel := hwSearch.Suggest()
		setSpan(hwSearch, nil)
		proposeSpan.End()
		if trialSpan != nil {
			trialSpan.Emit(obs.Event{Type: obs.HWPropose, Sample: t, Detail: accel.String()})
		}
		design, derr := evaluateHardware(ctx, cfg, strat, accel, layers, swBudget, t, trialSpan)
		if err := ctx.Err(); err != nil {
			// This sample's software search was cut short; its
			// half-optimized design would not match an uninterrupted
			// run's, so the sample is discarded, not observed.
			trialSpan.End()
			finish()
			return res, stoppedErr(strat, t-1, cfg.HWSamples, err)
		}
		hwSearch.Observe(accel, design.Objective, derr)

		value := design.Objective
		if derr != nil {
			value = math.Inf(1)
		} else {
			frontier.Add(design)
			top.Add(design)
		}
		if value < res.Best.Objective {
			res.Best = design
			if trialSpan != nil {
				trialSpan.Emit(obs.Event{Type: obs.Incumbent, Sample: t, Value: value})
			}
		}
		res.History = append(res.History, HistoryPoint{
			Sample:    t,
			Elapsed:   elapsedOffset + obs.Since(start),
			Value:     value,
			BestSoFar: res.Best.Objective,
		})
		o := Observation{Accel: accel, Valid: derr == nil}
		if derr == nil {
			o.Objective = design.Objective
		}
		observed = append(observed, o)
		if cfg.OnCheckpoint != nil {
			cpStart := obs.Now()
			cp := buildCheckpoint(cfg, strat, observed, &res, &frontier, &top)
			if err := cfg.OnCheckpoint(cp); err != nil {
				trialSpan.End()
				finish()
				return res, fmt.Errorf("core: %s: checkpoint after sample %d: %w",
					strat.Name(), t, err)
			}
			if trialSpan != nil {
				trialSpan.Emit(obs.Event{Type: obs.CheckpointSave, Sample: t,
					DurMS: obs.MS(obs.Since(cpStart))})
			}
		}
		trialSpan.End()
	}
	finish()
	if math.IsInf(res.Best.Objective, 1) {
		return res, fmt.Errorf("%w: %s tried %d hardware samples",
			ErrNoFeasible, strat.Name(), cfg.HWSamples)
	}
	return res, nil
}

// stoppedErr wraps a context error with how far the run got, so callers
// can both errors.Is on Canceled/DeadlineExceeded and report progress.
func stoppedErr(strat Strategy, done, total int, err error) error {
	return fmt.Errorf("core: %s: stopped after %d of %d hardware samples: %w",
		strat.Name(), done, total, err)
}

// InvalidObservation reports whether a (objective, err) pair fed to a
// proposer's Observe marks an infeasible or unusable sample: any error,
// or a non-finite objective (NaN and ±Inf would otherwise poison
// surrogate statistics and population fitness orderings silently).
func InvalidObservation(objective float64, err error) bool {
	return err != nil || math.IsNaN(objective) || math.IsInf(objective, 0)
}

// deriveSeed mixes the run seed with stream indices (hardware sample,
// layer) through a splitmix64-style finalizer, giving every per-layer
// search an independent, decorrelated RNG that is bit-reproducible at
// any worker count.
func deriveSeed(seed int64, streams ...int64) int64 {
	z := uint64(seed)
	for _, s := range streams {
		z ^= uint64(s) + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// evaluateHardware runs the per-layer software optimization for one
// hardware sample and aggregates the objective. The layer searches are
// independent given the fixed accelerator, so they run on a bounded
// worker pool (cfg.Workers wide); every layer owns an RNG seeded from
// (Seed, sample, layer), which makes the outcome identical whether the
// layers run sequentially or in parallel. It returns an error wrapping
// maestro.ErrInvalid when the hardware is out of budget, structurally
// invalid, or has a layer with no feasible schedule (the lowest-index
// infeasible layer is reported, for determinism).
func evaluateHardware(ctx context.Context, cfg RunConfig, strat Strategy, accel hw.Accel,
	layers []modelLayer, swBudget, sample int, trialSpan *obs.Span) (Design, error) {

	design := Design{Accel: accel, Objective: math.Inf(1)}
	if err := accel.Validate(); err != nil {
		return design, fmt.Errorf("%w: %v", maestro.ErrInvalid, err)
	}
	if err := cfg.Budget.Check(accel); err != nil {
		return design, fmt.Errorf("%w: %v", maestro.ErrInvalid, err)
	}

	// Proposers are built sequentially, in layer order, so strategies
	// with order-dependent bookkeeping (e.g. Spotlight retaining the last
	// software searcher for Figure 9) behave identically at every worker
	// count; only the sampling loops run concurrently.
	sws := make([]SWProposer, len(layers))
	for i, ml := range layers {
		rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, int64(sample), int64(i))))
		sws[i] = strat.NewSW(cfg, rng, accel, ml.layer)
	}
	design.Layers = make([]LayerResult, len(layers))
	if err := pool.RunCtxSpan(ctx, len(layers), cfg.Workers, cfg.Tracer, trialSpan, func(i int) {
		name := layers[i].model + "/" + layers[i].layer.Name
		// One sw.layer span per layer search; each lives entirely on its
		// worker goroutine. The sw.start/sw.end events (and everything the
		// eval stack emits below) hang off it.
		layerSpan := trialSpan.ChildLabel("sw.layer", name)
		setSpan(sws[i], layerSpan)
		var swStart time.Time
		if layerSpan != nil {
			layerSpan.Emit(obs.Event{Type: obs.SWStart, Sample: sample, Layer: name})
			swStart = obs.Now()
		}
		lr := runLayerSearch(ctx, cfg, sws[i], accel, layers[i].layer, swBudget, layerSpan)
		lr.Model = layers[i].model
		design.Layers[i] = lr
		if layerSpan != nil {
			e := obs.Event{Type: obs.SWEnd, Sample: sample, Layer: name,
				Detail: "invalid", DurMS: obs.MS(obs.Since(swStart))}
			if lr.Valid {
				e.Detail = "valid"
				e.Value = cfg.Objective.LayerCost(lr.Cost)
			}
			layerSpan.Emit(e)
		}
		setSpan(sws[i], nil)
		layerSpan.End()
	}); err != nil {
		// Canceled mid-sample; the caller discards this design.
		return design, err
	}

	perModelEnergy := map[string]float64{}
	perModelDelay := map[string]float64{}
	for _, lr := range design.Layers {
		if !lr.Valid {
			return design, fmt.Errorf("%w: layer %s has no feasible schedule on %s",
				maestro.ErrInvalid, lr.Layer.Name, accel)
		}
		rep := float64(lr.Layer.Repeat)
		perModelEnergy[lr.Model] += rep * lr.Cost.EnergyNJ
		perModelDelay[lr.Model] += rep * lr.Cost.DelayCycles
	}
	var total float64
	for m := range perModelEnergy {
		total += AggregateObjective(cfg.Objective, perModelEnergy[m], perModelDelay[m])
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return design, fmt.Errorf("%w: non-finite aggregate objective on %s",
			maestro.ErrInvalid, accel)
	}
	design.Objective = total
	return design, nil
}

// OptimizeLayer searches the software space for one layer on fixed
// hardware, spending `budget` cost-model evaluations, and returns the
// best schedule found. Valid is false when every sample was infeasible.
func OptimizeLayer(cfg RunConfig, strat Strategy, rng *rand.Rand, accel hw.Accel,
	layer workload.Layer, budget int) LayerResult {
	sp := obs.ChildOrRoot(cfg.Span, cfg.Tracer, "sw.layer")
	defer sp.End()
	sw := strat.NewSW(cfg, rng, accel, layer)
	setSpan(sw, sp)
	lr := runLayerSearch(context.Background(), cfg, sw, accel, layer, budget, sp)
	setSpan(sw, nil)
	return lr
}

// runLayerSearch drives one software proposer through its sample budget,
// stopping early (with the best result so far) when ctx is canceled. A
// cost whose fields are not all finite is classified invalid rather than
// allowed to poison the proposer's statistics or become a NaN "best".
//
// Proposers that declare feedback-independent rounds (RoundProposer)
// take the batched path: each round's suggestions are collected up
// front and evaluated in one EvaluateBatch call, then observed in
// suggestion order. Because a round by definition draws the same RNG
// stream whether or not Observe calls are interleaved, and because
// EvaluateBatch is bit-identical to per-item Evaluate, the two paths
// produce the same LayerResult bit for bit — cfg.DisableBatch exists to
// verify exactly that.
func runLayerSearch(ctx context.Context, cfg RunConfig, sw SWProposer, accel hw.Accel,
	layer workload.Layer, budget int, sp *obs.Span) LayerResult {

	if rp, ok := sw.(RoundProposer); ok && !cfg.DisableBatch {
		return runLayerSearchBatched(ctx, cfg, rp, accel, layer, budget, sp)
	}

	best := LayerResult{Layer: layer}
	bestObj := math.Inf(1)
	for i := 0; i < budget; i++ {
		if ctx.Err() != nil {
			break
		}
		s := sw.Suggest()
		cost, err := EvaluateSpan(cfg.Eval, sp, accel, s, layer)
		obj := math.Inf(1)
		if err == nil {
			obj = cfg.Objective.LayerCost(cost)
		}
		if err == nil && (!cost.Finite() || math.IsNaN(obj) || math.IsInf(obj, 0)) {
			err = fmt.Errorf("%w: evaluator returned non-finite cost for layer %s",
				maestro.ErrInvalid, layer.Name)
		}
		if err != nil {
			sw.Observe(s, math.Inf(1), err)
			continue
		}
		sw.Observe(s, obj, nil)
		if obj < bestObj {
			bestObj = obj
			best.Schedule = s
			best.Cost = cost
			best.Valid = true
		}
	}
	return best
}

// runLayerSearchBatched is runLayerSearch's round-at-a-time variant: per
// round it drains RoundSize() suggestions (capped to the remaining
// budget) into a scratch slice reused across rounds, evaluates them in
// one EvaluateBatch call, and replays the per-sample feedback loop over
// the results. Cancellation is checked between rounds; a canceled layer
// search is discarded by the caller either way, so the coarser check
// cannot change any completed run's output.
func runLayerSearchBatched(ctx context.Context, cfg RunConfig, sw RoundProposer, accel hw.Accel,
	layer workload.Layer, budget int, sp *obs.Span) LayerResult {

	best := LayerResult{Layer: layer}
	bestObj := math.Inf(1)
	var ss []sched.Schedule
	for done := 0; done < budget; {
		if ctx.Err() != nil {
			break
		}
		n := sw.RoundSize()
		if n < 1 {
			n = 1
		}
		if rem := budget - done; n > rem {
			n = rem
		}
		ss = ss[:0]
		for j := 0; j < n; j++ {
			ss = append(ss, sw.Suggest())
		}
		costs, errs := EvaluateBatchSpan(cfg.Eval, sp, accel, ss, layer)
		for j := range ss {
			s, cost, err := ss[j], costs[j], errs[j]
			obj := math.Inf(1)
			if err == nil {
				obj = cfg.Objective.LayerCost(cost)
			}
			if err == nil && (!cost.Finite() || math.IsNaN(obj) || math.IsInf(obj, 0)) {
				err = fmt.Errorf("%w: evaluator returned non-finite cost for layer %s",
					maestro.ErrInvalid, layer.Name)
			}
			if err != nil {
				sw.Observe(s, math.Inf(1), err)
				continue
			}
			sw.Observe(s, obj, nil)
			if obj < bestObj {
				bestObj = obj
				best.Schedule = s
				best.Cost = cost
				best.Valid = true
			}
		}
		done += n
	}
	return best
}

// OptimizeSoftware runs only the software half of the co-design on a
// fixed accelerator: daBO_SW (or the strategy's software searcher) per
// layer. This is how the paper evaluates hand-designed baselines
// ("under our layerwise software optimizer") and the multi-model
// generalization scenario of §VII-B.
func OptimizeSoftware(cfg RunConfig, strat Strategy, accel hw.Accel) (Design, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Design{}, err
	}
	sp := obs.ChildOrRoot(cfg.Span, cfg.Tracer, "run")
	defer sp.End()
	design, derr := evaluateHardware(context.Background(), cfg, strat, accel,
		collectLayers(cfg.Models), strat.SWBudget(cfg), 0, sp)
	if derr != nil {
		return design, derr
	}
	return design, nil
}

// collectLayers flattens the models' unique layers, tagged by model.
func collectLayers(models []workload.Model) []modelLayer {
	var out []modelLayer
	for _, m := range models {
		for _, l := range m.Layers {
			out = append(out, modelLayer{model: m.Name, layer: l})
		}
	}
	return out
}

// ModelObjectives splits a design's aggregate objective back into
// per-model values, for multi-model reporting (Figure 8).
func ModelObjectives(o Objective, d Design) map[string]float64 {
	energy := map[string]float64{}
	delay := map[string]float64{}
	for _, lr := range d.Layers {
		rep := float64(lr.Layer.Repeat)
		energy[lr.Model] += rep * lr.Cost.EnergyNJ
		delay[lr.Model] += rep * lr.Cost.DelayCycles
	}
	out := map[string]float64{}
	for m := range energy {
		out[m] = AggregateObjective(o, energy[m], delay[m])
	}
	return out
}
