package core

import (
	"math/rand"
	"sync"

	"spotlight/internal/gp"
	"spotlight/internal/hw"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Spotlight is the paper's co-design strategy (§VI): daBO over the
// hardware space nested with daBO over each layer's software space, both
// searching in feature space with a linear-kernel Gaussian process
// surrogate. Its fields select the ablation variants of §VII-D/E.
type Spotlight struct {
	// Mode selects the feature set: FeatureSpotlight (the paper's
	// Figure 4 features), FeatureVanilla (Spotlight-V) or FeatureAll
	// (Spotlight-A).
	Mode FeatureMode
	// Kernel overrides the surrogate kernel; nil means the paper's
	// linear kernel.
	Kernel gp.Kernel
	// FixedDataflows restricts the software space to the three
	// ConfuciuX dataflows with K/C tiling only (Spotlight-F).
	FixedDataflows bool
	// CandidateBatch is the number of random parameter-space candidates
	// ranked by the acquisition function per suggestion (default 64).
	CandidateBatch int
	// Kappa is the LCB exploration weight (default 1.5).
	Kappa float64

	// lastSW retains the most recent software searcher for
	// feature-importance analysis (Figure 9); mu makes a single strategy
	// value safe to use from concurrent runs (parallel trials).
	mu     sync.Mutex
	lastSW *spotlightSW
}

// NewSpotlight returns the full Spotlight configuration.
func NewSpotlight() *Spotlight { return &Spotlight{} }

// NewSpotlightV returns Spotlight-V: identical machinery but the
// surrogate is trained directly on raw parameters — off-the-shelf BO.
func NewSpotlightV() *Spotlight { return &Spotlight{Mode: FeatureVanilla} }

// NewSpotlightA returns Spotlight-A: the union of features and raw
// parameters.
func NewSpotlightA() *Spotlight { return &Spotlight{Mode: FeatureAll} }

// NewSpotlightF returns Spotlight-F: the feature space over the three
// fixed dataflows with tiling searched only in K and C.
func NewSpotlightF() *Spotlight { return &Spotlight{FixedDataflows: true} }

// Name implements Strategy, matching the labels of Figure 10.
func (s *Spotlight) Name() string {
	switch {
	case s.FixedDataflows:
		return "Spotlight-F"
	case s.Mode == FeatureVanilla:
		return "Spotlight-V"
	case s.Mode == FeatureAll:
		return "Spotlight-A"
	default:
		return "Spotlight"
	}
}

func (s *Spotlight) kernel() gp.Kernel {
	if s.Kernel != nil {
		return s.Kernel
	}
	return gp.Linear{Bias: 1}
}

func (s *Spotlight) batch() int {
	if s.CandidateBatch > 0 {
		return s.CandidateBatch
	}
	return 64
}

func (s *Spotlight) kappa() float64 {
	if s.Kappa > 0 {
		return s.Kappa
	}
	return 1.5
}

// SWBudget implements Strategy: Spotlight spends the full configured
// software budget.
func (s *Spotlight) SWBudget(cfg RunConfig) int { return cfg.SWSamples }

// NewHW implements Strategy.
func (s *Spotlight) NewHW(cfg RunConfig, rng *rand.Rand) HWProposer {
	return &spotlightHW{
		dabo:     NewDABO(s.kernel(), rng, WithKappa(s.kappa()), WithTracer(cfg.Tracer, "hw")),
		features: FeaturesFor(s.Mode, true),
		space:    cfg.Space,
		budget:   cfg.Budget,
		batch:    s.batch(),
		rng:      rng,
	}
}

type spotlightHW struct {
	dabo     *DABO
	features []Feature
	space    hw.Space
	budget   hw.Budget
	batch    int
	rng      *rand.Rand
}

// Suggest ranks a batch of random candidates on the surrogate. The area
// and power budget is known a priori, so candidates exceeding it are
// resampled — using explicit constraints to steer sampling is exactly
// the kind of domain information §IV-B1 calls for (the cloud space in
// particular is >90% over budget). If the budget is unattainable within
// the retry allowance, the raw sample is kept and the cost model will
// reject it.
func (h *spotlightHW) Suggest() hw.Accel {
	cands := make([]hw.Accel, h.batch)
	feats := make([][]float64, h.batch)
	for i := range cands {
		cands[i] = h.space.Random(h.rng)
		for retry := 0; retry < 16 && !h.budget.Fits(cands[i]); retry++ {
			cands[i] = h.space.Random(h.rng)
		}
		feats[i] = Transform(h.features, Point{Accel: cands[i]})
	}
	idx := h.dabo.SuggestIndex(feats)
	return cands[idx]
}

// SetSpan implements SpanCarrier by forwarding to the embedded daBO, so
// hw-scope fit events land under the driver's hw.propose span.
func (h *spotlightHW) SetSpan(sp *obs.Span) { h.dabo.SetSpan(sp) }

func (h *spotlightHW) Observe(a hw.Accel, objective float64, err error) {
	f := Transform(h.features, Point{Accel: a})
	if InvalidObservation(objective, err) {
		h.dabo.ObserveInvalid(f)
		return
	}
	h.dabo.Observe(f, objective)
}

// NewSW implements Strategy.
func (s *Spotlight) NewSW(cfg RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) SWProposer {
	constraints := []sched.Constraint{cfg.SWConstraint}
	if s.FixedDataflows {
		constraints = constraints[:0]
		for _, df := range sched.FixedDataflows() {
			constraints = append(constraints, sched.SpotlightF(df))
		}
	}
	sw := &spotlightSW{
		dabo:        NewDABO(s.kernel(), rng, WithKappa(s.kappa()), WithTracer(cfg.Tracer, "sw")),
		features:    FeaturesFor(s.Mode, false),
		constraints: constraints,
		accel:       a,
		layer:       l,
		batch:       s.batch(),
		rng:         rng,
	}
	s.mu.Lock()
	s.lastSW = sw
	s.mu.Unlock()
	return sw
}

type spotlightSW struct {
	dabo        *DABO
	features    []Feature
	constraints []sched.Constraint
	accel       hw.Accel
	layer       workload.Layer
	batch       int
	rng         *rand.Rand
}

func (w *spotlightSW) Suggest() sched.Schedule {
	cands := make([]sched.Schedule, w.batch)
	feats := make([][]float64, w.batch)
	for i := range cands {
		c := w.constraints[w.rng.Intn(len(w.constraints))]
		cands[i] = c.Random(w.rng, w.layer, w.accel.RFBytesPerPE(), w.accel.L2Bytes())
		feats[i] = Transform(w.features, Point{Accel: w.accel, Sched: cands[i], Layer: w.layer})
	}
	idx := w.dabo.SuggestIndex(feats)
	return cands[idx]
}

// SetSpan implements SpanCarrier by forwarding to the embedded daBO, so
// sw-scope fit events land under the enclosing sw.layer span.
func (w *spotlightSW) SetSpan(sp *obs.Span) { w.dabo.SetSpan(sp) }

func (w *spotlightSW) Observe(s sched.Schedule, objective float64, err error) {
	f := Transform(w.features, Point{Accel: w.accel, Sched: s, Layer: w.layer})
	if InvalidObservation(objective, err) {
		w.dabo.ObserveInvalid(f)
		return
	}
	w.dabo.Observe(f, objective)
}

// LastSWImportance computes the permutation importance of each software
// feature on the most recent layer's surrogate (Figure 9). It returns
// feature names alongside raw (unnormalized) importances, or false when
// no surrogate is available.
func (s *Spotlight) LastSWImportance(rng *rand.Rand) ([]string, []float64, bool) {
	s.mu.Lock()
	sw := s.lastSW
	s.mu.Unlock()
	if sw == nil {
		return nil, nil, false
	}
	model := sw.dabo.Surrogate()
	if model == nil {
		return nil, nil, false
	}
	imp, err := PermutationImportance(model, sw.dabo.ValidObservations(), rng)
	if err != nil {
		return nil, nil, false
	}
	return Names(sw.features), imp, true
}
