package core

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"spotlight/internal/gp"
	"spotlight/internal/obs"
)

// DABO is the domain-aware Bayesian optimizer of §V. It is agnostic to
// what is being searched: callers sample candidate design points in
// parameter space, transform them into feature vectors, and DABO ranks
// the batch with its surrogate's Lower Confidence Bound, returning the
// index of the candidate to evaluate next. Observed costs are modeled in
// log space because EDP and delay span many orders of magnitude.
//
// Invalid design points (the co-design space's infeasible regions) are
// first-class: ObserveInvalid records the feature vector, and at fit time
// those points receive a penalty cost above the worst valid observation,
// steering the surrogate away from infeasible regions — one of the two
// uses of domain information called out in §IV-B1.
type DABO struct {
	kernel     gp.Kernel
	noise      float64
	kappa      float64
	warmup     int
	refitEvery int
	rng        *rand.Rand

	x       [][]float64
	y       []float64 // log costs
	invalid [][]float64

	// primal is the incremental sufficient-statistics accumulator used
	// when the kernel is gp.Linear: fits cost O(d³) and predictions O(d)
	// instead of the dense GP's O(n³)/O(n²). Other kernels have no finite
	// feature map and fall back to the dense path.
	primal      *gp.PrimalStats
	model       gp.Predictor
	staleness   int
	fitAttempts int

	// Reusable batch-prediction buffers for SuggestIndex.
	means, stds []float64

	// tracer receives dabo.fit / dabo.degraded events tagged with scope
	// ("hw" or "sw"); nil disables. Tracing never changes suggestions.
	tracer obs.Tracer
	scope  string
	// span, when set (via SetSpan, by the driver, around Suggest calls),
	// parents the fit events under the current hw.propose or sw.layer
	// span and routes them to the span's sink.
	span *obs.Span
}

// DABOOption configures a DABO instance.
type DABOOption func(*DABO)

// WithKappa sets the LCB exploration weight (default 1.5).
func WithKappa(k float64) DABOOption { return func(d *DABO) { d.kappa = k } }

// WithWarmup sets how many observations are collected with pure random
// suggestions before the surrogate is consulted (default 8).
func WithWarmup(n int) DABOOption { return func(d *DABO) { d.warmup = n } }

// WithRefitEvery sets how many new observations accumulate before the
// surrogate is refit (default 4). A linear-kernel refit is O(d³) from
// incrementally maintained statistics; other kernels pay the dense GP's
// O(n³), so batching refits keeps their search loop fast without
// materially changing behavior.
func WithRefitEvery(n int) DABOOption { return func(d *DABO) { d.refitEvery = n } }

// WithNoise sets the surrogate's observation noise variance (default 1e-4).
func WithNoise(v float64) DABOOption { return func(d *DABO) { d.noise = v } }

// WithTracer attaches a tracer that receives one dabo.fit event per
// surrogate refit (duration, observation counts, and the fit outcome)
// and a dabo.degraded event if repeated fit failures demote the
// optimizer to random suggestion. scope tags the events with which
// search level this optimizer drives ("hw" or "sw"). Tracing is
// observe-only.
func WithTracer(tr obs.Tracer, scope string) DABOOption {
	return func(d *DABO) {
		d.tracer = tr
		d.scope = scope
	}
}

// SetSpan implements SpanCarrier: subsequent fit events are attributed
// to sp (and emitted to sp's tracer) until SetSpan(nil). The driver
// brackets Suggest calls with it; calls are goroutine-confined per the
// Strategy contract.
func (d *DABO) SetSpan(sp *obs.Span) { d.span = sp }

// NewDABO returns a daBO optimizer using the given kernel. The paper's
// configuration is a linear kernel (gp.Linear); §VII-D also evaluates
// gp.Matern52.
func NewDABO(kernel gp.Kernel, rng *rand.Rand, opts ...DABOOption) *DABO {
	d := &DABO{
		kernel:     kernel,
		noise:      1e-4,
		kappa:      1.5,
		warmup:     8,
		refitEvery: 4,
		rng:        rng,
	}
	for _, o := range opts {
		o(d)
	}
	if lin, ok := kernel.(gp.Linear); ok {
		d.primal = gp.NewPrimalStats(lin.Bias, d.noise)
	}
	return d
}

// Observations returns the number of valid and invalid observations.
func (d *DABO) Observations() (valid, invalid int) {
	return len(d.y), len(d.invalid)
}

// Observe records a valid design's feature vector and its (positive)
// cost. A non-finite cost is demoted to an invalid observation — one NaN
// ingested into the moment matrices would silently poison every later
// prediction — and a non-finite feature vector is dropped entirely.
func (d *DABO) Observe(features []float64, cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		d.ObserveInvalid(features)
		return
	}
	if !finiteVec(features) {
		return
	}
	logCost := math.Log(math.Max(cost, math.SmallestNonzeroFloat64))
	d.x = append(d.x, append([]float64(nil), features...))
	d.y = append(d.y, logCost)
	if d.primal != nil {
		d.primal.Add(features, logCost)
	}
	d.staleness++
}

// ObserveInvalid records that a design point was infeasible. Non-finite
// feature vectors are dropped: there is no meaningful place to put the
// penalty mass, and one ±Inf row would corrupt the penalty moments.
func (d *DABO) ObserveInvalid(features []float64) {
	if !finiteVec(features) {
		return
	}
	d.invalid = append(d.invalid, append([]float64(nil), features...))
	if d.primal != nil {
		d.primal.AddPenalized(features)
	}
	d.staleness++
}

// finiteVec reports whether every component is a finite number.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// SuggestIndex picks which of the candidate feature vectors to evaluate
// next: uniformly at random during warmup (or if the surrogate cannot be
// fit), otherwise the candidate minimizing the LCB acquisition.
func (d *DABO) SuggestIndex(candidates [][]float64) int {
	if len(candidates) == 0 {
		return -1
	}
	if len(d.y) < d.warmup || d.Degraded() {
		return d.rng.Intn(len(candidates))
	}
	if err := d.ensureFit(); err != nil {
		return d.rng.Intn(len(candidates))
	}
	n := len(candidates)
	if cap(d.means) < n {
		d.means = make([]float64, n)
		d.stds = make([]float64, n)
	}
	means, stds := d.means[:n], d.stds[:n]
	if err := d.model.PredictBatch(candidates, means, stds); err != nil {
		return d.rng.Intn(n)
	}
	best := -1
	bestAcq := math.Inf(1)
	for i := range candidates {
		if acq := gp.LCB(means[i], stds[i], d.kappa); acq < bestAcq {
			bestAcq = acq
			best = i
		}
	}
	if best < 0 {
		return d.rng.Intn(n)
	}
	return best
}

// allInvalidPenalty is the log-cost assigned to infeasible observations
// while no valid observation exists yet. Any finite constant works — a
// constant target standardizes to zero, so the surrogate is flat and
// suggestions stay effectively random until the first valid point — but
// defining it explicitly keeps the all-invalid fit well-specified
// instead of inheriting an arbitrary offset from the zero value of the
// running worst-cost tracker.
const allInvalidPenalty = 0.0

// invalidPenalty returns the log-cost assigned to infeasible points:
// just above the worst valid observation, so the surrogate learns a
// cliff without distorting the valid region's scale, or the explicit
// all-invalid constant when nothing valid has been seen.
func (d *DABO) invalidPenalty() float64 {
	if len(d.y) == 0 {
		return allInvalidPenalty
	}
	worst := d.y[0]
	for _, v := range d.y[1:] {
		if v > worst {
			worst = v
		}
	}
	return worst + 2 // ≈ 7.4× the worst valid cost, in log space
}

// maxFitFailures is how many consecutive fit failures DABO tolerates
// before it stops refitting altogether. Fit failures are already rare
// (linalg escalates Cholesky jitter over eight decades internally), so
// repeated failure means the observation set itself is pathological;
// degrading to pure random suggestion keeps the search alive instead of
// paying a doomed O(d³)/O(n³) factorization on every suggestion — or
// panicking.
const maxFitFailures = 3

// Degraded reports whether repeated surrogate fit failures have
// permanently demoted this optimizer to random suggestion.
func (d *DABO) Degraded() bool { return d.fitAttempts >= maxFitFailures }

// ensureFit refits the surrogate if enough new observations accumulated.
// Each refit produces a fresh immutable model; linear kernels take the
// primal path (O(d³) from the incrementally maintained statistics),
// every other kernel rebuilds the dense GP. Failures are counted; after
// maxFitFailures consecutive failures the optimizer degrades to random
// suggestion for the rest of the run.
func (d *DABO) ensureFit() error {
	if d.Degraded() {
		return errDegraded
	}
	if d.model != nil && d.staleness < d.refitEvery {
		return nil
	}
	if len(d.x)+len(d.invalid) == 0 {
		return gp.ErrNoData
	}
	traced := obs.Active(d.span, d.tracer)
	var fitStart time.Time
	if traced {
		fitStart = obs.Now()
	}
	err := d.refit()
	if traced {
		e := obs.Event{Type: obs.DABOFit, Scope: d.scope, Detail: "ok",
			DurMS: obs.MS(obs.Since(fitStart)),
			N:     len(d.x) + len(d.invalid), Value: float64(len(d.invalid))}
		if err != nil {
			e.Detail = err.Error()
		}
		d.span.EmitTo(d.tracer, e)
	}
	if err != nil {
		d.fitAttempts++
		if traced && d.Degraded() {
			d.span.EmitTo(d.tracer, obs.Event{Type: obs.DABODegraded, Scope: d.scope})
		}
		return err
	}
	d.fitAttempts = 0
	d.staleness = 0
	return nil
}

var errDegraded = errors.New("core: surrogate degraded to random suggestion after repeated fit failures")

// refit rebuilds the surrogate from the current observation set.
func (d *DABO) refit() error {
	penalty := d.invalidPenalty()
	if d.primal != nil {
		m, err := d.primal.Fit(penalty)
		if err != nil {
			return err
		}
		d.model = m
		return nil
	}
	x := make([][]float64, 0, len(d.x)+len(d.invalid))
	y := make([]float64, 0, len(d.x)+len(d.invalid))
	x = append(x, d.x...)
	y = append(y, d.y...)
	for _, f := range d.invalid {
		x = append(x, f)
		y = append(y, penalty)
	}
	m := gp.New(d.kernel, d.noise)
	if err := m.Fit(x, y); err != nil {
		return err
	}
	d.model = m
	return nil
}

// Surrogate returns the fitted surrogate (refitting if stale), for
// analyses such as permutation importance. It returns nil when no model
// can be fit yet.
func (d *DABO) Surrogate() gp.Predictor {
	if err := d.ensureFit(); err != nil {
		return nil
	}
	return d.model
}

// ValidObservations returns copies of the valid observations' feature
// matrix, for feature-importance analysis.
func (d *DABO) ValidObservations() [][]float64 {
	out := make([][]float64, len(d.x))
	for i, row := range d.x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
