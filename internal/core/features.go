package core

import (
	"math"
	"math/rand"

	"spotlight/internal/gp"
	"spotlight/internal/workload"
)

// Feature is one hand-designed transformation of a co-design point into a
// real value, carrying the domain information of §IV-B.
type Feature struct {
	Name string
	Fn   func(Point) float64
}

// FeatureMode selects which feature set a daBO instance trains its
// surrogate on, implementing the paper's Spotlight / Spotlight-V /
// Spotlight-A variants (§VII-D/E).
type FeatureMode int

// Feature modes.
const (
	// FeatureSpotlight uses the hand-designed feature space of Figure 4.
	FeatureSpotlight FeatureMode = iota
	// FeatureVanilla trains directly on raw parameters — off-the-shelf
	// BO (the paper's Spotlight-V).
	FeatureVanilla
	// FeatureAll uses the union of features and raw parameters
	// (Spotlight-A).
	FeatureAll
)

// String names the mode as the paper does.
func (m FeatureMode) String() string {
	switch m {
	case FeatureVanilla:
		return "vanilla"
	case FeatureAll:
		return "all"
	}
	return "spotlight"
}

// lg compresses wide-dynamic-range feature values; the surrogate's linear
// kernel then sees approximately linear trends, per feature-selection
// guideline (3) of §IV-B2.
func lg(v float64) float64 { return math.Log1p(v) }

// SoftwareFeatures returns the Figure 4 feature set used by daBO_SW. The
// first four entries are the raw cardinal parameters; the rest encode the
// domain information described in §IV-B2.
func SoftwareFeatures() []Feature {
	return []Feature{
		{"simd_lanes", func(p Point) float64 { return float64(p.Accel.SIMDLanes) }},
		{"onchip_bandwidth", func(p Point) float64 { return float64(p.Accel.NoCBW) }},
		{"total_pes", func(p Point) float64 { return float64(p.Accel.PEs) }},
		{"pe_array_width", func(p Point) float64 { return float64(p.Accel.Width) }},
		{"total_onchip_sram", func(p Point) float64 {
			return float64(p.Accel.RFKB + p.Accel.L2KB)
		}},
		{"kernel_parallelism", func(p Point) float64 {
			// R₀ × S₀: the filter extent resident at the outer tile level.
			return lg(float64(p.Sched.T2[workload.DimR] * p.Sched.T2[workload.DimS]))
		}},
		{"degree_of_unrolling", func(p Point) float64 {
			// Outer unrolled loop extent × inner unrolled loop extent
			// (both L2-level loops, distributed over rows and columns).
			n1 := p.Sched.InnerTrips(p.Layer)
			if p.Sched.OuterUnroll == p.Sched.InnerUnroll {
				return lg(float64(n1[p.Sched.OuterUnroll]))
			}
			return lg(float64(n1[p.Sched.OuterUnroll]) * float64(n1[p.Sched.InnerUnroll]))
		}},
		{"pe_utilization", peUtilization},
		{"loop_iterations", func(p Point) float64 {
			return lg(loopIterations(p))
		}},
		{"dram_transfers", func(p Point) float64 {
			// (X₀/X₂) × (Y₀/Y₂) × (array width + array height).
			n2 := p.Sched.OuterTrips(p.Layer)
			return lg(float64(n2[workload.DimX]) * float64(n2[workload.DimY]) *
				float64(p.Accel.Width+p.Accel.Height()))
		}},
		{"common_unrolled_dims", func(p Point) float64 {
			// Prime-basis linear combination spreading the few unique
			// values of each tile parameter apart (§IV-B2).
			s := p.Sched
			return lg(2*float64(s.T2[workload.DimX]) +
				3*float64(s.T2[workload.DimY]) +
				5*float64(p.Layer.Size(workload.DimK)) +
				7*float64(s.T2[workload.DimK]) +
				11*float64(s.T1[workload.DimK]))
		}},
	}
}

// peUtilization is the Figure 4 utilization feature: the fraction of the
// array doing useful work after both spatial distributions (rows take
// the outer-unrolled L2-level loop, columns the inner one), including
// partial-tile (edge-case) waste.
func peUtilization(p Point) float64 {
	h, w := p.Accel.Height(), p.Accel.Width
	n1 := p.Sched.InnerTrips(p.Layer)
	uo, ui := p.Sched.OuterUnroll, p.Sched.InnerUnroll
	if uo == ui {
		return float64(n1[uo]) / (float64(ceilDiv(n1[uo], h*w)) * float64(h*w))
	}
	rows := float64(n1[uo]) / (float64(ceilDiv(n1[uo], h)) * float64(h))
	cols := float64(n1[ui]) / (float64(ceilDiv(n1[ui], w)) * float64(w))
	return rows * cols
}

// loopIterations approximates the number of temporal iterations to
// completion after spatial distribution.
func loopIterations(p Point) float64 {
	h, w := p.Accel.Height(), p.Accel.Width
	n2 := p.Sched.OuterTrips(p.Layer)
	n1 := p.Sched.InnerTrips(p.Layer)
	uo, ui := p.Sched.OuterUnroll, p.Sched.InnerUnroll
	if uo == ui {
		n1[uo] = ceilDiv(n1[uo], h*w)
	} else {
		n1[uo] = ceilDiv(n1[uo], h)
		n1[ui] = ceilDiv(n1[ui], w)
	}
	iters := 1.0
	for i := range workload.AllDims {
		iters *= float64(n2[i]) * float64(n1[i])
	}
	return iters
}

// VanillaSoftwareFeatures returns the raw software parameter encoding
// used by Spotlight-V: per-dimension tile sizes at both levels, the
// position of each dimension in each loop order, and the unroll
// dimensions as bare indices. Categorical structure is exposed to the
// surrogate without any domain interpretation — precisely the handicap
// §IV-B1 describes.
func VanillaSoftwareFeatures() []Feature {
	fs := []Feature{
		{"raw_pes", func(p Point) float64 { return float64(p.Accel.PEs) }},
		{"raw_width", func(p Point) float64 { return float64(p.Accel.Width) }},
		{"raw_simd", func(p Point) float64 { return float64(p.Accel.SIMDLanes) }},
		{"raw_rf_kb", func(p Point) float64 { return float64(p.Accel.RFKB) }},
		{"raw_l2_kb", func(p Point) float64 { return float64(p.Accel.L2KB) }},
		{"raw_bw", func(p Point) float64 { return float64(p.Accel.NoCBW) }},
		{"raw_outer_unroll", func(p Point) float64 { return float64(p.Sched.OuterUnroll) }},
		{"raw_inner_unroll", func(p Point) float64 { return float64(p.Sched.InnerUnroll) }},
	}
	for i, d := range workload.AllDims {
		i, d := i, d
		fs = append(fs,
			Feature{"raw_t2_" + d.String(), func(p Point) float64 { return float64(p.Sched.T2[i]) }},
			Feature{"raw_t1_" + d.String(), func(p Point) float64 { return float64(p.Sched.T1[i]) }},
			Feature{"raw_pos_outer_" + d.String(), func(p Point) float64 {
				return float64(orderPosition(p.Sched.OuterOrder, d))
			}},
			Feature{"raw_pos_inner_" + d.String(), func(p Point) float64 {
				return float64(orderPosition(p.Sched.InnerOrder, d))
			}},
		)
	}
	return fs
}

func orderPosition(order [workload.NumDims]workload.Dim, d workload.Dim) int {
	for i, o := range order {
		if o == d {
			return i
		}
	}
	return -1
}

// HardwareFeatures returns the feature set used by daBO_HW, which sees
// only the accelerator (software is re-optimized per hardware sample).
func HardwareFeatures() []Feature {
	return []Feature{
		{"simd_lanes", func(p Point) float64 { return float64(p.Accel.SIMDLanes) }},
		{"onchip_bandwidth", func(p Point) float64 { return float64(p.Accel.NoCBW) }},
		{"total_pes", func(p Point) float64 { return float64(p.Accel.PEs) }},
		{"pe_array_width", func(p Point) float64 { return float64(p.Accel.Width) }},
		{"pe_array_height", func(p Point) float64 { return float64(p.Accel.Height()) }},
		{"total_onchip_sram", func(p Point) float64 { return float64(p.Accel.RFKB + p.Accel.L2KB) }},
		{"peak_macs", func(p Point) float64 { return lg(float64(p.Accel.PEs * p.Accel.SIMDLanes)) }},
		{"area", func(p Point) float64 { return p.Accel.AreaMM2() }},
		{"peak_power", func(p Point) float64 { return p.Accel.PeakPowerMW() }},
	}
}

// VanillaHardwareFeatures returns the raw hardware parameters for
// Spotlight-V's hardware search.
func VanillaHardwareFeatures() []Feature {
	return VanillaSoftwareFeatures()[:6]
}

// FeaturesFor returns the software (or hardware) feature set for a mode.
func FeaturesFor(mode FeatureMode, hardware bool) []Feature {
	switch mode {
	case FeatureVanilla:
		if hardware {
			return VanillaHardwareFeatures()
		}
		return VanillaSoftwareFeatures()
	case FeatureAll:
		if hardware {
			return append(HardwareFeatures(), VanillaHardwareFeatures()...)
		}
		return append(SoftwareFeatures(), VanillaSoftwareFeatures()...)
	default:
		if hardware {
			return HardwareFeatures()
		}
		return SoftwareFeatures()
	}
}

// Transform applies the feature set to a point, producing the surrogate's
// input vector.
func Transform(fs []Feature, p Point) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = f.Fn(p)
	}
	return out
}

// Names returns the feature names in order.
func Names(fs []Feature) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// PermutationImportance measures each feature's importance to a trained
// surrogate (§VII-D, Figure 9): feature column j of the observed design
// matrix is shuffled and the mean absolute change in the surrogate's
// prediction is recorded. Larger changes mean the surrogate leans harder
// on that feature. The result has one entry per column of x.
func PermutationImportance(model gp.Predictor, x [][]float64, rng *rand.Rand) ([]float64, error) {
	if len(x) == 0 {
		return nil, gp.ErrNoData
	}
	base := make([]float64, len(x))
	for i, row := range x {
		m, _, err := model.Predict(row)
		if err != nil {
			return nil, err
		}
		base[i] = m
	}
	dim := len(x[0])
	imp := make([]float64, dim)
	for j := 0; j < dim; j++ {
		perm := rng.Perm(len(x))
		var total float64
		row := make([]float64, dim)
		for i := range x {
			copy(row, x[i])
			row[j] = x[perm[i]][j]
			m, _, err := model.Predict(row)
			if err != nil {
				return nil, err
			}
			total += math.Abs(m - base[i])
		}
		imp[j] = total / float64(len(x))
	}
	return imp, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
