package core

import (
	"encoding/json"
	"fmt"
	"io"

	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// DesignExport is the stable on-disk form of a co-designed solution,
// mirroring the paper artifact's output ("all sample points and final
// results for architectural parameters and software schedules"). It is a
// flattened, versioned view of Design so downstream tooling does not
// depend on internal struct layout.
type DesignExport struct {
	Version   int                `json:"version"`
	Tool      string             `json:"tool,omitempty"`
	Objective string             `json:"objective"`
	Value     float64            `json:"value"`
	Accel     AccelExport        `json:"accelerator"`
	Layers    []LayerExport      `json:"layers"`
	PerModel  map[string]float64 `json:"per_model,omitempty"`
}

// AccelExport is the hardware half of a design.
type AccelExport struct {
	PEs       int     `json:"pes"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	SIMDLanes int     `json:"simd_lanes"`
	RFKB      int     `json:"rf_kb"`
	L2KB      int     `json:"l2_kb"`
	NoCBW     int     `json:"noc_bw"`
	AreaMM2   float64 `json:"area_mm2"`
	PowerMW   float64 `json:"peak_power_mw"`
}

// LayerExport is one layer's schedule and cost.
type LayerExport struct {
	Model       string  `json:"model,omitempty"`
	Layer       string  `json:"layer"`
	Repeat      int     `json:"repeat"`
	T2          [7]int  `json:"t2"`
	T1          [7]int  `json:"t1"`
	OuterOrder  string  `json:"outer_order"`
	InnerOrder  string  `json:"inner_order"`
	OuterUnroll string  `json:"outer_unroll"`
	InnerUnroll string  `json:"inner_unroll"`
	DelayCycles float64 `json:"delay_cycles"`
	EnergyNJ    float64 `json:"energy_nj"`
	Utilization float64 `json:"utilization"`
}

// exportVersion is bumped on incompatible schema changes.
const exportVersion = 1

// Export flattens a design for serialization.
func Export(tool string, obj Objective, d Design) DesignExport {
	out := DesignExport{
		Version:   exportVersion,
		Tool:      tool,
		Objective: obj.String(),
		Value:     d.Objective,
		Accel: AccelExport{
			PEs:       d.Accel.PEs,
			Width:     d.Accel.Width,
			Height:    d.Accel.Height(),
			SIMDLanes: d.Accel.SIMDLanes,
			RFKB:      d.Accel.RFKB,
			L2KB:      d.Accel.L2KB,
			NoCBW:     d.Accel.NoCBW,
			AreaMM2:   d.Accel.AreaMM2(),
			PowerMW:   d.Accel.PeakPowerMW(),
		},
		PerModel: ModelObjectives(obj, d),
	}
	for _, lr := range d.Layers {
		out.Layers = append(out.Layers, LayerExport{
			Model:       lr.Model,
			Layer:       lr.Layer.Name,
			Repeat:      lr.Layer.Repeat,
			T2:          lr.Schedule.T2,
			T1:          lr.Schedule.T1,
			OuterOrder:  orderString(lr.Schedule.OuterOrder),
			InnerOrder:  orderString(lr.Schedule.InnerOrder),
			OuterUnroll: lr.Schedule.OuterUnroll.String(),
			InnerUnroll: lr.Schedule.InnerUnroll.String(),
			DelayCycles: lr.Cost.DelayCycles,
			EnergyNJ:    lr.Cost.EnergyNJ,
			Utilization: lr.Cost.Utilization,
		})
	}
	return out
}

// WriteJSON writes the export as indented JSON.
func WriteJSON(w io.Writer, e DesignExport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadJSON parses a previously written export, validating the version.
func ReadJSON(r io.Reader) (DesignExport, error) {
	var e DesignExport
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return e, fmt.Errorf("core: parsing design export: %w", err)
	}
	if e.Version != exportVersion {
		return e, fmt.Errorf("core: design export version %d, want %d", e.Version, exportVersion)
	}
	return e, nil
}

// orderString renders a loop order as e.g. "N>K>C>R>S>X>Y", outermost
// first.
func orderString(order [workload.NumDims]workload.Dim) string {
	out := ""
	for i, d := range order {
		if i > 0 {
			out += ">"
		}
		out += d.String()
	}
	return out
}

// ScheduleFromExport reconstructs a sched.Schedule from an exported
// layer, so saved designs can be re-evaluated (e.g. on another cost
// model).
func ScheduleFromExport(le LayerExport) (sched.Schedule, error) {
	var s sched.Schedule
	s.T2, s.T1 = le.T2, le.T1
	var err error
	if s.OuterOrder, err = parseOrder(le.OuterOrder); err != nil {
		return s, err
	}
	if s.InnerOrder, err = parseOrder(le.InnerOrder); err != nil {
		return s, err
	}
	if s.OuterUnroll, err = parseDim(le.OuterUnroll); err != nil {
		return s, err
	}
	if s.InnerUnroll, err = parseDim(le.InnerUnroll); err != nil {
		return s, err
	}
	return s, nil
}

func parseOrder(s string) ([workload.NumDims]workload.Dim, error) {
	var out [workload.NumDims]workload.Dim
	i := 0
	for _, part := range splitOrder(s) {
		d, err := parseDim(part)
		if err != nil {
			return out, err
		}
		if i >= workload.NumDims {
			return out, fmt.Errorf("core: loop order %q has too many dimensions", s)
		}
		out[i] = d
		i++
	}
	if i != workload.NumDims {
		return out, fmt.Errorf("core: loop order %q has %d dimensions, want %d", s, i, workload.NumDims)
	}
	return out, nil
}

func splitOrder(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '>' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func parseDim(s string) (workload.Dim, error) {
	for _, d := range workload.AllDims {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("core: unknown dimension %q", s)
}
