package core

import (
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// SpanEvaluator is the optional span-threading extension of Evaluator:
// an evaluator (or middleware stack) that can attribute the trace
// events of one call — eval.done, cache hits, guard retries — to the
// caller's current span. Eval pipelines are built once and shared (in
// spotlightd, across every concurrent job), so causal context cannot
// live in the pipeline; it flows per call, and events routed through a
// span follow the span's tracer, which is what gives each spotlightd
// job its own eval/cache telemetry off one shared pipeline.
//
// EvaluateSpan with a nil span must behave exactly like Evaluate. The
// EvaluateSpan helper falls back to Evaluate for evaluators that do not
// implement the interface, so callers thread spans unconditionally.
type SpanEvaluator interface {
	Evaluator
	EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error)
}

// SpanBatchEvaluator is SpanEvaluator's batch counterpart, with the
// same contract relative to BatchEvaluator.
type SpanBatchEvaluator interface {
	Evaluator
	EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error)
}

// EvaluateSpan evaluates one schedule under sp when the evaluator
// supports span threading, and otherwise falls back to plain Evaluate.
// The fallback also covers sp == nil, so an untraced run takes the
// exact pre-span code path.
func EvaluateSpan(ev Evaluator, sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	if sp != nil {
		if se, ok := ev.(SpanEvaluator); ok {
			return se.EvaluateSpan(sp, a, s, l)
		}
	}
	return ev.Evaluate(a, s, l)
}

// EvaluateBatchSpan is EvaluateSpan for whole rounds, falling back to
// EvaluateBatch (which itself falls back to sequential Evaluate).
func EvaluateBatchSpan(ev Evaluator, sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	if sp != nil {
		if se, ok := ev.(SpanBatchEvaluator); ok {
			return se.EvaluateBatchSpan(sp, a, ss, l)
		}
	}
	return EvaluateBatch(ev, a, ss, l)
}

// SpanCarrier is implemented by proposers whose internal trace events
// (DABO's dabo.fit/dabo.degraded) should be attributed to the caller's
// current span. The driver calls SetSpan before the proposer works
// under a span and SetSpan(nil) after; calls are goroutine-confined —
// each proposer is driven by exactly one goroutine at a time (the
// Strategy concurrency contract), so no synchronization is implied.
type SpanCarrier interface {
	SetSpan(*obs.Span)
}

// setSpan forwards sp to v when it carries spans.
func setSpan(v any, sp *obs.Span) {
	if sc, ok := v.(SpanCarrier); ok {
		sc.SetSpan(sp)
	}
}
