package core

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// runCapturing runs the config to completion while keeping every
// checkpoint the driver emits.
func runCapturing(t *testing.T, cfg RunConfig, strat Strategy) (Result, []*Checkpoint) {
	t.Helper()
	var cps []*Checkpoint
	cfg.OnCheckpoint = func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	res, err := Run(cfg, strat)
	if err != nil {
		t.Fatalf("full run failed: %v", err)
	}
	return res, cps
}

// writeReadCheckpoint round-trips a checkpoint through a file on disk.
func writeReadCheckpoint(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := WriteCheckpoint(f, cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	rt, err := ReadCheckpoint(f)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	return rt
}

// expectSameOutcome asserts that two results agree on everything a
// search produces except wall-clock timings.
func expectSameOutcome(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Best, got.Best) {
		t.Errorf("%s: Best diverged:\nwant %+v\ngot  %+v", label, want.Best, got.Best)
	}
	if !reflect.DeepEqual(stripElapsed(want.History), stripElapsed(got.History)) {
		t.Errorf("%s: History diverged:\nwant %+v\ngot  %+v", label, want.History, got.History)
	}
	if !reflect.DeepEqual(want.Frontier, got.Frontier) {
		t.Errorf("%s: Frontier diverged (%d vs %d designs)", label, len(want.Frontier), len(got.Frontier))
	}
	if !reflect.DeepEqual(want.Top, got.Top) {
		t.Errorf("%s: Top diverged (%d vs %d designs)", label, len(want.Top), len(got.Top))
	}
}

// TestCheckpointResumeBitIdentical is the tentpole guarantee: killing a
// run after any hardware sample and resuming from its checkpoint yields
// exactly the uninterrupted run's result — for proposers with learned
// state (Spotlight's daBO, SpotlightF's fixed-dataflow variant) and at
// any worker count, including resuming under a different one.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	strategies := map[string]func() Strategy{
		"Spotlight":  func() Strategy { return NewSpotlight() },
		"SpotlightF": func() Strategy { return NewSpotlightF() },
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig(3)
			cfg.Workers = 1
			full, cps := runCapturing(t, cfg, mk())
			if len(cps) != cfg.HWSamples {
				t.Fatalf("captured %d checkpoints, want %d", len(cps), cfg.HWSamples)
			}
			for _, k := range []int{1, 4, 7} {
				for _, workers := range []int{1, 0} {
					rcfg := tinyConfig(3)
					rcfg.Workers = workers
					rcfg.Resume = cps[k-1]
					res, err := Run(rcfg, mk())
					if err != nil {
						t.Fatalf("resume from sample %d (workers %d) failed: %v", k, workers, err)
					}
					label := name
					expectSameOutcome(t, label, full, res)
				}
			}
		})
	}
}

// TestCheckpointJSONRoundTrip writes a mid-run checkpoint to disk, reads
// it back, and resumes from the decoded copy: serialization must not
// perturb a single bit of the outcome. Go's float64 JSON encoding is
// shortest-round-trip, so exact equality is achievable and required.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	cfg := tinyConfig(3)
	cfg.Workers = 1
	full, cps := runCapturing(t, cfg, NewSpotlight())

	rt := writeReadCheckpoint(t, cps[3])
	if !reflect.DeepEqual(cps[3], rt) {
		t.Fatalf("checkpoint did not survive the JSON round trip:\nwant %+v\ngot  %+v", cps[3], rt)
	}
	rcfg := tinyConfig(3)
	rcfg.Resume = rt
	res, err := Run(rcfg, NewSpotlight())
	if err != nil {
		t.Fatalf("resume from decoded checkpoint failed: %v", err)
	}
	expectSameOutcome(t, "json-roundtrip", full, res)
}

// TestCheckpointNonFiniteHistorySurvivesJSON exercises the jsonFloat
// encoding: a checkpoint whose history contains +Inf (an all-invalid
// sample) must encode and decode without error or loss.
func TestCheckpointNonFiniteHistorySurvivesJSON(t *testing.T) {
	cp := &Checkpoint{
		Version: checkpointVersion,
		Samples: 1,
		Observations: []Observation{
			{Valid: false},
		},
		History: []cpHistoryPoint{{
			Sample:    1,
			Value:     jsonFloat(math.Inf(1)),
			BestSoFar: jsonFloat(math.Inf(1)),
		}},
	}
	rt := writeReadCheckpoint(t, cp)
	if !math.IsInf(float64(rt.History[0].Value), 1) || !math.IsInf(float64(rt.History[0].BestSoFar), 1) {
		t.Fatalf("+Inf history did not round-trip: %+v", rt.History[0])
	}
}

// TestCheckpointRejectsMismatchedRun guards against resuming a
// checkpoint into the wrong search: a different seed or a different
// strategy changes the fingerprint, while the worker count — which is
// guaranteed not to affect results — does not.
func TestCheckpointRejectsMismatchedRun(t *testing.T) {
	cfg := tinyConfig(3)
	_, cps := runCapturing(t, cfg, NewSpotlight())

	other := tinyConfig(4) // different seed
	other.Resume = cps[2]
	if _, err := Run(other, NewSpotlight()); err == nil {
		t.Error("resume with a different seed did not fail")
	}
	same := tinyConfig(3)
	same.Resume = cps[2]
	if _, err := Run(same, NewSpotlightF()); err == nil {
		t.Error("resume with a different strategy did not fail")
	}
	tooSmall := tinyConfig(3)
	tooSmall.HWSamples = 2 // checkpoint already covers 3 samples
	tooSmall.Resume = cps[2]
	if _, err := Run(tooSmall, NewSpotlight()); err == nil {
		t.Error("resume past the configured budget did not fail")
	}
}

// TestCancelReturnsPartialHistory cancels mid-run and checks that the
// partial Result is an exact prefix of the uninterrupted run, with the
// context error surfaced through errors.Is.
func TestCancelReturnsPartialHistory(t *testing.T) {
	full, _ := runCapturing(t, tinyConfig(5), NewSpotlight())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := tinyConfig(5)
	cfg.OnCheckpoint = func(cp *Checkpoint) error {
		if cp.Samples == 3 {
			cancel()
		}
		return nil
	}
	res, err := RunContext(ctx, cfg, NewSpotlight())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.History) != 3 {
		t.Fatalf("partial history has %d samples, want 3", len(res.History))
	}
	if !reflect.DeepEqual(stripElapsed(res.History), stripElapsed(full.History[:3])) {
		t.Errorf("partial history is not a prefix of the full run's:\nwant %+v\ngot  %+v",
			full.History[:3], res.History)
	}
	for _, d := range res.Top {
		if math.IsNaN(d.Objective) || math.IsInf(d.Objective, 0) {
			t.Errorf("non-finite objective %v among top designs of a canceled run", d.Objective)
		}
	}
}

// TestCancelBeforeFirstSample checks the degenerate case: a context
// canceled up front returns an empty, well-formed Result.
func TestCancelBeforeFirstSample(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, tinyConfig(1), NewSpotlight())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.History) != 0 || len(res.Frontier) != 0 || len(res.Top) != 0 {
		t.Fatalf("canceled-at-start run produced non-empty result: %d/%d/%d",
			len(res.History), len(res.Frontier), len(res.Top))
	}
}

// TestCheckpointHookErrorAborts: a failing OnCheckpoint (e.g. disk full)
// aborts the run with the hook's error and the partial result, rather
// than searching on with persistence silently broken.
func TestCheckpointHookErrorAborts(t *testing.T) {
	hookErr := errors.New("disk full")
	cfg := tinyConfig(5)
	cfg.OnCheckpoint = func(cp *Checkpoint) error {
		if cp.Samples == 2 {
			return hookErr
		}
		return nil
	}
	res, err := Run(cfg, NewSpotlight())
	if !errors.Is(err, hookErr) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	if len(res.History) != 2 {
		t.Fatalf("aborted run kept %d samples, want 2", len(res.History))
	}
}

// TestCheckpointResumeElapsedMonotone: satellite 1 — a resumed run's
// history carries absolute elapsed offsets, so BestSoFar and Elapsed
// both stay monotone across the checkpoint seam.
func TestCheckpointResumeElapsedMonotone(t *testing.T) {
	cfg := tinyConfig(3)
	_, cps := runCapturing(t, cfg, NewSpotlight())
	cp := cps[4]
	if cp.Elapsed <= 0 {
		t.Fatalf("checkpoint at sample 5 has non-positive elapsed %v", cp.Elapsed)
	}
	rcfg := tinyConfig(3)
	rcfg.Resume = cp
	res, err := Run(rcfg, NewSpotlight())
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	var prevE time.Duration
	prevB := math.Inf(1)
	for i, h := range res.History {
		if h.Elapsed < prevE {
			t.Errorf("Elapsed regressed at history[%d]: %v after %v", i, h.Elapsed, prevE)
		}
		if h.BestSoFar > prevB {
			t.Errorf("BestSoFar rose at history[%d]: %v after %v", i, h.BestSoFar, prevB)
		}
		prevE, prevB = h.Elapsed, h.BestSoFar
	}
	if seam := res.History[5].Elapsed; seam < cp.Elapsed {
		t.Errorf("first resumed sample's Elapsed %v is below the checkpoint's %v", seam, cp.Elapsed)
	}
}
