package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// scriptEval is a deterministic evaluator without a batch method: call i
// returns delay i+1, and every 3rd call is an ErrInvalid verdict.
type scriptEval struct{ calls int }

func (e *scriptEval) Name() string { return "script" }

func (e *scriptEval) Evaluate(hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error) {
	e.calls++
	if e.calls%3 == 0 {
		return maestro.Cost{}, fmt.Errorf("call %d: %w", e.calls, maestro.ErrInvalid)
	}
	d := float64(e.calls)
	return maestro.Cost{DelayCycles: d, EnergyNJ: d, AreaMM2: 1, PowerMW: 1, Utilization: 1}, nil
}

// TestEvaluateBatchFallback: EvaluateBatch over an evaluator without a
// native batch method degrades to a per-item loop in order.
func TestEvaluateBatchFallback(t *testing.T) {
	ev := &scriptEval{}
	ss := make([]sched.Schedule, 7)
	costs, errs := EvaluateBatch(ev, hw.Accel{}, ss, workload.Layer{})
	if ev.calls != len(ss) {
		t.Fatalf("fallback made %d calls, want %d", ev.calls, len(ss))
	}
	for i := range ss {
		if (i+1)%3 == 0 {
			if !errors.Is(errs[i], maestro.ErrInvalid) {
				t.Fatalf("item %d: want ErrInvalid, got %v", i, errs[i])
			}
			continue
		}
		if errs[i] != nil || costs[i].DelayCycles != float64(i+1) {
			t.Fatalf("item %d: cost=%+v err=%v", i, costs[i], errs[i])
		}
	}
}

// roundRecorder is a RoundProposer that records the interleaving of
// Suggest and Observe calls, so tests can check the driver drains whole
// rounds before feeding back.
type roundRecorder struct {
	round    int // value RoundSize reports
	suggests int
	log      []string // "s" per Suggest, "o" per Observe
}

func (r *roundRecorder) RoundSize() int { return r.round }

func (r *roundRecorder) Suggest() sched.Schedule {
	r.suggests++
	r.log = append(r.log, "s")
	var s sched.Schedule
	s.T2[0] = r.suggests // distinguishable, validity irrelevant to the mock eval
	return s
}

func (r *roundRecorder) Observe(sched.Schedule, float64, error) {
	r.log = append(r.log, "o")
}

// TestBatchedRoundClamping: an effectively unbounded RoundSize is capped
// at the remaining budget — exactly budget Suggests, all ahead of their
// round's Observes — and the best result matches the sequential replay.
func TestBatchedRoundClamping(t *testing.T) {
	const budget = 10
	cfg := RunConfig{Eval: &scriptEval{}, Objective: MinDelay}
	sw := &roundRecorder{round: 1 << 20}
	res := runLayerSearch(context.Background(), cfg, sw, hw.Accel{}, workload.Layer{Name: "x"}, budget, nil)
	if sw.suggests != budget {
		t.Fatalf("driver drew %d suggestions, want %d", sw.suggests, budget)
	}
	for i, c := range sw.log[:budget] {
		if c != "s" {
			t.Fatalf("call %d is %q; one unbounded round must suggest everything first", i, c)
		}
	}
	if len(sw.log) != 2*budget {
		t.Fatalf("%d calls logged, want %d (every suggestion observed)", len(sw.log), 2*budget)
	}
	if !res.Valid || res.Cost.DelayCycles != 1 {
		t.Fatalf("best = %+v, want the first (cheapest) scripted cost", res)
	}
}

// TestBatchedMatchesSequentialDriver: the batched and DisableBatch
// drivers produce identical LayerResults and identical proposer call
// logs for round size 3 against the scripted evaluator.
func TestBatchedMatchesSequentialDriver(t *testing.T) {
	const budget = 8
	run := func(disable bool) (LayerResult, []string) {
		cfg := RunConfig{Eval: &scriptEval{}, Objective: MinDelay, DisableBatch: disable}
		sw := &roundRecorder{round: 3}
		res := runLayerSearch(context.Background(), cfg, sw, hw.Accel{}, workload.Layer{Name: "x"}, budget, nil)
		return res, sw.log
	}
	batched, blog := run(false)
	sequential, slog := run(true)
	if batched != sequential {
		t.Fatalf("results diverge:\nbatched:    %+v\nsequential: %+v", batched, sequential)
	}
	if len(blog) != len(slog) || len(blog) != 2*budget {
		t.Fatalf("call logs have %d and %d entries, want %d", len(blog), len(slog), 2*budget)
	}
}
