package core

import (
	"fmt"
	"os"
)

// WriteCheckpointFile replaces path atomically: the checkpoint is
// written to a sibling temp file, fsynced, closed, and renamed over
// path. A crash, SIGKILL, or full disk at any point leaves either the
// previous complete checkpoint or the new one — never a truncated
// hybrid — because rename is the only step that changes what a reader
// sees and it happens after the bytes are durable. Every error on the
// write path (including Sync and Close, whose failures mean the data
// may not have reached disk) aborts the replacement and leaves the
// previous checkpoint in place.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: creating checkpoint temp file: %w", err)
	}
	if err := WriteCheckpoint(f, cp); err != nil {
		abandonTemp(f, tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		abandonTemp(f, tmp)
		return fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		removeTemp(tmp)
		return fmt.Errorf("core: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		removeTemp(tmp)
		return fmt.Errorf("core: installing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
// A leftover .tmp sibling (a write that crashed before rename) is
// ignored: path always names the last complete checkpoint.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:allow closecheck(read-only file: the close error carries no data)
	return ReadCheckpoint(f)
}

// abandonTemp discards a temp file after its write already failed; the
// original error is what the caller reports.
func abandonTemp(f *os.File, tmp string) {
	_ = f.Close() //lint:allow closecheck(the write already failed; that error is reported instead)
	removeTemp(tmp)
}

// removeTemp best-effort deletes the temp file; a leftover .tmp is
// harmless (readers ignore it, the next write recreates it).
func removeTemp(tmp string) {
	_ = os.Remove(tmp)
}
