package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
)

// checkpointVersion is bumped on incompatible checkpoint schema changes.
const checkpointVersion = 1

// Checkpoint is a resumable snapshot of a co-design run, taken after a
// completed hardware sample. It records everything RunContext needs to
// continue as if it had never stopped: the per-sample observations the
// hardware proposer learned from, the history (with elapsed offsets
// measured from the original start, so a resumed run continues the clock
// rather than restarting it), and the incumbent best/frontier/top-K
// designs. The strategy's internal state is NOT serialized; it is
// reconstructed on resume by replaying Suggest/Observe over the recorded
// observations, which is exact because every strategy is a deterministic
// function of the run seed and its observation sequence (and the
// per-layer software searches derive their RNGs from (Seed, sample,
// layer) independently). A run checkpointed at sample k and resumed is
// therefore bit-identical to an uninterrupted run, at any Workers
// setting — enforced by TestCheckpointResumeBitIdentical.
type Checkpoint struct {
	Version     int    `json:"version"`
	Tool        string `json:"tool"`
	Fingerprint string `json:"fingerprint"`
	// Samples is the number of completed hardware samples covered.
	Samples int `json:"samples"`
	// Elapsed is the wall-clock time consumed up to the last completed
	// sample, accumulated across resume segments.
	Elapsed      time.Duration    `json:"elapsed_ns"`
	Observations []Observation    `json:"observations"`
	History      []cpHistoryPoint `json:"history,omitempty"`
	Best         *Design          `json:"best,omitempty"`
	Frontier     []Design         `json:"frontier,omitempty"` // internal insertion order
	Top          []Design         `json:"top,omitempty"`      // internal rank order
}

// Observation is one hardware sample's outcome as the hardware proposer
// saw it: the proposed accelerator and either its finite aggregate
// objective (Valid) or infeasibility (invalid designs are replayed with
// an error wrapping maestro.ErrInvalid, matching what the live run fed
// to Observe).
type Observation struct {
	Accel     hw.Accel `json:"accel"`
	Objective float64  `json:"objective,omitempty"` // finite; meaningful only when Valid
	Valid     bool     `json:"valid"`
}

// cpHistoryPoint mirrors HistoryPoint with JSON-safe non-finite values
// (infeasible samples record Value = +Inf, which encoding/json rejects
// as a bare number).
type cpHistoryPoint struct {
	Sample    int           `json:"sample"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Value     jsonFloat     `json:"value"`
	BestSoFar jsonFloat     `json:"best_so_far"`
}

// jsonFloat is a float64 whose JSON form represents NaN and ±Inf as
// strings, since JSON has no literals for them. Finite values marshal as
// ordinary numbers (Go's encoder emits the shortest digits that
// round-trip exactly, so bit-identity survives serialization).
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = jsonFloat(math.NaN()) //lint:allow nonfinite(jsonFloat IS the sanctioned hygiene codec; this decodes the quoted sentinel back to its IEEE value)
		case "+Inf", "Inf":
			*f = jsonFloat(math.Inf(1)) //lint:allow nonfinite(jsonFloat IS the sanctioned hygiene codec; this decodes the quoted sentinel back to its IEEE value)
		case "-Inf":
			*f = jsonFloat(math.Inf(-1)) //lint:allow nonfinite(jsonFloat IS the sanctioned hygiene codec; this decodes the quoted sentinel back to its IEEE value)
		default:
			return fmt.Errorf("core: checkpoint float %q is not NaN/+Inf/-Inf", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// WriteCheckpoint serializes a checkpoint as indented JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint,
// validating the schema version.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	return &cp, nil
}

// Fingerprint identifies the (configuration, strategy) pair a checkpoint
// belongs to: everything that influences the search trajectory — models,
// space, budget, objective, sample counts, seed, software constraint,
// strategy, and evaluator — but not Workers, because results are
// bit-identical at every worker count. Resume refuses a checkpoint whose
// fingerprint does not match the resuming run.
func Fingerprint(cfg RunConfig, strat Strategy) string {
	cfg, _ = cfg.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "strategy=%s\n", strat.Name())
	fmt.Fprintf(h, "objective=%s hw=%d sw=%d seed=%d\n",
		cfg.Objective, cfg.HWSamples, cfg.SWSamples, cfg.Seed)
	fmt.Fprintf(h, "space=%+v\nbudget=%+v\nconstraint=%s\n",
		cfg.Space, cfg.Budget, cfg.SWConstraint.Name)
	if cfg.Eval != nil {
		fmt.Fprintf(h, "eval=%s\n", cfg.Eval.Name())
	}
	for _, m := range cfg.Models {
		fmt.Fprintf(h, "model=%s\n", m.Name)
		for _, l := range m.Layers {
			fmt.Fprintf(h, "layer=%+v\n", l)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// buildCheckpoint snapshots the live run state. Designs and slices are
// copied, so the checkpoint stays valid however long the caller holds it.
func buildCheckpoint(cfg RunConfig, strat Strategy, obs []Observation,
	res *Result, frontier *ParetoFrontier, top *TopDesigns) *Checkpoint {

	cp := &Checkpoint{
		Version:      checkpointVersion,
		Tool:         strat.Name(),
		Fingerprint:  Fingerprint(cfg, strat),
		Samples:      len(obs),
		Observations: append([]Observation(nil), obs...),
	}
	if n := len(res.History); n > 0 {
		cp.Elapsed = res.History[n-1].Elapsed
	}
	for _, hp := range res.History {
		cp.History = append(cp.History, cpHistoryPoint{
			Sample:    hp.Sample,
			Elapsed:   hp.Elapsed,
			Value:     jsonFloat(hp.Value),
			BestSoFar: jsonFloat(hp.BestSoFar),
		})
	}
	if !math.IsInf(res.Best.Objective, 1) {
		b := copyDesign(res.Best)
		cp.Best = &b
	}
	for _, d := range frontier.points {
		cp.Frontier = append(cp.Frontier, copyDesign(d))
	}
	for _, d := range top.designs {
		cp.Top = append(cp.Top, copyDesign(d))
	}
	return cp
}

// restoredState is what a checkpoint reconstructs inside RunContext.
type restoredState struct {
	best     Design
	history  []HistoryPoint
	frontier ParetoFrontier
	top      TopDesigns
	obs      []Observation
	elapsed  time.Duration
}

// errReplayedInvalid is fed to Observe when replaying an infeasible
// sample; strategies only inspect err != nil (and some unwrap to
// maestro.ErrInvalid), matching what the live run passed.
var errReplayedInvalid = fmt.Errorf("core: replayed infeasible sample: %w", maestro.ErrInvalid)

// restore validates the checkpoint against the resuming configuration
// and rebuilds both the bookkeeping state and the hardware proposer's
// internal state, the latter by replaying the Suggest/Observe sequence.
// Replay doubles as an integrity check: every replayed Suggest must
// reproduce the recorded accelerator exactly, otherwise the checkpoint
// and the configuration have diverged in a way the fingerprint missed.
func (cp *Checkpoint) restore(cfg RunConfig, strat Strategy, hwSearch HWProposer) (restoredState, error) {
	st := restoredState{}
	st.best.Objective = math.Inf(1)
	if cp.Version != checkpointVersion {
		return st, fmt.Errorf("checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if got := Fingerprint(cfg, strat); cp.Fingerprint != got {
		return st, fmt.Errorf("checkpoint fingerprint %s does not match this run's %s (different models, budget, seed, strategy, or evaluator)",
			cp.Fingerprint, got)
	}
	if cp.Samples != len(cp.Observations) {
		return st, fmt.Errorf("checkpoint covers %d samples but records %d observations",
			cp.Samples, len(cp.Observations))
	}
	if cp.Samples > cfg.HWSamples {
		return st, fmt.Errorf("checkpoint covers %d samples, run budget is %d",
			cp.Samples, cfg.HWSamples)
	}
	for i, o := range cp.Observations {
		accel := hwSearch.Suggest()
		if accel != o.Accel {
			return st, fmt.Errorf("replay diverged at sample %d: strategy proposed %s, checkpoint recorded %s",
				i+1, accel, o.Accel)
		}
		if o.Valid {
			hwSearch.Observe(accel, o.Objective, nil)
		} else {
			hwSearch.Observe(accel, math.Inf(1), errReplayedInvalid)
		}
	}
	if cp.Best != nil {
		st.best = copyDesign(*cp.Best)
	}
	for _, hp := range cp.History {
		st.history = append(st.history, HistoryPoint{
			Sample:    hp.Sample,
			Elapsed:   hp.Elapsed,
			Value:     float64(hp.Value),
			BestSoFar: float64(hp.BestSoFar),
		})
	}
	for _, d := range cp.Frontier {
		st.frontier.points = append(st.frontier.points, copyDesign(d))
	}
	st.top = TopDesigns{K: topKDesigns}
	for _, d := range cp.Top {
		st.top.designs = append(st.top.designs, copyDesign(d))
	}
	st.obs = append([]Observation(nil), cp.Observations...)
	st.elapsed = cp.Elapsed
	return st, nil
}

// copyDesign returns a design that shares no mutable memory with d.
func copyDesign(d Design) Design {
	d.Layers = append([]LayerResult(nil), d.Layers...)
	return d
}
