package lintkit

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Analyzer: "goroutinejoin",
			Pos:      token.Position{Filename: "/repo/internal/serve/server.go", Line: 10, Column: 2},
			Message:  "goroutine is fire-and-forget",
		},
		{
			Analyzer: "lockbalance",
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 1},
			Message:  "never released",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/repo", sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("encoded %d findings, want 2", len(got))
	}
	if got[0]["file"] != "internal/serve/server.go" {
		t.Errorf("in-root path = %q, want root-relative", got[0]["file"])
	}
	if got[1]["file"] != "/elsewhere/outside.go" {
		t.Errorf("out-of-root path = %q, want passed through", got[1]["file"])
	}
	if got[0]["analyzer"] != "goroutinejoin" || got[0]["line"] != float64(10) {
		t.Errorf("first record = %v, want analyzer/line preserved", got[0])
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/repo", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty findings encode as %q, want []", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "goroutinejoin", Doc: "join your goroutines"},
		{Name: "lockbalance", Doc: "balance your locks"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", sampleFindings(), analyzers); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("schema/version = %q / %q, want SARIF 2.1.0", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "spotlightlint" {
		t.Errorf("driver = %q, want spotlightlint", run.Tool.Driver.Name)
	}
	// Every analyzer is a rule whether or not it fired, so the inventory
	// is stable across runs.
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("rules = %d, want one per analyzer", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want one per finding", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "goroutinejoin" || r.Level != "error" {
		t.Errorf("result = %+v, want goroutinejoin at error level", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/serve/server.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %+v, want relative URI and line 10", loc)
	}
}

func TestRelURI(t *testing.T) {
	cases := []struct{ root, in, want string }{
		{"/repo", "/repo/a/b.go", "a/b.go"},
		{"/repo", "/other/b.go", "/other/b.go"},
		{"", "/repo/a/b.go", "/repo/a/b.go"},
	}
	for _, c := range cases {
		if got := relURI(c.root, c.in); got != c.want {
			t.Errorf("relURI(%q, %q) = %q, want %q", c.root, c.in, got, c.want)
		}
	}
}
