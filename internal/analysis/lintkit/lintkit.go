// Package lintkit is a small, dependency-free analysis framework shaped
// after golang.org/x/tools/go/analysis. The repo builds offline from the
// standard library alone, so instead of importing the x/tools multichecker
// it re-creates the three pieces spotlightlint needs: an Analyzer/Pass
// contract, a module-aware package loader built on go/parser + go/types,
// and an annotation-driven suppression mechanism
// (//lint:allow token(reason)) checked by the driver rather than by each
// analyzer.
//
// The deliberate differences from x/tools are:
//
//   - Only non-test files are loaded and analyzed. The invariants
//     spotlightlint enforces (no wall clock, no map-order dependence,
//     single Guard construction site, ...) are production-code
//     invariants; tests routinely time things and compare floats.
//   - Suppression is centralized: analyzers just Reportf, and the driver
//     drops diagnostics whose line (or the line above) carries a
//     //lint:allow annotation for that analyzer's token. Every allow
//     must name a reason — a bare //lint:allow wallclock() suppresses
//     nothing.
package lintkit

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output ("nowallclock").
	Name string
	// AllowToken is the token accepted in //lint:allow token(reason)
	// annotations; empty means Name. nowallclock uses "wallclock" so the
	// annotation reads as the thing being allowed, not the checker name.
	AllowToken string
	// Doc is the one-paragraph human description.
	Doc string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(*Pass) error
}

// Token returns the annotation token this analyzer honours.
func (a *Analyzer) Token() string {
	if a.AllowToken != "" {
		return a.AllowToken
	}
	return a.Name
}

// Pass carries one package's syntax and types to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *factStore
	diags []Diagnostic
}

// ExportFact attaches a fact to obj for this analyzer. Facts outlive the
// pass: the driver analyzes packages in import-dependency order, so a
// fact exported while analyzing package P is visible to the same
// analyzer in every package that imports P — and, since the loader
// shares one *types.Package per path, object identity just works. This
// is how an analyzer sees across files and packages: export facts about
// declarations during its sweep of the defining package, import them at
// use sites anywhere else.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	if obj == nil || p.facts == nil {
		return
	}
	p.facts.set(p.Analyzer, obj, fact)
}

// ImportFact returns the fact this analyzer exported on obj, if any.
func (p *Pass) ImportFact(obj types.Object) (any, bool) {
	if obj == nil || p.facts == nil {
		return nil, false
	}
	return p.facts.get(p.Analyzer, obj)
}

// factStore holds (analyzer, object) → fact across packages. Guarded by
// a mutex because unrelated packages analyze in parallel; the
// import-order gating in RunParallel is what makes reads see the writes
// that matter.
type factStore struct {
	mu sync.RWMutex
	m  map[factKey]any
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
}

func newFactStore() *factStore { return &factStore{m: map[factKey]any{}} }

func (s *factStore) set(a *Analyzer, obj types.Object, fact any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{a, obj}] = fact
}

func (s *factStore) get(a *Analyzer, obj types.Object) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.m[factKey{a, obj}]
	return f, ok
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved to a position, as the driver returns
// it after allow-filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by file, line, column, then analyzer name — a stable
// order whatever the package load order was. It is RunParallel with one
// worker.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunParallel(pkgs, analyzers, 1)
}

// RunParallel is Run with package-level parallelism: up to workers
// packages analyze concurrently (workers <= 0 means GOMAXPROCS). A
// package is gated on its in-set imports so that facts exported while
// analyzing a dependency are visible at its use sites — the schedule is
// a wavefront over the import DAG, which Go guarantees is acyclic. The
// findings and their order are identical at any worker count: each
// package's diagnostics are collected independently and the merged
// result is sorted before returning.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Finding, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	facts := newFactStore()
	inSet := make(map[string]int, len(pkgs))
	ready := make(map[string]chan struct{}, len(pkgs))
	for i, p := range pkgs {
		inSet[p.Path] = i
		ready[p.Path] = make(chan struct{})
	}
	type pkgResult struct {
		findings []Finding
		err      error
	}
	results := make([]pkgResult, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ready[pkg.Path])
			// Wait for in-set dependencies before taking a worker slot, so
			// a blocked package never starves the package it is blocked on.
			for _, imp := range pkg.Types.Imports() {
				if _, ok := inSet[imp.Path()]; ok {
					<-ready[imp.Path()]
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			findings, err := analyzePackage(pkg, analyzers, facts)
			results[i] = pkgResult{findings, err}
		}()
	}
	wg.Wait()
	var out []Finding
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		out = append(out, r.findings...)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// analyzePackage runs every analyzer over one package, applying the
// package's //lint:allow annotations to the diagnostics.
func analyzePackage(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Finding, error) {
	var out []Finding
	allows := collectAllows(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			pos := pkg.Fset.Position(d.Pos)
			if allows.allowed(a.Token(), pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	return out, nil
}

// WalkStack is ast.Inspect with an enclosing-node stack: fn sees each
// node along with its ancestors, innermost last. Analyzers use it where
// a finding's meaning depends on context (what an expression is assigned
// to, which function it sits in). Returning false skips the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// ast.Inspect will not descend, so it will not send the
			// matching nil; pop now.
			stack = stack[:len(stack)-1]
		}
		return keep
	})
}

// EnclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
