// Package lintkit is a small, dependency-free analysis framework shaped
// after golang.org/x/tools/go/analysis. The repo builds offline from the
// standard library alone, so instead of importing the x/tools multichecker
// it re-creates the three pieces spotlightlint needs: an Analyzer/Pass
// contract, a module-aware package loader built on go/parser + go/types,
// and an annotation-driven suppression mechanism
// (//lint:allow token(reason)) checked by the driver rather than by each
// analyzer.
//
// The deliberate differences from x/tools are:
//
//   - Only non-test files are loaded and analyzed. The invariants
//     spotlightlint enforces (no wall clock, no map-order dependence,
//     single Guard construction site, ...) are production-code
//     invariants; tests routinely time things and compare floats.
//   - Suppression is centralized: analyzers just Reportf, and the driver
//     drops diagnostics whose line (or the line above) carries a
//     //lint:allow annotation for that analyzer's token. Every allow
//     must name a reason — a bare //lint:allow wallclock() suppresses
//     nothing.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output ("nowallclock").
	Name string
	// AllowToken is the token accepted in //lint:allow token(reason)
	// annotations; empty means Name. nowallclock uses "wallclock" so the
	// annotation reads as the thing being allowed, not the checker name.
	AllowToken string
	// Doc is the one-paragraph human description.
	Doc string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(*Pass) error
}

// Token returns the annotation token this analyzer honours.
func (a *Analyzer) Token() string {
	if a.AllowToken != "" {
		return a.AllowToken
	}
	return a.Name
}

// Pass carries one package's syntax and types to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved to a position, as the driver returns
// it after allow-filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by file, line, column, then analyzer name — a stable
// order whatever the package load order was.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if allows.allowed(a.Token(), pos) {
					continue
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// WalkStack is ast.Inspect with an enclosing-node stack: fn sees each
// node along with its ancestors, innermost last. Analyzers use it where
// a finding's meaning depends on context (what an expression is assigned
// to, which function it sits in). Returning false skips the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// ast.Inspect will not descend, so it will not send the
			// matching nil; pop now.
			stack = stack[:len(stack)-1]
		}
		return keep
	})
}

// EnclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
