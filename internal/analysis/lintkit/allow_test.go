package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func f() {
	a() //lint:allow wallclock(timing is observability only)
	//lint:allow maporder(order-insensitive sink) floateq(exact sentinel)
	b()
	c() //lint:allow nowallclock()
}
`

// TestAllows covers the audit inventory: every annotation site is
// listed — the reasonless one included, with Reason "" — in file, line,
// token order.
func TestAllows(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sites := Allows([]*Package{{Path: "p", Fset: fset, Files: []*ast.File{f}}})
	want := []Allow{
		{Token: "wallclock", Reason: "timing is observability only"},
		{Token: "floateq", Reason: "exact sentinel"},
		{Token: "maporder", Reason: "order-insensitive sink"},
		{Token: "nowallclock", Reason: ""},
	}
	if len(sites) != len(want) {
		t.Fatalf("Allows returned %d sites, want %d: %v", len(sites), len(want), sites)
	}
	for i, w := range want {
		if sites[i].Token != w.Token || sites[i].Reason != w.Reason {
			t.Errorf("site %d = %s(%s), want %s(%s)",
				i, sites[i].Token, sites[i].Reason, w.Token, w.Reason)
		}
	}
	for i := 1; i < len(sites); i++ {
		a, b := sites[i-1], sites[i]
		if a.Pos.Line > b.Pos.Line || (a.Pos.Line == b.Pos.Line && a.Token > b.Token) {
			t.Errorf("sites out of order: %v before %v", a, b)
		}
	}
}

func TestCollectAllows(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := collectAllows(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }

	if !set.allowed("wallclock", at(4)) {
		t.Error("inline allow on line 4 not honoured")
	}
	if !set.allowed("maporder", at(6)) {
		t.Error("preceding-line allow not honoured for maporder")
	}
	if !set.allowed("floateq", at(6)) {
		t.Error("second token of a multi-token allow not honoured")
	}
	if set.allowed("wallclock", at(6)) {
		t.Error("allow must be token-specific: wallclock not annotated at line 6")
	}
	if set.allowed("nowallclock", at(7)) {
		t.Error("reasonless allow must be inert")
	}
	if set.allowed("wallclock", at(4+10)) {
		t.Error("allow must not leak to unrelated lines")
	}
	if set.allowed("wallclock", token.Position{Filename: "q.go", Line: 4}) {
		t.Error("allow must not leak across files")
	}
}
