// Package facta is the defining side of the fact-propagation fixture:
// the test analyzer exports a fact on Marked while analyzing this
// package and imports it at the call site in factb.
package facta

// Marked carries the fact.
func Marked() {}

// Plain does not.
func Plain() int { return 1 }
