// Package factb is the consuming side of the fact-propagation fixture:
// it calls into facta, and the test analyzer reports each call whose
// callee carries a fact exported while facta was analyzed.
package factb

import "facta"

// Use calls one marked and one unmarked function.
func Use() int {
	facta.Marked()
	return facta.Plain()
}
