// Package linttest runs lintkit analyzers against fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixtures
// live under testdata/src/<import-path>/, and every line expected to be
// reported carries a trailing
//
//	// want "regexp"
//
// comment (several per line allowed). The runner fails the test for any
// diagnostic without a matching want, and for any want without a
// matching diagnostic — so fixtures prove both that violations are
// caught and that clean or //lint:allow-annotated code stays silent.
// Diagnostics are matched after lintkit's allow-filtering, which is what
// lets fixtures exercise the escape hatch.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"spotlight/internal/analysis/lintkit"
)

// wantRx extracts the quoted patterns of one want comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's filtered diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *lintkit.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := lintkit.NewFixtureLoader("", filepath.Join(testdata, "src"))
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := lintkit.Run(pkgs, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg.Fset, f)...)
		}
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				a.Name, w.raw, w.file, w.line)
		}
	}
}

// claim marks the first unmet expectation matching the finding.
func claim(wants []*expectation, f lintkit.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the want comments of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			matches := wantRx.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range matches {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: m[1]})
			}
		}
	}
	return out
}
