package lintkit

import (
	"go/ast"
	"go/types"
	"reflect"
	"testing"
)

// factAnalyzer exports a fact on every function named "Marked" and
// reports every call whose callee carries the fact — the minimal
// cross-package fact round trip.
var factAnalyzer = &Analyzer{
	Name: "factcheck",
	Doc:  "test analyzer: reports calls to fact-marked functions",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "Marked" {
					pass.ExportFact(pass.TypesInfo.Defs[fd.Name], "marked")
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj = pass.TypesInfo.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.Uses[fun.Sel]
				}
				if obj == nil {
					return true
				}
				if fact, ok := pass.ImportFact(obj); ok {
					pass.Reportf(call.Pos(), "call to %s function %s", fact, obj.Name())
				}
				return true
			})
		}
		return nil
	},
}

// loadFactFixture loads the two-package fact fixture with factb (the
// importer) deliberately listed first, so only the dependency gating —
// not the input order — can put facta's facts in place before factb
// analyzes.
func loadFactFixture(t *testing.T) []*Package {
	t.Helper()
	l := NewFixtureLoader("", "testdata/src")
	pkgs, err := l.Load("factb", "facta")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	return pkgs
}

func TestFactsCrossPackage(t *testing.T) {
	findings, err := Run(loadFactFixture(t), []*Analyzer{factAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the facta.Marked call site", findings)
	}
	f := findings[0]
	if f.Analyzer != "factcheck" || f.Message != "call to marked function Marked" {
		t.Fatalf("finding = %+v, want the marked-call report", f)
	}
}

// TestRunParallelDeterministic proves the findings and their order are
// identical at any worker count — the analysis analogue of the repo's
// any-worker-count reproducibility invariant.
func TestRunParallelDeterministic(t *testing.T) {
	pkgs := loadFactFixture(t)
	base, err := Run(pkgs, []*Analyzer{factAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		for round := 0; round < 5; round++ {
			got, err := RunParallel(pkgs, []*Analyzer{factAnalyzer}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d round=%d: findings diverge:\ngot  %v\nwant %v",
					workers, round, got, base)
			}
		}
	}
}
