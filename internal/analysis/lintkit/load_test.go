package lintkit

import "testing"

func TestLoaderLoadsModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "spotlight" {
		t.Fatalf("module = %q, want spotlight", l.Module)
	}
	pkgs, err := l.Load("spotlight/internal/linalg")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Fatalf("package %s loaded without types or files", p.Path)
	}
	if p.Types.Name() != "linalg" {
		t.Fatalf("package name = %q, want linalg", p.Types.Name())
	}
}

func TestLoaderWildcardAndMemoization(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{
		"spotlight/internal/analysis/lintkit",
		"spotlight/internal/analysis/lintkit/linttest",
		"spotlight/internal/analysis/spotlightlint",
	} {
		if byPath[want] == nil {
			t.Errorf("wildcard load missing %s (got %d packages)", want, len(pkgs))
		}
	}
	// A second Load of an already-loaded package must return the memoized
	// *Package, not re-typecheck.
	again, err := l.Load("spotlight/internal/analysis/lintkit")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0] != byPath["spotlight/internal/analysis/lintkit"] {
		t.Error("reloading a package did not return the memoized instance")
	}
}
