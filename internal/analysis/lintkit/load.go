package lintkit

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path ("spotlight/internal/eval")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only, with comments
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of one module without the go
// toolchain's package driver: import paths under Module resolve to
// directories under Root and are type-checked from source (each exactly
// once, memoized); every other path falls through to the standard
// library via go/importer's source importer. That is sufficient here
// because the module is dependency-free — which the loader checks by
// construction: a third-party import would fail to resolve.
type Loader struct {
	Module string // module path from go.mod; "" maps import paths to Root-relative dirs
	Root   string // directory of the module (or fixture tree)

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error // import-cycle guard + error memo
}

// NewLoader returns a loader rooted at the module containing dir,
// walking upward to find go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			module := modulePath(string(data))
			if module == "" {
				return nil, fmt.Errorf("lintkit: no module line in %s/go.mod", root)
			}
			return NewFixtureLoader(module, root), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lintkit: no go.mod above %s", abs)
		}
		root = parent
	}
}

// NewFixtureLoader returns a loader with an explicit module path and
// root, used by linttest to treat a testdata/src tree as a module.
func NewFixtureLoader(module, root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Module: module,
		Root:   root,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		errs:   map[string]error{},
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// dirFor maps an import path to a directory under Root, or "" when the
// path does not belong to the module.
func (l *Loader) dirFor(path string) string {
	switch {
	case l.Module == "":
		return filepath.Join(l.Root, filepath.FromSlash(path))
	case path == l.Module:
		return l.Root
	default:
		rel, ok := strings.CutPrefix(path, l.Module+"/")
		if !ok {
			return ""
		}
		return filepath.Join(l.Root, filepath.FromSlash(rel))
	}
}

// Load resolves patterns to packages and type-checks them. A pattern is
// an import path, a Root-relative directory ("./cmd/lint"), or either
// with a trailing "/..." wildcard ("./..." being the whole module).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		path := l.patternToImportPath(pat)
		if !rec {
			add(path)
			continue
		}
		expanded, err := l.expand(path)
		if err != nil {
			return nil, err
		}
		for _, p := range expanded {
			add(p)
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// patternToImportPath normalizes one non-wildcard pattern to an import
// path.
func (l *Loader) patternToImportPath(pat string) string {
	pat = strings.TrimSuffix(pat, "/")
	if pat == "." || pat == "" {
		return l.Module
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		if l.Module == "" {
			return rest
		}
		return l.Module + "/" + rest
	}
	return pat
}

// expand walks the directory tree under an import path collecting every
// package directory (one containing at least one non-test .go file),
// skipping testdata, hidden directories, and nested modules.
func (l *Loader) expand(path string) ([]string, error) {
	root := l.dirFor(path)
	if root == "" {
		return nil, fmt.Errorf("lintkit: cannot expand %q/... outside module %q", path, l.Module)
	}
	var out []string
	err := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if dir != root {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		names, err := goFileNames(dir)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		switch {
		case rel == ".":
			out = append(out, l.Module)
		case l.Module == "":
			out = append(out, filepath.ToSlash(rel))
		default:
			out = append(out, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

// goFileNames lists the non-test .go files of dir that belong to the
// current build configuration, sorted. Build constraints (//go:build
// lines and _GOOS/_GOARCH name suffixes) are honoured via go/build the
// way the compiler honours them — otherwise a package with platform
// variants of one function (e.g. diskcache's flock files) would
// type-check as a redeclaration.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks one package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		if err == nil {
			return nil, fmt.Errorf("lintkit: import cycle through %q", path)
		}
		return nil, err
	}
	l.errs[path] = nil // in-progress marker: a re-entrant load is a cycle
	pkg, err := l.loadUncached(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	delete(l.errs, path)
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lintkit: %q is outside module %q", path, l.Module)
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("lintkit: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lintkit: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		// A module-local path that resolves to a real package directory is
		// loaded from source; anything else (the standard library) goes
		// through the source importer.
		if dir := l.dirFor(p); dir != "" {
			if names, err := goFileNames(dir); err == nil && len(names) > 0 {
				sub, err := l.load(p)
				if err != nil {
					return nil, err
				}
				return sub.Types, nil
			}
		}
		return l.std.Import(p)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
