package lintkit

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// allowRx matches one annotation inside a //lint:allow comment:
// token(reason). The reason is mandatory — an empty pair of parentheses
// does not suppress anything, so every exception in the tree documents
// why it is one.
var allowRx = regexp.MustCompile(`([a-zA-Z][a-zA-Z0-9_-]*)\(([^)]+)\)`)

// allowSet records, per file and line, which analyzer tokens are allowed
// there. A diagnostic is suppressed when its own line or the line
// directly above carries a matching annotation, mirroring how
// //nolint-style directives are conventionally written (inline or as a
// leading comment).
type allowSet map[string]map[int][]string

// collectAllows scans every comment in the files for //lint:allow
// annotations.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range allowRx.FindAllStringSubmatch(text, -1) {
					if strings.TrimSpace(m[2]) == "" {
						continue
					}
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						set[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], m[1])
				}
			}
		}
	}
	return set
}

// Allow is one //lint:allow annotation site, as the -allows audit mode
// reports it. Reason is "" for a reasonless annotation — which
// suppresses nothing and is itself an audit failure.
type Allow struct {
	Pos    token.Position
	Token  string
	Reason string
}

// allowSiteRx matches every token(...) group of an allow comment,
// including empty parentheses, which collectAllows deliberately skips
// but the audit must surface.
var allowSiteRx = regexp.MustCompile(`([a-zA-Z][a-zA-Z0-9_-]*)\(([^)]*)\)`)

// Allows lists every //lint:allow annotation in the packages, reasonless
// ones included, sorted by file, line, then token — the auditable
// suppression inventory behind `cmd/lint -allows`.
func Allows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range allowSiteRx.FindAllStringSubmatch(text, -1) {
						out = append(out, Allow{Pos: pos, Token: m[1], Reason: strings.TrimSpace(m[2])})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Token < b.Token
	})
	return out
}

// allowed reports whether token is annotated at pos (same line or the
// line above).
func (s allowSet) allowed(token string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, t := range lines[line] {
			if t == token {
				return true
			}
		}
	}
	return false
}
