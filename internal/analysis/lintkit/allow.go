package lintkit

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRx matches one annotation inside a //lint:allow comment:
// token(reason). The reason is mandatory — an empty pair of parentheses
// does not suppress anything, so every exception in the tree documents
// why it is one.
var allowRx = regexp.MustCompile(`([a-zA-Z][a-zA-Z0-9_-]*)\(([^)]+)\)`)

// allowSet records, per file and line, which analyzer tokens are allowed
// there. A diagnostic is suppressed when its own line or the line
// directly above carries a matching annotation, mirroring how
// //nolint-style directives are conventionally written (inline or as a
// leading comment).
type allowSet map[string]map[int][]string

// collectAllows scans every comment in the files for //lint:allow
// annotations.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range allowRx.FindAllStringSubmatch(text, -1) {
					if strings.TrimSpace(m[2]) == "" {
						continue
					}
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						set[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], m[1])
				}
			}
		}
	}
	return set
}

// allowed reports whether token is annotated at pos (same line or the
// line above).
func (s allowSet) allowed(token string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, t := range lines[line] {
			if t == token {
				return true
			}
		}
	}
	return false
}
