package lintkit

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// This file renders findings for machines. Two formats:
//
//   - JSON: a flat array of findings, for scripting against the gate.
//   - SARIF 2.1.0: the static-analysis interchange format GitHub turns
//     into inline PR annotations when uploaded from CI. Only the subset
//     GitHub consumes is emitted (tool.driver with one rule per
//     analyzer, results with ruleId/message/region), all of it from the
//     stdlib encoder — no schema library.
//
// Both formats receive findings in lintkit.Run's stable file:line:column
// order and preserve it, so diffing two runs' outputs is meaningful.
// Paths are made root-relative (forward slashes, SARIF's uriBaseId
// convention) so the output is machine-independent and GitHub can match
// files in the checkout.

// relURI converts an absolute finding path to a root-relative,
// slash-separated URI; paths outside root pass through unchanged.
func relURI(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is the -format json record.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the findings as an indented JSON array with
// root-relative paths.
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relURI(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 subset.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log. Every analyzer
// becomes a rule (found or not, so the rule inventory is stable) and
// every finding an error-level result against a root-relative URI.
func WriteSARIF(w io.Writer, root string, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relURI(root, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "spotlightlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
