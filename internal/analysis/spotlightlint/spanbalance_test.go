package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestSpanBalance proves discarded spans (bare-statement and
// blank-assigned constructor calls, from obs.StartSpan, obs.ChildOrRoot,
// and the Child/ChildSample/ChildLabel methods) and never-ended spans
// (including the `_ = sp` compiler-silencer) are flagged, that deferred,
// stored, returned, closure-captured, passed-on, and reassigned spans
// stay silent, and that //lint:allow suppresses.
func TestSpanBalance(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.SpanBalance, "spanpkg")
}
