package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// CloseCheck enforces the persistence-hygiene invariant from the
// crash-safe cache PR: in packages that write durable state (the
// disk-cache journal, checkpoints, CSV and JSON artifacts), the error
// returned by Close or Sync must be checked. On most filesystems a
// buffered write failure — a filling disk, a vanished mount — surfaces
// at close time, so `defer f.Close()` on a written file silently
// converts data loss into a success exit code. Read-only closes and
// already-failed paths are suppressed with an annotation naming the
// reason: //lint:allow closecheck(read-only file: ...).
var CloseCheck = &lintkit.Analyzer{
	Name: "closecheck",
	Doc:  "Close/Sync errors must be checked in persistence packages (a dropped close error hides a failed flush)",
	Run:  runCloseCheck,
}

// persistencePackages write durable state whose loss must not be
// silent: the journal store, the checkpoint writer, the middleware that
// owns the store handle, and the CLIs that emit result artifacts.
var persistencePackages = []string{
	"spotlight/internal/eval/diskcache",
	"spotlight/internal/eval",
	"spotlight/internal/core",
	"spotlight/cmd/spotlight",
	"spotlight/cmd/experiments",
}

// closeLikeCall returns the call if expr is a method call named Close or
// Sync whose result is exactly one error; nil otherwise.
func closeLikeCall(pass *lintkit.Pass, expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if !types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
		return nil
	}
	return call
}

// callName renders "recv.Close" for the diagnostic.
func callName(call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

func runCloseCheck(pass *lintkit.Pass) error {
	if !inList(pass.Pkg.Path(), persistencePackages) {
		return nil
	}
	report := func(call *ast.CallExpr, how string) {
		pass.Reportf(call.Pos(),
			"the error from %s is discarded (%s): a failed flush would go unnoticed — check it, or annotate //lint:allow closecheck(reason)",
			callName(call), how)
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call := closeLikeCall(pass, n.X); call != nil {
					report(call, "result unused")
				}
			case *ast.DeferStmt:
				if call := closeLikeCall(pass, n.Call); call != nil {
					report(call, "deferred without handling")
				}
			case *ast.GoStmt:
				if call := closeLikeCall(pass, n.Call); call != nil {
					report(call, "result unused")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call := closeLikeCall(pass, n.Rhs[0])
				if call == nil {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true // the error lands in a variable
					}
				}
				report(call, "assigned to _")
			}
			return true
		})
	}
	return nil
}
