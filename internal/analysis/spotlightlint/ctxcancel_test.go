package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestCtxCancel proves discarded cancels (context.WithCancel/
// WithTimeout/WithDeadline and signal.NotifyContext) and never-called
// cancels (including the `_ = cancel` compiler-silencer) are flagged,
// that deferred, stored, returned, closure-captured, and passed-on
// cancels stay silent, and that //lint:allow suppresses.
func TestCtxCancel(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.CtxCancel, "ctxpkg")
}
