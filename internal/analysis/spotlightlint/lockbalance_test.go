package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestLockBalance proves the forgotten-unlock, read/write-mismatch,
// straight-line double-lock, and return-while-held forms are flagged,
// that defer-based, manual, deferred-literal, and branchy multi-path
// releases pass, that independent receivers are tracked separately,
// and that the lock-handoff pattern survives under //lint:allow.
func TestLockBalance(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.LockBalance, "lockpkg")
}
