package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestNoWallClock proves the analyzer fires inside a deterministic
// package (fixtures under spotlight/internal/search), honours the
// //lint:allow wallclock(reason) escape hatch, treats a reasonless
// allow as inert, stays silent in packages off the deterministic list
// (plainpkg), and stays silent in wallClockExempt packages
// (spotlight/internal/obs — deterministic, but the sanctioned home for
// clock reads).
func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.NoWallClock,
		"spotlight/internal/search", "plainpkg", "spotlight/internal/obs")
}
