package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestNonFinite proves NaN/Inf landing in maestro.Cost fields (field
// assignment, keyed and positional composite literals, through a
// pointer) and inside encode/decode functions is flagged in a
// deterministic package, the +Inf best-so-far idiom and annotated
// sites stay silent, and packages off the deterministic list
// (plainpkg) are not analyzed.
func TestNonFinite(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.NonFinite,
		"spotlight/internal/sim", "plainpkg")
}
