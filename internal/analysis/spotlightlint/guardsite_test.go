package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestGuardSite proves every construction form of resilience.Guard is
// flagged outside internal/eval (composite literal, new, zero-value
// declaration), that nil pointer declarations and annotated sites pass,
// and that the two sanctioned packages — internal/eval and the defining
// internal/resilience — are exempt.
func TestGuardSite(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.GuardSite,
		"badpkg", "spotlight/internal/eval", "spotlight/internal/resilience")
}
