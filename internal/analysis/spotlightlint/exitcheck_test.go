package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestExitCheck proves every process-killing reference form is flagged
// in library code — os.Exit called and passed as a value, the log
// package's Fatal family, and *log.Logger's Fatal methods — that
// non-fatal logging and annotated sites stay silent, and that the two
// sanctioned trees (cmd/, examples/) are exempt.
func TestExitCheck(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.ExitCheck,
		"badsvc", "spotlight/cmd/goodtool", "spotlight/examples/demo")
}
