package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestMapOrder proves order-sensitive map iteration is flagged in an
// output-sensitive package (appends, printing, hashing), the sanctioned
// collect-keys-then-sort pattern and order-insensitive aggregation stay
// silent, and packages outside the output-sensitive set (otherpkg) are
// not analyzed.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.MapOrder,
		"spotlight/internal/core", "otherpkg")
}
