package spotlightlint

import (
	"go/ast"
	"go/types"
	"strings"

	"spotlight/internal/analysis/lintkit"
)

// MapOrder flags `for range` over a map whose body does something
// order-sensitive — appends to a slice, writes output, or feeds a
// hash/fingerprint — in packages whose results or artifacts must be
// reproducible. Go randomizes map iteration order per run, so any such
// loop makes CSV rows, log lines, or fingerprints differ between
// identical invocations.
//
// The sanctioned fix is recognized and stays silent: a loop whose body
// only collects the keys into a slice that is subsequently sorted in the
// same block,
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// as are loops that merely aggregate order-insensitively (map writes,
// sums, max). Anything else needing an exception annotates
// //lint:allow maporder(reason).
var MapOrder = &lintkit.Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over maps (append/output/hash in the body) unless keys are sorted first",
	Run:  runMapOrder,
}

func runMapOrder(pass *lintkit.Pass) error {
	if !isOutputSensitive(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		lintkit.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedKeyCollection(pass, rng, stack) {
				return true
			}
			if what := orderSensitiveUse(pass, rng); what != "" {
				pass.Reportf(rng.For,
					"map iteration %s in package %s: Go randomizes map order, so this is nondeterministic across runs; iterate sorted keys instead (collect, sort, then index) or annotate //lint:allow maporder(reason)",
					what, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// orderSensitiveUse scans a range body for operations whose result
// depends on iteration order, returning a short description or "".
// Accumulation into targets declared *inside* the loop body is benign —
// each iteration starts fresh, so the per-iteration result does not
// depend on which iteration ran first — and stays silent; what makes a
// loop order-sensitive is feeding state that outlives the iteration.
func orderSensitiveUse(pass *lintkit.Pass, rng *ast.RangeStmt) string {
	local := func(e ast.Expr) bool { return declaredWithin(pass, e, rng) }
	var found string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
				if len(call.Args) > 0 && local(call.Args[0]) {
					return true
				}
				found = "appends to a slice"
			} else if fingerprinty(fun.Name) {
				found = "feeds a hash/fingerprint (" + fun.Name + ")"
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch {
			case writerMethod(name) && !mapWriteTarget(pass, fun):
				if local(fun.X) {
					return true
				}
				found = "writes output (" + name + ")"
			case outputFunc(pass, fun):
				found = "writes output (" + name + ")"
			case fingerprinty(name):
				found = "feeds a hash/fingerprint (" + name + ")"
			}
		}
		return found == ""
	})
	return found
}

// declaredWithin reports whether the root identifier of e (x in x, x.F,
// x[i].F, ...) denotes an object declared inside the range statement —
// per-iteration state rather than an accumulator that outlives the loop.
func declaredWithin(pass *lintkit.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			if obj == nil {
				obj = pass.TypesInfo.Defs[v]
			}
			return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
		default:
			return false
		}
	}
}

// writerMethod reports whether a method name is an io.Writer /
// strings.Builder / hash.Hash style sink.
func writerMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Sum", "Sum32", "Sum64":
		return true
	}
	return false
}

// mapWriteTarget reports whether sel is a write *into a map value*
// (m[k].Write-style false positives are rare; this guards selector
// bases that are map index expressions, which are aggregation).
func mapWriteTarget(pass *lintkit.Pass, sel *ast.SelectorExpr) bool {
	_, isIndex := sel.X.(*ast.IndexExpr)
	return isIndex
}

// outputFunc reports whether the selector denotes one of fmt's printing
// functions that reach a writer or stdout (Sprint* builds a value and is
// judged by where that value goes instead).
func outputFunc(pass *lintkit.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// fingerprinty reports whether an identifier smells like hashing or
// fingerprinting.
func fingerprinty(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "hash") || strings.Contains(lower, "fingerprint") || lower == "mix"
}

// sortedKeyCollection recognizes the sanctioned pattern: the loop body
// is exactly `s = append(s, k)` for the range's key variable, and a
// later statement in the same enclosing block sorts s.
func sortedKeyCollection(pass *lintkit.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[arg] != pass.TypesInfo.Defs[key] {
		return false
	}
	// Find the statement list holding the range and look for a sort of
	// dst after it.
	stmts, idx := enclosingStmts(stack, rng)
	if stmts == nil {
		return false
	}
	dstObj := pass.TypesInfo.Uses[dst]
	if dstObj == nil {
		dstObj = pass.TypesInfo.Defs[dst]
	}
	for _, st := range stmts[idx+1:] {
		if sortsSlice(pass, st, dstObj) {
			return true
		}
	}
	return false
}

// enclosingStmts returns the statement list directly containing stmt and
// its index there.
func enclosingStmts(stack []ast.Node, stmt ast.Stmt) ([]ast.Stmt, int) {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for j, s := range list {
			if s == stmt {
				return list, j
			}
		}
	}
	return nil, -1
}

// sortsSlice reports whether the statement calls a sort/slices sorting
// function with obj as (part of) its argument.
func sortsSlice(pass *lintkit.Pass, st ast.Stmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !sortHelper(fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			uses := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					uses = true
				}
				return !uses
			})
			if uses {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortHelper covers the sort-package helpers not named Sort*.
func sortHelper(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}
