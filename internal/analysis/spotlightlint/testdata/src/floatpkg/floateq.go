// Package floatpkg exercises floateq: flag exact float comparisons,
// hint math.IsNaN for the x != x probe, allowlist comparisons against
// literal zero and constant folding, honour the escape hatch.
package floatpkg

type point struct{ v float64 }

func compares(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notEqual(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func nanProbe(x float64) bool {
	return x != x // want "use math.IsNaN"
}

func selectorProbe(p point) bool {
	return p.v != p.v // want "use math.IsNaN"
}

// zeroSentinel is allowlisted: the IEEE zero every zero-initialized
// field holds bit-for-bit.
func zeroSentinel(x float64) bool {
	return x == 0
}

const eps = 1e-9

// constFold is allowlisted: the compiler folds constant comparisons.
func constFold() bool {
	return eps == 1e-9
}

// intsAreFine: not a float comparison.
func intsAreFine(a, b int) bool {
	return a == b
}

// annotated proves the escape hatch.
func annotated(a, b float64) bool {
	return a == b //lint:allow floateq(fixture: proves the escape hatch)
}
