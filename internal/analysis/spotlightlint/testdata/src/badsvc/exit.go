// Package badsvc is library code that tries to kill the process: every
// os.Exit / log.Fatal* reference form must be flagged, and the annotated
// site must not.
package badsvc

import (
	"log"
	"os"
)

func direct() {
	os.Exit(1) // want "os.Exit outside a cmd/ or examples/ package"
}

func packageFatal() {
	log.Fatal("boom")          // want "log.Fatal outside a cmd/ or examples/ package"
	log.Fatalf("boom: %d", 1)  // want "log.Fatalf outside a cmd/ or examples/ package"
	log.Fatalln("boom", "now") // want "log.Fatalln outside a cmd/ or examples/ package"
}

func loggerMethod(l *log.Logger) {
	l.Fatalf("boom: %d", 2) // want "log.Fatalf outside a cmd/ or examples/ package"
}

// asValue passes the capability instead of calling it — same escape.
func asValue() func(int) {
	return os.Exit // want "os.Exit outside a cmd/ or examples/ package"
}

// printfIsFine: only the Fatal* family terminates the process.
func printfIsFine(l *log.Logger) {
	log.Printf("fine")
	l.Printf("fine")
}

// annotated proves the escape hatch; the reason is mandatory.
func annotated() {
	os.Exit(3) //lint:allow exitcheck(fixture: proves the escape hatch)
}
