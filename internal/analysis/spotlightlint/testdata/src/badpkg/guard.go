// Package badpkg constructs resilience.Guard outside internal/eval:
// every construction form must be flagged, nil pointers and annotated
// sites must not.
package badpkg

import "spotlight/internal/resilience"

func composite() resilience.Guard {
	return resilience.Guard{Retries: 3} // want "resilience.Guard constructed outside internal/eval"
}

func pointerLit() *resilience.Guard {
	return &resilience.Guard{} // want "resilience.Guard constructed outside internal/eval"
}

func viaNew() *resilience.Guard {
	return new(resilience.Guard) // want "resilience.Guard constructed outside internal/eval"
}

func zeroValue() {
	var g resilience.Guard // want "resilience.Guard zero value declared outside internal/eval"
	_ = g
}

// pointerDeclIsFine declares a nil pointer: nothing is constructed.
func pointerDeclIsFine() {
	var gp *resilience.Guard
	_ = gp
}

// annotated proves the escape hatch.
func annotated() resilience.Guard {
	return resilience.Guard{Retries: 1} //lint:allow guardsite(fixture: proves the escape hatch)
}
