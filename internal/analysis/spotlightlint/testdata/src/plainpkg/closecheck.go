package plainpkg

import "os"

// Non-persistence packages are out of closecheck's scope: a dropped
// close error here loses nothing durable.
func exempt(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
}
