// Package plainpkg is not on the deterministic list, so nowallclock
// must stay silent here: the scoping logic, not the match logic, is
// under test.
package plainpkg

import (
	"math/rand"
	"time"
)

func TimingIsFineHere() (time.Time, float64) {
	return time.Now(), rand.Float64()
}
