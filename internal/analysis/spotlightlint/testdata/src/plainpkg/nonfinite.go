package plainpkg

import "math"

// EncodeAnything would be flagged by nonfinite inside a deterministic
// package; plainpkg is outside that list, so it must stay silent.
func EncodeAnything() float64 {
	return math.NaN()
}
