// Package demo sits under examples/, the other tree allowed to
// terminate: teaching code keeps its error handling short.
package demo

import "os"

func Fail() {
	os.Exit(1)
}
