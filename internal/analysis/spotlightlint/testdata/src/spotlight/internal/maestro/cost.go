// Package maestro is a fixture stand-in defining the Cost type that
// nonfinite protects.
package maestro

// Cost mirrors the real cost-model output record.
type Cost struct {
	DelayCycles float64
	EnergyNJ    float64
	Utilization float64
}
