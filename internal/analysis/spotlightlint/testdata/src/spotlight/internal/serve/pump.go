package serve

// pump mirrors the obs.Server shape: a goroutine that closes a struct
// field channel, joined by a method in a different function — the
// package-wide receive set, not the enclosing function, proves it.
type pump struct {
	work chan int
	done chan struct{}
}

// loop ranges over work — callee-side join evidence for crossFile.
func (p *pump) loop() {
	for range p.work {
	}
}

// start launches a goroutine that closes p.done; stop receives from it.
// The spawn is two functions away from the receive, so only the
// package-wide receive set can prove the join.
func (p *pump) start() {
	go func() {
		defer close(p.done)
		p.drain()
	}()
}

func (p *pump) drain() {
	for range p.work {
	}
}

// stop joins the goroutine start launched.
func (p *pump) stop() {
	close(p.work)
	<-p.done
}
