// Fixture for goroutinejoin: spotlight/internal/serve is a scoped
// package, so every go statement here either carries join evidence or
// expects a diagnostic.
package serve

import (
	"context"
	"sync"

	"joinhelper"
)

// fireAndForget is the bug the analyzer exists for: nothing ever
// observes this goroutine's termination.
func fireAndForget() {
	go func() { // want "fire-and-forget"
		_ = 1 + 1
	}()
}

// namedFireAndForget launches a named function with no join evidence.
func namedFireAndForget() {
	go compute() // want "fire-and-forget"
}

func compute() {
	_ = 1 + 1
}

// spawnerAdd is join-conscious on the spawner side: a WaitGroup Add in
// the launching function.
func spawnerAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// calleeDone carries evidence in the literal body: the goroutine
// reports its own completion.
func calleeDone(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// ctxReleased is the context form of the done-channel idiom: the
// goroutine blocks on ctx.Done, so cancelling releases it.
func ctxReleased(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// completionClose: the goroutine closes a channel the spawner receives
// from, so the spawner blocks on completion.
func completionClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// completionSend: same idiom with a buffered error channel, the shape
// cmd/spotlightd uses for its serve goroutine.
func completionSend() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// crossPackage spawns a function from another package: the receive
// inside joinhelper.Drain travels here as an analyzer fact.
func crossPackage(c chan int) {
	go joinhelper.Drain(c)
	close(c)
}

// crossFile spawns a method declared in another file of this package
// (pump.loop in pump.go): same fact mechanism, same module.
func crossFile(p *pump) {
	go p.loop()
	close(p.work)
}

// allowed is sanctioned fire-and-forget: the annotation names why.
func allowed() {
	//lint:allow goroutinejoin(fixture: intentional fire-and-forget)
	go func() {
		_ = 1 + 1
	}()
}
