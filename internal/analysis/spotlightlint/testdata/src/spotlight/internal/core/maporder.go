// Package core is a fixture for maporder: flag order-sensitive map
// iteration (append to an outer slice, output, hashing), stay silent for
// the sorted-keys pattern, order-insensitive aggregation, per-iteration
// locals, and annotated exceptions.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
)

func appendsUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to a slice"
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

func printsUnsorted(m map[string]int) {
	for k, v := range m { // want "map iteration writes output"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func feedsHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want "map iteration writes output"
		h.Write([]byte(k))
	}
	return h.Sum64()
}

// sortedKeysPattern is the sanctioned fix: collect, sort, then index.
func sortedKeysPattern(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// aggregates are order-insensitive: map writes, sums, max.
func aggregates(m map[string]int) (int, map[string]int) {
	total := 0
	copied := map[string]int{}
	for k, v := range m {
		total += v
		copied[k] = v
	}
	return total, copied
}

// localAccumulation appends only to slices scoped to the iteration, so
// no cross-iteration order leaks out.
func localAccumulation(m map[string][]int) map[string]int {
	out := map[string]int{}
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		out[k] = len(doubled)
	}
	return out
}

// annotated proves the escape hatch.
func annotated(m map[string]int) []string {
	var out []string
	for k := range m { //lint:allow maporder(fixture: order genuinely does not matter to the caller)
		out = append(out, k)
	}
	return out
}
