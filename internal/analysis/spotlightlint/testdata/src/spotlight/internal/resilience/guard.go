// Package resilience is a fixture stand-in defining the Guard type.
// The defining package may construct its own type freely.
package resilience

// Guard retries and rate-limits evaluator calls.
type Guard struct {
	Retries int
	Backoff int
}

// New is the package's own constructor: exempt.
func New(retries int) *Guard {
	return &Guard{Retries: retries}
}
