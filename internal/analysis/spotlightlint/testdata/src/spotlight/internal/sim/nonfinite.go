// Package sim is a fixture for nonfinite: NaN/Inf into Cost fields and
// codec functions is flagged; +Inf best-so-far seeds and annotated
// sites are not.
package sim

import (
	"math"

	"spotlight/internal/maestro"
)

func fieldAssign() maestro.Cost {
	var c maestro.Cost
	c.DelayCycles = math.NaN() // want "non-finite value written into a maestro.Cost field"
	return c
}

func pointerFieldAssign(c *maestro.Cost) {
	c.Utilization = math.NaN() // want "non-finite value written into a maestro.Cost field"
}

func compositeKeyed() maestro.Cost {
	return maestro.Cost{EnergyNJ: math.Inf(1)} // want "non-finite value written into a maestro.Cost field"
}

func compositePositional() maestro.Cost {
	return maestro.Cost{math.NaN(), 0, 0} // want "non-finite value written into a maestro.Cost field"
}

func encodeState() float64 {
	sentinel := math.NaN() // want "non-finite literal inside checkpoint encode/decode"
	return sentinel
}

// bestSoFar seeds a minimization loop with +Inf: the tree's normal
// idiom, not flagged.
func bestSoFar(xs []float64) float64 {
	best := math.Inf(1)
	for _, x := range xs {
		if x < best {
			best = x
		}
	}
	return best
}

// annotated proves the escape hatch.
func annotated() maestro.Cost {
	var c maestro.Cost
	c.EnergyNJ = math.Inf(1) //lint:allow nonfinite(fixture: proves the escape hatch)
	return c
}
