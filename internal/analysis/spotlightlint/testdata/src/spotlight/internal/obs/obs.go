// Package obs is a fixture standing in for the real telemetry package:
// it is on the deterministic list (maporder and friends apply) but
// exempt from nowallclock by package policy, so bare wall-clock reads
// here must produce no diagnostics — no //lint:allow needed.
package obs

import "time"

func Now() time.Time { return time.Now() }

func Since(start time.Time) time.Duration { return time.Since(start) }
