// Package obs is a fixture standing in for the real telemetry package:
// it is on the deterministic list (maporder and friends apply) but
// exempt from nowallclock by package policy, so bare wall-clock reads
// here must produce no diagnostics — no //lint:allow needed.
package obs

import "time"

func Now() time.Time { return time.Now() }

func Since(start time.Time) time.Duration { return time.Since(start) }

// Tracer and Span mirror the real causal-span API closely enough for the
// spanbalance fixture packages to type-check against this stub.
type Tracer interface{ Enabled() bool }

type Span struct{}

func StartSpan(tr Tracer, kind string) *Span { return nil }

func ChildOrRoot(parent *Span, tr Tracer, kind string) *Span { return nil }

func (s *Span) Child(kind string) *Span { return nil }

func (s *Span) ChildSample(kind string, sample int) *Span { return nil }

func (s *Span) ChildLabel(kind, value string) *Span { return nil }

func (s *Span) End() {}
