// Package diskcache stands in for the persistence package: every way of
// discarding a Close/Sync error must be flagged, checked uses and
// annotated sites must pass, and error-free Close methods are ignored.
package diskcache

import "os"

// notifier has an error-free Close: not closecheck's business.
type notifier struct{}

func (notifier) Close() {}

func journal(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "error from f.Close is discarded"

	g, err := os.Create(path + ".2")
	if err != nil {
		return err
	}
	g.Sync()      // want "error from g.Sync is discarded"
	_ = g.Close() // want "error from g.Close is discarded"
	go f.Sync()   // want "error from f.Sync is discarded"
	var n notifier
	n.Close() // error-free Close: fine
	return nil
}

func checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // checked: fine
		return err
	}
	return f.Close() // returned: fine
}

func annotated(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close() //lint:allow closecheck(read-only file: the close error carries no data)
}

func intoVariable(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cerr := f.Close() // lands in a variable: fine
	return cerr
}
