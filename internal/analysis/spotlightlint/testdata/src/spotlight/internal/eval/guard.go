// Package eval is the one sanctioned Guard construction site: guardsite
// must stay silent here however the Guard is built.
package eval

import "spotlight/internal/resilience"

func WithGuard(retries int) *resilience.Guard {
	g := resilience.Guard{Retries: retries}
	fresh := new(resilience.Guard)
	var zero resilience.Guard
	_ = fresh
	_ = zero
	return &g
}
