// Package search is a fixture standing in for the real deterministic
// search package: nowallclock must fire on every wall-clock read and
// global-rand call here, stay silent for injected RNG streams, and
// honour the //lint:allow wallclock(reason) escape hatch.
package search

import (
	"math/rand"
	"time"
)

func usesWallClock() time.Duration {
	start := time.Now() // want "time.Now in deterministic package"
	doWork()
	return time.Since(start) // want "time.Since in deterministic package"
}

func usesDeadline(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until in deterministic package"
}

func usesGlobalRand() float64 {
	n := rand.Int() // want "global rand.Int in deterministic package"
	_ = n
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle in deterministic package"
	return rand.Float64()              // want "global rand.Float64 in deterministic package"
}

// usesInjectedRand is the sanctioned pattern: a locally constructed or
// injected stream. No diagnostics.
func usesInjectedRand(rng *rand.Rand) float64 {
	local := rand.New(rand.NewSource(42))
	return rng.Float64() + local.Float64()
}

// annotated proves the escape hatch: same violation, suppressed with a
// reasoned allow inline and on the preceding line.
func annotated() time.Time {
	//lint:allow wallclock(fixture: proves the preceding-line escape hatch)
	a := time.Now()
	b := time.Now() //lint:allow wallclock(fixture: proves the inline escape hatch)
	_ = a
	return b
}

// bareAllowDoesNotSuppress proves a reasonless allow is inert: the
// annotation above the call names no reason, so the diagnostic stands.
func bareAllowDoesNotSuppress() time.Time {
	//lint:allow wallclock()
	return time.Now() // want "time.Now in deterministic package"
}

func doWork() {}
