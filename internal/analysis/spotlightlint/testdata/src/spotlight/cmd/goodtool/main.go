// Package main is an entry point under cmd/: process termination is its
// decision, so nothing here is flagged.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatalf("usage: goodtool")
	}
	os.Exit(0)
}
