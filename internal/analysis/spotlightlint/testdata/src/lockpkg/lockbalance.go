// Fixture for lockbalance: acquire/release pairing, flavor matching,
// straight-line double-lock and return-while-held, and the branchy
// manual-unlock idiom that must stay quiet.
package lockpkg

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// good is the canonical shape.
func (g *guarded) good() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// goodManual releases explicitly on the only path.
func (g *guarded) goodManual() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// goodRead pairs RLock with RUnlock.
func (g *guarded) goodRead() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// deferLit releases inside a deferred literal, which runs on this
// function's exit and therefore balances this function's acquire.
func (g *guarded) deferLit() {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
}

// branchyOK is the manual multi-path idiom (engine.Runner.Cancel's
// shape): every path unlocks, and the conservative tracker stays quiet.
func (g *guarded) branchyOK(flush bool) {
	g.mu.Lock()
	if flush {
		g.n = 0
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
}

// leak never releases: the classic forgotten unlock.
func (g *guarded) leak() {
	g.mu.Lock() // want "never released"
	g.n++
}

// mismatch releases a write lock with the read flavor: both the
// function-level pairing and the straight-line tracker object.
func (g *guarded) mismatch() {
	g.rw.Lock()          // want "released with RUnlock"
	defer g.rw.RUnlock() // want "releases a Lock"
	g.n++
}

// wrongUnlock is the inverse mismatch: RLock released by Unlock.
func (g *guarded) wrongUnlock() int {
	g.rw.RLock() // want "released with Unlock"
	n := g.n
	g.rw.Unlock() // want "releases a RLock"
	return n
}

// double locks a non-reentrant mutex twice on a straight line.
func (g *guarded) double() {
	g.mu.Lock()
	g.mu.Lock() // want "not reentrant"
	g.n++
	g.mu.Unlock()
}

// earlyReturn leaves the function with the lock still held.
func (g *guarded) earlyReturn() int {
	g.mu.Lock() // want "never released"
	n := g.n
	return n // want "still Locked"
}

// handoff is the sanctioned lock-handoff pattern: the caller receives
// the lock held and is responsible for releasing it.
func (g *guarded) handoff() {
	//lint:allow lockbalance(fixture: lock handed to caller)
	g.mu.Lock()
}

// twoMutexes proves receivers are tracked independently.
func (g *guarded) twoMutexes(h *guarded) {
	g.mu.Lock()
	h.mu.Lock()
	g.n++
	h.mu.Unlock()
	g.mu.Unlock()
}
