// Fixture for ctxcancel: discarded and never-called cancel funcs are
// flagged; deferred, escaping, returned, and closure-captured cancels
// stay silent, as does the //lint:allow escape hatch.
package ctxpkg

import (
	"context"
	"os/signal"
	"time"
)

func good(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	_ = ctx
}

func goodTimeout(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	_ = ctx
}

func discard(parent context.Context) {
	ctx, _ := context.WithCancel(parent) // want "is discarded"
	_ = ctx
}

func discardDeadline(parent context.Context) {
	ctx, _ := context.WithDeadline(parent, time.Time{}) // want "is discarded"
	_ = ctx
}

func discardSignal() {
	ctx, _ := signal.NotifyContext(context.Background()) // want "is discarded"
	_ = ctx
}

// neverCalled silences the compiler with `_ = cancel`, which is the
// same leak wearing a disguise.
func neverCalled(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want "cancel is never called"
	_ = ctx
	_ = cancel
}

func neverCalledTimeout(parent context.Context) context.Context {
	ctx, stop := context.WithTimeout(parent, time.Second) // want "stop is never called"
	_ = stop
	return ctx
}

type job struct {
	cancel context.CancelFunc
}

// stored escapes into a struct: some other code's responsibility.
func stored(parent context.Context, j *job) context.Context {
	ctx, cancel := context.WithCancel(parent)
	j.cancel = cancel
	return ctx
}

// returned hands the cancel to the caller.
func returned(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	return ctx, cancel
}

// captured is referenced by a closure, which keeps it live.
func captured(parent context.Context) func() {
	_, cancel := context.WithCancel(parent)
	return func() { cancel() }
}

// passed forwards the cancel to another function.
func passed(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	keep(cancel)
	return ctx
}

func keep(context.CancelFunc) {}

// allowed documents an intentional process-lifetime context.
func allowed(parent context.Context) context.Context {
	//lint:allow ctxcancel(fixture: context lives for process lifetime)
	ctx, _ := context.WithCancel(parent)
	return ctx
}
