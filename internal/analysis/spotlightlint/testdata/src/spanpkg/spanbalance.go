// Fixture for spanbalance: discarded and never-ended spans are flagged;
// deferred, escaping, returned, closure-captured, and passed-on spans
// stay silent, as does the //lint:allow escape hatch.
package spanpkg

import "spotlight/internal/obs"

func good(tr obs.Tracer) {
	sp := obs.StartSpan(tr, "job")
	defer sp.End()
}

func goodChild(parent *obs.Span) {
	sp := parent.Child("trial")
	sp.End()
}

func goodRoot(parent *obs.Span, tr obs.Tracer) {
	sp := obs.ChildOrRoot(parent, tr, "run")
	defer sp.End()
}

func discard(tr obs.Tracer) {
	obs.StartSpan(tr, "job") // want "is discarded"
}

func discardBlank(tr obs.Tracer) {
	_ = obs.StartSpan(tr, "job") // want "is discarded"
}

func discardChild(parent *obs.Span) {
	parent.ChildSample("trial", 1) // want "is discarded"
}

// neverEnded silences the compiler with `_ = sp`, which is the same leak
// wearing a disguise.
func neverEnded(tr obs.Tracer) {
	sp := obs.StartSpan(tr, "job") // want "sp is never ended"
	_ = sp
}

func neverEndedLabel(parent *obs.Span) {
	step := parent.ChildLabel("exp.step", "fig6") // want "step is never ended"
	_ = step
}

type config struct {
	span *obs.Span
}

// stored escapes into a struct: some other code's responsibility.
func stored(tr obs.Tracer, cfg *config) {
	cfg.span = obs.StartSpan(tr, "job")
}

// storedVar escapes via a variable that is then stored.
func storedVar(tr obs.Tracer, cfg *config) {
	sp := obs.StartSpan(tr, "job")
	cfg.span = sp
}

// returned hands the span to the caller.
func returned(tr obs.Tracer) *obs.Span {
	sp := obs.StartSpan(tr, "job")
	return sp
}

// captured is referenced by a closure, which keeps it live.
func captured(tr obs.Tracer) func() {
	sp := obs.StartSpan(tr, "job")
	return func() { sp.End() }
}

// passed forwards the span to another function.
func passed(tr obs.Tracer) {
	sp := obs.StartSpan(tr, "job")
	keep(sp)
}

func keep(*obs.Span) {}

// reassigned writes into an existing variable whose other references
// keep it alive.
func reassigned(tr obs.Tracer) {
	sp := obs.StartSpan(tr, "outer")
	sp.End()
	sp = obs.StartSpan(tr, "inner")
	sp.End()
}

// allowed documents an intentional fire-and-forget span.
func allowed(tr obs.Tracer) {
	//lint:allow spanbalance(fixture: ended by a watchdog elsewhere)
	sp := obs.StartSpan(tr, "job")
	_ = sp
}
