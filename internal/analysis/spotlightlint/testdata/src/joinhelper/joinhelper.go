// Package joinhelper is a fixture dependency for goroutinejoin. Drain
// carries callee-side join evidence (a channel receive) that the scoped
// serve fixture consumes across the package boundary via analyzer
// facts. The package itself is outside goroutinePackages, so its own
// fire-and-forget goroutine must stay silent — proving the scoping.
package joinhelper

// Drain receives until the channel closes: a goroutine running it is
// released by closing c, which is join evidence.
func Drain(c chan int) {
	for range c {
	}
}

// Leak has no join evidence, but this package is out of scope: silent.
func Leak() {
	go func() {
		_ = 1 + 1
	}()
}
