// Package otherpkg is outside the output-sensitive set, so maporder
// must stay silent even for a loop it would flag elsewhere.
package otherpkg

import "fmt"

func PrintsUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
