// Fixture for mutexcopy: by-value copies of lock-bearing types through
// signatures, assignments, and range, with the copy-safe forms
// (pointers, composite literals, plain types) staying silent.
package copypkg

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

type stats struct {
	hits atomic.Int64
}

type wrapper struct {
	c counter
}

type plain struct{ n int }

func byValueParam(c counter) {} // want "parameter copies counter"

func nestedParam(w wrapper) {} // want "parameter copies wrapper"

func byValueResult() counter { // want "result copies counter"
	return counter{}
}

func pointerParam(c *counter) {} // silent: sharing, not forking

func sliceParam(cs []*counter) {} // silent: the slice header is copy-safe

func assignDeref(p *counter) {
	c := *p // want "assignment copies counter"
	_ = c
}

func assignVar() {
	var a stats
	b := a // want "assignment copies stats"
	_ = b
}

func assignFresh() {
	c := counter{} // silent: constructing, not copying
	_ = c
	p := &counter{} // silent: address of a fresh value
	_ = p
}

func rangeCopy(cs []counter, ps []*counter) {
	for _, c := range cs { // want "range value copies counter"
		_ = c
	}
	for i := range cs { // silent: index only
		_ = i
	}
	for _, p := range ps { // silent: pointer elements
		_ = p
	}
}

func plainOK(p plain) plain {
	q := p
	return q
}

//lint:allow mutexcopy(fixture: snapshot of settled state)
func allowedCopy(c counter) {}
