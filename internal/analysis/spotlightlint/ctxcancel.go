package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// CtxCancel enforces cancel-func hygiene on context derivation,
// repo-wide: the CancelFunc returned by context.WithCancel, WithTimeout,
// or WithDeadline (and the stop func from signal.NotifyContext) must not
// be lost. An uncalled cancel leaks the derived context's timer and
// goroutine until the parent dies — in a CLI that is the whole process
// lifetime, and in spotlightd it is a per-job leak that compounds under
// the exact sustained load the server exists to take.
//
// Two forms are flagged:
//
//   - the cancel assigned to the blank identifier (`ctx, _ :=
//     context.WithCancel(...)`) — there is never a reason; use
//     context.Background or keep the func;
//   - a cancel variable that is never referenced again in the function —
//     not called, not deferred, not stored, not passed, not returned.
//
// Any genuine reference counts as handled: a cancel that escapes
// (stored in a struct, returned to the caller, passed onward) is some
// other code's responsibility, and engine.Job.cancel shows why that
// must stay legal. `_ = cancel` does NOT count — it is the
// compiler-silencer spelling of the same leak, since Go would otherwise
// reject the unused variable. Full all-paths coverage needs a
// control-flow graph; the straight-line leak — deriving and forgetting
// — is the form that actually appears in review, and `defer cancel()`
// on the next line is always the fix.
var CtxCancel = &lintkit.Analyzer{
	Name: "ctxcancel",
	Doc:  "cancel funcs from context.WithCancel/WithTimeout/WithDeadline must be called (or escape): a lost cancel leaks the context's timer and goroutine",
	Run:  runCtxCancel,
}

// cancelSource reports whether call derives a context and returns a
// cancel/stop func as its second result.
func cancelSource(pass *lintkit.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "context":
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
			return "context." + fn.Name(), true
		}
	case "os/signal":
		if fn.Name() == "NotifyContext" {
			return "signal.NotifyContext", true
		}
	}
	return "", false
}

func runCtxCancel(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		lintkit.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			src, ok := cancelSource(pass, call)
			if !ok {
				return true
			}
			cancelIdent, ok := assign.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if cancelIdent.Name == "_" {
				pass.Reportf(cancelIdent.Pos(),
					"the cancel func from %s is discarded: the derived context can never be released — call it (defer cancel()), or annotate //lint:allow ctxcancel(reason)", src)
				return true
			}
			obj := pass.TypesInfo.Defs[cancelIdent]
			if obj == nil {
				// `ctx, cancel = ...` reassignment into an existing variable:
				// the variable's other references keep it alive; treat the
				// reassignment itself as a use of that variable.
				return true
			}
			enclosing := lintkit.EnclosingFunc(stack)
			if enclosing == nil {
				return true
			}
			if !referencedAgain(pass, enclosing, cancelIdent, obj) {
				pass.Reportf(cancelIdent.Pos(),
					"%s is never called: the context from %s leaks its timer and goroutine — defer %s(), or annotate //lint:allow ctxcancel(reason)",
					cancelIdent.Name, src, cancelIdent.Name)
			}
			return true
		})
	}
	return nil
}

// referencedAgain reports whether obj is genuinely used anywhere in fn
// other than its defining identifier. Nested literals count: a cancel
// captured by a closure is referenced. A use as the right-hand side of
// an all-blank assignment (`_ = cancel`) does not count — that is how a
// leak silences the unused-variable error, not how it gets handled.
func referencedAgain(pass *lintkit.Pass, fn ast.Node, def *ast.Ident, obj types.Object) bool {
	discarded := map[*ast.Ident]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		for _, rhs := range assign.Rhs {
			if id, ok := rhs.(*ast.Ident); ok {
				discarded[id] = true
			}
		}
		return true
	})
	used := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || discarded[id] {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
