package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// MutexCopy flags by-value copies of types that own synchronization
// state, repo-wide: sync.Mutex, RWMutex, WaitGroup, Once, Cond, Map,
// Pool, and the sync/atomic value types — directly, or buried anywhere
// in a struct or array. A copied mutex is two mutexes guarding one
// invariant: the copy starts unlocked (or worse, locked forever if
// copied while held), waiters on the original never see unlocks of the
// copy, and the race detector stays silent because each goroutine
// locks *something*. The flagged forms are the ones that smuggle the
// copy past review:
//
//   - function parameters and results of a lock-bearing type (pass a
//     pointer instead);
//   - assignments whose right-hand side copies an existing lock-bearing
//     value (`s := *srv`, `a = b`) — composite literals and calls are
//     exempt, because constructing a fresh value is not copying a live
//     one, and a call's copy is flagged at the callee's signature;
//   - `range` over a slice/array/map of lock-bearing values, where the
//     iteration variable is a fresh copy each turn.
var MutexCopy = &lintkit.Analyzer{
	Name: "mutexcopy",
	Doc:  "no by-value copies of types containing sync.Mutex/WaitGroup/atomic state (a copied lock is two locks guarding one invariant)",
	Run:  runMutexCopy,
}

// syncStateTypes are the types whose by-value copy is always a bug.
var syncStateTypes = map[string]map[string]bool{
	"sync":        {"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true, "Map": true, "Pool": true},
	"sync/atomic": {"Bool": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true, "Uintptr": true, "Pointer": true, "Value": true},
}

// lockPath returns a human-readable path to the first lock-bearing
// component of t ("sync.Mutex", "engine.Job (contains sync.Mutex)"),
// or "" when t is copy-safe. Pointers, slices, maps, channels, and
// interfaces are copy-safe: copying them shares the underlying state
// rather than forking it.
func lockPath(t types.Type) string {
	return lockPathSeen(t, map[types.Type]bool{})
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := syncStateTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		if inner := lockPathSeen(named.Underlying(), seen); inner != "" {
			return obj.Name() + " (contains " + inner + ")"
		}
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := lockPathSeen(u.Field(i).Type(), seen); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return lockPathSeen(u.Elem(), seen)
	}
	return ""
}

func runMutexCopy(pass *lintkit.Pass) error {
	report := func(pos ast.Node, what, path string) {
		pass.Reportf(pos.Pos(),
			"%s copies %s by value: a copied lock is two locks guarding one invariant — use a pointer", what, path)
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil {
							if path := lockPath(tv.Type); path != "" {
								report(field, "receiver", path)
							}
						}
					}
				}
				checkSignature(pass, n.Type, report)
			case *ast.FuncLit:
				checkSignature(pass, n.Type, report)
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true // multi-value call; flagged at the callee's results
				}
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // a blank discard evaluates but lands nowhere
					}
					if copiesLiveValue(rhs) {
						if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Type != nil {
							if path := lockPath(tv.Type); path != "" {
								report(rhs, "assignment", path)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				// In the `:=` form the value is a defined ident, recorded in
				// Defs rather than Types; in the `=` form it is an ordinary
				// expression.
				var t types.Type
				if tv, ok := pass.TypesInfo.Types[n.Value]; ok && tv.Type != nil {
					t = tv.Type
				} else if id, ok := n.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
				if t != nil {
					if path := lockPath(t); path != "" {
						report(n.Value, "range value", path)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSignature flags lock-bearing by-value parameters and results.
func checkSignature(pass *lintkit.Pass, ft *ast.FuncType, report func(ast.Node, string, string)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if path := lockPath(tv.Type); path != "" {
				report(field, what, path)
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// copiesLiveValue reports whether evaluating rhs copies an existing
// value (as opposed to constructing a fresh one or receiving one from a
// call, whose copy is attributed to the callee's signature).
func copiesLiveValue(rhs ast.Expr) bool {
	switch rhs := rhs.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return false
	case *ast.UnaryExpr:
		// &T{...} takes an address, fine; <-ch receives a fresh value.
		return false
	case *ast.ParenExpr:
		return copiesLiveValue(rhs.X)
	case *ast.StarExpr:
		return true // dereference copies the pointee
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}
