package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestMutexCopy proves by-value signatures, copying assignments, and
// range values are flagged for types carrying sync or sync/atomic
// state (directly or nested), that pointers, slice headers, composite
// literals, and plain types stay silent, and that //lint:allow
// suppresses.
func TestMutexCopy(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.MutexCopy, "copypkg")
}
