// Package spotlightlint enforces the repo's determinism and hygiene
// invariants mechanically. Spotlight's reproduction guarantee — the
// search History is bit-identical at any worker count, checkpoints
// resume to the same trajectory, surrogate fits reject non-finite
// observations — holds only while no code path consults the wall clock,
// the global RNG, or Go's randomized map iteration order. Before this
// package those were conventions backed by property tests; each analyzer
// here turns one of them into a build-time error.
//
// Analyzers (run them all with `go run ./cmd/lint ./...`):
//
//   - nowallclock: no time.Now/Since/Until and no global math/rand in
//     deterministic packages; inject a *rand.Rand instead.
//   - maporder: no map iteration that appends, writes output, or feeds a
//     hash in order-sensitive packages, unless the keys are sorted.
//   - guardsite: resilience.Guard is constructed only in internal/eval's
//     guard middleware (the PR-3 invariant).
//   - floateq: no ==/!= on floating-point operands outside tests.
//   - nonfinite: no math.NaN/math.Inf flowing into Cost fields or
//     checkpoint encoding outside the sanctioned hygiene helpers.
//   - closecheck: no discarded Close/Sync errors in the packages that
//     write durable state (journal, checkpoints, result artifacts).
//   - exitcheck: no os.Exit or log.Fatal* outside cmd/ and examples/
//     packages — a service must never be killed by library code.
//   - goroutinejoin: every go statement in the long-running packages is
//     joined via WaitGroup, done-channel, or context — no
//     fire-and-forget goroutines in the engine/serve layer.
//   - lockbalance: Lock/RLock released in the same function with
//     matching flavor; straight-line double-locks and
//     returns-while-holding are flagged.
//   - mutexcopy: no by-value copies of types carrying sync.Mutex,
//     WaitGroup, or sync/atomic state.
//   - ctxcancel: cancel funcs from context.WithCancel/WithTimeout are
//     called or escape — a lost cancel is a leak per call site.
//   - spanbalance: spans from obs.StartSpan/ChildOrRoot/Child* are
//     ended or escape — a lost span never emits span.end and leaves its
//     subtree open in every trace consumer.
//
// Any finding can be suppressed with an inline or preceding-line
// annotation naming its reason: //lint:allow wallclock(latency counter).
// The reason is mandatory. See lintkit for the mechanism.
package spotlightlint

import (
	"go/types"
	"strings"

	"spotlight/internal/analysis/lintkit"
)

// deterministicPackages are the packages whose behaviour must be a pure
// function of (inputs, seed): everything on the search trajectory from
// proposal through cost model to surrogate fit. internal/dabo is listed
// for when the DABO core splits out of internal/core; extra entries are
// harmless because matching is exact.
var deterministicPackages = []string{
	"spotlight/internal/dabo",
	"spotlight/internal/eval/diskcache",
	"spotlight/internal/gp",
	"spotlight/internal/search",
	"spotlight/internal/sched",
	"spotlight/internal/core",
	"spotlight/internal/eval",
	"spotlight/internal/sim",
	"spotlight/internal/maestro",
	"spotlight/internal/timeloop",
	"spotlight/internal/stats",
	"spotlight/internal/linalg",
	// internal/obs is deterministic in everything except the clock: its
	// maps and floats feed trace lines and /metrics output that runs are
	// diffed by. nowallclock exempts it by policy (see wallClockExempt) —
	// it is the one sanctioned home for wall-clock reads.
	"spotlight/internal/obs",
}

// outputPackages additionally covers code whose *artifacts* must be
// reproducible even though wall-clock use is fine there: the experiment
// harness and the CLIs write CSVs and stdout that runs are diffed by, so
// map-iteration order must not leak into them.
var outputPackages = append([]string{
	"spotlight/internal/exp",
	"spotlight/internal/engine",
	"spotlight/internal/serve",
	"spotlight/cmd/spotlight",
	"spotlight/cmd/experiments",
	"spotlight/cmd/spotlightd",
	"spotlight/cmd/modelinfo",
	"spotlight/cmd/tracestat",
}, deterministicPackages...)

func inList(path string, list []string) bool {
	for _, p := range list {
		if path == p {
			return true
		}
	}
	return false
}

// isDeterministic reports whether pkg is on the strict determinism list.
func isDeterministic(pkg *types.Package) bool {
	return inList(pkg.Path(), deterministicPackages)
}

// isOutputSensitive reports whether pkg's output ordering must be
// reproducible.
func isOutputSensitive(pkg *types.Package) bool {
	return inList(pkg.Path(), outputPackages)
}

// isTestFile reports whether the position's file is a _test.go file.
// The loader only feeds non-test files, but fixtures and future callers
// may not, and floateq's contract explicitly exempts tests.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		NoWallClock,
		MapOrder,
		GuardSite,
		FloatEq,
		NonFinite,
		CloseCheck,
		ExitCheck,
		GoroutineJoin,
		LockBalance,
		MutexCopy,
		CtxCancel,
		SpanBalance,
	}
}
