package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestFloatEq proves exact float comparisons are flagged with the
// tolerance hint, x != x probes get the math.IsNaN hint, comparisons
// against literal zero and folded constants are allowlisted, integer
// comparisons are ignored, and the escape hatch works.
func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.FloatEq, "floatpkg")
}
