package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// Shared machinery for the concurrency-lifecycle analyzers
// (goroutinejoin, lockbalance, mutexcopy, ctxcancel). The engine/serve
// layer made the codebase long-running and concurrent; these helpers
// answer the type questions all four analyzers keep asking: is this a
// sync.Mutex method, does this type embed a lock, which channel object
// does this expression name.

// goroutinePackages are the packages where every `go` statement must be
// provably joined. They are the long-running layer: the job runner and
// its workers, the HTTP/SSE server, the worker pool, observability's
// background HTTP server, resilience's timeout racer — plus lintkit
// itself, whose package-parallel driver is goroutine-managed (the
// analyzers eat their own dogfood). A goroutine nobody joins outlives
// its request, leaks under churn, and can write after shutdown.
var goroutinePackages = []string{
	"spotlight/internal/engine",
	"spotlight/internal/serve",
	"spotlight/internal/pool",
	"spotlight/internal/obs",
	"spotlight/internal/resilience",
	"spotlight/internal/analysis/lintkit",
	"spotlight/cmd/spotlightd",
}

// syncMethodOn reports whether sel is a call of a method named name
// provided by package sync (Mutex.Lock, RWMutex.RLock, WaitGroup.Done,
// ...). Promoted methods of embedded sync types resolve to the same
// *types.Func, so a type embedding sync.Mutex is covered.
func syncMethodOn(pass *lintkit.Pass, sel *ast.SelectorExpr, recvType, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == recvType
}

// methodCall unpacks a node that is a call through a selector,
// returning the call and selector or nils.
func methodCall(n ast.Node) (*ast.CallExpr, *ast.SelectorExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return call, sel
}

// chanObject resolves the channel-typed object an expression names (an
// identifier or field selection), or nil. Used to match a goroutine's
// sends/closes against the spawning function's receives.
func chanObject(pass *lintkit.Pass, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// funcUnits collects every function body in the file: declarations and
// literals alike, each one an independent analysis unit.
func funcUnits(f *ast.File) []ast.Node {
	var units []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			units = append(units, n)
		}
		return true
	})
	return units
}

// unitBody returns a unit's body block (nil for bodyless declarations).
func unitBody(unit ast.Node) *ast.BlockStmt {
	switch u := unit.(type) {
	case *ast.FuncDecl:
		return u.Body
	case *ast.FuncLit:
		return u.Body
	}
	return nil
}

// inspectShallow walks root without descending into nested function
// literals: statements of a nested literal execute on that function's
// schedule, not this one's, so lifecycle analyses must not conflate
// them. root itself may be a *ast.FuncLit; only literals below it are
// skipped.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != root {
			return false
		}
		return fn(n)
	})
}
