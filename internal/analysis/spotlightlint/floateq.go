package spotlightlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// FloatEq flags == and != between floating-point operands outside test
// files. Exact float equality is almost always a latent bug here: costs
// and objectives come out of iterative arithmetic where representation
// noise makes "equal" trajectories compare unequal, and `x != x` NaN
// probes belong behind math.IsNaN. The allowlist keeps the two idioms
// that *are* exact: comparison against a literal zero (the IEEE value
// every zero-initialized field holds bit-for-bit — the tree's "was this
// set" sentinels) and constant-vs-constant comparisons, which the
// compiler folds. Anything else that is genuinely intentional carries
// //lint:allow floateq(reason).
var FloatEq = &lintkit.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands outside tests (allowlist: comparisons against literal 0)",
	Run:  runFloatEq,
}

func runFloatEq(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, xok := pass.TypesInfo.Types[bin.X]
			y, yok := pass.TypesInfo.Types[bin.Y]
			if !xok || !yok || (!isFloat(x.Type) && !isFloat(y.Type)) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true // constant folded at compile time
			}
			if isZeroConst(x) || isZeroConst(y) {
				return true // exact sentinel comparison, allowlisted
			}
			hint := "compare with an explicit tolerance"
			if sameOperand(pass, bin.X, bin.Y) {
				hint = "use math.IsNaN"
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison: %s, or annotate //lint:allow floateq(reason)", bin.Op, hint)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a float or complex
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether the operand is the constant 0.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil || tv.Value.Kind() == constant.Unknown {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return ok && v == 0
}

// sameOperand detects the `x != x` / `x == x` NaN-probe shape: both
// sides are the same identifier or selector chain.
func sameOperand(pass *lintkit.Pass, a, b ast.Expr) bool {
	ida, oka := a.(*ast.Ident)
	idb, okb := b.(*ast.Ident)
	if oka && okb {
		ua, ub := pass.TypesInfo.Uses[ida], pass.TypesInfo.Uses[idb]
		return ua != nil && ua == ub
	}
	sa, oka := a.(*ast.SelectorExpr)
	sb, okb := b.(*ast.SelectorExpr)
	if oka && okb && sa.Sel.Name == sb.Sel.Name {
		return sameOperand(pass, sa.X, sb.X)
	}
	return false
}
