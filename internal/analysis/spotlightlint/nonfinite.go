package spotlightlint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"spotlight/internal/analysis/lintkit"
)

// NonFinite flags math.NaN()/math.Inf(...) values flowing where the
// pipeline's hygiene contract forbids raw non-finite data: into the
// fields of maestro.Cost (an evaluator signals infeasibility with
// ErrInvalid, never with NaN costs — DABO's fit and the memo cache rely
// on that), and into checkpoint encode/decode paths (the checkpoint
// format represents non-finite floats as quoted strings via the
// jsonFloat hygiene type; open-coding math.NaN there bypasses it).
// Initializing a best-so-far to +Inf, by contrast, is the tree's normal
// idiom and is not flagged. The sanctioned helpers — jsonFloat's own
// codec, chaos injection — annotate //lint:allow nonfinite(reason).
var NonFinite = &lintkit.Analyzer{
	Name: "nonfinite",
	Doc:  "flag math.NaN/math.Inf flowing into Cost fields or checkpoint encoding outside the sanctioned hygiene helpers",
	Run:  runNonFinite,
}

// codecFuncRx matches function names on the checkpoint serialization
// path.
var codecFuncRx = regexp.MustCompile(`(?i)marshal|unmarshal|encode|decode`)

func runNonFinite(pass *lintkit.Pass) error {
	if !isDeterministic(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		lintkit.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isNonFiniteCall(pass, call) {
				return true
			}
			switch {
			case assignsToCostField(pass, call, stack):
				pass.Reportf(call.Pos(),
					"non-finite value written into a maestro.Cost field: signal infeasibility with an error wrapping maestro.ErrInvalid instead (NaN costs poison surrogate fits and cache keys), or annotate //lint:allow nonfinite(reason)")
			case inCodecFunc(stack):
				pass.Reportf(call.Pos(),
					"non-finite literal inside checkpoint encode/decode: route it through the jsonFloat hygiene codec so serialized checkpoints stay parseable, or annotate //lint:allow nonfinite(reason)")
			}
			return true
		})
	}
	return nil
}

// isNonFiniteCall reports whether call is math.NaN() or math.Inf(...).
func isNonFiniteCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return false
	}
	return fn.Name() == "NaN" || fn.Name() == "Inf"
}

// isCostType reports whether t (behind pointers) is maestro.Cost.
func isCostType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cost" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/maestro")
}

// assignsToCostField reports whether the call's value lands in a
// maestro.Cost field, either `cost.F = math.NaN()` or
// `maestro.Cost{F: math.NaN()}`.
func assignsToCostField(pass *lintkit.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	// Composite literal value (keyed or positional), possibly behind a
	// KeyValueExpr node.
	lit := parent
	if kv, ok := parent.(*ast.KeyValueExpr); ok && kv.Value == call && len(stack) >= 2 {
		lit = stack[len(stack)-2]
	}
	if cl, ok := lit.(*ast.CompositeLit); ok {
		if tv, ok := pass.TypesInfo.Types[cl]; ok && isCostType(tv.Type) {
			return true
		}
	}
	// Direct assignment: find the call's position on the RHS and test the
	// matching LHS.
	assign, ok := parent.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range assign.Rhs {
		if rhs != call || i >= len(assign.Lhs) {
			continue
		}
		if sel, ok := assign.Lhs[i].(*ast.SelectorExpr); ok {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isCostType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// inCodecFunc reports whether the innermost enclosing named function is
// on a serialization path.
func inCodecFunc(stack []ast.Node) bool {
	fn := lintkit.EnclosingFunc(stack)
	decl, ok := fn.(*ast.FuncDecl)
	return ok && codecFuncRx.MatchString(decl.Name.Name)
}
