package spotlightlint

import (
	"go/ast"
	"go/types"
	"sort"

	"spotlight/internal/analysis/lintkit"
)

// LockBalance enforces lock hygiene on sync.Mutex/sync.RWMutex use,
// repo-wide: a Lock or RLock taken in a function must be released in
// that same function — by `defer Unlock`/`defer RUnlock` on the same
// receiver or by an explicit unlock — with the matching flavor. It
// flags, in rising order of subtlety:
//
//   - a Lock/RLock with no unlock of any kind in the function (the
//     classic forgotten release, which deadlocks the next caller);
//   - read/write mismatches — Lock released by RUnlock or vice versa —
//     which panic at runtime ("sync: RUnlock of unlocked RWMutex") or
//     silently downgrade exclusion;
//   - double-lock: the same receiver locked twice on a straight-line
//     path with no intervening unlock (sync.Mutex is not reentrant;
//     this deadlocks immediately);
//   - returning on a straight-line path while the lock is still held
//     (a branchy early return the deferred unlock never covered).
//
// The path analysis is deliberately conservative: inside branches the
// tracker resets, so manual multi-path unlock idioms (engine.Runner's
// Cancel, worker) pass without annotation, while the straight-line bugs
// every reviewer has waved through at least once are caught. Lock
// handoffs between functions are the one legitimate pattern it cannot
// see; they carry //lint:allow lockbalance(reason).
var LockBalance = &lintkit.Analyzer{
	Name: "lockbalance",
	Doc:  "Lock/RLock must be released in the same function with matching flavor; double-locks and returns while holding are flagged",
	Run:  runLockBalance,
}

// lockFlavor distinguishes write locks from read locks.
type lockFlavor int

const (
	writeLock lockFlavor = iota
	readLock
)

func (f lockFlavor) lockName() string {
	if f == readLock {
		return "RLock"
	}
	return "Lock"
}

func (f lockFlavor) unlockName() string {
	if f == readLock {
		return "RUnlock"
	}
	return "Unlock"
}

// lockOp is one Lock/RLock/Unlock/RUnlock call resolved to its receiver
// expression.
type lockOp struct {
	recv    string // types.ExprString of the receiver ("j.mu", "r.mu")
	flavor  lockFlavor
	acquire bool
	pos     ast.Node
}

// lockCall resolves n as a mutex method call, or ok=false.
func lockCall(pass *lintkit.Pass, n ast.Node) (lockOp, bool) {
	call, sel := methodCall(n)
	if call == nil {
		return lockOp{}, false
	}
	var op lockOp
	switch {
	case syncMethodOn(pass, sel, "Mutex", "Lock") || syncMethodOn(pass, sel, "RWMutex", "Lock"):
		op = lockOp{flavor: writeLock, acquire: true}
	case syncMethodOn(pass, sel, "Mutex", "Unlock") || syncMethodOn(pass, sel, "RWMutex", "Unlock"):
		op = lockOp{flavor: writeLock, acquire: false}
	case syncMethodOn(pass, sel, "RWMutex", "RLock"):
		op = lockOp{flavor: readLock, acquire: true}
	case syncMethodOn(pass, sel, "RWMutex", "RUnlock"):
		op = lockOp{flavor: readLock, acquire: false}
	default:
		return lockOp{}, false
	}
	op.recv = types.ExprString(sel.X)
	op.pos = call
	return op, true
}

func runLockBalance(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, unit := range funcUnits(f) {
			body := unitBody(unit)
			if body == nil {
				continue
			}
			checkUnitBalance(pass, body)
			scanList(pass, body.List, map[string]lockFlavor{})
		}
	}
	return nil
}

// checkUnitBalance is the function-level pairing check: every acquire
// flavor present must have a matching release flavor somewhere in the
// unit (deferred releases — including inside `defer func() {...}()`
// literals — count; nested literals otherwise analyze separately).
func checkUnitBalance(pass *lintkit.Pass, body *ast.BlockStmt) {
	type pair struct {
		recv   string
		flavor lockFlavor
	}
	acquires := map[pair]ast.Node{} // first acquire site
	releases := map[pair]bool{}
	record := func(n ast.Node) {
		if op, ok := lockCall(pass, n); ok {
			key := pair{op.recv, op.flavor}
			if op.acquire {
				if _, seen := acquires[key]; !seen {
					acquires[key] = op.pos
				}
			} else {
				releases[key] = true
			}
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		record(n)
		// A deferred literal runs on this function's exit: its releases
		// balance this function's acquires.
		if def, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if op, ok := lockCall(pass, m); ok && !op.acquire {
						releases[pair{op.recv, op.flavor}] = true
					}
					return true
				})
			}
		}
		return true
	})
	for key, site := range acquires {
		if releases[key] {
			continue
		}
		other := pair{key.recv, writeLock}
		if key.flavor == writeLock {
			other.flavor = readLock
		}
		if releases[other] {
			pass.Reportf(site.Pos(),
				"%s.%s is released with %s: read/write mismatch panics or downgrades exclusion — match the flavors, or annotate //lint:allow lockbalance(reason)",
				key.recv, key.flavor.lockName(), other.flavor.unlockName())
			continue
		}
		pass.Reportf(site.Pos(),
			"%s.%s has no matching %s in this function: the lock is never released — add defer %s.%s(), or annotate //lint:allow lockbalance(reason)",
			key.recv, key.flavor.lockName(), key.flavor.unlockName(), key.recv, key.flavor.unlockName())
	}
}

// scanList walks one statement list tracking which receivers are held on
// the straight-line path. Branching constructs are scanned recursively
// with a fresh tracker and clear the state afterwards — the conservative
// choice that keeps multi-path manual unlock idioms quiet — so every
// report here is a genuine straight-line fact.
func scanList(pass *lintkit.Pass, stmts []ast.Stmt, held map[string]lockFlavor) {
	reset := func() {
		for k := range held {
			delete(held, k)
		}
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if op, ok := lockCall(pass, s.X); ok {
				if op.acquire {
					if _, isHeld := held[op.recv]; isHeld {
						pass.Reportf(op.pos.Pos(),
							"%s.%s while %s is already held on this path: sync locks are not reentrant — this deadlocks (//lint:allow lockbalance(reason) if a different lock is intended)",
							op.recv, op.flavor.lockName(), op.recv)
					}
					held[op.recv] = op.flavor
				} else {
					if f, isHeld := held[op.recv]; isHeld && f != op.flavor {
						pass.Reportf(op.pos.Pos(),
							"%s.%s releases a %s: read/write mismatch — match the flavors, or annotate //lint:allow lockbalance(reason)",
							op.recv, op.flavor.unlockName(), f.lockName())
					}
					delete(held, op.recv)
				}
			}
		case *ast.DeferStmt:
			if op, ok := lockCall(pass, s.Call); ok && !op.acquire {
				if f, isHeld := held[op.recv]; isHeld && f != op.flavor {
					pass.Reportf(op.pos.Pos(),
						"defer %s.%s releases a %s: read/write mismatch — match the flavors, or annotate //lint:allow lockbalance(reason)",
						op.recv, op.flavor.unlockName(), f.lockName())
				}
				delete(held, op.recv)
			}
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if op, ok := lockCall(pass, m); ok && !op.acquire {
						delete(held, op.recv)
					}
					return true
				})
			}
		case *ast.ReturnStmt:
			for _, h := range sortedHeld(held) {
				pass.Reportf(s.Pos(),
					"return with %s still %sed on this straight-line path: release it first, defer the unlock, or annotate //lint:allow lockbalance(reason)",
					h.recv, h.flavor.lockName())
			}
		case *ast.IfStmt:
			scanList(pass, s.Body.List, map[string]lockFlavor{})
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					scanList(pass, e.List, map[string]lockFlavor{})
				case *ast.IfStmt:
					scanList(pass, []ast.Stmt{e}, map[string]lockFlavor{})
				}
			}
			reset()
		case *ast.ForStmt:
			scanList(pass, s.Body.List, map[string]lockFlavor{})
			reset()
		case *ast.RangeStmt:
			scanList(pass, s.Body.List, map[string]lockFlavor{})
			reset()
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(pass, cc.Body, map[string]lockFlavor{})
				}
			}
			reset()
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(pass, cc.Body, map[string]lockFlavor{})
				}
			}
			reset()
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(pass, cc.Body, map[string]lockFlavor{})
				}
			}
			reset()
		case *ast.BlockStmt:
			scanList(pass, s.List, held)
		case *ast.LabeledStmt:
			scanList(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.BranchStmt, *ast.GoStmt:
			// goto/break/continue leave the straight line; a go statement
			// runs elsewhere. Either way the tracker can't follow.
			reset()
		}
	}
}

// heldLock is one held receiver for deterministic reporting order.
type heldLock struct {
	recv   string
	flavor lockFlavor
}

// sortedHeld renders the held map in sorted receiver order so reports
// are stable (the maporder rule, applied to ourselves).
func sortedHeld(held map[string]lockFlavor) []heldLock {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]heldLock, 0, len(keys))
	for _, k := range keys {
		out = append(out, heldLock{k, held[k]})
	}
	return out
}
