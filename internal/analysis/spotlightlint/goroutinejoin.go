package spotlightlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// GoroutineJoin enforces the lifecycle invariant the engine/serve layer
// depends on: every `go` statement in the long-running packages must be
// provably joined — its termination observed by someone — through one of
// the repo's three sanctioned idioms:
//
//   - a sync.WaitGroup Add/Done pair (Add in the spawning function, or
//     Done in the goroutine body, including bodies of named functions
//     declared in other files or packages, via analyzer facts);
//   - a done-channel: the goroutine receives from a channel (so closing
//     it releases the goroutine), or it sends on / closes a channel the
//     spawning function receives from (so the spawner blocks on
//     completion) — <-ctx.Done() is the context form of the same idiom;
//   - a range over a channel, which ends when the channel closes.
//
// A goroutine with none of these is fire-and-forget: under spotlightd it
// outlives its job, leaks per request, and can touch shared state after
// shutdown has supposedly drained — exactly the class of bug the race
// job cannot catch unless the schedule cooperates. Intentional
// fire-and-forget (there is almost none) carries
// //lint:allow goroutinejoin(reason).
var GoroutineJoin = &lintkit.Analyzer{
	Name: "goroutinejoin",
	Doc:  "every go statement in the long-running packages must be joined via WaitGroup, done-channel, or context (fire-and-forget goroutines leak)",
	Run:  runGoroutineJoin,
}

// joinEvidence is the fact goroutinejoin exports for every function
// declaration it sees: whether the body contains the callee-side half of
// a join (a WaitGroup Done, a channel receive). Facts are exported for
// every analyzed package — scoped or not — so `go pkg.Worker()` in a
// scoped package can consult evidence about a helper declared anywhere
// in the module.
type joinEvidence struct {
	WGDone   bool
	ChanRecv bool
}

// bodyEvidence inspects one function body (not descending into nested
// literals) for callee-side join evidence and the set of channel objects
// the body sends on or closes.
func bodyEvidence(pass *lintkit.Pass, body ast.Node) (ev joinEvidence, sentOrClosed map[types.Object]bool) {
	sentOrClosed = map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && syncMethodOn(pass, sel, "WaitGroup", "Done") {
				ev.WGDone = true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if obj := chanObject(pass, n.Args[0]); obj != nil {
						sentOrClosed[obj] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ev.ChanRecv = true
			}
		case *ast.SendStmt:
			if obj := chanObject(pass, n.Chan); obj != nil {
				sentOrClosed[obj] = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ev.ChanRecv = true
				}
			}
		}
		return true
	})
	return ev, sentOrClosed
}

// receivedChannels collects the channel objects a function receives from
// (unary receive or range), excluding receives inside nested literals —
// those belong to other goroutines' schedules. allReceivedChannels is
// the same collection without the literal exclusion, for the
// package-wide receive set (there, which goroutine does the receiving
// is irrelevant — someone observes the channel).
func receivedChannels(pass *lintkit.Pass, body ast.Node) map[types.Object]bool {
	recv := map[types.Object]bool{}
	collectReceives(pass, body, recv, inspectShallow)
	return recv
}

func allReceivedChannels(pass *lintkit.Pass, root ast.Node) map[types.Object]bool {
	recv := map[types.Object]bool{}
	collectReceives(pass, root, recv, func(n ast.Node, fn func(ast.Node) bool) {
		ast.Inspect(n, fn)
	})
	return recv
}

func collectReceives(pass *lintkit.Pass, root ast.Node, recv map[types.Object]bool, walk func(ast.Node, func(ast.Node) bool)) {
	walk(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanObject(pass, n.X); obj != nil {
					recv[obj] = true
				}
			}
		case *ast.RangeStmt:
			if obj := chanObject(pass, n.X); obj != nil {
				recv[obj] = true
			}
		}
		return true
	})
}

func runGoroutineJoin(pass *lintkit.Pass) error {
	// Fact sweep, every package: record each declared function's
	// callee-side evidence so spawn sites elsewhere (other files, other
	// packages) can import it.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			ev, _ := bodyEvidence(pass, fd.Body)
			if ev.WGDone || ev.ChanRecv {
				pass.ExportFact(obj, ev)
			}
		}
	}

	if !inList(pass.Pkg.Path(), goroutinePackages) {
		return nil
	}

	// Package-wide receive set: channel objects received anywhere in the
	// package, across files. A goroutine that closes a struct-field
	// channel is joined when any method receives from that field —
	// obs.Server's serve goroutine closes s.done and Close blocks on it,
	// two functions apart. Local channels keep function-level precision
	// for free, because their objects are unique to their function.
	pkgRecv := map[types.Object]bool{}
	for _, f := range pass.Files {
		for obj := range allReceivedChannels(pass, f) {
			pkgRecv[obj] = true
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		lintkit.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			enclosing := lintkit.EnclosingFunc(stack)
			if enclosing == nil {
				return true
			}
			if joined(pass, gs, enclosing, pkgRecv) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine is fire-and-forget: join it via a sync.WaitGroup Add/Done pair, a done-channel, or a context, or annotate //lint:allow goroutinejoin(reason)")
			return true
		})
	}
	return nil
}

// joined reports whether the go statement's goroutine is provably joined
// to its spawning function's lifecycle (or, for completion channels, to
// some function of the package that observes the channel).
func joined(pass *lintkit.Pass, gs *ast.GoStmt, enclosing ast.Node, pkgRecv map[types.Object]bool) bool {
	// Spawner-side WaitGroup: an Add anywhere in the spawning function
	// marks it join-conscious for the goroutines it launches.
	wgAdd := false
	inspectShallow(unitBodyOrSelf(enclosing), func(n ast.Node) bool {
		if call, sel := methodCall(n); call != nil && syncMethodOn(pass, sel, "WaitGroup", "Add") {
			wgAdd = true
		}
		return true
	})
	if wgAdd {
		return true
	}

	// Callee-side evidence: from the literal body directly, or from the
	// exported fact when the target is a named function or method.
	var ev joinEvidence
	var sentOrClosed map[types.Object]bool
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		ev, sentOrClosed = bodyEvidence(pass, fun.Body)
	default:
		if obj := calleeObject(pass, gs.Call); obj != nil {
			if fact, ok := pass.ImportFact(obj); ok {
				ev = fact.(joinEvidence)
			}
		}
	}
	if ev.WGDone || ev.ChanRecv {
		return true
	}

	// Completion-channel: the goroutine signals a channel the spawning
	// function — or, for field/global channels, any function in the
	// package — receives from.
	if len(sentOrClosed) > 0 {
		recv := receivedChannels(pass, unitBodyOrSelf(enclosing))
		for obj := range sentOrClosed {
			if recv[obj] || pkgRecv[obj] {
				return true
			}
		}
	}
	return false
}

// unitBodyOrSelf returns the function node's body, or the node itself
// when it has none to offer (inspection then just sees nothing).
func unitBodyOrSelf(unit ast.Node) ast.Node {
	if b := unitBody(unit); b != nil {
		return b
	}
	return unit
}

// calleeObject resolves the function object a go statement invokes, for
// fact lookup: `go r.worker()` → method worker, `go flush()` → func
// flush.
func calleeObject(pass *lintkit.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
