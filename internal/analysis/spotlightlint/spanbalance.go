package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// SpanBalance enforces span hygiene on the obs causal-tracing API,
// repo-wide: a *obs.Span returned by obs.StartSpan, obs.ChildOrRoot, or
// the Child/ChildSample/ChildLabel methods must not be lost. A span
// that is never ended never emits its span.end event, so every trace
// consumer — tracestat's critical-path report, the per-kind duration
// histograms, `-check`'s balance accounting — sees the subtree as
// perpetually open and misattributes its time.
//
// Two forms are flagged:
//
//   - the span discarded outright (`obs.StartSpan(tr, "job")` as a bare
//     statement, or assigned to the blank identifier) — there is never a
//     reason; if the span is not wanted, don't start it;
//   - a span variable that is never referenced again in the function —
//     not ended, not deferred, not stored, not passed, not returned.
//
// Any genuine reference counts as handled: a span that escapes (stored
// in a RunConfig, returned to the caller, passed to pool.RunCtxSpan) is
// some other code's responsibility, and engine's job span — opened in
// RunSearch, threaded through core.RunContext — shows why that must
// stay legal. `_ = sp` does NOT count — it is the compiler-silencer
// spelling of the same leak. Full all-return-paths coverage needs a
// control-flow graph; the straight-line leak — starting and forgetting
// — is the form that appears in review, and `defer sp.End()` on the
// next line is always the fix.
var SpanBalance = &lintkit.Analyzer{
	Name: "spanbalance",
	Doc:  "spans from obs.StartSpan/ChildOrRoot/Child* must be ended (or escape): a lost span never emits span.end, leaving its subtree open in every trace",
	Run:  runSpanBalance,
}

// spanSource reports whether call creates a span: one of the obs package
// constructors (StartSpan, ChildOrRoot) or the *obs.Span child methods
// (Child, ChildSample, ChildLabel).
func spanSource(pass *lintkit.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "spotlight/internal/obs" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		switch fn.Name() {
		case "StartSpan", "ChildOrRoot":
			return "obs." + fn.Name(), true
		}
		return "", false
	}
	switch fn.Name() {
	case "Child", "ChildSample", "ChildLabel":
		return "Span." + fn.Name(), true
	}
	return "", false
}

func runSpanBalance(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		lintkit.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				// A span constructor as a bare statement: the *Span is
				// dropped on the floor before anyone could End it.
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if src, ok := spanSource(pass, call); ok {
					pass.Reportf(call.Pos(),
						"the span from %s is discarded: its span.end can never be emitted — assign it and defer sp.End(), or annotate //lint:allow spanbalance(reason)", src)
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				src, ok := spanSource(pass, call)
				if !ok {
					return true
				}
				spanIdent, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok {
					// Assignment into a field or element: the span escapes;
					// whoever owns that location ends it.
					return true
				}
				if spanIdent.Name == "_" {
					pass.Reportf(spanIdent.Pos(),
						"the span from %s is discarded: its span.end can never be emitted — assign it and defer sp.End(), or annotate //lint:allow spanbalance(reason)", src)
					return true
				}
				obj := pass.TypesInfo.Defs[spanIdent]
				if obj == nil {
					// `sp = ...` reassignment into an existing variable: the
					// variable's other references keep it alive; treat the
					// reassignment itself as a use of that variable.
					return true
				}
				enclosing := lintkit.EnclosingFunc(stack)
				if enclosing == nil {
					return true
				}
				if !referencedAgain(pass, enclosing, spanIdent, obj) {
					pass.Reportf(spanIdent.Pos(),
						"%s is never ended: the span from %s never emits span.end — defer %s.End(), or annotate //lint:allow spanbalance(reason)",
						spanIdent.Name, src, spanIdent.Name)
				}
			}
			return true
		})
	}
	return nil
}
