package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestGoroutineJoin proves fire-and-forget goroutines (literal and
// named) are flagged in a scoped package, that all three join idioms
// pass — spawner-side WaitGroup.Add, callee-side Done or channel
// receive (including via facts for callees in other files and other
// packages), and completion channels (including struct-field channels
// received by a different function) — that //lint:allow suppresses,
// and that out-of-scope packages are silent entirely.
func TestGoroutineJoin(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.GoroutineJoin,
		"joinhelper", "spotlight/internal/serve")
}
