package spotlightlint

import (
	"go/ast"
	"go/types"
	"strings"

	"spotlight/internal/analysis/lintkit"
)

// GuardSite enforces the evaluation-pipeline invariant from the
// composable-pipeline PR: resilience.Guard is constructed in exactly one
// place, internal/eval's guard middleware (eval.WithGuard). Guards
// assembled ad hoc bypass the pipeline's validation, double-wrap
// evaluations (retrying retries), and fork the retry/backoff policy from
// what the checkpoint fingerprint records. The resilience package itself
// is also exempt — it owns the type.
var GuardSite = &lintkit.Analyzer{
	Name: "guardsite",
	Doc:  "resilience.Guard may only be constructed inside internal/eval (compose \"guard\" into a pipeline spec instead)",
	Run:  runGuardSite,
}

// guardConstructionAllowed lists the package paths that may build a
// Guard: the middleware that owns the construction site, and the
// defining package.
func guardConstructionAllowed(path string) bool {
	return strings.HasSuffix(path, "internal/eval") || strings.HasSuffix(path, "internal/resilience")
}

// isResilienceGuard reports whether t (possibly behind pointers) is the
// resilience package's Guard type.
func isResilienceGuard(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/resilience")
}

func runGuardSite(pass *lintkit.Pass) error {
	if guardConstructionAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := pass.TypesInfo.Types[n]; ok && isResilienceGuard(tv.Type) {
					pass.Reportf(n.Pos(),
						"resilience.Guard constructed outside internal/eval: put \"guard\" in the pipeline spec (eval.FromSpec) so the policy stays single-sourced")
				}
			case *ast.CallExpr:
				if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && isResilienceGuard(tv.Type) {
							pass.Reportf(n.Pos(),
								"resilience.Guard constructed outside internal/eval: put \"guard\" in the pipeline spec (eval.FromSpec) so the policy stays single-sourced")
						}
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if tv, ok := pass.TypesInfo.Types[n.Type]; ok && isResilienceGuard(tv.Type) {
						if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
							pass.Reportf(n.Pos(),
								"resilience.Guard zero value declared outside internal/eval: put \"guard\" in the pipeline spec (eval.FromSpec) so the policy stays single-sourced")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
