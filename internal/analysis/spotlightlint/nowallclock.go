package spotlightlint

import (
	"go/ast"
	"go/types"

	"spotlight/internal/analysis/lintkit"
)

// NoWallClock forbids wall-clock reads and the global math/rand source
// in deterministic packages. One time.Now() on the trajectory makes two
// runs with the same seed diverge; one global rand.Float64() couples the
// search to every other goroutine that touches the process-wide source,
// so the History stops being bit-identical across worker counts.
// Injected *rand.Rand streams (methods on a Rand value) and explicit
// constructions (rand.New, rand.NewSource) stay legal. Genuinely-timing
// code — resilience timeouts, latency counters — annotates itself with
// //lint:allow wallclock(reason).
var NoWallClock = &lintkit.Analyzer{
	Name:       "nowallclock",
	AllowToken: "wallclock",
	Doc:        "forbid time.Now/Since/Until and the global math/rand source in deterministic packages",
	Run:        runNoWallClock,
}

// wallClockFuncs are the time package's wall-clock reads. Monotonic or
// not, their results differ run to run.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// wallClockExempt names deterministic packages whose whole job is
// timing and which therefore read the clock by design. internal/obs is
// the sanctioned home for wall-clock access: instrumented packages call
// obs.Now/obs.Since instead of time directly, so the exemption stays a
// package-level policy here rather than //lint:allow annotations
// scattered through the clock helpers. The other analyzers (maporder,
// floateq, ...) still apply to exempt packages in full.
var wallClockExempt = []string{
	"spotlight/internal/obs",
}

// randConstructors are the math/rand package-level functions that build
// a local, seedable source rather than consuming the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}

func runNoWallClock(pass *lintkit.Pass) error {
	if !isDeterministic(pass.Pkg) || inList(pass.Pkg.Path(), wallClockExempt) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an injected *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: wall-clock reads break seed-reproducibility; thread elapsed time in from the caller or annotate //lint:allow wallclock(reason)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global %s.%s in deterministic package %s: the process-wide source is shared across goroutines; use an injected *rand.Rand (or annotate //lint:allow wallclock(reason))",
						fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
