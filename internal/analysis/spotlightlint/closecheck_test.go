package spotlightlint_test

import (
	"testing"

	"spotlight/internal/analysis/lintkit/linttest"
	"spotlight/internal/analysis/spotlightlint"
)

// TestCloseCheck proves every discard form (defer, bare statement, `_ =`,
// go statement) of an error-returning Close/Sync is flagged inside a
// persistence package, that checked, returned, variable-assigned, and
// //lint:allow-annotated uses pass, that error-free Close methods are
// ignored, and that non-persistence packages are exempt entirely.
func TestCloseCheck(t *testing.T) {
	linttest.Run(t, "testdata", spotlightlint.CloseCheck,
		"spotlight/internal/eval/diskcache", "plainpkg")
}
