package spotlightlint

import (
	"go/ast"
	"go/types"
	"strings"

	"spotlight/internal/analysis/lintkit"
)

// ExitCheck enforces the service-safety invariant behind spotlightd:
// library code must never kill the process. os.Exit and log.Fatal*
// (package functions and *log.Logger methods alike) skip deferred
// handlers — the disk-cache journal flush, checkpoint writes, trace-sink
// close — and in a job server they take every other tenant's jobs down
// with them. Process death is an entry-point decision, so those calls
// are confined to cmd/ and examples/ packages; everything else returns
// an error (or, like engine.FlushOnSignal, accepts an exit func the
// entry point supplies).
//
// References are flagged, not just calls: passing os.Exit as a value is
// the same capability escaping into library code.
var ExitCheck = &lintkit.Analyzer{
	Name: "exitcheck",
	Doc:  "os.Exit and log.Fatal* are confined to cmd/ and examples/ packages (library code returns errors; services must not be killed by a dependency)",
	Run:  runExitCheck,
}

// exitAllowed reports whether the package path may terminate the
// process: any package under a cmd/ or examples/ tree.
func exitAllowed(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// isProcessKiller reports whether obj is os.Exit or a log Fatal*
// function/method (log.Fatal, log.Fatalf, log.Fatalln, and the
// corresponding *log.Logger methods — their Pkg() is "log" either way).
func isProcessKiller(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() == "Exit" {
			return "os.Exit", true
		}
	case "log":
		if strings.HasPrefix(fn.Name(), "Fatal") {
			return "log." + fn.Name(), true
		}
	}
	return "", false
}

func runExitCheck(pass *lintkit.Pass) error {
	if exitAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if name, bad := isProcessKiller(obj); bad {
				pass.Reportf(sel.Pos(),
					"%s outside a cmd/ or examples/ package: library code must return an error, not kill the process", name)
			}
			return true
		})
	}
	return nil
}
