package exp

import (
	"reflect"
	"testing"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/stats"
)

// The row builders exist because ranging over the figure-result maps
// shuffled CSV rows between identical runs (Go randomizes map iteration
// order). These regression tests build multi-key maps and assert the
// flattened rows come out identical — and model-sorted — across many
// repetitions, which reliably fails under map-order iteration: with
// seven keys the chance of 50 identical accidental orderings is
// (1/7!)^49 ≈ 0.
func modelNames() []string {
	return []string{"VGG16", "ResNet-50", "MobileNetV2", "MnasNet", "Transformer", "AlphaGoZero", "NCF"}
}

func TestFig9RowsDeterministicAndSorted(t *testing.T) {
	res := Fig9Result{Features: []string{"f0", "f1"}}
	res.Importance = map[string][]float64{}
	for i, m := range modelNames() {
		res.Importance[m] = []float64{float64(i), 1}
	}
	header, first := Fig9Rows(res)
	if want := []string{"model", "f0", "f1"}; !reflect.DeepEqual(header, want) {
		t.Fatalf("header = %v, want %v", header, want)
	}
	if len(first) != len(res.Importance) {
		t.Fatalf("got %d rows, want %d", len(first), len(res.Importance))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1][0] >= first[i][0] {
			t.Fatalf("rows not model-sorted: %q before %q", first[i-1][0], first[i][0])
		}
	}
	for i := 0; i < 50; i++ {
		if _, again := Fig9Rows(res); !reflect.DeepEqual(first, again) {
			t.Fatalf("iteration %d produced different row order:\n%v\nvs\n%v", i, first, again)
		}
	}
}

func TestFig10RowsDeterministic(t *testing.T) {
	curves := map[string][]Curve{}
	for i, m := range modelNames() {
		curves[m] = []Curve{{
			Tool: "Spotlight",
			Trials: [][]core.HistoryPoint{{
				{Sample: 1, Elapsed: time.Duration(i) * time.Second, Value: float64(i + 1), BestSoFar: float64(i + 1)},
				{Sample: 2, Elapsed: time.Duration(i) * time.Second, Value: float64(i + 2), BestSoFar: float64(i + 1)},
			}},
		}}
	}
	_, first := Fig10Rows(curves)
	if len(first) != 2*len(curves) {
		t.Fatalf("got %d rows, want %d", len(first), 2*len(curves))
	}
	for i := 0; i < 50; i++ {
		if _, again := Fig10Rows(curves); !reflect.DeepEqual(first, again) {
			t.Fatalf("iteration %d produced different row order", i)
		}
	}
}

func TestFig11RowsDeterministic(t *testing.T) {
	cdfs := map[string][]CDFSeries{}
	for i, m := range modelNames() {
		cdfs[m] = []CDFSeries{{
			Tool:   "Spotlight",
			Trials: []*stats.CDF{stats.NewCDF([]float64{float64(i), float64(i + 1), float64(i + 2)})},
		}}
	}
	_, first := Fig11Rows(cdfs)
	if len(first) != 20*len(cdfs) {
		t.Fatalf("got %d rows, want %d (20 percentile steps per model)", len(first), 20*len(cdfs))
	}
	for i := 0; i < 50; i++ {
		if _, again := Fig11Rows(cdfs); !reflect.DeepEqual(first, again) {
			t.Fatalf("iteration %d produced different row order", i)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got, want := SortedKeys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[string]struct{}{}); len(got) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want empty", got)
	}
}
