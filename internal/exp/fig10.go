package exp

import (
	"fmt"
	"math"

	"spotlight/internal/core"
	"spotlight/internal/search"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// Curve is the convergence behavior of one algorithm on one model:
// per-trial histories of best-so-far objective versus sample index and
// wall-clock time (Figure 10 plots the median with a min/max envelope).
type Curve struct {
	Tool   string
	Trials [][]core.HistoryPoint
	// Errors holds each trial's failure, nil where the trial completed.
	// A failed or canceled trial keeps whatever history it produced in
	// its Trials slot; summaries simply draw on fewer complete trials.
	Errors []error
}

// Failed counts the trials that did not complete.
func (c Curve) Failed() int {
	n := 0
	for _, err := range c.Errors {
		if err != nil {
			n++
		}
	}
	return n
}

// FinalSummary returns the min/median/max of each trial's final
// best-so-far value — the endpoints the paper's compare-ae.sh emits.
func (c Curve) FinalSummary() stats.Summary {
	finals := make([]float64, 0, len(c.Trials))
	for _, tr := range c.Trials {
		if len(tr) > 0 {
			finals = append(finals, tr[len(tr)-1].BestSoFar)
		}
	}
	return stats.Summarize(finals)
}

// AblationStrategies returns the seven search algorithms of Figure 10 in
// presentation order.
func AblationStrategies() []core.Strategy {
	return []core.Strategy{
		core.NewSpotlight(),
		search.NewRandom(),
		core.NewSpotlightF(),
		core.NewSpotlightV(),
		search.NewGenetic(),
		search.NewConfuciuX(),
		search.NewHASCO(),
	}
}

// Fig10 reproduces the ablation study of Figure 10: for each configured
// model, run every algorithm for cfg.Trials independent trials and record
// its convergence history. The returned map is keyed by model name.
func Fig10(cfg Config) (map[string][]Curve, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	models, err := cfg.models()
	if err != nil {
		return nil, err
	}
	out := map[string][]Curve{}
	for _, m := range models {
		var curves []Curve
		for _, strat := range AblationStrategies() {
			if !toolSupports(strat.Name(), m.Name) {
				continue
			}
			c := Curve{Tool: strat.Name()}
			c.Trials = make([][]core.HistoryPoint, cfg.Trials)
			c.Errors = cfg.forTrials(func(t int) error {
				rc, err := cfg.runConfig([]workload.Model{m}, t)
				if err != nil {
					return err
				}
				res, err := core.Run(rc, strat)
				// Keep the partial history even when the run failed or
				// was cut short; the error is recorded alongside it.
				c.Trials[t] = res.History
				if err != nil {
					return fmt.Errorf("exp: fig10 %s on %s trial %d: %w",
						strat.Name(), m.Name, t, err)
				}
				return nil
			})
			curves = append(curves, c)
		}
		out[m.Name] = curves
	}
	return out, nil
}

// CDFSeries is one algorithm's Figure 11 data: the finite hardware-sample
// objectives of each trial, from which the empirical CDF is plotted.
type CDFSeries struct {
	Tool   string
	Trials []*stats.CDF
}

// Fig11 derives the hardware-sample CDFs of Figure 11 from Figure 10's
// runs: every evaluated hardware sample's aggregate objective, one CDF
// per trial. Infeasible samples (+Inf) are excluded, as they have no
// finite objective to place on the x axis.
func Fig11(curves map[string][]Curve) map[string][]CDFSeries {
	out := map[string][]CDFSeries{}
	for model, cs := range curves {
		var series []CDFSeries
		for _, c := range cs {
			s := CDFSeries{Tool: c.Tool}
			for _, trial := range c.Trials {
				var vals []float64
				for _, h := range trial {
					if !math.IsInf(h.Value, 0) {
						vals = append(vals, h.Value)
					}
				}
				s.Trials = append(s.Trials, stats.NewCDF(vals))
			}
			series = append(series, s)
		}
		out[model] = series
	}
	return out
}

// FractionBetterThanRandomBest computes the §VII-E statistic: the
// fraction of one algorithm's hardware samples that beat the *best*
// sample random search ever found (the paper reports 81.7% for
// Spotlight). Both arguments aggregate all trials.
func FractionBetterThanRandomBest(algorithm, random Curve) float64 {
	randomBest := math.Inf(1)
	for _, trial := range random.Trials {
		for _, h := range trial {
			if h.Value < randomBest {
				randomBest = h.Value
			}
		}
	}
	var samples []float64
	for _, trial := range algorithm.Trials {
		for _, h := range trial {
			if !math.IsInf(h.Value, 0) {
				samples = append(samples, h.Value)
			}
		}
	}
	return stats.FractionBelow(samples, randomBest)
}

// EfficiencyStat summarizes one algorithm's sample economy for the
// §VII-E discussion: how many hardware samples it evaluated, what
// fraction were feasible, and what fraction beat the best design random
// search ever found (the paper reports 81.7% for Spotlight).
type EfficiencyStat struct {
	Tool             string
	Samples          int
	FeasibleFraction float64
	BeatsRandomBest  float64
}

// EfficiencyStats derives the §VII-E statistics from one model's Figure
// 10 curves. The random-search curve (Spotlight-R) is the reference; if
// it is absent, BeatsRandomBest is zero for every entry.
func EfficiencyStats(curves []Curve) []EfficiencyStat {
	var random Curve
	for _, c := range curves {
		if c.Tool == "Spotlight-R" {
			random = c
		}
	}
	out := make([]EfficiencyStat, 0, len(curves))
	for _, c := range curves {
		stat := EfficiencyStat{Tool: c.Tool}
		feasible := 0
		for _, trial := range c.Trials {
			for _, h := range trial {
				stat.Samples++
				if !math.IsInf(h.Value, 0) {
					feasible++
				}
			}
		}
		if stat.Samples > 0 {
			stat.FeasibleFraction = float64(feasible) / float64(stat.Samples)
		}
		if len(random.Trials) > 0 {
			stat.BeatsRandomBest = FractionBetterThanRandomBest(c, random)
		}
		out = append(out, stat)
	}
	return out
}
