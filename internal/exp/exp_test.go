package exp

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spotlight/internal/core"
)

// tinyCfg is a fast configuration for structural tests.
func tinyCfg() Config {
	return Config{
		Scale:     "edge",
		Objective: core.MinDelay,
		HWSamples: 6,
		SWSamples: 8,
		Trials:    2,
		Seed:      1,
		Models:    []string{"Transformer"},
	}
}

func TestConfigNormalization(t *testing.T) {
	c, err := Config{}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != "edge" || c.HWSamples <= 0 || c.SWSamples <= 0 || c.Trials <= 0 || c.Eval == nil {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, err := (Config{EvalSpec: "no-such-backend"}).normalized(); err == nil {
		t.Fatal("unknown EvalSpec backend accepted")
	}
}

func TestConfigModels(t *testing.T) {
	cfg, err := Config{}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := cfg.models()
	if err != nil || len(ms) != 5 {
		t.Fatalf("default models = %d, err %v", len(ms), err)
	}
	if _, err := (Config{Models: []string{"nope"}}).models(); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestConfigScales(t *testing.T) {
	if _, _, err := (Config{Scale: "edge"}).spaceAndBudget(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Config{Scale: "cloud"}).spaceAndBudget(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Config{Scale: "orbit"}).spaceAndBudget(); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestPaperConfigScale(t *testing.T) {
	p := Paper()
	if p.HWSamples != 100 || p.SWSamples != 100 || p.Trials != 10 {
		t.Fatalf("paper config = %+v", p)
	}
}

func TestFig6Structure(t *testing.T) {
	rows, err := Fig6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Transformer: Spotlight + 3 baselines; ConfuciuX and HASCO are
	// excluded for Transformer per the paper's tool limitations.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Min <= 0 || r.Median < r.Min || r.Max < r.Median {
			t.Fatalf("malformed row %+v", r)
		}
		if r.Config == "Spotlight" && math.Abs(r.Normalized-1) > 1e-9 {
			t.Fatalf("Spotlight not normalized to 1: %+v", r)
		}
	}
}

func TestFig6ToolSupportMatrix(t *testing.T) {
	cases := []struct {
		tool, model string
		want        bool
	}{
		{"HASCO", "VGG16", false},
		{"HASCO", "ResNet-50", true},
		{"HASCO", "Transformer", false},
		{"ConfuciuX", "Transformer", false},
		{"ConfuciuX", "VGG16", true},
		{"Spotlight", "Transformer", true},
	}
	for _, c := range cases {
		if got := toolSupports(c.tool, c.model); got != c.want {
			t.Errorf("toolSupports(%s, %s) = %v, want %v", c.tool, c.model, got, c.want)
		}
	}
}

func TestFig10And11Structure(t *testing.T) {
	cfg := tinyCfg()
	cfg.Trials = 2
	curves, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := curves["Transformer"]
	if !ok {
		t.Fatal("no curves for Transformer")
	}
	// Spotlight, -R, -F, -V, -GA for Transformer (ConfuciuX/HASCO excluded).
	if len(cs) != 5 {
		t.Fatalf("got %d curves, want 5", len(cs))
	}
	for _, c := range cs {
		if len(c.Trials) != 2 {
			t.Fatalf("%s has %d trials, want 2", c.Tool, len(c.Trials))
		}
		sum := c.FinalSummary()
		if sum.Min <= 0 || math.IsInf(sum.Median, 0) {
			t.Fatalf("%s final summary malformed: %+v", c.Tool, sum)
		}
	}

	cdfs := Fig11(curves)
	for _, series := range cdfs["Transformer"] {
		for _, cdf := range series.Trials {
			if cdf.Len() == 0 {
				t.Fatalf("%s produced an empty CDF", series.Tool)
			}
		}
	}
}

func TestFractionBetterThanRandomBest(t *testing.T) {
	alg := Curve{Trials: [][]core.HistoryPoint{{
		{Value: 1}, {Value: 2}, {Value: 10},
	}}}
	rnd := Curve{Trials: [][]core.HistoryPoint{{
		{Value: 5}, {Value: 7},
	}}}
	if f := FractionBetterThanRandomBest(alg, rnd); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("fraction = %v, want 2/3", f)
	}
}

func TestSurrogateAccuracy(t *testing.T) {
	cfg := tinyCfg()
	res, err := SurrogateAccuracy(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d kernel results, want 2", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Kernel] = true
		if r.TrainSize+r.TestSize != 200 {
			t.Fatalf("split sizes wrong: %+v", r)
		}
		if math.IsNaN(r.SpearmanEDP) || r.SpearmanEDP < -1 || r.SpearmanEDP > 1 {
			t.Fatalf("bad Spearman: %+v", r)
		}
		if r.TopQuintile < 0 || r.TopQuintile > 1 {
			t.Fatalf("bad top-quintile overlap: %+v", r)
		}
	}
	if !names["linear"] || !names["matern52"] {
		t.Fatalf("kernels missing: %v", names)
	}
}

func TestDiscussion(t *testing.T) {
	cfg := tinyCfg()
	rows, err := Discussion(cfg, "Transformer")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Config != "Spotlight-Opt" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	for _, r := range rows {
		if r.ThroughputPerJ <= 0 {
			t.Fatalf("non-positive throughput for %s", r.Config)
		}
		if r.ArrayHeight <= 0 || r.ArrayWidth <= 0 {
			t.Fatalf("missing array shape for %s", r.Config)
		}
	}
	if math.Abs(rows[0].RelThroughputPerJ-1) > 1e-9 {
		t.Fatal("Spotlight-Opt relative throughput should be 1")
	}
}

func TestCrossModelAgreement(t *testing.T) {
	cfg := tinyCfg()
	res, err := CrossModelAgreement(cfg, "Transformer", 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers == 0 {
		t.Fatal("no layers compared")
	}
	if res.MeanTopOverlap < 0 || res.MeanTopOverlap > 1 {
		t.Fatalf("bad overlap: %+v", res)
	}
	// The two models must agree partially, not perfectly — the premise
	// of §VII-F is a second, different model.
	if res.MeanTopOverlap == 1 && res.MeanSpearman == 1 {
		t.Fatal("models agree perfectly — second model is not independent")
	}
	if res.MeanSpearman <= 0 {
		t.Fatalf("models anticorrelated: %+v", res)
	}
}

func TestWriteRows(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{{Model: "m", Config: "c", Min: 1, Median: 2, Max: 3, Normalized: 0.5}}
	if err := WriteRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "model,config,min,max,median,normalized") ||
		!strings.Contains(out, "m,c,1,3,2,0.5") {
		t.Fatalf("unexpected CSV:\n%s", out)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "b"}, [][]string{{"1", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,2") {
		t.Fatal("row missing")
	}
	if err := WriteTable(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestAblationStrategiesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range AblationStrategies() {
		names[s.Name()] = true
	}
	for _, want := range []string{"Spotlight", "Spotlight-R", "Spotlight-F",
		"Spotlight-V", "Spotlight-GA", "ConfuciuX", "HASCO"} {
		if !names[want] {
			t.Fatalf("missing strategy %s", want)
		}
	}
}

func TestTopDesignCrossCheck(t *testing.T) {
	cfg := tinyCfg()
	res, err := TopDesignCrossCheck(cfg, "Transformer")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("no top designs retained")
	}
	if res.Entries[0].Rank != 1 {
		t.Fatal("entries not rank-ordered")
	}
	prev := 0.0
	for _, e := range res.Entries {
		if e.Primary < prev {
			t.Fatal("primary objectives not ascending with rank")
		}
		prev = e.Primary
	}
	if res.Spearman < -1 || res.Spearman > 1 {
		t.Fatalf("bad Spearman: %v", res.Spearman)
	}
}

func TestParallelTrialsMatchSerial(t *testing.T) {
	cfg := tinyCfg()
	serial, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	parallel, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs:\nserial   %+v\nparallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestEfficiencyStats(t *testing.T) {
	cfg := tinyCfg()
	curves, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := EfficiencyStats(curves["Transformer"])
	if len(stats) == 0 {
		t.Fatal("no efficiency stats")
	}
	for _, s := range stats {
		if s.Samples == 0 {
			t.Fatalf("%s has no samples", s.Tool)
		}
		if s.FeasibleFraction < 0 || s.FeasibleFraction > 1 {
			t.Fatalf("%s feasible fraction out of range: %v", s.Tool, s.FeasibleFraction)
		}
		if s.BeatsRandomBest < 0 || s.BeatsRandomBest > 1 {
			t.Fatalf("%s beats-random out of range: %v", s.Tool, s.BeatsRandomBest)
		}
	}
}

func TestSimCheck(t *testing.T) {
	res, err := SimCheck(tinyCfg(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules < 10 {
		t.Fatalf("only %d schedules validated", res.Schedules)
	}
	// The analytical model must agree with the simulator on every
	// schedule under the single-working-set assumption.
	if res.ExactMatches != res.Schedules {
		t.Fatalf("analytical model mismatch: %d/%d exact", res.ExactMatches, res.Schedules)
	}
	if res.CacheSavings.Min < -1e-9 || res.CacheSavings.Max > 1 {
		t.Fatalf("cache savings out of range: %+v", res.CacheSavings)
	}
}

func TestTopDesignCrossCheckPortsToSecondModel(t *testing.T) {
	res, err := TopDesignCrossCheck(tinyCfg(), "Transformer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluable == 0 {
		t.Fatal("no top design portable to the second model")
	}
	if res.BestRank < 1 || res.BestRank > len(res.Entries) {
		t.Fatalf("bad best rank %d", res.BestRank)
	}
	for _, e := range res.Entries {
		if e.Secondary == 0 {
			t.Fatalf("entry %d has zero secondary objective", e.Rank)
		}
	}
}

func TestFig7Structure(t *testing.T) {
	cfg := tinyCfg()
	cfg.HWSamples = 10 // the cloud space is >90% over budget; keep headroom
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EDP) != 4 || len(res.Delay) != 4 {
		t.Fatalf("row counts: EDP=%d delay=%d, want 4 each", len(res.EDP), len(res.Delay))
	}
	for _, r := range append(res.EDP, res.Delay...) {
		if r.Median <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Cloud baselines carry the "(cloud)" suffix.
	found := false
	for _, r := range res.EDP {
		if r.Config == "Eyeriss-like (cloud)" {
			found = true
		}
	}
	if !found {
		t.Fatal("cloud baseline rows missing")
	}
}

func TestFig8Structure(t *testing.T) {
	cfg := tinyCfg()
	cfg.Models = []string{"Transformer"} // no held-out models => no General rows
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]bool{}
	for _, r := range res.Delay {
		configs[r.Config] = true
		if r.Config == "Spotlight-Single" && math.Abs(r.Normalized-1) > 1e-9 {
			t.Fatalf("Single not normalized to 1: %+v", r)
		}
	}
	for _, want := range []string{"Spotlight-Single", "Spotlight-Multi",
		"Eyeriss-like", "NVDLA-like", "MAERI-like"} {
		if !configs[want] {
			t.Fatalf("missing config %s in %v", want, configs)
		}
	}
	if configs["Spotlight-General"] {
		t.Fatal("General scenario should be absent without held-out models")
	}
}

func TestFig9Structure(t *testing.T) {
	cfg := tinyCfg()
	res, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp, ok := res.Importance["Transformer"]
	if !ok || len(imp) != len(res.Features) {
		t.Fatalf("importance shape wrong: %v", res.Importance)
	}
	// Normalized per model: max must be 1.
	maxV := 0.0
	for _, v := range imp {
		if v < 0 || v > 1 {
			t.Fatalf("importance out of [0,1]: %v", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if math.Abs(maxV-1) > 1e-9 {
		t.Fatalf("max importance = %v, want 1", maxV)
	}
}

func TestKernelSearchComparison(t *testing.T) {
	res, err := KernelSearchComparison(tinyCfg(), "Transformer")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Kernel != "linear" || res[1].Kernel != "matern52" {
		t.Fatalf("unexpected kernels: %+v", res)
	}
	for _, r := range res {
		if r.Summary.Median <= 0 {
			t.Fatalf("%s produced bad objective %v", r.Kernel, r.Summary.Median)
		}
	}
	// §VII-D: the two kernels should land in the same quality class —
	// within an order of magnitude of each other.
	ratio := res[0].Summary.Median / res[1].Summary.Median
	if ratio > 10 || ratio < 0.1 {
		t.Fatalf("kernels differ wildly: linear %v vs matern %v",
			res[0].Summary.Median, res[1].Summary.Median)
	}
}

// faultyTrialStrategy panics when constructing the hardware searcher of
// one specific trial (identified by its derived seed), simulating a
// crashed run inside a multi-trial figure.
type faultyTrialStrategy struct {
	core.Strategy
	badSeed int64
}

func (f faultyTrialStrategy) NewHW(cfg core.RunConfig, rng *rand.Rand) core.HWProposer {
	if cfg.Seed == f.badSeed {
		panic("injected trial failure")
	}
	return f.Strategy.NewHW(cfg, rng)
}

// TestChaosFailedTrialDoesNotAbortFigure: one crashed trial must cost
// one trial's worth of statistics, not the whole figure.
func TestChaosFailedTrialDoesNotAbortFigure(t *testing.T) {
	cfg, err := tinyCfg().normalized()
	if err != nil {
		t.Fatal(err)
	}
	badSeed := cfg.Seed + 0*7919 // trial 0's seed
	strat := faultyTrialStrategy{Strategy: core.NewSpotlight(), badSeed: badSeed}

	models, err := cfg.models()
	if err != nil {
		t.Fatal(err)
	}
	objs, err := cfg.trialObjectives(models, strat)
	if err != nil {
		t.Fatalf("figure aborted on a single failed trial: %v", err)
	}
	if len(objs) != cfg.Trials-1 {
		t.Fatalf("kept %d objectives, want %d (one trial failed)", len(objs), cfg.Trials-1)
	}
	for _, v := range objs {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("bad surviving objective %v", v)
		}
	}
}

// TestChaosAllTrialsFailedSurfacesError: when nothing succeeded there
// is no figure to draw, and the first error must come back.
func TestChaosAllTrialsFailedSurfacesError(t *testing.T) {
	vals := []float64{1, 2}
	errs := []error{errFirst, errFirst}
	if _, err := collectTrials(vals, errs); err == nil {
		t.Fatal("collectTrials with all-failed trials returned no error")
	}
}

var errFirst = errors.New("boom")

// TestChaosFig10RecordsPartialTrials: a failed Fig10 trial keeps its
// error and whatever history it produced instead of aborting the map.
func TestChaosFig10RecordsPartialTrials(t *testing.T) {
	cfg := tinyCfg()
	cfg.HWSamples = 3
	cfg.SWSamples = 4
	out, err := Fig10(cfg)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	for model, curves := range out {
		for _, c := range curves {
			if len(c.Errors) != cfg.Trials {
				t.Fatalf("%s/%s: Errors has %d slots, want %d", model, c.Tool, len(c.Errors), cfg.Trials)
			}
			if c.Failed() != 0 {
				t.Errorf("%s/%s: %d trials failed unexpectedly: %v", model, c.Tool, c.Failed(), c.Errors)
			}
		}
	}
}
