// Package exp is the evaluation harness: one driver per table/figure of
// the paper's §VII, producing the same rows and series the paper reports.
// Each driver is deterministic given its Config seed, and each has a
// bench in the repository root regenerating it.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig6     edge single-model co-design vs baselines and prior tools
//	Fig7     cloud-scale single-model co-design (EDP and delay)
//	Fig8     single- vs multi-model vs generalization co-design
//	Fig9     daBO_SW feature permutation importance per model
//	Fig10    convergence over time for seven search algorithms
//	Fig11    CDFs of hardware sample quality (derived from Fig10 runs)
//	Surrogate   §VII-D surrogate accuracy (Spearman ρ, top-quintile hits)
//	Discussion  §VII-C throughput/J and reuse vs hand-designed
//	Timeloop    §VII-F rank agreement between the two analytical models
package exp

import (
	"fmt"
	"math/rand"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/hw"
	"spotlight/internal/obs"
	"spotlight/internal/pool"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// Config scales the experiments. The paper's settings are 100 hardware
// samples, 100 software samples per layer, and 10 trials; the defaults
// here are smaller so the full suite regenerates in minutes — pass
// Paper() for the full-scale settings.
type Config struct {
	Scale     string // "edge" or "cloud"
	Objective core.Objective
	HWSamples int
	SWSamples int
	Trials    int
	Seed      int64
	Models    []string // model names; empty means all five
	// EvalSpec selects the cost-model pipeline as an eval.FromSpec
	// string, e.g. "maestro", "sim,cache,guard". Used only when Eval is
	// nil; empty means the primary analytical model. The built pipeline
	// is shared by every trial and figure run under this Config, so its
	// memo cache deduplicates across trials.
	EvalSpec string
	Eval     core.Evaluator // cost model backend; nil means EvalSpec (or the primary model)
	// Parallel runs independent trials concurrently. Results are
	// identical either way (each trial owns its seed); only wall-clock
	// changes. The artifact appendix notes the paper's own runs were
	// parallelized across a cluster the same way.
	Parallel bool
	// Workers bounds how many layers each run optimizes concurrently
	// within one hardware sample (core.RunConfig.Workers). Results are
	// bit-identical at every setting; 0 means GOMAXPROCS, 1 sequential.
	Workers int
	// Tracer receives structured trace events from every run this config
	// drives (core.RunConfig.Tracer) and from the evaluation pipeline
	// built from EvalSpec. Tracing is observe-only: every CSV is
	// byte-identical with it on or off.
	Tracer obs.Tracer
	// Span, when set, parents every run this config drives: each
	// core.RunContext opens its "run" span as a child of Span (the
	// engine's per-step exp.step span). Observe-only, like Tracer.
	Span *obs.Span
	// DisableBatch forces the per-layer searches onto the sequential
	// one-candidate-at-a-time path (core.RunConfig.DisableBatch). Results
	// are bit-identical either way; the switch exists to verify that
	// invariant end to end and to bisect batching regressions.
	DisableBatch bool
}

// Default returns the scaled-down configuration used by tests and the
// quick benchmark suite.
func Default() Config {
	return Config{
		Scale:     "edge",
		Objective: core.MinDelay,
		HWSamples: 24,
		SWSamples: 24,
		Trials:    3,
		Seed:      1,
	}
}

// Paper returns the paper-scale configuration (§VII: 100/100 samples,
// 10 trials).
func Paper() Config {
	c := Default()
	c.HWSamples, c.SWSamples, c.Trials = 100, 100, 10
	return c
}

// normalized fills defaults and builds the evaluation pipeline from
// EvalSpec when no evaluator was supplied directly. It errors on a
// malformed spec (unknown backend or middleware token).
func (c Config) normalized() (Config, error) {
	if c.Scale == "" {
		c.Scale = "edge"
	}
	if c.HWSamples <= 0 {
		c.HWSamples = 24
	}
	if c.SWSamples <= 0 {
		c.SWSamples = 24
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Eval == nil {
		spec := c.EvalSpec
		if spec == "" {
			spec = "maestro"
		}
		p, err := eval.FromSpec(spec, eval.SpecOptions{EnsureStats: true, Tracer: c.Tracer})
		if err != nil {
			return c, err
		}
		c.Eval = p
	}
	return c, nil
}

// models resolves the configured model list.
func (c Config) models() ([]workload.Model, error) {
	if len(c.Models) == 0 {
		return workload.Models(), nil
	}
	out := make([]workload.Model, 0, len(c.Models))
	for _, name := range c.Models {
		m, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// spaceAndBudget resolves the hardware space and budget for the scale.
func (c Config) spaceAndBudget() (hw.Space, hw.Budget, error) {
	switch c.Scale {
	case "edge":
		return hw.EdgeSpace(), hw.EdgeBudget(), nil
	case "cloud":
		return hw.CloudSpace(), hw.CloudBudget(), nil
	}
	return hw.Space{}, hw.Budget{}, fmt.Errorf("exp: unknown scale %q", c.Scale)
}

// runConfig builds the core.RunConfig for a set of models and a trial.
func (c Config) runConfig(models []workload.Model, trial int) (core.RunConfig, error) {
	space, budget, err := c.spaceAndBudget()
	if err != nil {
		return core.RunConfig{}, err
	}
	return core.RunConfig{
		Models:       models,
		Space:        space,
		Budget:       budget,
		Objective:    c.Objective,
		HWSamples:    c.HWSamples,
		SWSamples:    c.SWSamples,
		Seed:         c.Seed + int64(trial)*7919, // distinct, reproducible per trial
		Eval:         c.Eval,
		Workers:      c.Workers,
		Tracer:       c.Tracer,
		Span:         c.Span,
		DisableBatch: c.DisableBatch,
	}, nil
}

// Row is one bar of a grouped bar chart: a (model, configuration) pair
// with min/median/max over trials and the median normalized to
// Spotlight's median, matching the CSV format of the paper's
// compare-ae.sh script.
type Row struct {
	Model      string
	Config     string
	Min        float64
	Median     float64
	Max        float64
	Normalized float64 // median / Spotlight's median for the same model
}

// normalizeRows fills the Normalized column against the named reference
// configuration within each model group.
func normalizeRows(rows []Row, reference string) {
	ref := map[string]float64{}
	for _, r := range rows {
		if r.Config == reference {
			ref[r.Model] = r.Median
		}
	}
	for i := range rows {
		if v, ok := ref[rows[i].Model]; ok && v != 0 {
			rows[i].Normalized = rows[i].Median / v
		}
	}
}

// forTrials runs fn once per trial index on the shared bounded worker
// pool — GOMAXPROCS-wide when Parallel is set, sequential otherwise —
// and returns each trial's error in its slot. A panicking trial is
// recovered into its error slot here, before the pool's own panic
// containment would poison the remaining trials: one crashed run should
// cost one bar of a figure, not the whole figure.
func (c Config) forTrials(fn func(trial int) error) []error {
	workers := 1
	if c.Parallel {
		workers = 0 // pool default: GOMAXPROCS
	}
	errs := make([]error, c.Trials)
	pool.Run(c.Trials, workers, func(t int) {
		defer func() {
			if r := recover(); r != nil {
				errs[t] = fmt.Errorf("exp: trial %d panicked: %v", t, r)
			}
		}()
		errs[t] = fn(t)
	})
	return errs
}

// collectTrials keeps the values of the trials that succeeded. It fails
// only when every trial failed — degraded statistics over fewer trials
// beat losing a whole figure to one flaky run.
func collectTrials(vals []float64, errs []error) ([]float64, error) {
	kept := make([]float64, 0, len(vals))
	var firstErr error
	for i, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		kept = append(kept, vals[i])
	}
	if len(kept) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return kept, nil
}

// trialObjectives runs a strategy for cfg.Trials independent trials on
// the given models and returns the best objectives of the trials that
// completed.
func (c Config) trialObjectives(models []workload.Model, strat core.Strategy) ([]float64, error) {
	out := make([]float64, c.Trials)
	errs := c.forTrials(func(t int) error {
		rc, err := c.runConfig(models, t)
		if err != nil {
			return err
		}
		res, err := core.Run(rc, strat)
		if err != nil {
			return fmt.Errorf("exp: %s trial %d: %w", strat.Name(), t, err)
		}
		out[t] = res.Best.Objective
		return nil
	})
	return collectTrials(out, errs)
}

// baselineObjectives evaluates a hand-designed baseline under the
// layerwise software optimizer (daBO_SW within the baseline's dataflow
// constraint), per §VII's methodology, for cfg.Trials trials.
func (c Config) baselineObjectives(models []workload.Model, b hw.Baseline) ([]float64, error) {
	out := make([]float64, c.Trials)
	errs := c.forTrials(func(t int) error {
		rc, err := c.runConfig(models, t)
		if err != nil {
			return err
		}
		rc.SWConstraint = b.Constraint
		design, err := core.OptimizeSoftware(rc, core.NewSpotlight(), b.Accel)
		if err != nil {
			return fmt.Errorf("exp: baseline %s trial %d: %w", b.Name, t, err)
		}
		out[t] = design.Objective
		return nil
	})
	return collectTrials(out, errs)
}

// summaryRow converts per-trial objectives into a Row.
func summaryRow(model, config string, objectives []float64) Row {
	s := stats.Summarize(objectives)
	return Row{Model: model, Config: config, Min: s.Min, Median: s.Median, Max: s.Max}
}

// rngFor returns a seeded generator derived from the config seed and a
// stream label, keeping independent parts of an experiment decorrelated
// but reproducible.
func (c Config) rngFor(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + stream))
}
