package exp

import (
	"spotlight/internal/core"
	"spotlight/internal/gp"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// KernelSearchResult compares end-to-end search quality under different
// surrogate kernels — the §VII-D claim that "when we run Spotlight with
// the Matérn kernel we find no noticeable difference in search quality,
// so we opt for the simpler linear kernel."
type KernelSearchResult struct {
	Kernel  string
	Summary stats.Summary // per-trial best objectives
}

// KernelSearchComparison runs full Spotlight co-designs on one model
// with the linear and the Matérn-5/2 kernels, over cfg.Trials trials
// each.
func KernelSearchComparison(cfg Config, modelName string) ([]KernelSearchResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	m, err := workload.ByName(modelName)
	if err != nil {
		return nil, err
	}
	kernels := []gp.Kernel{
		gp.Linear{Bias: 1},
		gp.Matern52{LengthScale: 1, Variance: 1},
	}
	var out []KernelSearchResult
	for _, k := range kernels {
		strat := core.NewSpotlight()
		strat.Kernel = k
		objs, err := cfg.trialObjectives([]workload.Model{m}, strat)
		if err != nil {
			return nil, err
		}
		out = append(out, KernelSearchResult{Kernel: k.Name(), Summary: stats.Summarize(objs)})
	}
	return out, nil
}
