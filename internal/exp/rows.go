package exp

import (
	"math"
	"sort"
	"strconv"
)

// This file flattens the map-keyed figure results into CSV rows in a
// deterministic order. The figure functions return maps keyed by model
// name, and Go randomizes map iteration — so building rows by ranging
// over those maps (as cmd/experiments originally did, caught by
// spotlightlint's maporder analyzer) shuffled fig9/fig10/fig11 CSV row
// order between identical runs. Everything here iterates SortedKeys.

// SortedKeys returns m's keys in ascending order: the only sanctioned
// way to turn a string-keyed result map into output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatValue renders an objective for CSV: finite values in compact
// scientific form, +Inf (an infeasible sample) as "inf".
func FormatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Fig9Rows flattens Figure 9's per-model feature importances,
// model-sorted.
func Fig9Rows(res Fig9Result) (header []string, rows [][]string) {
	header = append([]string{"model"}, res.Features...)
	for _, model := range SortedKeys(res.Importance) {
		row := []string{model}
		for _, v := range res.Importance[model] {
			row = append(row, strconv.FormatFloat(v, 'g', 4, 64))
		}
		rows = append(rows, row)
	}
	return header, rows
}

// Fig10Rows flattens Figure 10's convergence histories, model-sorted
// (tools and trials already carry a stable order within each model).
func Fig10Rows(curves map[string][]Curve) (header []string, rows [][]string) {
	header = []string{"model", "tool", "trial", "sample", "elapsed_s", "value", "best_so_far"}
	for _, model := range SortedKeys(curves) {
		for _, c := range curves[model] {
			for t, trial := range c.Trials {
				for _, h := range trial {
					rows = append(rows, []string{
						model, c.Tool, strconv.Itoa(t), strconv.Itoa(h.Sample),
						strconv.FormatFloat(h.Elapsed.Seconds(), 'g', 6, 64),
						FormatValue(h.Value),
						FormatValue(h.BestSoFar),
					})
				}
			}
		}
	}
	return header, rows
}

// Fig11Rows flattens Figure 11's per-trial CDFs at 5% percentile steps,
// model-sorted.
func Fig11Rows(cdfs map[string][]CDFSeries) (header []string, rows [][]string) {
	header = []string{"model", "tool", "trial", "percentile", "value"}
	for _, model := range SortedKeys(cdfs) {
		for _, s := range cdfs[model] {
			for t, cdf := range s.Trials {
				if cdf.Len() == 0 {
					continue
				}
				for p := 5; p <= 100; p += 5 {
					rows = append(rows, []string{
						model, s.Tool, strconv.Itoa(t), strconv.Itoa(p),
						strconv.FormatFloat(cdf.InverseAt(float64(p)/100), 'g', 6, 64),
					})
				}
			}
		}
	}
	return header, rows
}
