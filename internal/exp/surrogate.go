package exp

import (
	"fmt"
	"math"

	"spotlight/internal/core"
	"spotlight/internal/gp"
	"spotlight/internal/sched"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// SurrogateResult is the §VII-D surrogate accuracy experiment: the
// Spearman rank correlation between predicted and true costs on a
// held-out test set, and the fraction of the true top quintile that the
// surrogate also places in its predicted top quintile, for both the
// linear and the Matérn kernel. The paper reports ρ ≈ 0.08–0.11 with
// ~24% of the top 20% correctly identified — low correlation that is
// nonetheless sufficient for the acquisition function.
type SurrogateResult struct {
	Kernel      string
	SpearmanEDP float64
	SpearmanDel float64
	TopQuintile float64 // overlap of predicted vs true top 20% (EDP)
	TrainSize   int
	TestSize    int
}

// SurrogateAccuracy runs the experiment on `samples` random co-design
// points of a mid ResNet-50 layer (train on 90%, test on 10%).
func SurrogateAccuracy(cfg Config, samples int) ([]SurrogateResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if samples < 50 {
		samples = 50
	}
	space, _, err := cfg.spaceAndBudget()
	if err != nil {
		return nil, err
	}
	layer := workload.ResNet50().Layers[6] // a mid-network 3x3
	features := core.SoftwareFeatures()
	free := sched.Free()
	rng := cfg.rngFor(13)

	var x [][]float64
	var edp, delay []float64
	for len(x) < samples {
		a := space.Random(rng)
		s := free.Random(rng, layer, a.RFBytesPerPE(), a.L2Bytes())
		c, err := cfg.Eval.Evaluate(a, s, layer)
		if err != nil {
			continue
		}
		p := core.Point{Accel: a, Sched: s, Layer: layer}
		x = append(x, core.Transform(features, p))
		edp = append(edp, c.EDP())
		delay = append(delay, c.DelayCycles)
	}

	split := samples * 9 / 10
	kernels := []gp.Kernel{gp.Linear{Bias: 1}, gp.Matern52{LengthScale: 1, Variance: 1}}
	var out []SurrogateResult
	for _, k := range kernels {
		r, err := evalKernel(k, x, edp, delay, split)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func evalKernel(k gp.Kernel, x [][]float64, edp, delay []float64, split int) (SurrogateResult, error) {
	res := SurrogateResult{Kernel: k.Name(), TrainSize: split, TestSize: len(x) - split}

	predict := func(target []float64) ([]float64, error) {
		// Targets are fit in log space, mirroring daBO.
		logT := make([]float64, split)
		for i := range logT {
			logT[i] = logOf(target[i])
		}
		model := gp.New(k, 1e-4)
		if err := model.Fit(x[:split], logT); err != nil {
			return nil, fmt.Errorf("exp: surrogate fit (%s): %w", k.Name(), err)
		}
		preds := make([]float64, 0, len(x)-split)
		for _, row := range x[split:] {
			m, _, err := model.Predict(row)
			if err != nil {
				return nil, err
			}
			preds = append(preds, m)
		}
		return preds, nil
	}

	predEDP, err := predict(edp)
	if err != nil {
		return res, err
	}
	predDel, err := predict(delay)
	if err != nil {
		return res, err
	}
	trueEDP := logSlice(edp[split:])
	trueDel := logSlice(delay[split:])
	res.SpearmanEDP = stats.Spearman(predEDP, trueEDP)
	res.SpearmanDel = stats.Spearman(predDel, trueDel)
	res.TopQuintile = stats.TopQuantileOverlap(predEDP, trueEDP, 0.2)
	return res, nil
}

func logOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}

func logSlice(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = logOf(x)
	}
	return out
}
