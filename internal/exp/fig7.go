package exp

import (
	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/workload"
)

// Fig7Result carries both halves of Figure 7: cloud-scale co-design
// minimizing EDP (top graphs) and delay (bottom graphs), against the
// scaled-up hand-designed accelerators. The prior tools are absent, as in
// the paper ("they do not support cloud-scale accelerators
// out-of-the-box").
type Fig7Result struct {
	EDP   []Row
	Delay []Row
}

// Fig7 reproduces Figure 7. Per the paper, the only change from the edge
// experiments is the parameter ranges — the feature space and BO
// configuration are untouched.
func Fig7(cfg Config) (Fig7Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Fig7Result{}, err
	}
	cfg.Scale = "cloud"
	var out Fig7Result
	cfg.Objective = core.MinEDP
	if out.EDP, err = fig7Half(cfg); err != nil {
		return out, err
	}
	cfg.Objective = core.MinDelay
	if out.Delay, err = fig7Half(cfg); err != nil {
		return out, err
	}
	return out, nil
}

func fig7Half(cfg Config) ([]Row, error) {
	models, err := cfg.models()
	if err != nil {
		return nil, err
	}
	baselines, err := hw.BaselinesFor(cfg.Scale)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, m := range models {
		single := []workload.Model{m}
		objs, err := cfg.trialObjectives(single, core.NewSpotlight())
		if err != nil {
			return nil, err
		}
		rows = append(rows, summaryRow(m.Name, "Spotlight", objs))
		for _, b := range baselines {
			objs, err := cfg.baselineObjectives(single, b)
			if err != nil {
				return nil, err
			}
			rows = append(rows, summaryRow(m.Name, b.Name, objs))
		}
	}
	normalizeRows(rows, "Spotlight")
	return rows, nil
}
