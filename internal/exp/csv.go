package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteRows emits the grouped-bar rows in the CSV format of the paper's
// compare-ae.sh script: configuration, min, max, median, and median
// normalized to Spotlight.
func WriteRows(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "config", "min", "max", "median", "normalized"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Model, r.Config,
			formatG(r.Min), formatG(r.Max), formatG(r.Median), formatG(r.Normalized),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable emits an arbitrary header + rows table as CSV.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("exp: row has %d fields, header has %d", len(r), len(header))
		}
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
