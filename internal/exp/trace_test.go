package exp

import (
	"bytes"
	"testing"

	"spotlight/internal/obs"
)

// TestFig6CSVIdenticalTracedUntraced is the figure-level determinism
// proof: the Fig6 CSV is byte-identical whether or not a run is traced,
// at one worker and at eight. This is the property the CI smoke job
// checks end to end through the CLI; here it is pinned at the library
// level so a violation names the offending package, not the binary.
func TestFig6CSVIdenticalTracedUntraced(t *testing.T) {
	csvFor := func(tr obs.Tracer, workers int) []byte {
		cfg := tinyCfg()
		cfg.Tracer = tr
		cfg.Workers = workers
		rows, err := Fig6(cfg)
		if err != nil {
			t.Fatalf("Fig6 (workers=%d, traced=%v): %v", workers, obs.Enabled(tr), err)
		}
		var buf bytes.Buffer
		if err := WriteRows(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := csvFor(nil, 1)
	for _, workers := range []int{1, 8} {
		var trace bytes.Buffer
		sink := obs.NewJSONL(&trace)
		got := csvFor(sink, workers)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: traced Fig6 CSV differs from untraced baseline:\n%s\nvs\n%s",
				workers, got, ref)
		}
		if sink.Events() == 0 {
			t.Fatalf("workers=%d: traced run emitted no events", workers)
		}
	}
}
