package exp

import (
	"fmt"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/workload"
)

// DiscussionRow is one configuration's entry in the §VII-C analysis:
// throughput per Joule (MACs/nJ, weighted over the model's layers) and
// the input-reuse statistics (reads per fill) that the paper identifies
// as the source of Spotlight's advantage, plus the winning design's PE
// array shape (the paper notes Spotlight prefers long, narrow arrays).
type DiscussionRow struct {
	Config            string
	ThroughputPerJ    float64 // MACs per nJ
	RFInputReuse      float64 // layer-weighted mean reads-per-fill at RF
	L2InputReuse      float64 // layer-weighted mean reads-per-fill at L2
	ArrayHeight       int
	ArrayWidth        int
	RelThroughputPerJ float64 // Spotlight-Opt / this config
}

// Discussion reproduces the §VII-C comparison on one model (the paper
// uses ResNet-50): Spotlight-Opt against the three hand-designed
// accelerators, all under the layerwise software optimizer.
func Discussion(cfg Config, modelName string) ([]DiscussionRow, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	m, err := workload.ByName(modelName)
	if err != nil {
		return nil, err
	}

	rc, err := cfg.runConfig([]workload.Model{m}, 0)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(rc, core.NewSpotlight())
	if err != nil {
		return nil, fmt.Errorf("exp: discussion co-design: %w", err)
	}
	rows := []DiscussionRow{designRow("Spotlight-Opt", res.Best)}

	baselines, err := hw.BaselinesFor(cfg.Scale)
	if err != nil {
		return nil, err
	}
	for _, b := range baselines {
		brc := rc
		brc.SWConstraint = b.Constraint
		design, err := core.OptimizeSoftware(brc, core.NewSpotlight(), b.Accel)
		if err != nil {
			return nil, fmt.Errorf("exp: discussion baseline %s: %w", b.Name, err)
		}
		rows = append(rows, designRow(b.Name, design))
	}
	for i := range rows {
		if rows[i].ThroughputPerJ > 0 {
			rows[i].RelThroughputPerJ = rows[0].ThroughputPerJ / rows[i].ThroughputPerJ
		}
	}
	return rows, nil
}

// designRow aggregates a design's layer costs into a DiscussionRow.
func designRow(name string, d core.Design) DiscussionRow {
	var macs, energy, rfReuse, l2Reuse, weight float64
	for _, lr := range d.Layers {
		rep := float64(lr.Layer.Repeat)
		macs += rep * float64(lr.Layer.MACs())
		energy += rep * lr.Cost.EnergyNJ
		rfReuse += rep * lr.Cost.RFInputReuse
		l2Reuse += rep * lr.Cost.L2InputReuse
		weight += rep
	}
	row := DiscussionRow{
		Config:      name,
		ArrayHeight: d.Accel.Height(),
		ArrayWidth:  d.Accel.Width,
	}
	if energy > 0 {
		row.ThroughputPerJ = macs / energy
	}
	if weight > 0 {
		row.RFInputReuse = rfReuse / weight
		row.L2InputReuse = l2Reuse / weight
	}
	return row
}
