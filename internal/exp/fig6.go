package exp

import (
	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/search"
	"spotlight/internal/workload"
)

// Fig6 reproduces Figure 6: edge-scale single-model co-design, comparing
// Spotlight against the three hand-designed accelerators (each scheduled
// by daBO_SW under its own dataflow constraint) and the two prior
// HW/SW co-design tools (ConfuciuX and HASCO). The paper's figure reports
// delay; the Objective in cfg selects delay or EDP (the paper notes the
// EDP trends are identical).
//
// One Row per (model, configuration); error bars are min/max of trials.
func Fig6(cfg Config) ([]Row, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	models, err := cfg.models()
	if err != nil {
		return nil, err
	}
	baselines, err := hw.BaselinesFor(cfg.Scale)
	if err != nil {
		return nil, err
	}

	var rows []Row
	for _, m := range models {
		single := []workload.Model{m}

		objs, err := cfg.trialObjectives(single, core.NewSpotlight())
		if err != nil {
			return nil, err
		}
		rows = append(rows, summaryRow(m.Name, "Spotlight", objs))

		for _, b := range baselines {
			objs, err := cfg.baselineObjectives(single, b)
			if err != nil {
				return nil, err
			}
			rows = append(rows, summaryRow(m.Name, b.Name, objs))
		}

		for _, tool := range []core.Strategy{search.NewConfuciuX(), search.NewHASCO()} {
			if !toolSupports(tool.Name(), m.Name) {
				continue // the paper's missing bars: tool limitations
			}
			objs, err := cfg.trialObjectives(single, tool)
			if err != nil {
				return nil, err
			}
			rows = append(rows, summaryRow(m.Name, tool.Name(), objs))
		}
	}
	normalizeRows(rows, "Spotlight")
	return rows, nil
}

// toolSupports mirrors the input limitations the paper reports for the
// prior tools: HASCO does not accept VGG16, MnasNet, or Transformer, and
// ConfuciuX cannot optimize Transformer, hence the missing bars in
// Figure 6.
func toolSupports(tool, model string) bool {
	switch tool {
	case "HASCO":
		switch model {
		case "VGG16", "MnasNet", "Transformer":
			return false
		}
	case "ConfuciuX":
		if model == "Transformer" {
			return false
		}
	}
	return true
}
