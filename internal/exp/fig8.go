package exp

import (
	"fmt"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/workload"
)

// Fig8Result carries both halves of Figure 8 (EDP and delay) for the
// three Spotlight deployment scenarios of §VII-B — Spotlight-Single
// (per-model co-design), Spotlight-Multi (one accelerator co-designed
// with all models), Spotlight-General (co-designed with three models,
// evaluated on the held-out two) — alongside the hand-designed baselines.
type Fig8Result struct {
	EDP   []Row
	Delay []Row
}

// generalDesignModels are the design-time models of the generalization
// scenario; the held-out models are the remaining two.
var generalDesignModels = []string{"VGG16", "ResNet-50", "MobileNetV2"}

// Fig8 reproduces Figure 8.
func Fig8(cfg Config) (Fig8Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Fig8Result{}, err
	}
	var out Fig8Result
	cfg.Objective = core.MinEDP
	if out.EDP, err = fig8Half(cfg); err != nil {
		return out, err
	}
	cfg.Objective = core.MinDelay
	if out.Delay, err = fig8Half(cfg); err != nil {
		return out, err
	}
	return out, nil
}

func fig8Half(cfg Config) ([]Row, error) {
	models, err := cfg.models()
	if err != nil {
		return nil, err
	}

	perModel := map[string]map[string][]float64{} // model -> config -> trials
	record := func(model, config string, v float64) {
		if perModel[model] == nil {
			perModel[model] = map[string][]float64{}
		}
		perModel[model][config] = append(perModel[model][config], v)
	}

	// Spotlight-Single: one co-design per model.
	for _, m := range models {
		objs, err := cfg.trialObjectives([]workload.Model{m}, core.NewSpotlight())
		if err != nil {
			return nil, err
		}
		for _, v := range objs {
			record(m.Name, "Spotlight-Single", v)
		}
	}

	// Spotlight-Multi: co-design with every model simultaneously, then
	// re-run the layerwise software optimizer per model on the result.
	for t := 0; t < cfg.Trials; t++ {
		accel, err := codesignAccel(cfg, models, t)
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			v, err := softwareOnlyObjective(cfg, accel, m, t)
			if err != nil {
				return nil, err
			}
			record(m.Name, "Spotlight-Multi", v)
		}
	}

	// Spotlight-General: co-design with the three design-time models and
	// evaluate the held-out models on the resulting accelerator.
	designSet := map[string]bool{}
	for _, n := range generalDesignModels {
		designSet[n] = true
	}
	var design []workload.Model
	var heldOut []workload.Model
	for _, m := range models {
		if designSet[m.Name] {
			design = append(design, m)
		} else {
			heldOut = append(heldOut, m)
		}
	}
	if len(design) > 0 && len(heldOut) > 0 {
		for t := 0; t < cfg.Trials; t++ {
			accel, err := codesignAccel(cfg, design, t)
			if err != nil {
				return nil, err
			}
			for _, m := range heldOut {
				v, err := softwareOnlyObjective(cfg, accel, m, t)
				if err != nil {
					return nil, err
				}
				record(m.Name, "Spotlight-General", v)
			}
		}
	}

	// Hand-designed baselines (programmable, designed to generalize).
	baselines, err := hw.BaselinesFor(cfg.Scale)
	if err != nil {
		return nil, err
	}
	for _, m := range models {
		for _, b := range baselines {
			objs, err := cfg.baselineObjectives([]workload.Model{m}, b)
			if err != nil {
				return nil, err
			}
			for _, v := range objs {
				record(m.Name, b.Name, v)
			}
		}
	}

	order := []string{"Spotlight-Single", "Spotlight-Multi", "Spotlight-General",
		"Eyeriss-like", "NVDLA-like", "MAERI-like"}
	var rows []Row
	for _, m := range models {
		for _, config := range order {
			if objs := perModel[m.Name][config]; len(objs) > 0 {
				rows = append(rows, summaryRow(m.Name, config, objs))
			}
		}
	}
	normalizeRows(rows, "Spotlight-Single")
	return rows, nil
}

// codesignAccel runs one Spotlight co-design trial over the given models
// and returns the winning accelerator.
func codesignAccel(cfg Config, models []workload.Model, trial int) (hw.Accel, error) {
	rc, err := cfg.runConfig(models, trial)
	if err != nil {
		return hw.Accel{}, err
	}
	res, err := core.Run(rc, core.NewSpotlight())
	if err != nil {
		return hw.Accel{}, fmt.Errorf("exp: multi-model co-design trial %d: %w", trial, err)
	}
	return res.Best.Accel, nil
}

// softwareOnlyObjective reruns daBO_SW for one model on a fixed
// accelerator and returns the model's objective.
func softwareOnlyObjective(cfg Config, accel hw.Accel, m workload.Model, trial int) (float64, error) {
	rc, err := cfg.runConfig([]workload.Model{m}, trial)
	if err != nil {
		return 0, err
	}
	design, err := core.OptimizeSoftware(rc, core.NewSpotlight(), accel)
	if err != nil {
		return 0, fmt.Errorf("exp: software-only pass for %s: %w", m.Name, err)
	}
	return design.Objective, nil
}
