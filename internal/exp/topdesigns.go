package exp

import (
	"fmt"
	"math"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// TopDesignEntry is one of the search's best designs re-evaluated on the
// second analytical model.
type TopDesignEntry struct {
	Rank      int     // 1-based rank under the primary model
	Primary   float64 // objective under the primary model
	Secondary float64 // objective under the second model (-1 if infeasible there)
	Accel     string
}

// TopDesignResult is the §VII-F workflow the paper recommends before
// committing a design to another medium: carry the top ~20 designs
// forward and re-evaluate all of them rather than trusting the single
// optimum.
type TopDesignResult struct {
	Model     string
	Entries   []TopDesignEntry
	Evaluable int     // designs the second model could cost at all
	Spearman  float64 // rank agreement between the two models on the top set
	BestRank  int     // rank (under the primary) of the second model's favorite; 0 if none evaluable
}

// TopDesignCrossCheck co-designs an accelerator for the model with the
// primary cost model, then ports every retained top design to the
// independent second model: the hardware is fixed, and the software
// schedules are re-optimized under the second model's assumptions —
// what one would do when moving a design to a new evaluation medium
// (the second model's double-buffering rejects most schedules tuned for
// the primary model, so re-tuning, not re-costing, is the meaningful
// comparison).
func TopDesignCrossCheck(cfg Config, modelName string) (TopDesignResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return TopDesignResult{}, err
	}
	m, err := workload.ByName(modelName)
	if err != nil {
		return TopDesignResult{}, err
	}
	rc, err := cfg.runConfig([]workload.Model{m}, 0)
	if err != nil {
		return TopDesignResult{}, err
	}
	res, err := core.Run(rc, core.NewSpotlight())
	if err != nil {
		return TopDesignResult{}, fmt.Errorf("exp: top-design co-design: %w", err)
	}

	// Port each top design: same hardware, schedules re-optimized under
	// the second model — with a memo cache, because the ports re-cost
	// heavily overlapping schedule sets across the top designs.
	portCfg := rc
	portPipe, err := eval.FromSpec("timeloop,cache", eval.SpecOptions{})
	if err != nil {
		return TopDesignResult{}, err
	}
	portCfg.Eval = portPipe
	out := TopDesignResult{Model: m.Name}
	var primaryVals, secondaryVals []float64
	bestSecondary := math.Inf(1)
	for rank, d := range res.Top {
		entry := TopDesignEntry{
			Rank:      rank + 1,
			Primary:   d.Objective,
			Secondary: -1,
			Accel:     d.Accel.String(),
		}
		ported, err := core.OptimizeSoftware(portCfg, core.NewSpotlight(), d.Accel)
		if err == nil {
			entry.Secondary = ported.Objective
			out.Evaluable++
			primaryVals = append(primaryVals, d.Objective)
			secondaryVals = append(secondaryVals, ported.Objective)
			if ported.Objective < bestSecondary {
				bestSecondary = ported.Objective
				out.BestRank = rank + 1
			}
		}
		out.Entries = append(out.Entries, entry)
	}
	if len(primaryVals) >= 2 {
		out.Spearman = stats.Spearman(primaryVals, secondaryVals)
	}
	return out, nil
}
