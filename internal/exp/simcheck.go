package exp

import (
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/sim"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// SimCheckResult validates the analytical model against the trace-driven
// simulator and quantifies the headroom of multi-tile scratchpad caching
// (the "more accurate backend" direction of §VIII).
type SimCheckResult struct {
	Schedules int // schedules both tools accepted
	// ExactMatches counts schedules where the simulator's DRAM traffic
	// under the analytical residency assumption equals the model's
	// prediction byte-for-byte. Any mismatch is a model bug.
	ExactMatches int
	// CacheSavings summarizes (1 − fullCacheBytes/singleSetBytes) across
	// schedules: how much traffic LRU tile caching removes beyond the
	// analytical single-working-set assumption.
	CacheSavings stats.Summary
}

// SimCheck runs the validation on random schedules of a small layer.
func SimCheck(cfg Config, samples int) (SimCheckResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return SimCheckResult{}, err
	}
	if samples <= 0 {
		samples = 60
	}
	space, _, err := cfg.spaceAndBudget()
	if err != nil {
		return SimCheckResult{}, err
	}
	layer := workload.Conv("simcheck", 1, 64, 32, 3, 3, 34, 34) // ~120 KB working set: larger than most L2 samples
	model := maestro.New()
	free := sched.Free()
	rng := cfg.rngFor(19)

	var res SimCheckResult
	var savings []float64
	attempts := 0
	for res.Schedules < samples && attempts < samples*50 {
		attempts++
		a := space.Random(rng)
		s := free.Random(rng, layer, a.RFBytesPerPE(), a.L2Bytes())
		cost, err := model.Evaluate(a, s, layer)
		if err != nil {
			continue
		}
		single, err := sim.Simulate(a, s, layer, sim.Options{SingleWorkingSet: true})
		if err != nil {
			continue
		}
		full, err := sim.Simulate(a, s, layer, sim.Options{})
		if err != nil {
			continue
		}
		res.Schedules++
		if single.DRAMBytes() == cost.DRAMBytes { //lint:allow floateq(counts bit-exact analytical-vs-simulated agreement; exactness is the statistic being measured)
			res.ExactMatches++
		}
		if sb := single.DRAMBytes(); sb > 0 {
			savings = append(savings, 1-full.DRAMBytes()/sb)
		}
	}
	if len(savings) > 0 {
		res.CacheSavings = stats.Summarize(savings)
	}
	return res, nil
}
