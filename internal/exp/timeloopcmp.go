package exp

import (
	"spotlight/internal/eval"
	"spotlight/internal/sched"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// CrossModelResult is the §VII-F cross-validation: for each layer,
// `samplesPerLayer` random schedules are costed under both analytical
// models, the results are ranked, and the overlap of the top-20 and
// bottom-20 sets is measured. The paper reports ~35% average overlap —
// partial agreement showing the search does not overfit one model.
type CrossModelResult struct {
	Model          string
	Layers         int
	MeanTopOverlap float64 // average overlap of best-20% sets
	MeanBotOverlap float64 // average overlap of worst-20% sets
	MeanSpearman   float64 // average rank correlation across layers
}

// CrossModelAgreement runs the §VII-F experiment for one DL model.
func CrossModelAgreement(cfg Config, modelName string, samplesPerLayer int) (CrossModelResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return CrossModelResult{}, err
	}
	if samplesPerLayer < 20 {
		samplesPerLayer = 20
	}
	m, err := workload.ByName(modelName)
	if err != nil {
		return CrossModelResult{}, err
	}
	space, _, err := cfg.spaceAndBudget()
	if err != nil {
		return CrossModelResult{}, err
	}

	// Both models come from the backend registry, so this comparison
	// exercises the same constructors every other consumer uses.
	primary, err := eval.Open("maestro")
	if err != nil {
		return CrossModelResult{}, err
	}
	second, err := eval.Open("timeloop")
	if err != nil {
		return CrossModelResult{}, err
	}
	free := sched.Free()
	rng := cfg.rngFor(17)

	res := CrossModelResult{Model: m.Name}
	var sumTop, sumBot, sumRho float64
	for _, l := range m.Layers {
		var pv, sv []float64
		attempts := 0
		for len(pv) < samplesPerLayer && attempts < samplesPerLayer*50 {
			attempts++
			a := space.Random(rng)
			// Halved budgets keep most samples inside both models'
			// feasible regions (the second model double-buffers).
			s := free.Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
			cp, err1 := primary.Evaluate(a, s, l)
			cs, err2 := second.Evaluate(a, s, l)
			if err1 != nil || err2 != nil {
				continue
			}
			pv = append(pv, cfg.Objective.LayerCost(cp))
			sv = append(sv, cfg.Objective.LayerCost(cs))
		}
		if len(pv) < samplesPerLayer/2 {
			continue // layer too constrained to sample; skip like the paper's invalid regions
		}
		sumTop += stats.TopQuantileOverlap(pv, sv, 0.2)
		sumBot += stats.BottomQuantileOverlap(pv, sv, 0.2)
		sumRho += stats.Spearman(pv, sv)
		res.Layers++
	}
	if res.Layers > 0 {
		res.MeanTopOverlap = sumTop / float64(res.Layers)
		res.MeanBotOverlap = sumBot / float64(res.Layers)
		res.MeanSpearman = sumRho / float64(res.Layers)
	}
	return res, nil
}
