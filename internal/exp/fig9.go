package exp

import (
	"fmt"

	"spotlight/internal/core"
	"spotlight/internal/stats"
	"spotlight/internal/workload"
)

// Fig9Result is the per-model relative importance of each daBO_SW
// feature, normalized so each model's most important feature is 1 —
// exactly how Figure 9 presents it.
type Fig9Result struct {
	Features   []string
	Importance map[string][]float64 // model name -> normalized importances
}

// Fig9 reproduces Figure 9: for each model, run single-model co-design,
// then compute permutation importance of every software feature on the
// surrogates trained while scheduling the winning accelerator's layers,
// averaged across layers.
func Fig9(cfg Config) (Fig9Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Fig9Result{}, err
	}
	models, err := cfg.models()
	if err != nil {
		return Fig9Result{}, err
	}
	out := Fig9Result{Importance: map[string][]float64{}}
	for _, m := range models {
		names, imp, err := modelImportance(cfg, m)
		if err != nil {
			return Fig9Result{}, err
		}
		if out.Features == nil {
			out.Features = names
		}
		out.Importance[m.Name] = stats.Normalize(imp)
	}
	return out, nil
}

// modelImportance co-designs an accelerator for the model, then runs one
// fresh daBO_SW per layer on that accelerator, measuring feature
// importance on each layer's trained surrogate and averaging.
func modelImportance(cfg Config, m workload.Model) ([]string, []float64, error) {
	rc, err := cfg.runConfig([]workload.Model{m}, 0)
	if err != nil {
		return nil, nil, err
	}
	strat := core.NewSpotlight()
	res, err := core.Run(rc, strat)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: fig9 co-design for %s: %w", m.Name, err)
	}

	rng := cfg.rngFor(11)
	var names []string
	var total []float64
	layersCounted := 0
	for _, l := range m.Layers {
		core.OptimizeLayer(rc, strat, rng, res.Best.Accel, l, rc.SWSamples)
		n, imp, ok := strat.LastSWImportance(rng)
		if !ok {
			continue
		}
		if names == nil {
			names = n
			total = make([]float64, len(imp))
		}
		for i, v := range imp {
			total[i] += v
		}
		layersCounted++
	}
	if layersCounted == 0 {
		return nil, nil, fmt.Errorf("exp: fig9: no surrogate trained for %s", m.Name)
	}
	for i := range total {
		total[i] /= float64(layersCounted)
	}
	return names, total, nil
}
