package engine

import (
	"errors"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestExitCode(t *testing.T) {
	if got := ExitCode(os.Interrupt); got != 130 {
		t.Fatalf("ExitCode(SIGINT) = %d, want 130", got)
	}
	// The old cmd/experiments handler exited 130 for every signal; the
	// shared helper reports SIGTERM by its own convention. This is the
	// drift fix.
	if got := ExitCode(syscall.SIGTERM); got != 143 {
		t.Fatalf("ExitCode(SIGTERM) = %d, want 143", got)
	}
	if got := ExitCode(fakeSignal{}); got != 1 {
		t.Fatalf("ExitCode(unknown) = %d, want 1", got)
	}
}

type fakeSignal struct{}

func (fakeSignal) String() string { return "fake" }
func (fakeSignal) Signal()        {}

// syncWriter lets the signal goroutine and the test share a transcript.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestFlushOnSignalRunsFlushersInOrderAndExits141 delivers a real
// SIGTERM to the process and asserts the full contract: flushers run in
// registration order, a flusher error is reported without stopping the
// rest, and exit is called with 143.
func TestFlushOnSignalFlushesAndExits(t *testing.T) {
	var (
		mu    sync.Mutex
		order []string
	)
	exited := make(chan int, 1)
	stderr := &syncWriter{}
	stop := FlushOnSignal("testprog", stderr, func(code int) { exited <- code },
		Flusher{Name: "journal", Flush: func() error {
			mu.Lock()
			order = append(order, "journal")
			mu.Unlock()
			return errors.New("disk full")
		}},
		Flusher{Name: "trace", Flush: func() error {
			mu.Lock()
			order = append(order, "trace")
			mu.Unlock()
			return nil
		}},
	)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 143 {
			t.Fatalf("exit code = %d, want 143 for SIGTERM", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler never called exit")
	}
	mu.Lock()
	defer mu.Unlock()
	if want := []string{"journal", "trace"}; len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("flushers ran as %v, want %v — an error must not stop later flushers", order, want)
	}
	out := stderr.String()
	if !strings.Contains(out, "testprog: terminated: flushing durable state") {
		t.Fatalf("missing flush banner in stderr: %q", out)
	}
	if !strings.Contains(out, "testprog: journal: disk full") {
		t.Fatalf("flusher error not reported: %q", out)
	}
}

// TestFlushOnSignalStopUninstalls proves stop() releases the handler: a
// signal delivered afterwards must not reach the (former) handler. The
// test re-registers its own catcher so the SIGTERM does not kill the
// test process.
func TestFlushOnSignalStopUninstalls(t *testing.T) {
	exited := make(chan int, 1)
	stop := FlushOnSignal("testprog", &syncWriter{}, func(code int) { exited <- code })
	stop()

	// Catch the signal ourselves so default termination doesn't apply.
	recv := make(chan os.Signal, 1)
	signal.Notify(recv, syscall.SIGTERM)
	defer signal.Stop(recv)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("test's own signal registration never fired")
	}
	select {
	case code := <-exited:
		t.Fatalf("stopped handler still called exit(%d)", code)
	case <-time.After(100 * time.Millisecond):
	}
}
