package engine

import (
	"bytes"
	"context"
	"testing"

	"spotlight/internal/eval"
	"spotlight/internal/exp"
)

// tinySpec is a fast experiment spec for structural tests.
func tinySpec() JobSpec {
	return JobSpec{
		Kind:      KindExperiment,
		Steps:     []string{"fig6"},
		Models:    []string{"Transformer"},
		HWSamples: 2,
		SWSamples: 4,
		Trials:    1,
		Eval:      "sim,cache",
	}
}

// simcheckSpec is the cheapest experiment spec (~1s): use it in tests
// that only exercise job-lifecycle structure, not artifact content.
func simcheckSpec() JobSpec {
	s := tinySpec()
	s.Steps = []string{"simcheck"}
	return s
}

func testPipeline(t *testing.T, spec string) *eval.Pipeline {
	t.Helper()
	p, err := eval.FromSpec(spec, eval.SpecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("closing pipeline: %v", err)
		}
	})
	return p
}

// TestRunExperimentsFig6MatchesDirectHarness is the relocation proof at
// unit scope: the engine's fig6 artifact must be byte-identical to
// calling the exp harness directly with the same configuration — the
// engine is the CLI orchestration moved, not reimplemented. (The CI
// servesmoke gate proves the same end-to-end over HTTP.)
func TestRunExperimentsFig6MatchesDirectHarness(t *testing.T) {
	spec := tinySpec()
	results, err := RunExperiments(context.Background(), spec, ExperimentOptions{
		Eval: testPipeline(t, spec.Eval),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Key != "fig6" {
		t.Fatalf("results = %+v, want one fig6 step", results)
	}
	arts := results[0].Artifacts
	if len(arts) != 1 || arts[0].Name != "fig6.csv" {
		t.Fatalf("artifacts = %v, want [fig6.csv]", arts)
	}

	// The direct path: same spec translated the same way, fresh pipeline
	// so nothing is shared with the engine run.
	cfg, err := spec.Normalized().ExpConfig(testPipeline(t, spec.Eval), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exp.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := exp.WriteRows(&want, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(arts[0].Data, want.Bytes()) {
		t.Fatalf("engine fig6.csv differs from direct harness output:\nengine:\n%s\ndirect:\n%s",
			arts[0].Data, want.Bytes())
	}
}

// TestRunExperimentsCanonicalOrderAndCancellation: steps run in
// canonical order regardless of request order, and a canceled context
// stops the run at the next step boundary with the completed results
// intact.
func TestRunExperimentsCanonicalOrder(t *testing.T) {
	spec := tinySpec()
	spec.Steps = []string{"simcheck", "fig6"} // reversed on purpose
	var order []string
	_, err := RunExperiments(context.Background(), spec, ExperimentOptions{
		Eval:        testPipeline(t, spec.Eval),
		OnStepStart: func(key string) { order = append(order, key) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fig6" || order[1] != "simcheck" {
		t.Fatalf("steps ran as %v, want [fig6 simcheck]", order)
	}
}

func TestRunExperimentsStopsOnCanceledContext(t *testing.T) {
	spec := tinySpec()
	spec.Steps = []string{"simcheck", "kernels"}
	ctx, cancel := context.WithCancel(context.Background())
	var done []string
	results, err := RunExperiments(ctx, spec, ExperimentOptions{
		Eval: testPipeline(t, spec.Eval),
		OnStepDone: func(res StepResult) error {
			done = append(done, res.Key)
			cancel() // cancel after the first step completes
			return nil
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(done) != 1 || done[0] != "simcheck" {
		t.Fatalf("completed steps %v, want [simcheck]", done)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want the 1 completed before cancellation", len(results))
	}
}
