package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// The repo has two legitimate shutdown-signal idioms, and before this
// file each CLI carried its own copy:
//
//   - Cooperative: cmd/spotlight turns SIGINT/SIGTERM into context
//     cancellation; core.RunContext stops at the next sample boundary,
//     deferred handlers flush the disk-cache journal and trace sink, and
//     the partial result is reported. ShutdownContext is that idiom.
//   - Flush-and-exit: cmd/experiments' figure drivers have no
//     cancellation plumbing, so its handler flushes durable state (the
//     evaluation journal, the trace sink) and exits immediately.
//     FlushOnSignal is that idiom.
//
// The duplicated copies had drifted: the experiments handler exited 130
// for every signal, misreporting SIGTERM (whose conventional status is
// 143) as SIGINT to batch schedulers that distinguish them. ExitCode
// fixes that drift in the one shared implementation.

// ShutdownContext returns a context canceled on SIGINT or SIGTERM (and
// when the parent is canceled). SIGTERM matters for batch schedulers and
// container runtimes, which send it — not SIGINT — before killing. The
// returned stop func releases the signal registration.
func ShutdownContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Flusher is one named cleanup step run by FlushOnSignal before exit:
// typically a pipeline's journal flush or a trace sink close.
type Flusher struct {
	Name  string
	Flush func() error
}

// ExitCode returns the conventional exit status for dying to a fatal
// signal: 128 + the signal number (130 for SIGINT, 143 for SIGTERM),
// or 1 for anything unrecognized.
func ExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}

// FlushOnSignal installs a SIGINT/SIGTERM handler that runs the flushers
// in order — reporting each failure to stderr as "<prog>: <name>: <err>"
// but never stopping early, since every flusher guards independent
// durable state — and then calls exit with the signal's conventional
// status. exit is a parameter (the CLIs pass os.Exit) both for
// testability and because killing the process is an entry-point
// decision: library code, this package included, must not call os.Exit
// (enforced by spotlightlint's exitcheck).
//
// The returned stop func uninstalls the handler; callers defer it so a
// normal exit path stops racing the signal goroutine. Flushers must
// tolerate being called concurrently with (or after) the main goroutine's
// own cleanup — eval.Pipeline.Close and obs.Telemetry.Close both do.
func FlushOnSignal(prog string, stderr io.Writer, exit func(int), flushers ...Flusher) (stop func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			fmt.Fprintf(stderr, "%s: %v: flushing durable state before exit\n", prog, sig)
			for _, f := range flushers {
				if err := f.Flush(); err != nil {
					fmt.Fprintf(stderr, "%s: %s: %v\n", prog, f.Name, err)
				}
			}
			exit(ExitCode(sig))
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}
