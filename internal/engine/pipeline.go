package engine

import (
	"errors"
	"sort"
	"sync"

	"spotlight/internal/eval"
)

// PipelineSet builds and shares evaluation pipelines by spec string.
// Every consumer of the same spec — the two steps of one experiment job,
// or two concurrent spotlightd jobs — gets the same *eval.Pipeline, so
// the memo cache (and the persistent disk journal under it) deduplicates
// evaluations across all of them. Sharing is sound because cache and
// stats layers are trajectory-neutral by the eval package's contract:
// a shared pipeline returns bit-identical results to a private one.
type PipelineSet struct {
	opts eval.SpecOptions

	mu    sync.Mutex
	pipes map[string]*eval.Pipeline
}

// NewPipelineSet returns an empty set. opts is the template every
// pipeline is built with (tracer, cache directory, guard policy);
// FromSpec's per-spec behavior — EnsureStats, diskcache insertion — is
// applied per Get.
func NewPipelineSet(opts eval.SpecOptions) *PipelineSet {
	return &PipelineSet{opts: opts, pipes: map[string]*eval.Pipeline{}}
}

// Get returns the pipeline for spec, building it on first use. Errors
// (unknown backend, malformed middleware token) are not cached: a retry
// with a corrected spec is unaffected by earlier failures.
func (ps *PipelineSet) Get(spec string) (*eval.Pipeline, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.pipes == nil {
		return nil, errors.New("engine: pipeline set is closed")
	}
	if p, ok := ps.pipes[spec]; ok {
		return p, nil
	}
	p, err := eval.FromSpec(spec, ps.opts)
	if err != nil {
		return nil, err
	}
	ps.pipes[spec] = p
	return p, nil
}

// Report renders the stats/cache/disk counters of every pipeline in the
// set, in spec order, for the CLIs' -eval-stats flag.
func (ps *PipelineSet) Report() string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := ""
	for _, spec := range ps.sortedSpecs() {
		out += ps.pipes[spec].Report()
	}
	return out
}

// Close flushes and closes every pipeline (today: their persistent cache
// journals), in spec order, and marks the set closed. The first error is
// returned; per the degradation contract it signals records that may not
// have reached disk, never a failed run.
func (ps *PipelineSet) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var firstErr error
	for _, spec := range ps.sortedSpecs() {
		if err := ps.pipes[spec].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ps.pipes = nil
	return firstErr
}

// sortedSpecs returns the built specs sorted, so reporting and close
// order are deterministic. Callers hold ps.mu.
func (ps *PipelineSet) sortedSpecs() []string {
	specs := make([]string, 0, len(ps.pipes))
	for spec := range ps.pipes { //lint:allow maporder(sorted before use on the next line)
		specs = append(specs, spec)
	}
	sort.Strings(specs)
	return specs
}
