package engine

import (
	"fmt"
	"io"

	"spotlight/internal/obs"
)

// StartCLITelemetry opens the telemetry bundle a CLI's -trace and
// -metrics-addr flags ask for and returns it together with the shared
// shutdown hook both CLIs used to duplicate: the returned closer flushes
// the sinks, reports a sticky trace-write error as "<prog>: trace: ...",
// and otherwise prints the final event count for a -trace run. The
// metrics banner is printed immediately, since the bound address (":0"
// picks a port) is only interesting while the process is alive.
func StartCLITelemetry(prog, traceFile, metricsAddr string, stderr io.Writer) (*obs.Telemetry, func(), error) {
	tele, err := obs.StartTelemetry(traceFile, metricsAddr)
	if err != nil {
		return nil, nil, err
	}
	if tele.Addr != "" {
		fmt.Fprintf(stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", tele.Addr)
	}
	closeAndReport := func() {
		if cerr := tele.Close(); cerr != nil {
			fmt.Fprintf(stderr, "%s: trace: %v\n", prog, cerr)
		} else if traceFile != "" {
			fmt.Fprintf(stderr, "trace: %d events written to %s\n", tele.Events(), traceFile)
		}
	}
	return tele, closeAndReport, nil
}
