package engine

import (
	"reflect"
	"strings"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/workload"
)

// ModelObjectiveLines replaced a direct range over core.ModelObjectives'
// map, which printed multi-model breakdowns in a random order per run.
// With seven models, 50 consecutive identical orderings cannot happen by
// accident under map iteration, so this pins the fix.
func TestModelObjectiveLinesDeterministicAndSorted(t *testing.T) {
	d := core.Design{}
	for i, m := range []string{"VGG16", "ResNet-50", "MobileNetV2", "MnasNet", "Transformer", "AlphaGoZero", "NCF"} {
		d.Layers = append(d.Layers, core.LayerResult{
			Model: m,
			Layer: workload.Layer{Name: "l0", Repeat: 1},
			Cost:  maestro.Cost{DelayCycles: float64(100 + i), EnergyNJ: float64(10 + i)},
		})
	}
	first := ModelObjectiveLines(core.MinDelay, d)
	if len(first) != 7 {
		t.Fatalf("got %d lines, want 7", len(first))
	}
	for i := 1; i < len(first); i++ {
		a := strings.Fields(first[i-1])[0]
		b := strings.Fields(first[i])[0]
		if a >= b {
			t.Fatalf("lines not model-sorted: %q before %q", a, b)
		}
	}
	for i := 0; i < 50; i++ {
		if again := ModelObjectiveLines(core.MinDelay, d); !reflect.DeepEqual(first, again) {
			t.Fatalf("iteration %d produced different line order:\n%v\nvs\n%v", i, first, again)
		}
	}
}
