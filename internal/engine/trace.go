package engine

import (
	"sync"
	"time"

	"spotlight/internal/obs"
)

// TraceBuffer is an in-memory obs.Tracer that retains a job's full event
// stream and lets subscribers (spotlightd's SSE handler) replay it from
// any position and block for more. It is the server-side counterpart of
// the -trace JSONL file: events carry the same stamps the JSONL sink
// would give them — Seq is a per-buffer monotone sequence, TMS is
// milliseconds since the buffer (i.e. the job) started — so the SSE wire
// format is the obs taxonomy verbatim, one JSON object per data line.
//
// Retention is unbounded by design: a job's trace is its run log, and
// the quick-scale jobs spotlightd serves emit thousands of events, not
// millions. Tracing stays observe-only — the buffer never feeds anything
// back into the run.
type TraceBuffer struct {
	start time.Time

	mu      sync.Mutex
	events  []obs.Event
	done    bool
	changed chan struct{} // closed and replaced on every append/End
}

// NewTraceBuffer returns an empty buffer whose TMS clock starts now.
func NewTraceBuffer() *TraceBuffer {
	return &TraceBuffer{start: obs.Now(), changed: make(chan struct{})}
}

// Enabled reports true: a buffer exists to record.
func (b *TraceBuffer) Enabled() bool { return true }

// Emit stamps and appends one event. Safe for concurrent use; events
// after End are dropped (the job is already terminal and subscribers
// have been released).
func (b *TraceBuffer) Emit(e obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	e.Seq = int64(len(b.events) + 1)
	e.TMS = obs.MS(obs.Since(b.start))
	b.events = append(b.events, e)
	b.notifyLocked()
}

// End marks the stream complete, waking every subscriber. Idempotent.
func (b *TraceBuffer) End() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.done = true
	b.notifyLocked()
}

// notifyLocked wakes blocked subscribers by closing the current change
// channel and installing a fresh one. Callers hold b.mu.
func (b *TraceBuffer) notifyLocked() {
	close(b.changed)
	b.changed = make(chan struct{})
}

// Since returns the events at positions >= i, whether the stream has
// ended, and a channel that closes on the next change. A subscriber
// loop is:
//
//	for i := 0; ; {
//		evs, done, more := buf.Since(i)
//		... write evs ...
//		i += len(evs)
//		if done && len(evs) == 0 { return }
//		if len(evs) == 0 { <-more }  // or select against the client ctx
//	}
//
// The returned slice is capped at its length, so the buffer appending
// more events never aliases into what a subscriber is still writing.
func (b *TraceBuffer) Since(i int) (events []obs.Event, done bool, more <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i > len(b.events) {
		i = len(b.events)
	}
	return b.events[i:len(b.events):len(b.events)], b.done, b.changed
}

// Len returns the number of events recorded so far.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}
