package engine

import (
	"testing"

	"spotlight/internal/obs"
)

// TestJobProgressSearch runs a small search job to completion and checks
// the progress snapshot: trial accounting against the spec's budget,
// throughput and cache figures sourced from the job's own registry, a
// frozen elapsed time, and no ETA once terminal.
func TestJobProgressSearch(t *testing.T) {
	// Mirror spotlightd's wiring: a server-wide tracer puts the Trace
	// middleware in the shared pipeline, so eval.done events exist to be
	// routed into each job's own registry via span threading.
	r := NewRunner(RunnerConfig{Concurrency: 1, Tracer: obs.NewMetricsTracer(obs.NewRegistry())})
	defer shutdownRunner(t, r)
	j, err := r.Submit(tinySearchSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	p := j.Progress()
	if p.ID != j.ID() || p.Kind != KindSearch || p.State != StateDone {
		t.Fatalf("progress identity wrong: %+v", p)
	}
	if p.TrialsTotal != 2 || p.TrialsDone != 2 {
		t.Errorf("trials = %d/%d, want 2/2", p.TrialsDone, p.TrialsTotal)
	}
	if p.BestObjective == nil {
		t.Error("no best objective after a completed search")
	}
	if p.Evals <= 0 {
		t.Errorf("evals = %d, want > 0", p.Evals)
	}
	if p.CacheHits+p.CacheMisses <= 0 {
		t.Error("no cache traffic recorded")
	}
	if p.CacheHitRate < 0 || p.CacheHitRate > 1 {
		t.Errorf("cache hit rate = %v, want within [0, 1]", p.CacheHitRate)
	}
	if p.ElapsedS <= 0 {
		t.Errorf("elapsed = %v, want > 0", p.ElapsedS)
	}
	if p.EvalsPerSec <= 0 {
		t.Errorf("evals/sec = %v, want > 0", p.EvalsPerSec)
	}
	if p.ETAS != 0 {
		t.Errorf("ETA = %v on a terminal job, want 0", p.ETAS)
	}
	if p.Events != j.Trace().Len() || p.Events == 0 {
		t.Errorf("events = %d, want the trace buffer's %d (> 0)", p.Events, j.Trace().Len())
	}

	// Elapsed froze at the terminal timestamp: two snapshots agree.
	if q := j.Progress(); q.ElapsedS != p.ElapsedS { //lint:allow floateq(frozen timestamps must yield the identical value, not a nearby one)
		t.Errorf("elapsed moved after terminal state: %v then %v", p.ElapsedS, q.ElapsedS)
	}
}

// TestJobTraceCarriesBalancedSpans proves every server job's trace is a
// well-formed span tree: a job root span plus trial spans, each closed
// exactly once, and the per-kind duration histograms land in the job's
// own registry.
func TestJobTraceCarriesBalancedSpans(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1, Tracer: obs.NewMetricsTracer(obs.NewRegistry())})
	defer shutdownRunner(t, r)
	j, err := r.Submit(tinySearchSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	events, _, _ := j.Trace().Since(0)
	open := map[int64]string{}
	starts, ends := 0, 0
	for _, e := range events {
		switch e.Type {
		case obs.SpanStart:
			if _, dup := open[e.Span]; dup {
				t.Fatalf("span id %d started twice", e.Span)
			}
			open[e.Span] = e.Detail
			starts++
		case obs.SpanEnd:
			if _, ok := open[e.Span]; !ok {
				t.Fatalf("span.end for unknown or closed span %d", e.Span)
			}
			delete(open, e.Span)
			ends++
		}
	}
	if starts == 0 {
		t.Fatal("trace carries no spans")
	}
	if starts != ends || len(open) != 0 {
		t.Fatalf("unbalanced spans: %d starts, %d ends, %d left open", starts, ends, len(open))
	}
	if n := j.Metrics().Counter("trace.span.start").Value(); int(n) != starts {
		t.Errorf("registry counted %d span.start, trace holds %d", n, starts)
	}
	if h := j.Metrics().Histogram("dur.span.trial"); h.Count() != 2 {
		t.Errorf("dur.span.trial observed %d durations, want 2", h.Count())
	}
}

// TestJobProgressPerJobIsolation: two identical jobs each account their
// own evaluation traffic in their own registry — the second job, served
// largely from the shared memo cache, sees its hits, not the first's.
func TestJobProgressPerJobIsolation(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1, Tracer: obs.NewMetricsTracer(obs.NewRegistry())})
	defer shutdownRunner(t, r)
	spec := tinySearchSpec(2)
	j1, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	p1, p2 := j1.Progress(), j2.Progress()
	if p1.Events == 0 || p2.Events == 0 {
		t.Fatalf("jobs carry no events: %d, %d", p1.Events, p2.Events)
	}
	if p2.CacheHits == 0 {
		t.Error("second identical job recorded no cache hits in its own registry")
	}
	if j1.Metrics() == j2.Metrics() {
		t.Error("jobs share a metrics registry; progress would blur across jobs")
	}
}
