// Package engine is the reusable run engine behind the CLIs and the
// spotlightd job server. Before it existed, cmd/spotlight and
// cmd/experiments each carried a private copy of the same orchestration:
// translating user-facing option strings into core/exp configurations,
// assembling the evaluation pipeline from a spec string, starting the
// telemetry bundle, wiring checkpoint/resume, and handling
// SIGINT/SIGTERM. This package is that orchestration, hoisted once:
//
//   - JobSpec is the serializable description of one unit of work — a
//     single co-design search (cmd/spotlight's domain) or a batch of
//     experiment steps (cmd/experiments' domain). Its fields map 1:1
//     onto the CLI flags and onto spotlightd's submit-body JSON, and
//     SearchConfig/ExpConfig are the one translation from spec to
//     core.RunConfig / exp.Config, so every entry point builds runs the
//     same way.
//   - RunSearch / RunExperiments execute a spec. They are relocations of
//     the CLI orchestration, not reimplementations: a fig6 CSV produced
//     through RunExperiments is byte-identical to the one the
//     pre-refactor CLI wrote, which is what lets spotlightd's smoke gate
//     diff a served artifact against the CLI's file.
//   - Runner is the job server core: a FIFO queue drained by a bounded
//     worker pool, per-job cancellation via core.RunContext, in-memory
//     checkpoint retention for resume, a per-job TraceBuffer feeding
//     SSE subscribers, and one shared PipelineSet so concurrent jobs
//     with the same eval spec share a memo cache (and disk journal) and
//     deduplicate evaluations.
//   - ShutdownContext / FlushOnSignal are the two signal-handling
//     idioms the CLIs used to duplicate (cooperative cancellation vs
//     flush-and-exit), each now with exactly one implementation.
//
// Everything here is orchestration: the determinism contracts live
// below, in core/eval/exp, and the engine neither adds wall-clock nor
// randomness to any search trajectory.
package engine

import (
	"errors"
	"fmt"
	"strings"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/exp"
	"spotlight/internal/hw"
	"spotlight/internal/obs"
	"spotlight/internal/search"
	"spotlight/internal/workload"
)

// Job kinds. A search job is one co-design run (cmd/spotlight); an
// experiment job regenerates paper figures/tables (cmd/experiments).
const (
	KindSearch     = "search"
	KindExperiment = "experiment"
)

// JobSpec describes one unit of work. It is the wire format of
// spotlightd's POST /jobs body and the internal form both CLIs translate
// their flags into; zero values mean "the CLI default".
type JobSpec struct {
	// Kind is KindSearch (default) or KindExperiment.
	Kind string `json:"kind,omitempty"`
	// Models are DL model names (workload.ByName); a search job defaults
	// to ResNet-50, an experiment job to all five paper models.
	Models []string `json:"models,omitempty"`
	// Scale is the hardware scale: "edge" (default) or "cloud".
	// Experiment steps with a fixed scale ignore it.
	Scale string `json:"scale,omitempty"`
	// Objective is "delay" (default) or "edp".
	Objective string `json:"objective,omitempty"`
	// Strategy names the search strategy for search jobs; default
	// "spotlight". See StrategyByName.
	Strategy string `json:"strategy,omitempty"`
	// HWSamples/SWSamples are the sample budgets. 0 means the kind's
	// default: 100/100 for search (the paper's setting), the quick-scale
	// exp defaults for experiments.
	HWSamples int `json:"hw_samples,omitempty"`
	SWSamples int `json:"sw_samples,omitempty"`
	// Trials is the experiment trial count (0 = the exp default).
	Trials int `json:"trials,omitempty"`
	// Paper selects paper-scale experiment budgets (exp.Paper).
	Paper bool `json:"paper,omitempty"`
	// Seed is the random seed; 0 means 1, the CLI default.
	Seed int64 `json:"seed,omitempty"`
	// Eval is the evaluation pipeline spec (eval.FromSpec syntax),
	// e.g. "maestro" or "sim,cache,stats"; empty means "maestro".
	Eval string `json:"eval,omitempty"`
	// Workers bounds concurrent layer searches per hardware sample
	// (0 = GOMAXPROCS). Results are bit-identical at any setting.
	Workers int `json:"workers,omitempty"`
	// DisableBatch forces the unbatched evaluation path (bit-identical;
	// for A/B verification).
	DisableBatch bool `json:"nobatch,omitempty"`
	// Parallel runs independent experiment trials concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Steps are the experiment step keys to run (see StepKeys); they
	// execute in canonical order whatever order they are listed in.
	Steps []string `json:"steps,omitempty"`
}

// Normalized fills the kind-independent defaults, returning a copy. The
// zero-to-default mapping mirrors the CLI flag defaults, so a minimal
// JSON body submitted to spotlightd behaves like a bare CLI invocation.
func (s JobSpec) Normalized() JobSpec {
	if s.Kind == "" {
		s.Kind = KindSearch
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Eval == "" {
		s.Eval = "maestro"
	}
	if s.Objective == "" {
		s.Objective = "delay"
	}
	if s.Kind == KindSearch {
		if s.Scale == "" {
			s.Scale = "edge"
		}
		if s.Strategy == "" {
			s.Strategy = "spotlight"
		}
		if s.HWSamples <= 0 {
			s.HWSamples = 100
		}
		if s.SWSamples <= 0 {
			s.SWSamples = 100
		}
		if len(s.Models) == 0 {
			s.Models = []string{"ResNet-50"}
		}
	}
	return s
}

// Validate checks everything about a spec that can be checked without
// building an evaluation pipeline: the kind, model names, scale,
// objective, strategy, and experiment step keys. The eval spec itself is
// validated where the pipeline is built (PipelineSet.Get), so unknown
// backends surface as *eval.UnknownBackendError there.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindSearch:
		if _, err := ResolveModels(s.Models); err != nil {
			return err
		}
		if _, _, err := ResolveScale(s.Scale); err != nil {
			return err
		}
		if _, err := StrategyByName(s.Strategy); err != nil {
			return err
		}
	case KindExperiment:
		if len(s.Steps) == 0 {
			return fmt.Errorf("engine: experiment job with no steps (known steps: %s)",
				strings.Join(StepKeys(), ", "))
		}
		known := map[string]bool{}
		for _, k := range StepKeys() {
			known[k] = true
		}
		for _, k := range s.Steps {
			if !known[k] {
				return fmt.Errorf("engine: unknown experiment step %q (known steps: %s)",
					k, strings.Join(StepKeys(), ", "))
			}
		}
		for _, name := range s.Models {
			if _, err := workload.ByName(strings.TrimSpace(name)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("engine: unknown job kind %q (kinds: %s, %s)", s.Kind, KindSearch, KindExperiment)
	}
	if _, err := ResolveObjective(s.Objective); err != nil {
		return err
	}
	return nil
}

// ResolveModels maps model names (whitespace-tolerant) onto workloads.
func ResolveModels(names []string) ([]workload.Model, error) {
	var models []workload.Model
	for _, name := range names {
		m, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("engine: no models named")
	}
	return models, nil
}

// ResolveScale maps a scale name onto its hardware space and budget.
func ResolveScale(scale string) (hw.Space, hw.Budget, error) {
	switch scale {
	case "edge":
		return hw.EdgeSpace(), hw.EdgeBudget(), nil
	case "cloud":
		return hw.CloudSpace(), hw.CloudBudget(), nil
	}
	return hw.Space{}, hw.Budget{}, fmt.Errorf("unknown scale %q", scale)
}

// ResolveObjective maps an objective name onto the core objective.
func ResolveObjective(name string) (core.Objective, error) {
	switch name {
	case "delay":
		return core.MinDelay, nil
	case "edp":
		return core.MinEDP, nil
	}
	return 0, fmt.Errorf("unknown objective %q", name)
}

// StrategyByName constructs the named search strategy: the Spotlight
// family, random, GA, and the two prior-work co-design tools.
func StrategyByName(name string) (core.Strategy, error) {
	switch name {
	case "spotlight":
		return core.NewSpotlight(), nil
	case "spotlight-v":
		return core.NewSpotlightV(), nil
	case "spotlight-a":
		return core.NewSpotlightA(), nil
	case "spotlight-f":
		return core.NewSpotlightF(), nil
	case "random":
		return search.NewRandom(), nil
	case "ga":
		return search.NewGenetic(), nil
	case "confuciux":
		return search.NewConfuciuX(), nil
	case "hasco":
		return search.NewHASCO(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// SearchConfig translates a search spec into the core run configuration
// and strategy — the one place flag/JSON values become a core.RunConfig,
// relocated from cmd/spotlight. Checkpoint and resume wiring is the
// caller's (RunSearch's options), since it differs between a CLI writing
// files and a server retaining snapshots in memory.
func (s JobSpec) SearchConfig(ev core.Evaluator, tr obs.Tracer) (core.RunConfig, core.Strategy, error) {
	s = s.Normalized()
	models, err := ResolveModels(s.Models)
	if err != nil {
		return core.RunConfig{}, nil, err
	}
	space, budget, err := ResolveScale(s.Scale)
	if err != nil {
		return core.RunConfig{}, nil, err
	}
	obj, err := ResolveObjective(s.Objective)
	if err != nil {
		return core.RunConfig{}, nil, err
	}
	strat, err := StrategyByName(s.Strategy)
	if err != nil {
		return core.RunConfig{}, nil, err
	}
	return core.RunConfig{
		Models:       models,
		Space:        space,
		Budget:       budget,
		Objective:    obj,
		HWSamples:    s.HWSamples,
		SWSamples:    s.SWSamples,
		Seed:         s.Seed,
		Eval:         ev,
		Workers:      s.Workers,
		Tracer:       tr,
		DisableBatch: s.DisableBatch,
	}, strat, nil
}

// ExpConfig translates an experiment spec into the exp harness
// configuration, relocated verbatim from cmd/experiments: exp defaults
// (or paper scale), then the spec's overrides. The evaluator is built by
// the caller so one pipeline can be shared across steps and across
// concurrent jobs.
func (s JobSpec) ExpConfig(ev core.Evaluator, tr obs.Tracer) (exp.Config, error) {
	s = s.Normalized()
	cfg := exp.Default()
	if s.Paper {
		cfg = exp.Paper()
	}
	cfg.Seed = s.Seed
	if s.HWSamples > 0 {
		cfg.HWSamples = s.HWSamples
	}
	if s.SWSamples > 0 {
		cfg.SWSamples = s.SWSamples
	}
	if s.Trials > 0 {
		cfg.Trials = s.Trials
	}
	cfg.Parallel = s.Parallel
	cfg.Workers = s.Workers
	cfg.DisableBatch = s.DisableBatch
	for _, m := range s.Models {
		cfg.Models = append(cfg.Models, strings.TrimSpace(m))
	}
	obj, err := ResolveObjective(s.Objective)
	if err != nil {
		return cfg, err
	}
	cfg.Objective = obj
	cfg.EvalSpec = s.Eval
	cfg.Eval = ev
	cfg.Tracer = tr
	return cfg, nil
}

// IsUnknownBackend reports whether err is (or wraps) the typed
// unknown-backend error, exposing it for usage-message handling without
// every caller importing eval.
func IsUnknownBackend(err error) (*eval.UnknownBackendError, bool) {
	var unknown *eval.UnknownBackendError
	if errors.As(err, &unknown) {
		return unknown, true
	}
	return nil, false
}
