package engine

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"

	"spotlight/internal/core"
	"spotlight/internal/exp"
	"spotlight/internal/obs"
)

// Artifact is one file an experiment step produces, held as bytes so the
// same rendering serves both the CLI (which writes it under -out) and
// spotlightd (which serves it at /jobs/{id}/artifacts/{name}). The CSV
// bytes are produced by the exact exp.WriteRows/WriteTable calls the
// pre-refactor CLI made, which is what keeps a served fig6.csv
// byte-identical to a CLI-written one.
type Artifact struct {
	Name string
	Data []byte
}

// StepResult is one completed experiment step: its key, the summary text
// the CLI prints under the "== key ==" banner (byte-identical to the
// pre-refactor stdout), and the artifacts it produced.
type StepResult struct {
	Key       string
	Summary   string
	Artifacts []Artifact
}

// ExperimentOptions carries the per-run wiring for RunExperiments.
type ExperimentOptions struct {
	// Eval evaluates candidate schedules; required. Building it here —
	// rather than letting exp normalize the spec per step — is what lets
	// the memo cache deduplicate evaluations between figures.
	Eval core.Evaluator
	// Tracer receives trace events; nil disables tracing.
	Tracer obs.Tracer
	// OnStepStart, if set, is called before each step runs (the CLI
	// prints its "== key ==" banner here).
	OnStepStart func(key string)
	// OnStepDone, if set, is called after each step with its result (the
	// CLI prints the summary and writes the artifacts; the server stores
	// them). A returned error aborts the run.
	OnStepDone func(StepResult) error
}

// stepState is the cross-step cache: Figure 11 is derived from Figure
// 10's curves, so one run computes them once, as in the paper.
type stepState struct {
	fig10 map[string][]exp.Curve
}

// stepFn computes one experiment step.
type stepFn func(cfg exp.Config, st *stepState) (StepResult, error)

// experimentSteps is the canonical step order — the order the
// pre-refactor CLI hard-coded. Requested steps always execute in this
// order, whatever order they were asked for in, so fig11 finds fig10's
// cached curves and stdout stays deterministic.
var experimentSteps = []struct {
	key string
	fn  stepFn
}{
	{"fig6", stepFig6},
	{"fig7", stepFig7},
	{"fig8", stepFig8},
	{"fig9", stepFig9},
	{"fig10", stepFig10},
	{"fig11", stepFig11},
	{"surrogate", stepSurrogate},
	{"discussion", stepDiscussion},
	{"timeloop", stepTimeloop},
	{"topdesigns", stepTopDesigns},
	{"simcheck", stepSimCheck},
	{"kernels", stepKernels},
}

// StepKeys returns every experiment step key in canonical run order.
func StepKeys() []string {
	keys := make([]string, len(experimentSteps))
	for i, s := range experimentSteps {
		keys[i] = s.key
	}
	return keys
}

// RunExperiments executes the spec's experiment steps in canonical
// order. Cancellation is checked between steps — the figure drivers have
// no cancellation plumbing (each trial is minutes at most), so a
// canceled job finishes its current step and stops at the boundary,
// returning the completed results alongside ctx.Err().
func RunExperiments(ctx context.Context, spec JobSpec, opts ExperimentOptions) ([]StepResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, err := spec.ExpConfig(opts.Eval, opts.Tracer)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, k := range spec.Steps {
		want[k] = true
	}
	// The job span roots the span tree; each executed step nests an
	// exp.step span labeled with its key, and the runs a step drives
	// nest under that via cfg.Span.
	jobSpan := obs.StartSpan(opts.Tracer, "job")
	defer jobSpan.End()
	st := &stepState{}
	var results []StepResult
	for _, s := range experimentSteps {
		if !want[s.key] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return results, err
		}
		if opts.OnStepStart != nil {
			opts.OnStepStart(s.key)
		}
		stepSpan := jobSpan.ChildLabel("exp.step", s.key)
		stepCfg := cfg
		stepCfg.Span = stepSpan
		res, err := s.fn(stepCfg, st)
		stepSpan.End()
		if err != nil {
			return results, fmt.Errorf("%s: %w", s.key, err)
		}
		results = append(results, res)
		if opts.OnStepDone != nil {
			if err := opts.OnStepDone(res); err != nil {
				return results, err
			}
		}
	}
	return results, nil
}

// csvArtifact renders one CSV artifact through the same write function
// the CLI used with an *os.File; a bytes.Buffer cannot fail to write.
func csvArtifact(name string, write func(w *bytes.Buffer) error) Artifact {
	var buf bytes.Buffer
	_ = write(&buf)
	return Artifact{Name: name, Data: buf.Bytes()}
}

func stepFig6(cfg exp.Config, _ *stepState) (StepResult, error) {
	rows, err := exp.Fig6(cfg)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{
		Key:     "fig6",
		Summary: formatRows(rows),
		Artifacts: []Artifact{
			csvArtifact("fig6.csv", func(w *bytes.Buffer) error { return exp.WriteRows(w, rows) }),
		},
	}, nil
}

func stepFig7(cfg exp.Config, _ *stepState) (StepResult, error) {
	res, err := exp.Fig7(cfg)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{
		Key:     "fig7",
		Summary: " EDP:\n" + formatRows(res.EDP) + " delay:\n" + formatRows(res.Delay),
		Artifacts: []Artifact{
			csvArtifact("fig7_edp.csv", func(w *bytes.Buffer) error { return exp.WriteRows(w, res.EDP) }),
			csvArtifact("fig7_delay.csv", func(w *bytes.Buffer) error { return exp.WriteRows(w, res.Delay) }),
		},
	}, nil
}

func stepFig8(cfg exp.Config, _ *stepState) (StepResult, error) {
	res, err := exp.Fig8(cfg)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{
		Key:     "fig8",
		Summary: " EDP:\n" + formatRows(res.EDP) + " delay:\n" + formatRows(res.Delay),
		Artifacts: []Artifact{
			csvArtifact("fig8_edp.csv", func(w *bytes.Buffer) error { return exp.WriteRows(w, res.EDP) }),
			csvArtifact("fig8_delay.csv", func(w *bytes.Buffer) error { return exp.WriteRows(w, res.Delay) }),
		},
	}, nil
}

func stepFig9(cfg exp.Config, _ *stepState) (StepResult, error) {
	res, err := exp.Fig9(cfg)
	if err != nil {
		return StepResult{}, err
	}
	var b strings.Builder
	for _, model := range exp.SortedKeys(res.Importance) {
		fmt.Fprintf(&b, "   %-12s top feature: %s\n", model, topFeature(res.Features, res.Importance[model]))
	}
	header, rows := exp.Fig9Rows(res)
	return StepResult{
		Key:     "fig9",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("fig9.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

// stepFig10 runs Figure 10 and caches the curves so Figure 11 can reuse
// the same runs, as in the paper.
func stepFig10(cfg exp.Config, st *stepState) (StepResult, error) {
	curves, err := exp.Fig10(cfg)
	if err != nil {
		return StepResult{}, err
	}
	st.fig10 = curves
	var b strings.Builder
	for _, model := range exp.SortedKeys(curves) {
		for _, stat := range exp.EfficiencyStats(curves[model]) {
			fmt.Fprintf(&b, "   %-12s %-13s %4d samples, %.0f%% feasible, %.1f%% beat random's best\n",
				model, stat.Tool, stat.Samples, 100*stat.FeasibleFraction, 100*stat.BeatsRandomBest)
		}
		for _, c := range curves[model] {
			sum := c.FinalSummary()
			fmt.Fprintf(&b, "   %-12s %-13s final best: min=%.4g median=%.4g max=%.4g\n",
				model, c.Tool, sum.Min, sum.Median, sum.Max)
		}
	}
	header, rows := exp.Fig10Rows(curves)
	return StepResult{
		Key:     "fig10",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("fig10.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

// stepFig11 emits Figure 11 from cached Figure 10 curves, running
// Figure 10 first if it was not requested.
func stepFig11(cfg exp.Config, st *stepState) (StepResult, error) {
	if st.fig10 == nil {
		curves, err := exp.Fig10(cfg)
		if err != nil {
			return StepResult{}, err
		}
		st.fig10 = curves
	}
	cdfs := exp.Fig11(st.fig10)
	header, rows := exp.Fig11Rows(cdfs)
	return StepResult{
		Key: "fig11",
		Artifacts: []Artifact{
			csvArtifact("fig11.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

func stepSurrogate(cfg exp.Config, _ *stepState) (StepResult, error) {
	res, err := exp.SurrogateAccuracy(cfg, 2000)
	if err != nil {
		return StepResult{}, err
	}
	header := []string{"kernel", "spearman_edp", "spearman_delay", "top_quintile", "train", "test"}
	var b strings.Builder
	var rows [][]string
	for _, s := range res {
		fmt.Fprintf(&b, "   %-9s ρ(EDP)=%.4f ρ(delay)=%.4f top-20%%=%.1f%%\n",
			s.Kernel, s.SpearmanEDP, s.SpearmanDel, 100*s.TopQuintile)
		rows = append(rows, []string{
			s.Kernel,
			strconv.FormatFloat(s.SpearmanEDP, 'g', 4, 64),
			strconv.FormatFloat(s.SpearmanDel, 'g', 4, 64),
			strconv.FormatFloat(s.TopQuintile, 'g', 4, 64),
			strconv.Itoa(s.TrainSize), strconv.Itoa(s.TestSize),
		})
	}
	return StepResult{
		Key:     "surrogate",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("surrogate.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

func stepDiscussion(cfg exp.Config, _ *stepState) (StepResult, error) {
	model := "ResNet-50"
	if len(cfg.Models) > 0 {
		model = cfg.Models[0]
	}
	rows, err := exp.Discussion(cfg, model)
	if err != nil {
		return StepResult{}, err
	}
	header := []string{"config", "throughput_per_nJ", "rel_to_spotlight", "rf_input_reuse", "l2_input_reuse", "array"}
	var b strings.Builder
	var out [][]string
	for _, d := range rows {
		fmt.Fprintf(&b, "   %-14s tput/J=%.4g (Spotlight is %.2gx)  reuse RF=%.3g L2=%.3g  array=%dx%d\n",
			d.Config, d.ThroughputPerJ, d.RelThroughputPerJ, d.RFInputReuse, d.L2InputReuse,
			d.ArrayHeight, d.ArrayWidth)
		out = append(out, []string{
			d.Config,
			strconv.FormatFloat(d.ThroughputPerJ, 'g', 6, 64),
			strconv.FormatFloat(d.RelThroughputPerJ, 'g', 4, 64),
			strconv.FormatFloat(d.RFInputReuse, 'g', 4, 64),
			strconv.FormatFloat(d.L2InputReuse, 'g', 4, 64),
			fmt.Sprintf("%dx%d", d.ArrayHeight, d.ArrayWidth),
		})
	}
	return StepResult{
		Key:     "discussion",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("discussion.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, out) }),
		},
	}, nil
}

func stepTimeloop(cfg exp.Config, _ *stepState) (StepResult, error) {
	names := cfg.Models
	if len(names) == 0 {
		names = []string{"VGG16", "ResNet-50", "MobileNetV2", "MnasNet", "Transformer"}
	}
	header := []string{"model", "layers", "top20_overlap", "bottom20_overlap", "spearman"}
	var b strings.Builder
	var rows [][]string
	for _, name := range names {
		res, err := exp.CrossModelAgreement(cfg, name, 100)
		if err != nil {
			return StepResult{}, err
		}
		fmt.Fprintf(&b, "   %-12s layers=%d top-20%%=%.1f%% bottom-20%%=%.1f%% ρ=%.3f\n",
			res.Model, res.Layers, 100*res.MeanTopOverlap, 100*res.MeanBotOverlap, res.MeanSpearman)
		rows = append(rows, []string{
			res.Model, strconv.Itoa(res.Layers),
			strconv.FormatFloat(res.MeanTopOverlap, 'g', 4, 64),
			strconv.FormatFloat(res.MeanBotOverlap, 'g', 4, 64),
			strconv.FormatFloat(res.MeanSpearman, 'g', 4, 64),
		})
	}
	return StepResult{
		Key:     "timeloop",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("timeloop.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

func stepTopDesigns(cfg exp.Config, _ *stepState) (StepResult, error) {
	model := "ResNet-50"
	if len(cfg.Models) > 0 {
		model = cfg.Models[0]
	}
	res, err := exp.TopDesignCrossCheck(cfg, model)
	if err != nil {
		return StepResult{}, err
	}
	summary := fmt.Sprintf("   %s: %d top designs, rank agreement ρ=%.3f, second model's favorite is primary rank #%d\n",
		res.Model, len(res.Entries), res.Spearman, res.BestRank)
	header := []string{"rank", "primary", "secondary", "accel"}
	var rows [][]string
	for _, e := range res.Entries {
		rows = append(rows, []string{
			strconv.Itoa(e.Rank),
			strconv.FormatFloat(e.Primary, 'g', 6, 64),
			strconv.FormatFloat(e.Secondary, 'g', 6, 64),
			e.Accel,
		})
	}
	return StepResult{
		Key:     "topdesigns",
		Summary: summary,
		Artifacts: []Artifact{
			csvArtifact("topdesigns.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

func stepSimCheck(cfg exp.Config, _ *stepState) (StepResult, error) {
	res, err := exp.SimCheck(cfg, 60)
	if err != nil {
		return StepResult{}, err
	}
	summary := fmt.Sprintf("   %d/%d schedules match the analytical model exactly; LRU caching saves %.1f%% median DRAM traffic\n",
		res.ExactMatches, res.Schedules, 100*res.CacheSavings.Median)
	header := []string{"schedules", "exact_matches", "saving_min", "saving_median", "saving_max"}
	rows := [][]string{{
		strconv.Itoa(res.Schedules), strconv.Itoa(res.ExactMatches),
		strconv.FormatFloat(res.CacheSavings.Min, 'g', 4, 64),
		strconv.FormatFloat(res.CacheSavings.Median, 'g', 4, 64),
		strconv.FormatFloat(res.CacheSavings.Max, 'g', 4, 64),
	}}
	return StepResult{
		Key:     "simcheck",
		Summary: summary,
		Artifacts: []Artifact{
			csvArtifact("simcheck.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

func stepKernels(cfg exp.Config, _ *stepState) (StepResult, error) {
	model := "ResNet-50"
	if len(cfg.Models) > 0 {
		model = cfg.Models[0]
	}
	res, err := exp.KernelSearchComparison(cfg, model)
	if err != nil {
		return StepResult{}, err
	}
	header := []string{"kernel", "min", "median", "max"}
	var b strings.Builder
	var rows [][]string
	for _, k := range res {
		fmt.Fprintf(&b, "   %-9s best %s: median=%.4g [%.4g, %.4g]\n",
			k.Kernel, cfg.Objective, k.Summary.Median, k.Summary.Min, k.Summary.Max)
		rows = append(rows, []string{
			k.Kernel,
			strconv.FormatFloat(k.Summary.Min, 'g', 6, 64),
			strconv.FormatFloat(k.Summary.Median, 'g', 6, 64),
			strconv.FormatFloat(k.Summary.Max, 'g', 6, 64),
		})
	}
	return StepResult{
		Key:     "kernels",
		Summary: b.String(),
		Artifacts: []Artifact{
			csvArtifact("kernels.csv", func(w *bytes.Buffer) error { return exp.WriteTable(w, header, rows) }),
		},
	}, nil
}

// formatRows renders the per-row comparison lines shared by the fig6/7/8
// summaries, byte-identical to the CLI's former printRows.
func formatRows(rows []exp.Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "   %-12s %-18s median=%.4g [%.4g, %.4g]  %.3gx Spotlight\n",
			r.Model, r.Config, r.Median, r.Min, r.Max, r.Normalized)
	}
	return b.String()
}

// topFeature names the highest-importance feature for a fig9 model row.
func topFeature(names []string, imp []float64) string {
	best := 0
	for i, v := range imp {
		if v > imp[best] {
			best = i
		}
	}
	if best < len(names) {
		return names[best]
	}
	return "?"
}
