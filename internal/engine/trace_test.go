package engine

import (
	"encoding/json"
	"testing"
	"time"

	"spotlight/internal/obs"
)

func TestTraceBufferStampsLikeJSONL(t *testing.T) {
	b := NewTraceBuffer()
	b.Emit(obs.Event{Type: obs.RunStart, Detail: "spotlight", N: 4})
	b.Emit(obs.Event{Type: obs.CacheHit})
	events, done, _ := b.Since(0)
	if done {
		t.Fatal("stream reported done before End")
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		// The SSE wire format is the JSONL taxonomy verbatim: every
		// stamped event must survive the strict parser.
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ParseLine(line); err != nil {
			t.Fatalf("buffered event does not round-trip the JSONL schema: %v", err)
		}
	}
}

func TestTraceBufferSinceWindows(t *testing.T) {
	b := NewTraceBuffer()
	for i := 0; i < 5; i++ {
		b.Emit(obs.Event{Type: obs.CacheMiss})
	}
	if events, _, _ := b.Since(3); len(events) != 2 {
		t.Fatalf("Since(3) returned %d events, want 2", len(events))
	}
	if events, _, _ := b.Since(99); len(events) != 0 {
		t.Fatalf("Since(99) returned %d events, want 0", len(events))
	}
	if events, _, _ := b.Since(-1); len(events) != 5 {
		t.Fatalf("Since(-1) returned %d events, want 5", len(events))
	}
}

func TestTraceBufferWakesSubscriberOnEmitAndEnd(t *testing.T) {
	b := NewTraceBuffer()
	_, _, more := b.Since(0)
	go b.Emit(obs.Event{Type: obs.CacheHit})
	select {
	case <-more:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit did not wake the subscriber")
	}
	events, done, more := b.Since(0)
	if len(events) != 1 || done {
		t.Fatalf("after wake: %d events, done=%v; want 1, false", len(events), done)
	}
	go b.End()
	select {
	case <-more:
	case <-time.After(5 * time.Second):
		t.Fatal("End did not wake the subscriber")
	}
	if _, done, _ := b.Since(1); !done {
		t.Fatal("stream not done after End")
	}
	// Emits after End are dropped: the job is terminal and subscribers
	// have been released on a final event count.
	b.Emit(obs.Event{Type: obs.CacheHit})
	if b.Len() != 1 {
		t.Fatalf("Emit after End grew the buffer to %d events", b.Len())
	}
}
