package engine

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"spotlight/internal/core"
	"spotlight/internal/exp"
	"spotlight/internal/obs"
)

// SearchOptions carries the per-run wiring RunSearch cannot derive from
// the spec: the evaluator (built once and possibly shared across jobs),
// the tracer, and the checkpoint/resume hooks.
type SearchOptions struct {
	// Eval evaluates candidate schedules; required.
	Eval core.Evaluator
	// Tracer receives the run's trace events; nil disables tracing.
	Tracer obs.Tracer
	// Resume restarts the run from a prior checkpoint; the spec's models,
	// seed, strategy, and budgets must match the original run.
	Resume *core.Checkpoint
	// OnCheckpoint, if set, is called after every hardware sample with
	// the current checkpoint (the CLI writes a file; the server retains
	// it in memory for POST /jobs/{id}/resume).
	OnCheckpoint func(*core.Checkpoint) error
}

// RunSearch executes one co-design search described by spec. It is
// cmd/spotlight's orchestration relocated: the spec becomes a
// core.RunConfig via SearchConfig, the checkpoint hooks are attached,
// and core.RunContext does the work. Cancellation semantics are
// core.RunContext's: on ctx cancellation the partial result is returned
// alongside the context error, and res.History tells the caller how far
// the run got.
func RunSearch(ctx context.Context, spec JobSpec, opts SearchOptions) (core.Result, error) {
	cfg, strat, err := spec.SearchConfig(opts.Eval, opts.Tracer)
	if err != nil {
		return core.Result{}, err
	}
	cfg.Resume = opts.Resume
	cfg.OnCheckpoint = opts.OnCheckpoint
	// The job span roots the run's span tree: job → run → trial → ....
	// Observe-only, so it opens after the config is validated enough to
	// try and closes on every exit path.
	jobSpan := obs.StartSpan(opts.Tracer, "job")
	cfg.Span = jobSpan
	res, err := core.RunContext(ctx, cfg, strat)
	jobSpan.End()
	return res, err
}

// FileCheckpointer persists checkpoints to one file (atomic replace, via
// core.WriteCheckpointFile) and retains the latest in memory so an
// interrupted run can save a final snapshot even if the last write
// predates the interruption — the exact behavior cmd/spotlight wired
// inline before this package existed.
type FileCheckpointer struct {
	// Path is the checkpoint file.
	Path string

	mu   sync.Mutex
	last *core.Checkpoint
}

// OnCheckpoint is the hook to install as SearchOptions.OnCheckpoint.
func (c *FileCheckpointer) OnCheckpoint(cp *core.Checkpoint) error {
	c.mu.Lock()
	c.last = cp
	c.mu.Unlock()
	return core.WriteCheckpointFile(c.Path, cp)
}

// Last returns the most recent checkpoint seen, or nil.
func (c *FileCheckpointer) Last() *core.Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// SaveLast rewrites the file from the retained checkpoint, reporting
// whether there was one to save. Called on the interrupt path so the
// file is valid even if the in-progress write was torn by the signal.
func (c *FileCheckpointer) SaveLast() (bool, error) {
	cp := c.Last()
	if cp == nil {
		return false, nil
	}
	return true, core.WriteCheckpointFile(c.Path, cp)
}

// SearchReport renders the human-readable result summary — tool,
// objective, accelerator, area/power, per-model breakdown, and (verbose)
// per-layer schedules. Byte-identical to what cmd/spotlight printed
// before the move; the CLI and spotlightd's job status both use it.
func SearchReport(res core.Result, obj core.Objective, verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tool:      %s\n", res.Tool)
	fmt.Fprintf(&b, "objective: %s = %.6g\n", obj, res.Best.Objective)
	fmt.Fprintf(&b, "accel:     %s\n", res.Best.Accel)
	fmt.Fprintf(&b, "area:      %.2f mm²   peak power: %.1f mW\n",
		res.Best.Accel.AreaMM2(), res.Best.Accel.PeakPowerMW())
	for _, line := range ModelObjectiveLines(obj, res.Best) {
		b.WriteString(line)
	}
	if !verbose {
		return b.String()
	}
	b.WriteString("schedules:\n")
	for _, lr := range res.Best.Layers {
		fmt.Fprintf(&b, "  %-10s %-16s delay=%.4g cycles  energy=%.4g nJ  util=%.2f\n",
			lr.Model, lr.Layer.Name, lr.Cost.DelayCycles, lr.Cost.EnergyNJ, lr.Cost.Utilization)
		fmt.Fprintf(&b, "             %s\n", lr.Schedule)
	}
	return b.String()
}

// ModelObjectiveLines renders the per-model objective breakdown in
// model-name order. core.ModelObjectives returns a map, and ranging over
// it directly (as the CLI's report once did) printed multi-model runs in
// a different order every invocation — breaking the
// byte-identical-stdout determinism contract the verify flows diff
// against.
func ModelObjectiveLines(obj core.Objective, d core.Design) []string {
	objs := core.ModelObjectives(obj, d)
	models := make([]string, 0, len(objs))
	for m := range objs { //lint:allow maporder(sorted before rendering, three lines down)
		models = append(models, m)
	}
	sortStrings(models)
	lines := make([]string, 0, len(models))
	for _, m := range models {
		lines = append(lines, fmt.Sprintf("  %-14s %s = %.6g\n", m, obj, objs[m]))
	}
	return lines
}

// sortStrings sorts in place (insertion sort; the inputs are model-name
// lists, a handful of entries).
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// HistoryCSV renders the per-sample convergence history as CSV, the
// format cmd/spotlight's -history flag writes. The elapsed_s column is
// wall-clock and therefore the one artifact column exempt from the
// byte-identical contract.
func HistoryCSV(res core.Result) []byte {
	rows := make([][]string, 0, len(res.History))
	for _, h := range res.History {
		rows = append(rows, []string{
			strconv.Itoa(h.Sample),
			strconv.FormatFloat(h.Elapsed.Seconds(), 'g', 6, 64),
			strconv.FormatFloat(h.Value, 'g', 6, 64),
			strconv.FormatFloat(h.BestSoFar, 'g', 6, 64),
		})
	}
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	_ = exp.WriteTable(&buf, []string{"sample", "elapsed_s", "value", "best_so_far"}, rows)
	return buf.Bytes()
}

// DesignJSON exports the winning design in the interchange format
// cmd/spotlight's -json flag writes and -reevaluate reads back.
func DesignJSON(res core.Result, obj core.Objective) ([]byte, error) {
	var buf bytes.Buffer
	if err := core.WriteJSON(&buf, core.Export(res.Tool, obj, res.Best)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
