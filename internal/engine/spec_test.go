package engine

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestNormalizedFillsSearchDefaults(t *testing.T) {
	s := JobSpec{}.Normalized()
	want := JobSpec{
		Kind: KindSearch, Models: []string{"ResNet-50"}, Scale: "edge",
		Objective: "delay", Strategy: "spotlight", HWSamples: 100,
		SWSamples: 100, Seed: 1, Eval: "maestro",
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Normalized() = %+v, want %+v", s, want)
	}
}

func TestNormalizedLeavesExperimentBudgetsToExp(t *testing.T) {
	s := JobSpec{Kind: KindExperiment, Steps: []string{"fig6"}}.Normalized()
	// Experiment budgets default inside exp.Default()/Paper(); zero here
	// means "the harness default", and must stay zero.
	if s.HWSamples != 0 || s.SWSamples != 0 || s.Trials != 0 {
		t.Fatalf("experiment Normalized() set budgets: %+v", s)
	}
	if s.Seed != 1 || s.Eval != "maestro" || s.Objective != "delay" {
		t.Fatalf("experiment Normalized() missed kind-independent defaults: %+v", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		frag string // expected error substring
	}{
		{"unknown kind", JobSpec{Kind: "batch"}, "unknown job kind"},
		{"unknown model", JobSpec{Kind: KindSearch, Models: []string{"NoSuchNet"}}, "NoSuchNet"},
		{"unknown scale", JobSpec{Kind: KindSearch, Scale: "galactic"}, "unknown scale"},
		{"unknown strategy", JobSpec{Kind: KindSearch, Strategy: "simulated-annealing"}, "unknown strategy"},
		{"unknown objective", JobSpec{Kind: KindSearch, Objective: "carbon"}, "unknown objective"},
		{"experiment without steps", JobSpec{Kind: KindExperiment}, "no steps"},
		{"unknown step", JobSpec{Kind: KindExperiment, Steps: []string{"fig99"}}, "unknown experiment step"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Normalized().Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error containing %q", c.spec, c.frag)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("Validate error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestValidateAcceptsEveryStepKey(t *testing.T) {
	s := JobSpec{Kind: KindExperiment, Steps: StepKeys()}.Normalized()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate with all step keys: %v", err)
	}
}

// TestSpecJSONRoundTrip pins the wire format: a spec survives
// marshal/unmarshal unchanged, and zero-valued fields are omitted so a
// minimal submission body stays minimal.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := JobSpec{
		Kind: KindExperiment, Steps: []string{"fig6"}, Models: []string{"MobileNetV2"},
		HWSamples: 4, SWSamples: 6, Trials: 1, Eval: "sim,cache,stats", Seed: 7,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out JobSpec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", in, out)
	}
	if strings.Contains(string(data), "paper") || strings.Contains(string(data), "scale") {
		t.Fatalf("zero-valued fields not omitted: %s", data)
	}
}
