package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/eval"
	"spotlight/internal/obs"
)

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled; only terminal search jobs with a retained checkpoint
// can be resumed.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Sentinel errors for the job API; the HTTP layer maps them onto status
// codes (404, 409, 503).
var (
	ErrNotFound     = errors.New("engine: no such job")
	ErrJobFinished  = errors.New("engine: job already finished")
	ErrNotResumable = errors.New("engine: job is not resumable")
	ErrShuttingDown = errors.New("engine: runner is shutting down")
)

// RunnerConfig configures a Runner.
type RunnerConfig struct {
	// Concurrency bounds how many jobs run at once (min 1). Queued jobs
	// wait FIFO.
	Concurrency int
	// CacheDir, if set, backs every pipeline with the crash-safe
	// persistent journal (the CLIs' -cache-dir).
	CacheDir string
	// Tracer is the server-wide sink (typically a MetricsTracer feeding
	// /metrics). It receives every job's events and — crucially — the
	// shared pipelines' cache.hit/cache.miss stream, which is how
	// concurrent duplicate jobs show up as dedup in the counters.
	Tracer obs.Tracer
}

// Runner executes JobSpecs on a bounded worker pool: the spotlightd
// core, but embeddable anywhere. Jobs queue FIFO, run with per-job
// cancellation via core.RunContext, retain their latest checkpoint for
// resume, and buffer their trace events for SSE replay. All jobs share
// one PipelineSet, so concurrent submissions with the same eval spec
// share a memo cache (and disk journal) and deduplicate evaluations.
type Runner struct {
	cfg   RunnerConfig
	pipes *PipelineSet

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string // submission order, for deterministic listings
	pending []*Job   // FIFO queue of jobs not yet picked up
	nextID  int
	closing bool
	wg      sync.WaitGroup
}

// NewRunner starts a runner with cfg.Concurrency workers.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	r := &Runner{
		cfg: cfg,
		pipes: NewPipelineSet(eval.SpecOptions{
			EnsureStats: true,
			Tracer:      cfg.Tracer,
			CacheDir:    cfg.CacheDir,
		}),
		jobs: map[string]*Job{},
	}
	r.cond = sync.NewCond(&r.mu)
	for i := 0; i < cfg.Concurrency; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Pipelines exposes the shared pipeline set (for stats reporting).
func (r *Runner) Pipelines() *PipelineSet { return r.pipes }

// Job is one submitted unit of work and its lifecycle record. All
// mutable state is guarded by mu; Trace has its own synchronization.
type Job struct {
	id          string
	spec        JobSpec // normalized at submission
	trace       *TraceBuffer
	reg         *obs.Registry // per-job metrics, fed by the job's own MetricsTracer
	done        chan struct{}
	resumedFrom string
	resume      *core.Checkpoint // checkpoint to restart from, for resumed jobs

	mu         sync.Mutex
	state      string
	cancel     context.CancelFunc // set while running
	err        error
	summary    string
	best       float64   // best objective; +Inf until a feasible design lands
	samples    int       // completed hardware samples (search jobs)
	started    time.Time // when the job left the queue; zero while queued
	ended      time.Time // when the job went terminal; zero until then
	artifacts  []Artifact
	checkpoint *core.Checkpoint // latest, retained for resume
}

// ID returns the job's identifier ("job-1", "job-2", ... in submission
// order — deterministic, no wall clock involved).
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Trace returns the job's trace buffer for subscribers.
func (j *Job) Trace() *TraceBuffer { return j.trace }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire-format snapshot of a job. BestObjective is a
// pointer precisely because +Inf (no feasible design yet) cannot be
// marshaled as JSON — it is present only once finite.
type JobStatus struct {
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	State         string   `json:"state"`
	Spec          JobSpec  `json:"spec"`
	Error         string   `json:"error,omitempty"`
	Summary       string   `json:"summary,omitempty"`
	BestObjective *float64 `json:"best_objective,omitempty"`
	Samples       int      `json:"samples,omitempty"`
	Artifacts     []string `json:"artifacts,omitempty"`
	Resumable     bool     `json:"resumable,omitempty"`
	ResumedFrom   string   `json:"resumed_from,omitempty"`
	Events        int      `json:"events"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Kind:        j.spec.Kind,
		State:       j.state,
		Spec:        j.spec,
		Summary:     j.summary,
		Samples:     j.samples,
		ResumedFrom: j.resumedFrom,
		Resumable:   j.resumableLocked(),
		Events:      j.trace.Len(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !math.IsInf(j.best, 0) {
		v := j.best
		st.BestObjective = &v
	}
	for _, a := range j.artifacts {
		st.Artifacts = append(st.Artifacts, a.Name)
	}
	return st
}

// Metrics returns the job's private metrics registry — every trace
// event the job emits is folded into it, so counters like
// trace.eval.done and trace.cache.hit are per-job, not server-wide.
func (j *Job) Metrics() *obs.Registry { return j.reg }

// JobProgress is the live search-progress view served at
// GET /jobs/{id}/progress: how far the job is, how fast evaluations are
// going, how much the cache is absorbing, and a naive linear ETA.
// Throughput and cache figures come from the job's own metrics registry,
// so concurrent jobs never blur into each other.
type JobProgress struct {
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	State         string   `json:"state"`
	TrialsDone    int      `json:"trials_done"`
	TrialsTotal   int      `json:"trials_total,omitempty"`
	BestObjective *float64 `json:"best_objective,omitempty"`
	Evals         int64    `json:"evals"`
	EvalsPerSec   float64  `json:"evals_per_sec"`
	CacheHits     int64    `json:"cache_hits"`
	CacheMisses   int64    `json:"cache_misses"`
	CacheHitRate  float64  `json:"cache_hit_rate"`
	ElapsedS      float64  `json:"elapsed_s"`
	ETAS          float64  `json:"eta_s,omitempty"`
	Events        int      `json:"events"`
}

// Progress snapshots the job's live progress. Elapsed time freezes at
// the terminal timestamp once the job finishes, so throughput figures
// stay meaningful afterwards. The ETA is elapsed scaled by remaining
// trials — linear extrapolation, reported only while running with at
// least one trial done.
func (j *Job) Progress() JobProgress {
	j.mu.Lock()
	p := JobProgress{
		ID:         j.id,
		Kind:       j.spec.Kind,
		State:      j.state,
		TrialsDone: j.samples,
	}
	if j.spec.Kind == KindSearch {
		p.TrialsTotal = j.spec.HWSamples
	}
	if !math.IsInf(j.best, 0) {
		v := j.best
		p.BestObjective = &v
	}
	started, ended := j.started, j.ended
	j.mu.Unlock()

	p.Events = j.trace.Len()
	p.Evals = j.reg.Counter("trace.eval.done").Value()
	p.CacheHits = j.reg.Counter("trace.cache.hit").Value()
	p.CacheMisses = j.reg.Counter("trace.cache.miss").Value()
	if total := p.CacheHits + p.CacheMisses; total > 0 {
		p.CacheHitRate = float64(p.CacheHits) / float64(total)
	}
	if !started.IsZero() {
		elapsed := obs.Since(started)
		if !ended.IsZero() {
			elapsed = ended.Sub(started)
		}
		p.ElapsedS = elapsed.Seconds()
		if p.ElapsedS > 0 {
			p.EvalsPerSec = float64(p.Evals) / p.ElapsedS
		}
		if p.State == StateRunning && p.TrialsTotal > 0 &&
			p.TrialsDone > 0 && p.TrialsDone < p.TrialsTotal {
			p.ETAS = p.ElapsedS / float64(p.TrialsDone) * float64(p.TrialsTotal-p.TrialsDone)
		}
	}
	return p
}

// Artifact returns the named artifact's bytes.
func (j *Job) Artifact(name string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, a := range j.artifacts {
		if a.Name == name {
			return a.Data, true
		}
	}
	return nil, false
}

// resumableLocked: terminal search job holding a checkpoint. Callers
// hold j.mu.
func (j *Job) resumableLocked() bool {
	switch j.state {
	case StateFailed, StateCanceled, StateDone:
		return j.spec.Kind == KindSearch && j.checkpoint != nil
	}
	return false
}

// finish moves the job to a terminal state exactly once: records the
// outcome, ends the trace stream (releasing SSE subscribers), and closes
// Done. Later calls are ignored, so a cancel racing completion is safe.
func (j *Job) finish(state string, err error) {
	j.mu.Lock()
	moved := j.finishLocked(state, err)
	j.mu.Unlock()
	if moved {
		j.trace.End()
		close(j.done)
	}
}

// finishLocked performs the state transition under j.mu, reporting
// whether it happened; the caller then ends the trace and closes Done
// outside the lock.
func (j *Job) finishLocked(state string, err error) bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return false
	}
	j.state = state
	j.err = err
	j.cancel = nil
	j.ended = obs.Now()
	return true
}

// Submit validates, registers, and enqueues a job, returning its handle.
// The eval pipeline is built (or found shared) here, so an unknown
// backend or malformed middleware token fails the submission — the HTTP
// layer turns *eval.UnknownBackendError into a 400 with the backend
// list — rather than a job that dies later.
func (r *Runner) Submit(spec JobSpec) (*Job, error) {
	return r.submit(spec, nil, "")
}

func (r *Runner) submit(spec JobSpec, resume *core.Checkpoint, resumedFrom string) (*Job, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	closing := r.closing
	r.mu.Unlock()
	if closing {
		return nil, ErrShuttingDown
	}
	if _, err := r.pipes.Get(spec.Eval); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closing {
		return nil, ErrShuttingDown
	}
	r.nextID++
	j := &Job{
		id:          fmt.Sprintf("job-%d", r.nextID),
		spec:        spec,
		trace:       NewTraceBuffer(),
		reg:         obs.NewRegistry(),
		done:        make(chan struct{}),
		state:       StateQueued,
		best:        math.Inf(1),
		resume:      resume,
		resumedFrom: resumedFrom,
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.pending = append(r.pending, j)
	r.cond.Signal()
	return j, nil
}

// Get returns a job by ID.
func (r *Runner) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (r *Runner) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}

// Cancel cancels a job: a queued job goes terminal immediately, a
// running one gets its context canceled and stops at core.RunContext's
// next cancellation point (search) or the next step boundary
// (experiment). Canceling a finished job returns ErrJobFinished.
func (r *Runner) Cancel(id string) error {
	j, ok := r.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Transition under j.mu: a worker claiming the job serializes on
		// the same lock, so either it sees canceled and skips, or we see
		// running and cancel the context below — never both.
		j.finishLocked(StateCanceled, context.Canceled)
		j.mu.Unlock()
		j.trace.End()
		close(j.done)
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
	j.mu.Unlock()
	return ErrJobFinished
}

// Resume submits a new job continuing a terminal search job from its
// retained checkpoint — the server-side analogue of the CLI's
// -checkpoint/-resume files, with the snapshot held in memory instead.
// The new job reuses the original spec verbatim (core requires matching
// models, seed, strategy, and budgets) and records its ancestry.
func (r *Runner) Resume(id string) (*Job, error) {
	j, ok := r.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	resumable := j.resumableLocked()
	cp := j.checkpoint
	spec := j.spec
	j.mu.Unlock()
	if !resumable {
		return nil, ErrNotResumable
	}
	return r.submit(spec, cp, id)
}

// Shutdown drains the runner: new submissions are refused, queued jobs
// are canceled, and running jobs are given until ctx expires to finish
// before being canceled too. It then flushes and closes the shared
// pipelines (the persistent cache journals). Workers exit; the runner
// is not reusable.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		return errors.New("engine: runner already shut down")
	}
	r.closing = true
	queued := r.pending
	r.pending = nil
	running := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		running = append(running, r.jobs[id])
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, j := range queued {
		j.finish(StateCanceled, ErrShuttingDown)
	}

	workersDone := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Out of patience: cancel whatever is still running and wait for
		// the workers to wind down (core.RunContext returns promptly).
		for _, j := range running {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
		<-workersDone
	}
	return r.pipes.Close()
}

// worker drains the FIFO queue until shutdown.
func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.pending) == 0 && !r.closing {
			r.cond.Wait()
		}
		if len(r.pending) == 0 && r.closing {
			r.mu.Unlock()
			return
		}
		j := r.pending[0]
		r.pending = r.pending[1:]
		r.mu.Unlock()
		r.runJob(j)
	}
}

// runJob executes one job to a terminal state.
func (r *Runner) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = obs.Now()
	j.mu.Unlock()

	pipe, err := r.pipes.Get(j.spec.Eval)
	if err != nil {
		// Validated at submission; reachable only if the set was closed
		// under a racing shutdown.
		j.finish(StateFailed, err)
		return
	}
	// The job's events go to its own buffer (for SSE subscribers), its
	// per-job metrics registry (for /jobs/{id}/progress and the labeled
	// per-job gauges on /metrics), and the server-wide sink (for the
	// aggregate counters). Tracing is observe-only, so the fan-out cannot
	// perturb results.
	tracer := obs.Tee(j.trace, obs.NewMetricsTracer(j.reg), r.cfg.Tracer)

	switch j.spec.Kind {
	case KindExperiment:
		_, err = RunExperiments(ctx, j.spec, ExperimentOptions{
			Eval:   pipe,
			Tracer: tracer,
			OnStepDone: func(res StepResult) error {
				j.mu.Lock()
				j.artifacts = append(j.artifacts, res.Artifacts...)
				if res.Summary != "" {
					j.summary += fmt.Sprintf("== %s ==\n%s", res.Key, res.Summary)
				} else {
					j.summary += fmt.Sprintf("== %s ==\n", res.Key)
				}
				j.mu.Unlock()
				return nil
			},
		})
	default: // KindSearch
		err = r.runSearchJob(ctx, j, pipe, tracer)
	}

	switch {
	case err == nil:
		j.finish(StateDone, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCanceled, err)
	default:
		j.finish(StateFailed, err)
	}
}

// runSearchJob runs a search job, retaining every checkpoint (so any
// terminal state is resumable) and recording the result summary plus
// history/design artifacts on success or cancellation.
func (r *Runner) runSearchJob(ctx context.Context, j *Job, pipe core.Evaluator, tracer obs.Tracer) error {
	obj, err := ResolveObjective(j.spec.Objective)
	if err != nil {
		return err
	}
	res, runErr := RunSearch(ctx, j.spec, SearchOptions{
		Eval:   pipe,
		Tracer: tracer,
		Resume: j.resume,
		OnCheckpoint: func(cp *core.Checkpoint) error {
			j.mu.Lock()
			j.checkpoint = cp
			j.samples = cp.Samples
			j.mu.Unlock()
			return nil
		},
	})
	canceled := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))
	if runErr != nil && !canceled {
		return runErr
	}
	j.mu.Lock()
	j.samples = len(res.History)
	if len(res.History) > 0 {
		j.best = res.Best.Objective
		j.artifacts = append(j.artifacts, Artifact{Name: "history.csv", Data: HistoryCSV(res)})
		if !math.IsInf(res.Best.Objective, 0) {
			j.summary = SearchReport(res, obj, false)
			if data, derr := DesignJSON(res, obj); derr == nil {
				j.artifacts = append(j.artifacts, Artifact{Name: "design.json", Data: data})
			}
		}
	}
	j.mu.Unlock()
	return runErr
}
