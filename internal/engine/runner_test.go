package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"spotlight/internal/obs"
)

// tinySearchSpec is a fast search spec for runner tests; hw is sized so
// a test can observe the job mid-flight and cancel it.
func tinySearchSpec(hw int) JobSpec {
	return JobSpec{
		Kind:      KindSearch,
		Models:    []string{"Transformer"},
		HWSamples: hw,
		SWSamples: 4,
		Eval:      "sim,cache",
	}
}

func waitTerminal(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s never reached a terminal state (still %s)", j.ID(), j.Status().State)
	}
	return j.Status()
}

func shutdownRunner(t *testing.T, r *Runner) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestRunnerFIFOIdenticalJobsIdenticalArtifacts: a single worker drains
// jobs in submission order with deterministic IDs, and two identical
// experiment jobs — the second served almost entirely from the shared
// memo cache — produce byte-identical artifacts: the shared pipeline is
// trajectory-neutral.
func TestRunnerFIFOIdenticalJobsIdenticalArtifacts(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner(RunnerConfig{Concurrency: 1, Tracer: obs.NewMetricsTracer(reg)})
	defer shutdownRunner(t, r)

	a, err := r.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "job-1" || b.ID() != "job-2" {
		t.Fatalf("IDs = %s, %s; want job-1, job-2", a.ID(), b.ID())
	}
	sa, sb := waitTerminal(t, a), waitTerminal(t, b)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states = %s/%s (%s/%s), want done/done", sa.State, sb.State, sa.Error, sb.Error)
	}
	da, ok := a.Artifact("fig6.csv")
	if !ok {
		t.Fatalf("job-1 has no fig6.csv (artifacts: %v)", sa.Artifacts)
	}
	db, _ := b.Artifact("fig6.csv")
	if !bytes.Equal(da, db) {
		t.Fatalf("identical jobs produced different fig6.csv:\n%s\nvs\n%s", da, db)
	}
	// The second job re-asked for evaluations the first already paid
	// for; the shared pipeline's memo cache must show the dedup.
	if hits := reg.Counter("trace.cache.hit").Value(); hits == 0 {
		t.Fatal("duplicate job produced no cache hits in the shared pipeline")
	}
	if sa.Events == 0 {
		t.Fatal("job trace buffer recorded no events")
	}
}

// TestRunnerCancelQueued: a job canceled while waiting for a worker goes
// terminal immediately and is never run.
func TestRunnerCancelQueued(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1})
	defer shutdownRunner(t, r)

	blocker, err := r.Submit(tinySearchSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := r.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(queued.ID()); err != nil {
		t.Fatalf("Cancel(queued): %v", err)
	}
	st := waitTerminal(t, queued)
	if st.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	if st.Events != 0 {
		t.Fatalf("canceled-while-queued job has %d trace events; it must never have run", st.Events)
	}
	if err := r.Cancel(queued.ID()); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("Cancel(finished) = %v, want ErrJobFinished", err)
	}
	if err := r.Cancel("job-999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
	if err := r.Cancel(blocker.ID()); err != nil {
		t.Fatalf("Cancel(running): %v", err)
	}
	waitTerminal(t, blocker)
}

// TestRunnerCancelRunningThenResume is the server-side checkpoint story:
// cancel a running search after its first completed sample, observe the
// retained checkpoint makes it resumable, resume it, and check the
// continuation reaches the same best objective as an identical
// uninterrupted run — core's resume determinism carried through the
// runner.
func TestRunnerCancelRunningThenResume(t *testing.T) {
	const hw = 12
	r := NewRunner(RunnerConfig{Concurrency: 1})
	defer shutdownRunner(t, r)

	j, err := r.Submit(tinySearchSpec(hw))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first checkpoint, then cancel mid-run.
	deadline := time.Now().Add(120 * time.Second)
	for j.Status().Samples == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never completed a hardware sample")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Cancel(j.ID()); err != nil {
		t.Fatalf("Cancel(running): %v", err)
	}
	st := waitTerminal(t, j)
	if st.State == StateDone {
		t.Skip("search finished before the cancel landed; nothing to resume")
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if !st.Resumable {
		t.Fatal("canceled search with a checkpoint is not resumable")
	}

	resumed, err := r.Resume(j.ID())
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	rst := waitTerminal(t, resumed)
	if rst.State != StateDone {
		t.Fatalf("resumed job state = %s (%s), want done", rst.State, rst.Error)
	}
	if rst.ResumedFrom != j.ID() {
		t.Fatalf("resumed job ancestry = %q, want %q", rst.ResumedFrom, j.ID())
	}
	if rst.Samples != hw {
		t.Fatalf("resumed job completed %d samples, want %d", rst.Samples, hw)
	}

	// Reference: the same spec uninterrupted.
	ref, err := r.Submit(tinySearchSpec(hw))
	if err != nil {
		t.Fatal(err)
	}
	refst := waitTerminal(t, ref)
	if refst.State != StateDone {
		t.Fatalf("reference job state = %s (%s)", refst.State, refst.Error)
	}
	if rst.BestObjective == nil || refst.BestObjective == nil {
		t.Fatalf("missing best objectives: resumed=%v ref=%v", rst.BestObjective, refst.BestObjective)
	}
	if *rst.BestObjective != *refst.BestObjective {
		t.Fatalf("resumed best %g != uninterrupted best %g", *rst.BestObjective, *refst.BestObjective)
	}
}

// TestRunnerResumeRejections: unknown jobs, experiment jobs, and
// checkpoint-less jobs cannot be resumed.
func TestRunnerResumeRejections(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1})
	defer shutdownRunner(t, r)

	if _, err := r.Resume("job-999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resume(unknown) = %v, want ErrNotFound", err)
	}
	exp, err := r.Submit(simcheckSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, exp)
	if _, err := r.Resume(exp.ID()); !errors.Is(err, ErrNotResumable) {
		t.Fatalf("Resume(experiment) = %v, want ErrNotResumable", err)
	}
}

// TestRunnerSubmitRejectsBadSpecs: validation and pipeline construction
// both happen at submission, so bad jobs never enter the queue.
func TestRunnerSubmitRejectsBadSpecs(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1})
	defer shutdownRunner(t, r)

	spec := tinySpec()
	spec.Eval = "no-such-backend,cache"
	if _, err := r.Submit(spec); err == nil {
		t.Fatal("unknown backend accepted at submission")
	} else if _, ok := IsUnknownBackend(err); !ok {
		t.Fatalf("unknown backend error is %T, want *eval.UnknownBackendError", err)
	}
	spec = tinySpec()
	spec.Steps = []string{"fig99"}
	if _, err := r.Submit(spec); err == nil {
		t.Fatal("unknown step accepted at submission")
	}
}

// TestRunnerShutdownDrains: shutdown lets the running job finish, kills
// the queue, and refuses new work.
func TestRunnerShutdownDrains(t *testing.T) {
	r := NewRunner(RunnerConfig{Concurrency: 1})
	running, err := r.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := r.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first job to be picked up, so the test exercises both
	// the drain path (running) and the queue-kill path (queued).
	deadline := time.Now().Add(60 * time.Second)
	for running.Status().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := running.Status(); st.State != StateDone {
		t.Fatalf("running job drained to %s (%s), want done", st.State, st.Error)
	}
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("queued job state after shutdown = %s, want canceled", st.State)
	}
	if _, err := r.Submit(tinySpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}
