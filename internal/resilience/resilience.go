// Package resilience hardens cost-model backends against the failure
// modes the paper's ecosystem exhibits in the wild: external evaluators
// that crash, hang, or return garbage (§II notes Hypermapper "often
// failed to terminate at all"). It provides two evaluator wrappers:
//
//   - Guard converts evaluator panics to errors, bounds each call with a
//     timeout, and retries errors classified transient with seeded
//     exponential backoff — so one flaky evaluation costs one sample, not
//     the whole search process.
//   - ChaosEvaluator deterministically injects those same faults
//     (transient errors, latency spikes, NaN/±Inf costs, panics) at
//     configurable rates, which is how the search runtime's fault paths
//     are tested.
//
// Error classification: a fault is *transient* (worth retrying) only if
// it wraps ErrTransient — or whatever the caller's IsTransient says.
// Everything else (including ErrPanic and ErrTimeout by default) is
// permanent for that sample: the driver records the sample as invalid
// and moves on.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Evaluator is the cost-model contract this package wraps. It is
// structurally identical to core.Evaluator (and to eval's backend
// contract), declared locally so resilience sits below both in the
// import graph: internal/eval composes Guard into pipelines without a
// cycle, and core never needs to know resilience exists.
type Evaluator interface {
	Evaluate(hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error)
	Name() string
}

// ErrPanic wraps a panic recovered from an evaluator call.
var ErrPanic = errors.New("resilience: evaluator panicked")

// ErrTransient marks an evaluator fault worth retrying. ChaosEvaluator's
// injected transient faults wrap it, and Guard's default classifier
// retries exactly the errors that wrap it.
var ErrTransient = errors.New("resilience: transient evaluator fault")

// ErrTimeout is returned when an evaluator call exceeds Guard.Timeout.
// It wraps context.DeadlineExceeded so callers can errors.Is either.
var ErrTimeout = fmt.Errorf("resilience: evaluator call timed out: %w", context.DeadlineExceeded)

// Guard wraps an Evaluator with panic recovery, a per-call timeout, and
// seeded retry-with-backoff for transient faults. The zero value of
// every knob is safe: no timeout, no retries, no backoff — only the
// panic-to-error conversion is unconditional. A Guard is safe for
// concurrent Evaluate calls iff the wrapped evaluator is; it keeps no
// mutable state (retry jitter is derived by hashing, not drawn from a
// shared RNG, so worker interleaving cannot perturb it).
type Guard struct {
	// Eval is the wrapped evaluator.
	Eval Evaluator
	// Timeout bounds one underlying Evaluate call; 0 disables. The
	// Evaluator interface has no cancellation hook, so a call that
	// exceeds the timeout is abandoned: its goroutine runs to completion
	// in the background (or forever, for a truly hung evaluator) while
	// the search moves on — the price of containing a hang without
	// cooperation from the evaluator.
	Timeout time.Duration
	// Retries is how many times a transient fault is retried before it
	// is reported; 0 means report the first fault.
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt (capped at 64×) with seeded jitter; 0 retries immediately.
	Backoff time.Duration
	// Seed decorrelates the backoff jitter of concurrent searches.
	Seed int64
	// IsTransient classifies errors worth retrying; nil means
	// errors.Is(err, ErrTransient).
	IsTransient func(error) bool
	// Tracer, when set, receives one guard.retry event per retried fault
	// and one guard.timeout event per abandoned call. Tracing is
	// observe-only: it never changes what the guard returns.
	Tracer obs.Tracer
}

// Name implements Evaluator.
func (g *Guard) Name() string { return "guard(" + g.Eval.Name() + ")" }

// spanEvaluator is the span-threading fast path of the evaluator
// contract, declared structurally (like Evaluator above) so resilience
// stays below core in the import graph; it matches
// core.SpanEvaluator's method exactly.
type spanEvaluator interface {
	EvaluateSpan(*obs.Span, hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error)
}

// Evaluate implements Evaluator with the guard policy applied.
func (g *Guard) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return g.EvaluateSpan(nil, a, s, l)
}

// EvaluateSpan applies the same guard policy while threading the
// caller's span inward (when the wrapped evaluator understands spans)
// and parenting the guard's own retry/timeout events under it. With a
// nil span it is exactly Evaluate.
func (g *Guard) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	transient := g.IsTransient
	if transient == nil {
		transient = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	for attempt := 0; ; attempt++ {
		cost, err := g.attempt(sp, a, s, l)
		if err == nil || attempt >= g.Retries || !transient(err) {
			return cost, err
		}
		if obs.Active(sp, g.Tracer) {
			sp.EmitTo(g.Tracer, obs.Event{Type: obs.GuardRetry, N: attempt + 1, Detail: err.Error()})
		}
		g.backoff(a, s, l, attempt)
	}
}

// attempt makes one guarded call: panic-recovered, and raced against the
// timeout when one is configured.
func (g *Guard) attempt(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	if g.Timeout <= 0 {
		return g.safeCall(sp, a, s, l)
	}
	type outcome struct {
		cost maestro.Cost
		err  error
	}
	ch := make(chan outcome, 1) // buffered: a late finisher must not block forever
	go func() {
		c, err := g.safeCall(sp, a, s, l)
		ch <- outcome{c, err}
	}()
	timer := time.NewTimer(g.Timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.cost, o.err
	case <-timer.C:
		if obs.Active(sp, g.Tracer) {
			sp.EmitTo(g.Tracer, obs.Event{Type: obs.GuardTimeout,
				DurMS: obs.MS(g.Timeout), Detail: g.Timeout.String()})
		}
		return maestro.Cost{}, fmt.Errorf("resilience: evaluation exceeded %v: %w", g.Timeout, ErrTimeout)
	}
}

// safeCall invokes the wrapped evaluator, converting a panic into an
// error wrapping ErrPanic.
func (g *Guard) safeCall(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (cost maestro.Cost, err error) {
	defer func() {
		if r := recover(); r != nil {
			cost = maestro.Cost{}
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	if sp != nil {
		if se, ok := g.Eval.(spanEvaluator); ok {
			return se.EvaluateSpan(sp, a, s, l)
		}
	}
	return g.Eval.Evaluate(a, s, l)
}

// backoff sleeps before retry `attempt`+1: exponential in the attempt
// with jitter in [0.5, 1.0)× derived deterministically from (Seed, call
// inputs, attempt) — reproducible at any worker interleaving.
func (g *Guard) backoff(a hw.Accel, s sched.Schedule, l workload.Layer, attempt int) {
	if g.Backoff <= 0 {
		return
	}
	d := g.Backoff
	for i := 0; i < attempt && d < 64*g.Backoff; i++ {
		d *= 2
	}
	u := unit(mix(mix(uint64(g.Seed), hashPoint(a, s, l)), uint64(attempt)+1))
	time.Sleep(time.Duration(float64(d) * (0.5 + 0.5*u)))
}

// mix is a splitmix64-style finalizer folding s into state z, the same
// construction core uses for per-layer seed derivation.
func mix(z, s uint64) uint64 {
	z ^= s + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to [0, 1).
func unit(z uint64) float64 { return float64(z>>11) / (1 << 53) }

// hashPoint folds one (accelerator, schedule, layer) triple into a
// 64-bit key, so fault and jitter decisions depend on what is being
// evaluated rather than on call order.
func hashPoint(a hw.Accel, s sched.Schedule, l workload.Layer) uint64 {
	z := uint64(0x5ca1ab1e)
	for _, v := range [...]int{a.PEs, a.Width, a.SIMDLanes, a.RFKB, a.L2KB, a.NoCBW} {
		z = mix(z, uint64(v))
	}
	for i := 0; i < workload.NumDims; i++ {
		z = mix(z, uint64(s.T2[i]))
		z = mix(z, uint64(s.T1[i]))
		z = mix(z, uint64(s.OuterOrder[i]))
		z = mix(z, uint64(s.InnerOrder[i]))
	}
	z = mix(z, uint64(s.OuterUnroll))
	z = mix(z, uint64(s.InnerUnroll))
	for _, c := range l.Name {
		z = mix(z, uint64(c))
	}
	for _, v := range l.Sizes() {
		z = mix(z, uint64(v))
	}
	return mix(z, uint64(l.Repeat))
}
