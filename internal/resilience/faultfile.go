package resilience

import (
	"io"
	"sync"
)

// FileFault is the shared write-path fault injector for persistence
// code: it meters a byte budget and then fails every further write with
// a configured error, optionally completing a *partial* write first —
// which is exactly the on-disk state a crash (SIGKILL mid-append) or a
// filling disk (ENOSPC halfway through a record) leaves behind. The
// disk-cache crash tests and the torn-checkpoint tests both drive their
// writers through one of these, so every persistence layer is exercised
// against the same fault model.
//
// A FileFault is safe for concurrent use; the byte budget is consumed
// atomically across every writer it wraps.
type FileFault struct {
	mu        sync.Mutex
	remaining int64
	err       error
	tripped   bool
}

// NewFileFault returns a fault that lets budget bytes through and then
// fails with err. A negative budget never trips (useful as a disabled
// default); a zero budget fails the first write.
func NewFileFault(budget int64, err error) *FileFault {
	return &FileFault{remaining: budget, err: err}
}

// Tripped reports whether the fault has fired at least once.
func (f *FileFault) Tripped() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// admit consumes up to n bytes of budget and returns how many may be
// written and the error to report once the budget is exhausted.
func (f *FileFault) admit(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining < 0 {
		return n, nil
	}
	if int64(n) <= f.remaining {
		f.remaining -= int64(n)
		return n, nil
	}
	allowed := int(f.remaining)
	f.remaining = 0
	f.tripped = true
	return allowed, f.err
}

// Writer wraps w so its writes draw on the fault's byte budget. Once the
// budget is exhausted a write completes partially (the admitted prefix
// reaches w — a torn record) and returns the fault's error; nil f or a
// negative budget make this a pass-through.
func (f *FileFault) Writer(w io.Writer) io.Writer {
	if f == nil {
		return w
	}
	return &faultWriter{fault: f, w: w}
}

type faultWriter struct {
	fault *FileFault
	w     io.Writer
}

// Write implements io.Writer with the fault policy applied.
func (fw *faultWriter) Write(p []byte) (int, error) {
	allowed, ferr := fw.fault.admit(len(p))
	n := 0
	if allowed > 0 {
		var werr error
		n, werr = fw.w.Write(p[:allowed])
		if werr != nil {
			return n, werr
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}
