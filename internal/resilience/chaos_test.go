package resilience

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/search"
	"spotlight/internal/workload"
)

func chaosModel() workload.Model {
	return workload.Model{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.Conv("a", 1, 32, 16, 3, 3, 10, 10),
			workload.Conv("b", 1, 64, 32, 1, 1, 8, 8).Times(2),
		},
	}
}

func chaosConfig(seed int64, eval core.Evaluator) core.RunConfig {
	return core.RunConfig{
		Models:    []workload.Model{chaosModel()},
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: core.MinEDP,
		HWSamples: 6,
		SWSamples: 4,
		Seed:      seed,
		Eval:      eval,
	}
}

func allStrategies() []core.Strategy {
	return []core.Strategy{
		core.NewSpotlight(), core.NewSpotlightV(), core.NewSpotlightA(), core.NewSpotlightF(),
		search.NewRandom(), search.NewGenetic(), search.NewConfuciuX(), search.NewHASCO(),
	}
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (plus slack for runtime helpers) or the deadline passes.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), baseline)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func wellFormed(t *testing.T, name string, res core.Result) {
	t.Helper()
	prev := math.Inf(1)
	for i, h := range res.History {
		if h.Sample != i+1 {
			t.Errorf("%s: history[%d].Sample = %d, want %d", name, i, h.Sample, i+1)
		}
		if h.BestSoFar > prev {
			t.Errorf("%s: BestSoFar rose at sample %d: %v after %v", name, h.Sample, h.BestSoFar, prev)
		}
		prev = h.BestSoFar
	}
	for _, d := range res.Frontier {
		if math.IsNaN(d.Objective) {
			t.Errorf("%s: NaN objective on the frontier", name)
		}
	}
	for _, d := range res.Top {
		if math.IsNaN(d.Objective) || math.IsInf(d.Objective, 0) {
			t.Errorf("%s: non-finite objective %v among top designs", name, d.Objective)
		}
	}
}

// TestChaosEveryStrategySurvivesFaults runs each strategy against an
// evaluator that panics, fails transiently, and returns NaN/±Inf costs,
// behind a Guard. The run must complete its full budget without
// panicking, deadlocking, or leaking goroutines, and produce a
// well-formed Result.
func TestChaosEveryStrategySurvivesFaults(t *testing.T) {
	for _, strat := range allStrategies() {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			chaos := &ChaosEvaluator{
				Inner:         maestro.New(),
				Seed:          11,
				TransientRate: 0.05,
				NaNRate:       0.05,
				InfRate:       0.03,
				PanicRate:     0.03,
			}
			guard := &Guard{Eval: chaos, Retries: 2}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := core.RunContext(ctx, chaosConfig(5, guard), strat)
			if err != nil && !errors.Is(err, core.ErrNoFeasible) {
				t.Fatalf("run failed: %v", err)
			}
			if err == nil && len(res.History) != 6 {
				t.Errorf("history has %d entries, want the full 6", len(res.History))
			}
			wellFormed(t, strat.Name(), res)
			if n := chaos.Counts(); n.Transients+n.NaNs+n.Infs+n.Panics == 0 {
				t.Logf("warning: seed injected no faults (%+v); consider raising rates", n)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// TestChaosUnguardedPanicPropagates documents the contract split: the
// search runtime contains worker panics (no leaked goroutines, no torn
// state) but re-raises them to the caller — converting panics to
// recorded invalid samples is Guard's job, not the driver's.
func TestChaosUnguardedPanicPropagates(t *testing.T) {
	baseline := runtime.NumGoroutine()
	chaos := &ChaosEvaluator{Inner: maestro.New(), Seed: 2, PanicRate: 1}
	defer func() {
		if recover() == nil {
			t.Error("run with an always-panicking evaluator did not panic")
		}
		waitForGoroutines(t, baseline)
	}()
	_, _ = core.RunContext(context.Background(), chaosConfig(1, chaos), core.NewSpotlight())
}

// TestChaosDeadlineReturnsPartialResult injects latency so the run
// cannot finish its budget, and checks that RunContext honors the
// deadline promptly with a well-formed partial Result.
func TestChaosDeadlineReturnsPartialResult(t *testing.T) {
	baseline := runtime.NumGoroutine()
	chaos := &ChaosEvaluator{
		Inner:       maestro.New(),
		Seed:        4,
		LatencyRate: 1,
		Latency:     2 * time.Millisecond,
	}
	cfg := chaosConfig(9, chaos)
	cfg.HWSamples = 1000
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := core.RunContext(ctx, cfg, core.NewSpotlight())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("RunContext took %v to honor a 100ms deadline", elapsed)
	}
	if len(res.History) >= 1000 {
		t.Fatalf("history has %d entries despite the deadline", len(res.History))
	}
	wellFormed(t, "deadline", res)
	waitForGoroutines(t, baseline)
}
