package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// faultEval is a scriptable evaluator: it consults fail(call#) before
// delegating to a fixed cost.
type faultEval struct {
	calls atomic.Int64
	fail  func(call int64) error
	hang  time.Duration
}

func (f *faultEval) Name() string { return "fault" }

func (f *faultEval) Evaluate(hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error) {
	n := f.calls.Add(1)
	if f.hang > 0 {
		time.Sleep(f.hang)
	}
	if f.fail != nil {
		if err := f.fail(n); err != nil {
			return maestro.Cost{}, err
		}
	}
	return maestro.Cost{DelayCycles: 100, EnergyNJ: 5}, nil
}

func testPoint() (hw.Accel, sched.Schedule, workload.Layer) {
	l := workload.Conv("p", 1, 8, 4, 3, 3, 6, 6)
	var s sched.Schedule
	for i := range s.T2 {
		s.T2[i], s.T1[i] = 2, 1
		s.OuterOrder[i], s.InnerOrder[i] = workload.AllDims[i], workload.AllDims[i]
	}
	return hw.Accel{PEs: 64, Width: 8, SIMDLanes: 1, RFKB: 8, L2KB: 64, NoCBW: 32}, s, l
}

func TestGuardConvertsPanicToError(t *testing.T) {
	inner := &faultEval{fail: func(int64) error { panic("kaboom") }}
	g := &Guard{Eval: inner}
	a, s, l := testPoint()
	_, err := g.Evaluate(a, s, l)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if got := g.Name(); got != "guard(fault)" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestGuardTimesOutHungEvaluator(t *testing.T) {
	inner := &faultEval{hang: 2 * time.Second}
	g := &Guard{Eval: inner, Timeout: 20 * time.Millisecond}
	a, s, l := testPoint()
	start := time.Now()
	_, err := g.Evaluate(a, s, l)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrTimeout wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("guard took %v to give up on a hung call", elapsed)
	}
}

func TestGuardRetriesTransientFaults(t *testing.T) {
	inner := &faultEval{fail: func(n int64) error {
		if n <= 2 {
			return fmt.Errorf("flaky backend: %w", ErrTransient)
		}
		return nil
	}}
	g := &Guard{Eval: inner, Retries: 3}
	a, s, l := testPoint()
	cost, err := g.Evaluate(a, s, l)
	if err != nil {
		t.Fatalf("Evaluate failed after retries: %v", err)
	}
	if cost.DelayCycles != 100 {
		t.Fatalf("cost = %+v, want the inner evaluator's", cost)
	}
	if n := inner.calls.Load(); n != 3 {
		t.Fatalf("inner called %d times, want 3", n)
	}
}

func TestGuardExhaustsRetries(t *testing.T) {
	inner := &faultEval{fail: func(int64) error {
		return fmt.Errorf("always down: %w", ErrTransient)
	}}
	g := &Guard{Eval: inner, Retries: 2}
	a, s, l := testPoint()
	if _, err := g.Evaluate(a, s, l); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient after exhausting retries", err)
	}
	if n := inner.calls.Load(); n != 3 {
		t.Fatalf("inner called %d times, want 1 + 2 retries", n)
	}
}

func TestGuardDoesNotRetryPermanentErrors(t *testing.T) {
	permanent := errors.New("bad geometry")
	inner := &faultEval{fail: func(int64) error { return permanent }}
	g := &Guard{Eval: inner, Retries: 5}
	a, s, l := testPoint()
	if _, err := g.Evaluate(a, s, l); !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want the permanent error unretried", err)
	}
	if n := inner.calls.Load(); n != 1 {
		t.Fatalf("inner called %d times, want 1", n)
	}
}

func TestChaosZeroRatesIsPassthrough(t *testing.T) {
	c := &ChaosEvaluator{Inner: maestro.New(), Seed: 1}
	a, s, l := testPoint()
	// The tiny hand-built schedule may be infeasible for maestro; what
	// matters is that chaos and inner agree exactly.
	gotCost, gotErr := c.Evaluate(a, s, l)
	wantCost, wantErr := maestro.New().Evaluate(a, s, l)
	if gotCost != wantCost || (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("passthrough mismatch: (%+v, %v) vs (%+v, %v)", gotCost, gotErr, wantCost, wantErr)
	}
	if n := c.Counts(); n.Calls != 1 || n.Transients+n.NaNs+n.Infs+n.Panics+n.Latencies != 0 {
		t.Fatalf("counts = %+v, want one clean call", n)
	}
}

// chaosSignature records the outcome kinds of a fixed call sequence.
func chaosSignature(t *testing.T, seed int64) []string {
	t.Helper()
	c := &ChaosEvaluator{
		Inner:         &faultEval{},
		Seed:          seed,
		TransientRate: 0.3,
		NaNRate:       0.3,
		InfRate:       0.2,
		PanicRate:     0.2,
	}
	a, s, l := testPoint()
	var sig []string
	for i := 0; i < 40; i++ {
		out := func() (kind string) {
			defer func() {
				if recover() != nil {
					kind = "panic"
				}
			}()
			cost, err := c.Evaluate(a, s, l)
			switch {
			case errors.Is(err, ErrTransient):
				return "transient"
			case err != nil:
				return "error"
			case !cost.Finite():
				return "nonfinite"
			default:
				return "ok"
			}
		}()
		sig = append(sig, out)
	}
	return sig
}

func TestChaosInjectionIsDeterministic(t *testing.T) {
	a := chaosSignature(t, 42)
	b := chaosSignature(t, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	for _, want := range []string{"ok", "transient", "nonfinite", "panic"} {
		if !kinds[want] {
			t.Errorf("40 calls at high rates never produced %q: %v", want, a)
		}
	}
}

func TestChaosRetriesSeeFreshDraws(t *testing.T) {
	// A Guard retry re-evaluates the same point; the per-point attempt
	// counter must advance the fault stream, or injected "transients"
	// would repeat forever and retries would be useless. First find a
	// seed whose very first draw on this point is a transient.
	a, s, l := testPoint()
	seed := int64(-1)
	for cand := int64(0); cand < 1000; cand++ {
		c := &ChaosEvaluator{Inner: &faultEval{}, Seed: cand, TransientRate: 0.9}
		if _, err := c.Evaluate(a, s, l); errors.Is(err, ErrTransient) {
			seed = cand
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in [0,1000) injects a transient on the first call")
	}
	c := &ChaosEvaluator{Inner: &faultEval{}, Seed: seed, TransientRate: 0.9}
	g := &Guard{Eval: c, Retries: 200}
	if _, err := g.Evaluate(a, s, l); err != nil {
		t.Fatalf("200 retries at rate 0.9 never drew a success: %v", err)
	}
	if n := c.Counts(); n.Transients == 0 {
		t.Fatalf("counts = %+v: no transient was injected, test is vacuous", n)
	}
}
