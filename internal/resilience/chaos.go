package resilience

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// ChaosEvaluator wraps an Evaluator and deterministically injects the
// faults Guard is built to absorb: transient errors, latency spikes,
// NaN and ±Inf costs, and panics. Each fault is decided by hashing
// (Seed, evaluated point, per-point attempt number), so a run with a
// fixed seed injects exactly the same faults at any worker count or
// interleaving — and a Guard retry of the same point sees a *fresh*
// draw (the attempt number advances), so injected transients really are
// transient. It is safe for concurrent use iff the wrapped evaluator
// is.
//
// Rates are independent probabilities checked in order: latency (which
// delays but does not fail), then panic, then transient error, then —
// only if the inner evaluation succeeded — NaN, then ±Inf corruption.
type ChaosEvaluator struct {
	// Inner is the evaluator being sabotaged.
	Inner Evaluator
	// Seed selects the fault schedule; two ChaosEvaluators with equal
	// seeds and rates inject identical faults on identical call streams.
	Seed int64
	// TransientRate is the probability a call fails with an error
	// wrapping ErrTransient.
	TransientRate float64
	// LatencyRate is the probability a call sleeps Latency first.
	LatencyRate float64
	// Latency is the injected delay (default 1ms when LatencyRate > 0).
	Latency time.Duration
	// NaNRate is the probability a successful cost comes back with NaN
	// in its headline fields.
	NaNRate float64
	// InfRate is the probability a successful cost comes back with ±Inf
	// in its headline fields (checked only if the NaN draw missed).
	InfRate float64
	// PanicRate is the probability a call panics.
	PanicRate float64

	mu       sync.Mutex
	attempts map[uint64]uint64 // per-point call counter, keyed by hashPoint

	calls      atomic.Int64
	transients atomic.Int64
	latencies  atomic.Int64
	nans       atomic.Int64
	infs       atomic.Int64
	panics     atomic.Int64
}

// InjectionCounts reports how many faults of each kind a ChaosEvaluator
// actually injected.
type InjectionCounts struct {
	Calls      int64
	Transients int64
	Latencies  int64
	NaNs       int64
	Infs       int64
	Panics     int64
}

// Counts returns a snapshot of the injection counters.
func (c *ChaosEvaluator) Counts() InjectionCounts {
	return InjectionCounts{
		Calls:      c.calls.Load(),
		Transients: c.transients.Load(),
		Latencies:  c.latencies.Load(),
		NaNs:       c.nans.Load(),
		Infs:       c.infs.Load(),
		Panics:     c.panics.Load(),
	}
}

// Name implements Evaluator.
func (c *ChaosEvaluator) Name() string { return "chaos(" + c.Inner.Name() + ")" }

// nextAttempt returns this point's 0-based call number and advances it.
func (c *ChaosEvaluator) nextAttempt(h uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.attempts == nil {
		c.attempts = make(map[uint64]uint64)
	}
	n := c.attempts[h]
	c.attempts[h] = n + 1
	return n
}

// Evaluate implements Evaluator with fault injection.
func (c *ChaosEvaluator) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	c.calls.Add(1)
	h := hashPoint(a, s, l)
	z := mix(mix(uint64(c.Seed), h), c.nextAttempt(h))
	if unit(mix(z, 1)) < c.LatencyRate {
		c.latencies.Add(1)
		d := c.Latency
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	if unit(mix(z, 2)) < c.PanicRate {
		c.panics.Add(1)
		panic(fmt.Sprintf("resilience: injected chaos panic (point %016x)", h))
	}
	if unit(mix(z, 3)) < c.TransientRate {
		c.transients.Add(1)
		return maestro.Cost{}, fmt.Errorf("resilience: injected chaos fault (point %016x): %w", h, ErrTransient)
	}
	cost, err := c.Inner.Evaluate(a, s, l)
	if err != nil {
		return cost, err
	}
	if unit(mix(z, 4)) < c.NaNRate {
		c.nans.Add(1)
		cost.DelayCycles = math.NaN()
		cost.EnergyNJ = math.NaN()
		cost.Utilization = math.NaN()
	} else if unit(mix(z, 5)) < c.InfRate {
		c.infs.Add(1)
		sign := 1
		if mix(z, 6)&1 == 1 {
			sign = -1
		}
		cost.DelayCycles = math.Inf(sign)
		cost.EnergyNJ = math.Inf(sign)
	}
	return cost, nil
}
