package search

// This file declares which software proposers support round batching
// (core.RoundProposer): a proposer advertises how many upcoming Suggest
// calls are independent of intervening Observe feedback, and the nested
// driver evaluates that many candidates in one core.EvaluateBatch call.
// The contract is strict — a round must draw exactly the same RNG
// stream whether or not Observe calls are interleaved — which is what
// keeps batched and unbatched Histories bit-identical.

// feedbackFreeRound is the round size advertised by proposers whose
// suggestions never depend on feedback; the driver caps each round at
// the remaining sample budget, so the value only needs to exceed any
// plausible per-layer budget.
const feedbackFreeRound = 1 << 20

// RoundSize implements core.RoundProposer: random sampling consumes
// only its own RNG, so the whole budget is one feedback-free round.
func (randomSW) RoundSize() int { return feedbackFreeRound }

// RoundSize implements core.RoundProposer: the dataflow rotation
// advances on Suggest alone and Observe is a no-op, so ConfuciuX's
// template sweep is one feedback-free round.
func (*fixedDataflowSW) RoundSize() int { return feedbackFreeRound }

// RoundSize implements core.RoundProposer for the GA: while the
// population is seeding, every suggestion is an independent random
// draw, so the remaining seed samples batch as one round; once the
// population is full, each child is bred from the fitnesses of all
// prior observations, so rounds collapse to single suggestions.
func (w *gaSW) RoundSize() int {
	if !w.pop.full() {
		return w.pop.capacity - len(w.pop.members)
	}
	return 1
}

// RoundSize implements core.RoundProposer for HASCO's Q-agent: Suggest
// reads the visit counts and Q-values that Observe updates, so every
// suggestion depends on the previous observation and rounds are always
// single evaluations (they still flow through the batch path, keeping
// the evaluation stack uniform across strategies).
func (*hascoSW) RoundSize() int { return 1 }
