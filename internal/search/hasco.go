package search

import (
	"math"
	"math/rand"

	"spotlight/internal/core"
	"spotlight/internal/gp"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// HASCO reimplements the search structure of HASCO (Xiao et al., ISCA
// 2021) as the paper characterizes it: Bayesian optimization over the
// hardware parameters (off-the-shelf, i.e. trained on raw parameters with
// a Matérn kernel) combined with a Q-learning agent that picks among a
// small set of fixed software schedule templates. Like ConfuciuX, it
// searches neither tile sizes nor loop orders.
type HASCO struct {
	// Epsilon is the Q-learning exploration rate (default 0.3).
	Epsilon float64
	// Alpha is the Q-learning step size (default 0.5).
	Alpha float64
}

// NewHASCO returns the HASCO-like strategy.
func NewHASCO() *HASCO { return &HASCO{} }

// Name implements core.Strategy.
func (*HASCO) Name() string { return "HASCO" }

// SWBudget implements core.Strategy: a handful of template evaluations
// per layer, enough for the Q-agent to rank the three templates.
func (*HASCO) SWBudget(core.RunConfig) int { return 4 }

func (h *HASCO) epsilon() float64 {
	if h.Epsilon > 0 {
		return h.Epsilon
	}
	return 0.3
}

func (h *HASCO) alpha() float64 {
	if h.Alpha > 0 {
		return h.Alpha
	}
	return 0.5
}

// NewHW implements core.Strategy: vanilla BO over raw hardware
// parameters with a Matérn kernel — the off-the-shelf configuration the
// related-work section attributes to prior tools.
func (*HASCO) NewHW(cfg core.RunConfig, rng *rand.Rand) core.HWProposer {
	return &hascoHW{
		dabo:     core.NewDABO(gp.Matern52{LengthScale: 1, Variance: 1}, rng),
		features: core.VanillaHardwareFeatures(),
		space:    cfg.Space,
		rng:      rng,
	}
}

type hascoHW struct {
	dabo     *core.DABO
	features []core.Feature
	space    hw.Space
	rng      *rand.Rand
}

func (h *hascoHW) Suggest() hw.Accel {
	const batch = 64
	cands := make([]hw.Accel, batch)
	feats := make([][]float64, batch)
	for i := range cands {
		cands[i] = restrictedRandom(h.rng, h.space)
		feats[i] = core.Transform(h.features, core.Point{Accel: cands[i]})
	}
	return cands[h.dabo.SuggestIndex(feats)]
}

// restrictedRandom samples the resource-assignment subspace the prior
// tools search — PE count and buffer sizes — with the remaining
// microarchitecture parameters fixed at representative defaults, like
// ConfuciuX's decode.
func restrictedRandom(rng *rand.Rand, s hw.Space) hw.Accel {
	pes := s.PEMin + rng.Intn(s.PEMax-s.PEMin+1)
	a := hw.Accel{
		PEs:       pes,
		SIMDLanes: s.SIMDMin,
		RFKB:      snapStride(s.RFMinKB+rng.Intn(s.RFMaxKB-s.RFMinKB+1), s.RFMinKB, s.RFStride),
		L2KB:      snapStride(s.L2MinKB+rng.Intn(s.L2MaxKB-s.L2MinKB+1), s.L2MinKB, s.L2Stride),
		NoCBW:     (s.BWMin + s.BWMax) / 2,
	}
	a.Width = nearestDivisor(pes, math.Sqrt(float64(pes)))
	return a
}

func (h *hascoHW) Observe(a hw.Accel, objective float64, err error) {
	f := core.Transform(h.features, core.Point{Accel: a})
	if core.InvalidObservation(objective, err) {
		h.dabo.ObserveInvalid(f)
		return
	}
	h.dabo.Observe(f, objective)
}

// NewSW implements core.Strategy: an ε-greedy Q-learning agent over the
// three schedule templates.
func (h *HASCO) NewSW(cfg core.RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) core.SWProposer {
	flows := sched.FixedDataflows()
	return &hascoSW{
		accel:   a,
		layer:   l,
		rng:     rng,
		flows:   flows,
		q:       make([]float64, len(flows)),
		visits:  make([]int, len(flows)),
		epsilon: h.epsilon(),
		alpha:   h.alpha(),
	}
}

type hascoSW struct {
	accel   hw.Accel
	layer   workload.Layer
	rng     *rand.Rand
	flows   []sched.Constraint
	q       []float64
	visits  []int
	epsilon float64
	alpha   float64
	last    int
}

func (w *hascoSW) Suggest() sched.Schedule {
	// Visit every template once, then go ε-greedy on Q.
	w.last = -1
	for i, v := range w.visits {
		if v == 0 {
			w.last = i
			break
		}
	}
	if w.last == -1 {
		if w.rng.Float64() < w.epsilon {
			w.last = w.rng.Intn(len(w.flows))
		} else {
			w.last = argmax(w.q)
		}
	}
	// Templates are tiled for reference buffers, not the sampled
	// hardware — HASCO does not co-design tiling (§VII-A).
	return w.flows[w.last].Random(w.rng, w.layer, refRFBytesPerPE, refL2Bytes)
}

func (w *hascoSW) Observe(_ sched.Schedule, objective float64, err error) {
	reward := -50.0
	if !core.InvalidObservation(objective, err) {
		reward = -math.Log(math.Max(objective, math.SmallestNonzeroFloat64))
	}
	w.visits[w.last]++
	w.q[w.last] += w.alpha * (reward - w.q[w.last])
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
