// Package search implements the competing search algorithms Spotlight is
// evaluated against in §VII-E: pure random search (Spotlight-R), a
// genetic algorithm (Spotlight-GA), and faithful-in-spirit
// reimplementations of the two prior-work co-design tools — ConfuciuX
// (reinforcement learning + genetic refinement over resource assignment
// with three fixed dataflows) and HASCO (Bayesian optimization over
// hardware with Q-learning over a small fixed schedule set).
//
// Every algorithm implements core.Strategy, so all of them run under the
// same nested layerwise driver and produce directly comparable histories
// for Figures 10 and 11.
package search

import (
	"math/rand"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Random is the Spotlight-R baseline: uniform random sampling of both the
// hardware and software spaces with no learning.
type Random struct{}

// NewRandom returns the random-search strategy.
func NewRandom() *Random { return &Random{} }

// Name implements core.Strategy.
func (*Random) Name() string { return "Spotlight-R" }

// SWBudget implements core.Strategy.
func (*Random) SWBudget(cfg core.RunConfig) int { return cfg.SWSamples }

// NewHW implements core.Strategy.
func (*Random) NewHW(cfg core.RunConfig, rng *rand.Rand) core.HWProposer {
	return randomHW{space: cfg.Space, rng: rng}
}

type randomHW struct {
	space hw.Space
	rng   *rand.Rand
}

func (r randomHW) Suggest() hw.Accel              { return r.space.Random(r.rng) }
func (randomHW) Observe(hw.Accel, float64, error) {}

// NewSW implements core.Strategy.
func (*Random) NewSW(cfg core.RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) core.SWProposer {
	return randomSW{c: cfg.SWConstraint, rng: rng, accel: a, layer: l}
}

type randomSW struct {
	c     sched.Constraint
	rng   *rand.Rand
	accel hw.Accel
	layer workload.Layer
}

func (r randomSW) Suggest() sched.Schedule {
	return r.c.Random(r.rng, r.layer, r.accel.RFBytesPerPE(), r.accel.L2Bytes())
}
func (randomSW) Observe(sched.Schedule, float64, error) {}
