package search

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func tinyModel() workload.Model {
	return workload.Model{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.Conv("a", 1, 32, 16, 3, 3, 10, 10),
			workload.Conv("b", 1, 64, 32, 1, 1, 8, 8).Times(2),
		},
	}
}

func tinyConfig(seed int64) core.RunConfig {
	return core.RunConfig{
		Models:    []workload.Model{tinyModel()},
		Space:     hw.EdgeSpace(),
		Budget:    hw.EdgeBudget(),
		Objective: core.MinEDP,
		HWSamples: 10,
		SWSamples: 10,
		Seed:      seed,
		Eval:      maestro.New(),
	}
}

func TestAllStrategiesCompleteARun(t *testing.T) {
	strategies := []core.Strategy{
		NewRandom(), NewGenetic(), NewConfuciuX(), NewHASCO(),
	}
	for _, s := range strategies {
		res, err := core.Run(tinyConfig(1), s)
		if err != nil {
			t.Errorf("%s failed: %v", s.Name(), err)
			continue
		}
		if res.Best.Objective <= 0 || math.IsInf(res.Best.Objective, 1) {
			t.Errorf("%s produced bad objective %v", s.Name(), res.Best.Objective)
		}
		if len(res.History) != 10 {
			t.Errorf("%s history has %d entries, want 10", s.Name(), len(res.History))
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if NewRandom().Name() != "Spotlight-R" ||
		NewGenetic().Name() != "Spotlight-GA" ||
		NewConfuciuX().Name() != "ConfuciuX" ||
		NewHASCO().Name() != "HASCO" {
		t.Fatal("unexpected strategy names")
	}
}

func TestRestrictedToolsUseTinySWBudget(t *testing.T) {
	cfg := tinyConfig(1)
	if b := NewConfuciuX().SWBudget(cfg); b != 3 {
		t.Fatalf("ConfuciuX SW budget = %d, want 3", b)
	}
	if b := NewHASCO().SWBudget(cfg); b != 4 {
		t.Fatalf("HASCO SW budget = %d, want 4", b)
	}
	if b := NewRandom().SWBudget(cfg); b != cfg.SWSamples {
		t.Fatalf("random SW budget = %d, want %d", b, cfg.SWSamples)
	}
}

func TestConfuciuXSchedulesAreFixedDataflows(t *testing.T) {
	cfg := tinyConfig(2)
	res, err := core.Run(cfg, NewConfuciuX())
	if err != nil {
		t.Fatal(err)
	}
	// Outer unrolls limited to the three fixed dataflows' choices.
	allowed := map[workload.Dim]bool{
		workload.DimY: true, // Eyeriss-like
		workload.DimK: true, // NVDLA-like
		workload.DimX: true, // ShiDianNao-like
	}
	for _, lr := range res.Best.Layers {
		if !allowed[lr.Schedule.OuterUnroll] {
			t.Fatalf("ConfuciuX schedule outside fixed dataflows: %v", lr.Schedule.OuterUnroll)
		}
	}
}

func TestGeneticPopulationEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := population[int]{capacity: 3, rng: rng}
	p.insert(1, 10)
	p.insert(2, 5)
	p.insert(3, 20)
	p.insert(4, 1) // evicts fitness-20 member
	if len(p.members) != 3 {
		t.Fatalf("population size = %d, want 3", len(p.members))
	}
	for _, m := range p.members {
		if m.fitness == 20 {
			t.Fatal("worst member not evicted")
		}
	}
}

func TestGeneticTournamentPrefersFitter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := population[int]{capacity: 2, rng: rng}
	p.insert(1, 100)
	p.insert(2, 1)
	wins := 0
	for i := 0; i < 200; i++ {
		if p.tournament() == 2 {
			wins++
		}
	}
	// The fitter genome wins whenever it is drawn at all: P ≈ 3/4.
	if wins < 120 {
		t.Fatalf("fitter genome won only %d/200 tournaments", wins)
	}
}

func TestSampleSoftmaxRespectsLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := []float64{0, 0, 5, 0} // heavily favors bucket 2
	counts := make([]int, 4)
	for i := 0; i < 500; i++ {
		counts[sampleSoftmax(rng, logits)]++
	}
	if counts[2] < 400 {
		t.Fatalf("dominant bucket drawn only %d/500 times", counts[2])
	}
}

func TestSoftmaxNormalizes(t *testing.T) {
	p := softmax([]float64{1, 2, 3})
	var sum float64
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatal("softmax not monotone in logits")
	}
}

func TestConfuciuXDecodeStaysInSpace(t *testing.T) {
	cfg := tinyConfig(6)
	h := NewConfuciuX().NewHW(cfg, rand.New(rand.NewSource(6))).(*confuciuxHW)
	for trial := 0; trial < 200; trial++ {
		a := h.sampleFromPolicy()
		if err := a.Validate(); err != nil {
			t.Fatalf("decoded config invalid: %v (%s)", err, a)
		}
		if !cfg.Space.Contains(a) {
			t.Fatalf("decoded config outside space: %s", a)
		}
	}
}

func TestConfuciuXPolicyLearns(t *testing.T) {
	// Reward only bucket-0 PE counts; the policy should concentrate there.
	cfg := tinyConfig(7)
	cfg.HWSamples = 1000 // keep everything in the RL phase
	rng := rand.New(rand.NewSource(7))
	h := NewConfuciuX().NewHW(cfg, rng).(*confuciuxHW)
	for i := 0; i < 150; i++ {
		a := h.Suggest()
		if a.PEs < (cfg.Space.PEMin+cfg.Space.PEMax)/2 {
			h.Observe(a, 1, nil) // great
		} else {
			h.Observe(a, 1e9, nil) // terrible
		}
	}
	probs := softmax(h.logits[0])
	lowHalf := 0.0
	for b := 0; b < policyBuckets/2; b++ {
		lowHalf += probs[b]
	}
	if lowHalf < 0.7 {
		t.Fatalf("policy mass on rewarded half = %v, want > 0.7", lowHalf)
	}
}

func TestHASCOQAgentPrefersBetterTemplate(t *testing.T) {
	cfg := tinyConfig(8)
	rng := rand.New(rand.NewSource(8))
	a := hw.EyerissEdge().Accel
	l := tinyModel().Layers[0]
	sw := NewHASCO().NewSW(cfg, rng, a, l).(*hascoSW)
	// Template 1 is great, others are poor.
	for i := 0; i < 60; i++ {
		_ = sw.Suggest()
		if sw.last == 1 {
			sw.Observe(sched.Schedule{}, 10, nil)
		} else {
			sw.Observe(sched.Schedule{}, 1e12, nil)
		}
	}
	if best := argmax(sw.q); best != 1 {
		t.Fatalf("Q-agent prefers template %d, want 1 (q=%v)", best, sw.q)
	}
}

func TestNearestDivisor(t *testing.T) {
	if d := nearestDivisor(12, 3.4); d != 3 {
		t.Fatalf("nearestDivisor(12, 3.4) = %d, want 3", d)
	}
	if d := nearestDivisor(12, 100); d != 12 {
		t.Fatalf("nearestDivisor(12, 100) = %d, want 12", d)
	}
	if d := nearestDivisor(7, 2); d != 1 {
		t.Fatalf("nearestDivisor(7, 2) = %d, want 1", d)
	}
}

func TestSnapStride(t *testing.T) {
	if v := snapStride(71, 64, 8); v != 64 {
		t.Fatalf("snapStride = %d, want 64", v)
	}
	if v := snapStride(72, 64, 8); v != 72 {
		t.Fatalf("snapStride = %d, want 72", v)
	}
}

func TestRandomProposersAreUniform(t *testing.T) {
	cfg := tinyConfig(9)
	rng := rand.New(rand.NewSource(9))
	hwP := NewRandom().NewHW(cfg, rng)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[hwP.Suggest().PEs] = true
	}
	if len(seen) < 30 {
		t.Fatalf("random hardware proposer drew only %d distinct PE counts", len(seen))
	}
}

// TestCheckpointResumeGeneticBitIdentical extends the core resume
// guarantee to a strategy defined outside core: the GA's population
// state is reconstructed purely by replaying recorded observations, so
// a resumed run must match the uninterrupted one exactly.
func TestCheckpointResumeGeneticBitIdentical(t *testing.T) {
	cfg := tinyConfig(6)
	var cps []*core.Checkpoint
	cfg.OnCheckpoint = func(cp *core.Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	full, err := core.Run(cfg, NewGenetic())
	if err != nil {
		t.Fatalf("full run failed: %v", err)
	}
	for _, k := range []int{2, 6} {
		rcfg := tinyConfig(6)
		rcfg.Resume = cps[k-1]
		res, err := core.Run(rcfg, NewGenetic())
		if err != nil {
			t.Fatalf("resume from sample %d failed: %v", k, err)
		}
		if !reflect.DeepEqual(full.Best, res.Best) {
			t.Errorf("resume from %d: Best diverged", k)
		}
		if len(res.History) != len(full.History) {
			t.Fatalf("resume from %d: history has %d points, want %d", k, len(res.History), len(full.History))
		}
		for i := range full.History {
			w, g := full.History[i], res.History[i]
			if w.Sample != g.Sample || w.Value != g.Value || w.BestSoFar != g.BestSoFar {
				t.Errorf("resume from %d: history[%d] diverged: %+v vs %+v", k, i, w, g)
			}
		}
		if !reflect.DeepEqual(full.Top, res.Top) {
			t.Errorf("resume from %d: Top diverged", k)
		}
	}
}
