package search

import (
	"math"
	"math/rand"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Genetic is the Spotlight-GA baseline: a steady-state genetic algorithm
// over both the hardware and software spaces. The first popSize samples
// seed the population randomly; afterwards each suggestion is the
// mutated crossover of two tournament-selected parents, and observations
// replace the worst member when they improve on it. Infeasible designs
// receive +Inf fitness, so selection pressure steers around the invalid
// regions without any model of them.
type Genetic struct {
	// PopSize is the population size (default 12).
	PopSize int
	// MutationRate is the probability of an extra mutation after
	// crossover (default 0.4).
	MutationRate float64
}

// NewGenetic returns the GA strategy with default settings.
func NewGenetic() *Genetic { return &Genetic{} }

// Name implements core.Strategy.
func (*Genetic) Name() string { return "Spotlight-GA" }

// SWBudget implements core.Strategy.
func (*Genetic) SWBudget(cfg core.RunConfig) int { return cfg.SWSamples }

func (g *Genetic) popSize() int {
	if g.PopSize > 0 {
		return g.PopSize
	}
	return 12
}

func (g *Genetic) mutationRate() float64 {
	if g.MutationRate > 0 {
		return g.MutationRate
	}
	return 0.4
}

// member is one individual with its observed fitness.
type member[T any] struct {
	genome  T
	fitness float64
}

// population is a generic steady-state GA population.
type population[T any] struct {
	members  []member[T]
	capacity int
	rng      *rand.Rand
	pending  T // genome awaiting its fitness observation
}

func (p *population[T]) full() bool { return len(p.members) >= p.capacity }

// tournament returns the fitter of two random members.
func (p *population[T]) tournament() T {
	a := p.members[p.rng.Intn(len(p.members))]
	b := p.members[p.rng.Intn(len(p.members))]
	if a.fitness <= b.fitness {
		return a.genome
	}
	return b.genome
}

// insert adds the observed genome, evicting the worst member when over
// capacity.
func (p *population[T]) insert(genome T, fitness float64) {
	p.members = append(p.members, member[T]{genome, fitness})
	if len(p.members) <= p.capacity {
		return
	}
	worst := 0
	for i, m := range p.members {
		if m.fitness > p.members[worst].fitness {
			worst = i
		}
	}
	p.members[worst] = p.members[len(p.members)-1]
	p.members = p.members[:len(p.members)-1]
}

// NewHW implements core.Strategy.
func (g *Genetic) NewHW(cfg core.RunConfig, rng *rand.Rand) core.HWProposer {
	return &gaHW{
		pop:      population[hw.Accel]{capacity: g.popSize(), rng: rng},
		space:    cfg.Space,
		rng:      rng,
		mutation: g.mutationRate(),
	}
}

type gaHW struct {
	pop      population[hw.Accel]
	space    hw.Space
	rng      *rand.Rand
	mutation float64
}

func (h *gaHW) Suggest() hw.Accel {
	if !h.pop.full() {
		h.pop.pending = h.space.Random(h.rng)
		return h.pop.pending
	}
	child := hw.Crossover(h.rng, h.pop.tournament(), h.pop.tournament())
	child = h.space.Neighbor(h.rng, child)
	if h.rng.Float64() < h.mutation {
		child = h.space.Neighbor(h.rng, child)
	}
	h.pop.pending = child
	return child
}

func (h *gaHW) Observe(a hw.Accel, objective float64, err error) {
	if core.InvalidObservation(objective, err) {
		objective = math.Inf(1)
	}
	h.pop.insert(a, objective)
}

// NewSW implements core.Strategy.
func (g *Genetic) NewSW(cfg core.RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) core.SWProposer {
	return &gaSW{
		pop:      population[sched.Schedule]{capacity: g.popSize(), rng: rng},
		c:        cfg.SWConstraint,
		rng:      rng,
		accel:    a,
		layer:    l,
		mutation: g.mutationRate(),
	}
}

type gaSW struct {
	pop      population[sched.Schedule]
	c        sched.Constraint
	rng      *rand.Rand
	accel    hw.Accel
	layer    workload.Layer
	mutation float64
}

func (w *gaSW) Suggest() sched.Schedule {
	if !w.pop.full() {
		return w.c.Random(w.rng, w.layer, w.accel.RFBytesPerPE(), w.accel.L2Bytes())
	}
	child := sched.Crossover(w.rng, w.pop.tournament(), w.pop.tournament())
	child = w.c.Neighbor(w.rng, child, w.layer)
	if w.rng.Float64() < w.mutation {
		child = w.c.Neighbor(w.rng, child, w.layer)
	}
	return child
}

func (w *gaSW) Observe(s sched.Schedule, objective float64, err error) {
	if core.InvalidObservation(objective, err) {
		objective = math.Inf(1)
	}
	w.pop.insert(s, objective)
}
