package search

import (
	"math"
	"math/rand"
	"sort"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// ConfuciuX reimplements the search structure of ConfuciuX (Kao et al.,
// MICRO 2020) as the paper characterizes it: autonomous hardware resource
// assignment via reinforcement learning (REINFORCE over per-parameter
// categorical policies), refined by a genetic algorithm in a second
// phase, while the software schedule is merely *selected* from three
// rigid dataflows (Eyeriss-like, NVDLA-like, ShiDianNao-like) with
// heuristic tiling — it searches neither tile sizes nor loop orders,
// which §VII-A identifies as the root of its inefficiency.
type ConfuciuX struct {
	// RLFraction is the fraction of the hardware budget spent in the
	// REINFORCE phase before switching to GA refinement (default 0.7).
	RLFraction float64
	// LearningRate for the policy gradient (default 0.15).
	LearningRate float64
}

// NewConfuciuX returns the ConfuciuX-like strategy.
func NewConfuciuX() *ConfuciuX { return &ConfuciuX{} }

// Name implements core.Strategy.
func (*ConfuciuX) Name() string { return "ConfuciuX" }

// SWBudget implements core.Strategy: one evaluation per fixed dataflow.
func (*ConfuciuX) SWBudget(core.RunConfig) int { return len(sched.FixedDataflows()) }

func (c *ConfuciuX) rlFraction() float64 {
	if c.RLFraction > 0 {
		return c.RLFraction
	}
	return 0.7
}

func (c *ConfuciuX) learningRate() float64 {
	if c.LearningRate > 0 {
		return c.LearningRate
	}
	return 0.15
}

// Reference buffer sizes the prior tools' schedule templates are tiled
// for (an Eyeriss-class part: 512 B per-PE register file, 108 KB
// scratchpad). The templates are hardware-oblivious — §VII-A: "neither
// aims to co-design loop tile sizes with scratchpad sizes" — so their
// tilings do not adapt to the hardware sample under consideration.
const (
	refRFBytesPerPE = 512
	refL2Bytes      = 108 << 10
)

// NewSW implements core.Strategy: enumerate the three dataflows with
// template tiling, in order. No learning happens at this level.
func (*ConfuciuX) NewSW(cfg core.RunConfig, rng *rand.Rand, a hw.Accel, l workload.Layer) core.SWProposer {
	return &fixedDataflowSW{layer: l, rng: rng, flows: sched.FixedDataflows()}
}

type fixedDataflowSW struct {
	layer workload.Layer
	rng   *rand.Rand
	flows []sched.Constraint
	next  int
}

func (f *fixedDataflowSW) Suggest() sched.Schedule {
	flow := f.flows[f.next%len(f.flows)]
	f.next++
	return flow.Random(f.rng, f.layer, refRFBytesPerPE, refL2Bytes)
}

func (*fixedDataflowSW) Observe(sched.Schedule, float64, error) {}

// policyBuckets is the number of discrete choices per hardware parameter
// in the RL policy.
const policyBuckets = 8

// NewHW implements core.Strategy.
func (c *ConfuciuX) NewHW(cfg core.RunConfig, rng *rand.Rand) core.HWProposer {
	return &confuciuxHW{
		space:    cfg.Space,
		rng:      rng,
		lr:       c.learningRate(),
		rlPhase:  int(c.rlFraction() * float64(cfg.HWSamples)),
		logits:   make([][]float64, 3), // PEs, RF, L2 — the resources ConfuciuX assigns
		ga:       population[hw.Accel]{capacity: 10, rng: rng},
		topK:     8,
		baseline: math.NaN(),
	}
}

type confuciuxHW struct {
	space hw.Space
	rng   *rand.Rand
	lr    float64

	rlPhase int // samples spent in the RL phase
	samples int

	logits     [][]float64 // per parameter, per bucket
	lastChoice []int

	// Everything seen so far, for seeding the GA phase.
	seen []member[hw.Accel]
	topK int

	ga       population[hw.Accel]
	baseline float64
}

func (h *confuciuxHW) ensureLogits() {
	for i := range h.logits {
		if h.logits[i] == nil {
			h.logits[i] = make([]float64, policyBuckets)
		}
	}
}

func (h *confuciuxHW) Suggest() hw.Accel {
	h.samples++
	if h.samples <= h.rlPhase {
		return h.sampleFromPolicy()
	}
	return h.gaSuggest()
}

// sampleFromPolicy draws one bucket per parameter from the softmax
// policies and decodes them into an accelerator.
func (h *confuciuxHW) sampleFromPolicy() hw.Accel {
	h.ensureLogits()
	h.lastChoice = make([]int, len(h.logits))
	for i, l := range h.logits {
		h.lastChoice[i] = sampleSoftmax(h.rng, l)
	}
	return h.decode(h.lastChoice)
}

// decode maps bucket indices to a configuration inside the space.
// ConfuciuX assigns *resources* — PE count and buffer sizes — and leaves
// the rest of the microarchitecture at representative defaults: a square
// array, minimum-width SIMD, mid-range interconnect. This mirrors the
// published tool's design space, which §VII-A calls "severely limited"
// next to Spotlight's.
func (h *confuciuxHW) decode(choice []int) hw.Accel {
	s := h.space
	lerp := func(lo, hi, b int) int {
		if policyBuckets == 1 {
			return lo
		}
		return lo + (hi-lo)*b/(policyBuckets-1)
	}
	pes := lerp(s.PEMin, s.PEMax, choice[0])
	a := hw.Accel{
		PEs:       pes,
		SIMDLanes: s.SIMDMin,
		RFKB:      snapStride(lerp(s.RFMinKB, s.RFMaxKB, choice[1]), s.RFMinKB, s.RFStride),
		L2KB:      snapStride(lerp(s.L2MinKB, s.L2MaxKB, choice[2]), s.L2MinKB, s.L2Stride),
		NoCBW:     (s.BWMin + s.BWMax) / 2,
	}
	a.Width = nearestDivisor(pes, math.Sqrt(float64(pes)))
	return a
}

func snapStride(v, lo, stride int) int {
	return lo + ((v-lo)/stride)*stride
}

func nearestDivisor(n int, target float64) int {
	best, bestDist := 1, math.Inf(1)
	for _, d := range sched.Divisors(n) {
		if dist := math.Abs(float64(d) - target); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best
}

func sampleSoftmax(rng *rand.Rand, logits []float64) int {
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	probs := make([]float64, len(logits))
	var z float64
	for i, l := range logits {
		probs[i] = math.Exp(l - maxL)
		z += probs[i]
	}
	r := rng.Float64() * z
	for i, p := range probs {
		r -= p
		if r <= 0 {
			return i
		}
	}
	return len(logits) - 1
}

// gaSuggest runs the refinement phase, seeding the population with the
// best designs found by the RL phase.
func (h *confuciuxHW) gaSuggest() hw.Accel {
	if len(h.ga.members) == 0 && len(h.seen) > 0 {
		sort.Slice(h.seen, func(i, j int) bool { return h.seen[i].fitness < h.seen[j].fitness })
		for i := 0; i < h.topK && i < len(h.seen); i++ {
			h.ga.insert(h.seen[i].genome, h.seen[i].fitness)
		}
	}
	if len(h.ga.members) < 2 {
		return h.space.Random(h.rng)
	}
	child := hw.Crossover(h.rng, h.ga.tournament(), h.ga.tournament())
	return h.resourceNeighbor(child)
}

// resourceNeighbor mutates one of the resources ConfuciuX assigns (PE
// count, register file, scratchpad) while leaving the defaulted
// microarchitecture parameters untouched.
func (h *confuciuxHW) resourceNeighbor(a hw.Accel) hw.Accel {
	s := h.space
	switch h.rng.Intn(3) {
	case 0:
		a.PEs = s.PEMin + h.rng.Intn(s.PEMax-s.PEMin+1)
		a.Width = nearestDivisor(a.PEs, math.Sqrt(float64(a.PEs)))
	case 1:
		a.RFKB = snapStride(s.RFMinKB+h.rng.Intn(s.RFMaxKB-s.RFMinKB+1), s.RFMinKB, s.RFStride)
	case 2:
		a.L2KB = snapStride(s.L2MinKB+h.rng.Intn(s.L2MaxKB-s.L2MinKB+1), s.L2MinKB, s.L2Stride)
	}
	return a
}

func (h *confuciuxHW) Observe(a hw.Accel, objective float64, err error) {
	fitness := objective
	if core.InvalidObservation(objective, err) {
		fitness = math.Inf(1)
	}
	h.seen = append(h.seen, member[hw.Accel]{a, fitness})
	if h.samples > h.rlPhase {
		h.ga.insert(a, fitness)
		return
	}
	if h.lastChoice == nil {
		return
	}
	// REINFORCE update with a running-mean baseline on -log(objective).
	reward := -50.0 // penalty for infeasible designs
	if !core.InvalidObservation(objective, err) {
		reward = -math.Log(math.Max(objective, math.SmallestNonzeroFloat64))
	}
	if math.IsNaN(h.baseline) {
		h.baseline = reward
	}
	adv := reward - h.baseline
	h.baseline += 0.1 * (reward - h.baseline)
	for p, chosen := range h.lastChoice {
		probs := softmax(h.logits[p])
		for b := range h.logits[p] {
			grad := -probs[b]
			if b == chosen {
				grad += 1
			}
			h.logits[p][b] += h.lr * adv * grad
		}
	}
	h.lastChoice = nil
}

func softmax(logits []float64) []float64 {
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	var z float64
	for i, l := range logits {
		out[i] = math.Exp(l - maxL)
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}
