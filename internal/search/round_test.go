package search

import (
	"math/rand"
	"reflect"
	"testing"

	"spotlight/internal/core"
)

// stripElapsed zeroes the wall-clock column of a history so runs can be
// compared bit-for-bit; Elapsed is the one field the determinism
// contract excludes.
func stripElapsed(h []core.HistoryPoint) []core.HistoryPoint {
	out := make([]core.HistoryPoint, len(h))
	for i, p := range h {
		p.Elapsed = 0
		out[i] = p
	}
	return out
}

// TestBatchedRunsBitIdentical is the flagship invariant of the batching
// issue at the driver level: for every strategy, History and Best are
// bit-identical whether layer candidates are evaluated through the
// round-batched fast path or the sequential loop, at any worker count.
func TestBatchedRunsBitIdentical(t *testing.T) {
	strategies := []func() core.Strategy{
		func() core.Strategy { return NewRandom() },
		func() core.Strategy { return NewGenetic() },
		func() core.Strategy { return NewConfuciuX() },
		func() core.Strategy { return NewHASCO() },
	}
	for _, mk := range strategies {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			type variant struct {
				disableBatch bool
				workers      int
			}
			variants := []variant{
				{disableBatch: true, workers: 1}, // reference: sequential, serial
				{disableBatch: false, workers: 1},
				{disableBatch: true, workers: 8},
				{disableBatch: false, workers: 8},
			}
			var ref core.Result
			for vi, v := range variants {
				cfg := tinyConfig(42)
				cfg.DisableBatch = v.disableBatch
				cfg.Workers = v.workers
				res, err := core.Run(cfg, mk())
				if err != nil {
					t.Fatalf("run (batch=%v workers=%d) failed: %v", !v.disableBatch, v.workers, err)
				}
				if vi == 0 {
					ref = res
					continue
				}
				if !reflect.DeepEqual(stripElapsed(ref.History), stripElapsed(res.History)) {
					t.Errorf("History diverged (batch=%v workers=%d)", !v.disableBatch, v.workers)
				}
				if !reflect.DeepEqual(ref.Best, res.Best) {
					t.Errorf("Best diverged (batch=%v workers=%d)", !v.disableBatch, v.workers)
				}
				if !reflect.DeepEqual(ref.Top, res.Top) {
					t.Errorf("Top diverged (batch=%v workers=%d)", !v.disableBatch, v.workers)
				}
			}
		})
	}
}

// TestRoundSizes pins each proposer's advertised round size to its
// feedback structure, the contract runLayerSearchBatched relies on.
func TestRoundSizes(t *testing.T) {
	cfg := tinyConfig(1)
	rng := rand.New(rand.NewSource(3))
	a := cfg.Space.Random(rng)
	l := tinyModel().Layers[0]
	newSW := func(s core.Strategy) core.RoundProposer {
		sw, ok := s.NewSW(cfg, rng, a, l).(core.RoundProposer)
		if !ok {
			t.Fatalf("%s software proposer does not implement RoundProposer", s.Name())
		}
		return sw
	}
	if got := newSW(NewRandom()).RoundSize(); got != feedbackFreeRound {
		t.Errorf("random RoundSize = %d, want feedback-free", got)
	}
	if got := newSW(NewConfuciuX()).RoundSize(); got != feedbackFreeRound {
		t.Errorf("confuciux RoundSize = %d, want feedback-free", got)
	}
	if got := newSW(NewHASCO()).RoundSize(); got != 1 {
		t.Errorf("hasco RoundSize = %d, want 1", got)
	}
	// The GA batches the population seed as one round, then collapses to
	// sequential breeding.
	ga := newSW(NewGenetic())
	if got := ga.RoundSize(); got <= 1 {
		t.Errorf("seeding GA RoundSize = %d, want > 1", got)
	}
}
