package timeloop

import (
	"errors"
	"math/rand"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func testAccel() hw.Accel {
	return hw.Accel{PEs: 168, Width: 14, SIMDLanes: 2, RFKB: 80, L2KB: 128, NoCBW: 64}
}

func testLayer() workload.Layer {
	return workload.Conv("t", 1, 64, 32, 3, 3, 18, 18)
}

func fittedSchedule(a hw.Accel, l workload.Layer) sched.Schedule {
	var s sched.Schedule
	// Quarter budgets leave room for this model's double buffering.
	s.T1, s.T2 = sched.FitTiles(l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll = workload.DimK
	s.InnerUnroll = workload.DimC
	return s
}

func TestEvaluateValid(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	c, err := m.Evaluate(a, fittedSchedule(a, l), l)
	if err != nil {
		t.Fatalf("evaluate failed: %v", err)
	}
	if c.DelayCycles <= 0 || c.EnergyNJ <= 0 {
		t.Fatalf("non-positive cost: %+v", c)
	}
	if c.Utilization <= 0 || c.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", c.Utilization)
	}
}

func TestDoubleBufferingShrinksFeasibleRegion(t *testing.T) {
	// A schedule that exactly fills the RF fits the primary model but
	// not this one (which double-buffers).
	a := testAccel()
	l := testLayer()
	var s sched.Schedule
	s.T1, s.T2 = sched.FitTiles(l, a.RFBytesPerPE(), a.L2Bytes()/4)
	s.OuterOrder = sched.CanonicalOrder()
	s.InnerOrder = sched.CanonicalOrder()
	s.OuterUnroll, s.InnerUnroll = workload.DimK, workload.DimC

	if _, err := maestro.New().Evaluate(a, s, l); err != nil {
		t.Fatalf("primary model rejected the fitted schedule: %v", err)
	}
	need := 2 * sched.TileFootprint(l, s.T1)
	if need <= a.RFBytesPerPE() {
		t.Skip("fitted tile too small to expose double buffering")
	}
	if _, err := New().Evaluate(a, s, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatalf("expected double-buffer rejection, got %v", err)
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	m := New()
	a := testAccel()
	l := testLayer()
	s := fittedSchedule(a, l)
	badA := a
	badA.Width = 13
	if _, err := m.Evaluate(badA, s, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatal("invalid accel accepted")
	}
	badS := s
	badS.T1[0] = 0
	if _, err := m.Evaluate(a, badS, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatal("invalid schedule accepted")
	}
}

func TestDelayIsAdditive(t *testing.T) {
	// Unlike the primary model's roofline max, delay here must exceed
	// compute cycles whenever there is any traffic.
	m := New()
	a := testAccel()
	l := testLayer()
	c, err := m.Evaluate(a, fittedSchedule(a, l), l)
	if err != nil {
		t.Fatal(err)
	}
	if c.DelayCycles <= c.ComputeCycles {
		t.Fatalf("delay %v not strictly above compute %v", c.DelayCycles, c.ComputeCycles)
	}
}

func TestModelsDisagreeButCorrelate(t *testing.T) {
	// The two analytical models should rank many random designs
	// differently (they embody different assumptions) while remaining
	// positively correlated overall — the premise of §VII-F.
	primary := maestro.New()
	second := New()
	a := testAccel()
	l := testLayer()
	rng := rand.New(rand.NewSource(42))
	con := sched.Free()

	var dp, ds []float64
	for len(dp) < 120 {
		s := con.Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
		cp, err1 := primary.Evaluate(a, s, l)
		cs, err2 := second.Evaluate(a, s, l)
		if err1 != nil || err2 != nil {
			continue
		}
		dp = append(dp, cp.EDP())
		ds = append(ds, cs.EDP())
	}
	var identical int
	for i := range dp {
		if dp[i] == ds[i] {
			identical++
		}
	}
	if identical > len(dp)/10 {
		t.Fatalf("models produce identical EDPs on %d/%d designs — not independent", identical, len(dp))
	}
}

func TestName(t *testing.T) {
	if New().Name() != "timeloop" {
		t.Fatal("unexpected name")
	}
}
