// Package timeloop implements an independent second analytical model in
// the role Timeloop (Parashar et al., ISPASS 2019) plays in §VII-F of the
// paper: a differently-built estimator of the same designs, used to check
// that Spotlight's results do not overfit the primary model.
//
// It deliberately differs from internal/maestro in its core assumptions,
// the way Timeloop differs from MAESTRO:
//
//   - Delay is additive (compute + memory + network serialized with a
//     fixed overlap factor) instead of roofline max.
//   - Buffer reuse is loop-order-oblivious: each tensor is fetched once
//     per distinct tile per level (perfect intra-level reuse), so traffic
//     is an optimistic bound rather than an order-sensitive estimate.
//   - Buffers are double-buffered, halving usable capacity, so the
//     validity region differs.
//   - The energy table uses different constants and linear (not sqrt)
//     scratchpad scaling, and models no leakage.
//
// Because of these differences, rankings agree only partially with the
// primary model — reproducing the paper's observation that roughly a
// third of the top/bottom samples match across models.
package timeloop

import (
	"fmt"
	"math"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Energy constants (pJ per byte / per MAC), intentionally different from
// the primary model's table.
const (
	eDRAMPerByte = 160.0
	eL2PerKBByte = 0.04 // linear in scratchpad size: eL2 = size_KB * this
	eL2Floor     = 2.0
	eRFPerByte   = 0.8
	eMACPerOp    = 0.25
	eNoCPerByte  = 0.5
	overlap      = 0.35 // fraction of memory time hidden under compute
)

// Model is the Timeloop-like evaluator.
type Model struct{}

// New returns the evaluator.
func New() *Model { return &Model{} }

// Name identifies the model in cross-validation reports.
func (*Model) Name() string { return "timeloop" }

// timeloopVersion is bumped on any change to this model's cost math,
// invalidating persistent cache entries it produced.
const timeloopVersion = "cost-v1"

// ModelFingerprint identifies this backend's cost model for persistent
// caching (see eval.BackendFingerprint).
func (*Model) ModelFingerprint() string { return "timeloop/" + timeloopVersion }

// Evaluate estimates the cost of the design. It shares the Cost type with
// the primary model so results are directly comparable, and wraps
// maestro.ErrInvalid for out-of-capacity schedules (with double-buffering
// the feasible region is smaller than the primary model's).
func (m *Model) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	if err := a.Validate(); err != nil {
		return maestro.Cost{}, fmt.Errorf("%w: %v", maestro.ErrInvalid, err)
	}
	if err := l.Validate(); err != nil {
		return maestro.Cost{}, fmt.Errorf("%w: %v", maestro.ErrInvalid, err)
	}
	if err := s.Validate(l); err != nil {
		return maestro.Cost{}, fmt.Errorf("%w: %v", maestro.ErrInvalid, err)
	}

	h, w := a.Height(), a.Width
	n2 := s.OuterTrips(l)
	n1 := s.InnerTrips(l)
	uo, ui := s.OuterUnroll, s.InnerUnroll

	// Double-buffered capacities.
	if need := 2 * sched.TileFootprint(l, s.T1); need > a.RFBytesPerPE() {
		return maestro.Cost{}, fmt.Errorf("%w: double-buffered RF tile needs %d B, have %d B",
			maestro.ErrInvalid, need, a.RFBytesPerPE())
	}
	if need := 2 * sched.TileFootprint(l, s.T2); need > a.L2Bytes() {
		return maestro.Cost{}, fmt.Errorf("%w: double-buffered L2 tile needs %d B, have %d B",
			maestro.ErrInvalid, need, a.L2Bytes())
	}

	// Iteration structure (same unrolling semantics as the primary
	// model): DRAM-level loops are temporal; the L2-level loop over the
	// outer-unrolled dimension spreads across rows and the inner-unrolled
	// one across columns.
	innerTemporal := n1
	rows, cols := minInt(h, n1[uo]), minInt(w, n1[ui])
	if uo == ui {
		total := minInt(h*w, n1[uo])
		cols = minInt(w, total)
		rows = minInt(h, ceilDiv(total, cols))
		innerTemporal[uo] = ceilDiv(n1[uo], h*w)
	} else {
		innerTemporal[uo] = ceilDiv(n1[uo], h)
		innerTemporal[ui] = ceilDiv(n1[ui], w)
	}
	outerIters := prod(n2)
	innerIters := prod(innerTemporal)

	macsPerT1 := 1.0
	for i := range workload.AllDims {
		macsPerT1 *= float64(s.T1[i])
	}
	computeCycles := outerIters * innerIters * math.Ceil(macsPerT1/float64(a.SIMDLanes))

	// Loop-order-oblivious traffic: one fetch per distinct tile per level,
	// re-fetched once per enclosing level iteration.
	dramBytes := distinct(n2, depInput)*inputTile(l, s.T2) +
		distinct(n2, depWeight)*weightTile(s.T2) +
		2*distinct(n2, depOutput)*outputTile(s.T2)

	copies := func(dep [workload.NumDims]bool) float64 {
		c := 1.0
		if uo == ui {
			if dep[uo] {
				c = float64(rows * cols)
			}
			return c
		}
		if dep[uo] {
			c *= float64(rows)
		}
		if dep[ui] {
			c *= float64(cols)
		}
		return c
	}
	perOuter := distinct(n1, depInput)*inputTile(l, s.T1)*copies(depInput) +
		distinct(n1, depWeight)*weightTile(s.T1)*copies(depWeight) +
		2*distinct(n1, depOutput)*outputTile(s.T1)*copies(depOutput)
	nocBytes := outerIters * perOuter

	dramBW := math.Max(16, float64(a.NoCBW)/2)
	dramCycles := dramBytes / dramBW
	// Unlike the primary model, the interconnect is modeled as one shared
	// bus rather than per-row dedicated buses.
	nocCycles := nocBytes / float64(a.NoCBW)
	delay := computeCycles + (1-overlap)*(dramCycles+nocCycles)

	macs := float64(l.MACs())
	eL2 := math.Max(eL2Floor, float64(a.L2KB)*eL2PerKBByte)
	energyPJ := macs*eMACPerOp +
		dramBytes*eDRAMPerByte +
		(dramBytes+nocBytes)*eL2 +
		nocBytes*eNoCPerByte +
		macs*4*eRFPerByte

	var spatialUtil float64
	if uo == ui {
		spatialUtil = float64(n1[uo]) / (float64(innerTemporal[uo]) * float64(h*w))
	} else {
		spatialUtil = (float64(n1[uo]) / (float64(innerTemporal[uo]) * float64(h))) *
			(float64(n1[ui]) / (float64(innerTemporal[ui]) * float64(w)))
	}

	cost := maestro.Cost{
		DelayCycles:   delay,
		EnergyNJ:      energyPJ / 1000,
		AreaMM2:       a.AreaMM2(),
		ComputeCycles: computeCycles,
		DRAMCycles:    dramCycles,
		NoCCycles:     nocCycles,
		DRAMBytes:     dramBytes,
		NoCBytes:      nocBytes,
		L2Bytes:       dramBytes + nocBytes,
		RFBytes:       macs * 4,
		Utilization:   spatialUtil * computeCycles / delay,
	}
	cost.PowerMW = cost.EnergyNJ * 1000 / delay
	return cost, nil
}

var (
	depInput  = dims(workload.DimN, workload.DimC, workload.DimX, workload.DimY, workload.DimR, workload.DimS)
	depWeight = dims(workload.DimK, workload.DimC, workload.DimR, workload.DimS)
	depOutput = dims(workload.DimN, workload.DimK, workload.DimX, workload.DimY)
)

func dims(ds ...workload.Dim) [workload.NumDims]bool {
	var s [workload.NumDims]bool
	for _, d := range ds {
		s[d] = true
	}
	return s
}

// distinct returns the number of distinct tiles of a tensor at a level:
// the product of trip counts over its dependent dimensions.
func distinct(trips [workload.NumDims]int, dep [workload.NumDims]bool) float64 {
	f := 1.0
	for i, d := range workload.AllDims {
		if dep[d] {
			f *= float64(trips[i])
		}
	}
	return f
}

func inputTile(l workload.Layer, t [workload.NumDims]int) float64 {
	inX := float64(t[workload.DimX]-1)*float64(l.StrideX) + float64(t[workload.DimR])
	inY := float64(t[workload.DimY]-1)*float64(l.StrideY) + float64(t[workload.DimS])
	return float64(t[workload.DimN]) * float64(t[workload.DimC]) * inX * inY
}

func weightTile(t [workload.NumDims]int) float64 {
	return float64(t[workload.DimK]) * float64(t[workload.DimC]) * float64(t[workload.DimR]) * float64(t[workload.DimS])
}

func outputTile(t [workload.NumDims]int) float64 {
	return float64(t[workload.DimN]) * float64(t[workload.DimK]) * float64(t[workload.DimX]) * float64(t[workload.DimY])
}

func prod(a [workload.NumDims]int) float64 {
	f := 1.0
	for _, x := range a {
		f *= float64(x)
	}
	return f
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
