package timeloop

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Differential tests: invariants that must hold for BOTH analytical
// models, checked side by side on the same random designs. These pin the
// shared physics while the models remain free to disagree on rankings
// (which §VII-F relies on).

func layersUnderTest() []workload.Layer {
	return []workload.Layer{
		workload.Conv("conv3x3", 1, 64, 32, 3, 3, 18, 18),
		workload.Conv("pointwise", 1, 128, 64, 1, 1, 14, 14),
		workload.FromDepthwise("dw", 32, 3, 3, 16, 16, 1),
		workload.FromGEMM("gemm", 64, 64, 128),
		workload.Conv("strided", 1, 32, 16, 3, 3, 31, 31).Strided(2),
	}
}

func TestBothModelsRespectComputeBound(t *testing.T) {
	primary := maestro.New()
	second := New()
	a := testAccel()
	rng := rand.New(rand.NewSource(1))
	free := sched.Free()
	for _, l := range layersUnderTest() {
		bound := float64(l.MACs()) / float64(a.PEs*a.SIMDLanes)
		for i := 0; i < 60; i++ {
			s := free.Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
			if cp, err := primary.Evaluate(a, s, l); err == nil && cp.DelayCycles < bound {
				t.Fatalf("%s: primary delay %v below bound %v", l.Name, cp.DelayCycles, bound)
			}
			if cs, err := second.Evaluate(a, s, l); err == nil && cs.DelayCycles < bound {
				t.Fatalf("%s: second delay %v below bound %v", l.Name, cs.DelayCycles, bound)
			}
		}
	}
}

func TestBothModelsChargeCompulsoryTraffic(t *testing.T) {
	primary := maestro.New()
	second := New()
	a := testAccel()
	rng := rand.New(rand.NewSource(2))
	free := sched.Free()
	for _, l := range layersUnderTest() {
		compulsory := float64(l.WeightElems() + l.OutputElems())
		for i := 0; i < 60; i++ {
			s := free.Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
			if cp, err := primary.Evaluate(a, s, l); err == nil && cp.DRAMBytes < compulsory {
				t.Fatalf("%s: primary DRAM %v below compulsory %v", l.Name, cp.DRAMBytes, compulsory)
			}
			if cs, err := second.Evaluate(a, s, l); err == nil && cs.DRAMBytes < compulsory {
				t.Fatalf("%s: second DRAM %v below compulsory %v", l.Name, cs.DRAMBytes, compulsory)
			}
		}
	}
}

func TestSecondModelFeasibleIsPrimaryFeasible(t *testing.T) {
	// The second model double-buffers, so its feasible region is a
	// subset of the primary's: anything it accepts, the primary must
	// accept too.
	primary := maestro.New()
	second := New()
	a := testAccel()
	rng := rand.New(rand.NewSource(3))
	free := sched.Free()
	accepted := 0
	for _, l := range layersUnderTest() {
		for i := 0; i < 80; i++ {
			s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
			if _, err := second.Evaluate(a, s, l); err != nil {
				continue
			}
			accepted++
			if _, err := primary.Evaluate(a, s, l); err != nil {
				t.Fatalf("%s: second model accepted a schedule the primary rejects: %v", l.Name, err)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no schedule accepted by the second model — test vacuous")
	}
}

func TestModelsAgreeOnStructuralInvalidity(t *testing.T) {
	primary := maestro.New()
	second := New()
	a := testAccel()
	l := layersUnderTest()[0]
	rng := rand.New(rand.NewSource(4))
	s := sched.Free().Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
	bad := s
	bad.T2[workload.DimK] = 7 // not a divisor of 64
	if _, err := primary.Evaluate(a, bad, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatal("primary accepted a structurally invalid schedule")
	}
	if _, err := second.Evaluate(a, bad, l); !errors.Is(err, maestro.ErrInvalid) {
		t.Fatal("second accepted a structurally invalid schedule")
	}
}

func TestBothModelsFiniteOutputs(t *testing.T) {
	primary := maestro.New()
	second := New()
	space := hw.EdgeSpace()
	rng := rand.New(rand.NewSource(5))
	free := sched.Free()
	for _, l := range layersUnderTest() {
		for i := 0; i < 40; i++ {
			a := space.Random(rng)
			s := free.Random(rng, l, a.RFBytesPerPE()/4, a.L2Bytes()/4)
			for _, c := range evaluateBoth(primary, second, a, s, l) {
				if math.IsNaN(c.DelayCycles) || math.IsInf(c.DelayCycles, 0) ||
					math.IsNaN(c.EnergyNJ) || math.IsInf(c.EnergyNJ, 0) ||
					c.EnergyNJ < 0 || c.DelayCycles < 0 {
					t.Fatalf("%s: non-finite cost %+v", l.Name, c)
				}
			}
		}
	}
}

func evaluateBoth(p *maestro.Model, s *Model, a hw.Accel, sc sched.Schedule, l workload.Layer) []maestro.Cost {
	var out []maestro.Cost
	if c, err := p.Evaluate(a, sc, l); err == nil {
		out = append(out, c)
	}
	if c, err := s.Evaluate(a, sc, l); err == nil {
		out = append(out, c)
	}
	return out
}
