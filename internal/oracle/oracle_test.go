package oracle

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// tinyLayer has an enumerable schedule space: sizes 1,4,2,1,1,4,4.
func tinyLayer() workload.Layer {
	return workload.Conv("tiny", 1, 4, 2, 1, 1, 4, 4)
}

func testAccel() hw.Accel {
	return hw.Accel{PEs: 16, Width: 4, SIMDLanes: 2, RFKB: 64, L2KB: 64, NoCBW: 64}
}

func TestStructuredOrdersAreValidPermutations(t *testing.T) {
	orders := StructuredOrders()
	if len(orders) != workload.NumDims+3 {
		t.Fatalf("got %d orders, want %d", len(orders), workload.NumDims+3)
	}
	for _, o := range orders {
		var seen [workload.NumDims]bool
		for _, d := range o {
			if seen[d] {
				t.Fatalf("order %v is not a permutation", o)
			}
			seen[d] = true
		}
	}
}

func TestSpaceSizeRejection(t *testing.T) {
	big := workload.Conv("big", 1, 64, 64, 3, 3, 34, 34)
	_, err := BestSchedule(maestro.New(), core.MinDelay, testAccel(), big, Options{MaxPoints: 1000})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestOracleFindsFeasibleOptimum(t *testing.T) {
	l := tinyLayer()
	res, err := BestSchedule(maestro.New(), core.MinDelay, testAccel(), l, Options{Orders: StructuredOrders()[:3]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid == 0 || res.Evaluated < res.Valid {
		t.Fatalf("bad counts: %+v", res)
	}
	if math.IsInf(res.BestCost, 1) || res.BestCost <= 0 {
		t.Fatalf("bad optimum: %v", res.BestCost)
	}
	if err := res.Best.Validate(l); err != nil {
		t.Fatalf("optimum schedule invalid: %v", err)
	}
	// Verify it really is a minimum over a random re-sampling of the
	// same space.
	eval := maestro.New()
	rng := rand.New(rand.NewSource(1))
	free := sched.Free()
	a := testAccel()
	for i := 0; i < 2000; i++ {
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		// Restrict to the enumerated order subset for a fair check.
		s.OuterOrder = res.Best.OuterOrder
		s.InnerOrder = res.Best.InnerOrder
		c, err := eval.Evaluate(a, s, l)
		if err != nil {
			continue
		}
		if c.DelayCycles < res.BestCost-1e-9 {
			t.Fatalf("random sample %v beats the oracle %v:\n%s", c.DelayCycles, res.BestCost, s)
		}
	}
}

func TestSpotlightApproachesOracle(t *testing.T) {
	// daBO_SW with a modest budget should land within a small factor of
	// the exhaustive optimum on a tiny layer.
	l := tinyLayer()
	a := testAccel()
	eval := maestro.New()
	oracleRes, err := BestSchedule(eval, core.MinDelay, a, l, Options{Orders: StructuredOrders()[:3]})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.RunConfig{
		Models:    []workload.Model{{Name: "tiny", Layers: []workload.Layer{l}}},
		Objective: core.MinDelay,
		HWSamples: 1,
		SWSamples: 120,
		Eval:      eval,
	}
	strat := core.NewSpotlight()
	rng := rand.New(rand.NewSource(5))
	lr := core.OptimizeLayer(cfg, strat, rng, a, l, cfg.SWSamples)
	if !lr.Valid {
		t.Fatal("daBO_SW found no feasible schedule")
	}
	// The searcher explores all orders while the oracle enumerated a
	// subset, so ratios below 1 are possible and fine.
	ratio := lr.Cost.DelayCycles / oracleRes.BestCost
	if ratio > 2.0 {
		t.Fatalf("daBO_SW result %.4g is %.2fx the oracle optimum %.4g",
			lr.Cost.DelayCycles, ratio, oracleRes.BestCost)
	}
}

func TestOracleSpaceSizeMonotone(t *testing.T) {
	small := SpaceSize(tinyLayer(), Options{})
	bigger := SpaceSize(workload.Conv("b", 1, 8, 4, 1, 1, 4, 4), Options{})
	if bigger <= small {
		t.Fatalf("space size not monotone: %v vs %v", bigger, small)
	}
}

func TestOracleInfeasibleAccel(t *testing.T) {
	// A register file too small for even unit tiles makes everything
	// infeasible.
	a := testAccel()
	a.PEs = 16384
	a.Width = 128
	a.RFKB = 16 // 1 byte per PE
	if _, err := BestSchedule(maestro.New(), core.MinDelay, a, tinyLayer(), Options{Orders: StructuredOrders()[:2]}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}
