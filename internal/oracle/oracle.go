// Package oracle exhaustively enumerates the software schedule space for
// small layers, providing ground-truth optima to validate the search
// algorithms against. Full enumeration is intractable for real layers
// (the space is O(10^18), §I of the paper), but for small synthetic
// layers the tiling × unrolling space is enumerable exactly, with loop
// orders covered by a structured subset (every rotation of the canonical
// order plus the classic stationarity orders) — the orders that matter
// for the fills analysis, since only the relative position of each
// tensor's dependent dims affects traffic.
package oracle

import (
	"errors"
	"fmt"
	"math"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Options bounds the enumeration.
type Options struct {
	// MaxPoints aborts enumeration when the schedule count would exceed
	// this bound (default 5e6).
	MaxPoints float64
	// Orders overrides the loop-order subset (outer and inner orders
	// both range over it). Defaults to StructuredOrders().
	Orders [][workload.NumDims]workload.Dim
}

// ErrTooLarge reports that the layer's schedule space exceeds MaxPoints.
var ErrTooLarge = errors.New("oracle: schedule space too large to enumerate")

// Result is the exhaustive optimum and search-space statistics.
type Result struct {
	Best      sched.Schedule
	BestCost  float64
	Evaluated int // schedules costed (valid or not)
	Valid     int // schedules the cost model accepted
}

// StructuredOrders returns the loop-order subset used by default: the
// seven rotations of the canonical order plus the weight-, output- and
// input-stationary orders.
func StructuredOrders() [][workload.NumDims]workload.Dim {
	var orders [][workload.NumDims]workload.Dim
	base := sched.CanonicalOrder()
	for r := 0; r < workload.NumDims; r++ {
		var o [workload.NumDims]workload.Dim
		for i := range base {
			o[i] = base[(i+r)%workload.NumDims]
		}
		orders = append(orders, o)
	}
	orders = append(orders,
		// Weight stationary: weight dims outer, others inner.
		[workload.NumDims]workload.Dim{workload.DimK, workload.DimC, workload.DimR,
			workload.DimS, workload.DimN, workload.DimX, workload.DimY},
		// Output stationary: output dims outer, reduction dims inner.
		[workload.NumDims]workload.Dim{workload.DimN, workload.DimK, workload.DimX,
			workload.DimY, workload.DimC, workload.DimR, workload.DimS},
		// Input stationary: input dims outer.
		[workload.NumDims]workload.Dim{workload.DimN, workload.DimC, workload.DimX,
			workload.DimY, workload.DimR, workload.DimS, workload.DimK},
	)
	return orders
}

// SpaceSize returns the number of schedules the oracle would enumerate
// for the layer under the options.
func SpaceSize(l workload.Layer, opts Options) float64 {
	orders := opts.Orders
	if orders == nil {
		orders = StructuredOrders()
	}
	size := 1.0
	for _, d := range workload.AllDims {
		pairs := 0
		for _, t2 := range sched.Divisors(l.Size(d)) {
			pairs += len(sched.Divisors(t2))
		}
		size *= float64(pairs)
	}
	size *= float64(len(orders)) * float64(len(orders)) // both orders
	size *= float64(workload.NumDims * workload.NumDims)
	return size
}

// BestSchedule exhaustively minimizes the objective over the bounded
// schedule space for the layer on the fixed accelerator. It returns
// ErrTooLarge when the space exceeds Options.MaxPoints, and an error when
// no schedule is feasible.
func BestSchedule(eval core.Evaluator, obj core.Objective, a hw.Accel, l workload.Layer, opts Options) (Result, error) {
	if opts.MaxPoints <= 0 {
		opts.MaxPoints = 5e6
	}
	if opts.Orders == nil {
		opts.Orders = StructuredOrders()
	}
	if size := SpaceSize(l, opts); size > opts.MaxPoints {
		return Result{}, fmt.Errorf("%w: %.3g points > bound %.3g", ErrTooLarge, size, opts.MaxPoints)
	}

	// Pre-compute the per-dimension (T1, T2) divisor pairs.
	pairs := make([][][2]int, workload.NumDims)
	for i, d := range workload.AllDims {
		for _, t2 := range sched.Divisors(l.Size(d)) {
			for _, t1 := range sched.Divisors(t2) {
				pairs[i] = append(pairs[i], [2]int{t1, t2})
			}
		}
	}

	res := Result{BestCost: math.Inf(1)}
	var s sched.Schedule
	var walk func(dim int)
	evaluateOrders := func() {
		for _, oo := range opts.Orders {
			for _, io := range opts.Orders {
				s.OuterOrder, s.InnerOrder = oo, io
				for uo := 0; uo < workload.NumDims; uo++ {
					for ui := 0; ui < workload.NumDims; ui++ {
						s.OuterUnroll = workload.Dim(uo)
						s.InnerUnroll = workload.Dim(ui)
						res.Evaluated++
						c, err := eval.Evaluate(a, s, l)
						if err != nil {
							continue
						}
						res.Valid++
						if v := obj.LayerCost(c); v < res.BestCost {
							res.BestCost = v
							res.Best = s
						}
					}
				}
			}
		}
	}
	walk = func(dim int) {
		if dim == workload.NumDims {
			evaluateOrders()
			return
		}
		for _, p := range pairs[dim] {
			s.T1[dim], s.T2[dim] = p[0], p[1]
			walk(dim + 1)
		}
	}
	walk(0)

	if res.Valid == 0 {
		return res, fmt.Errorf("oracle: no feasible schedule for %s on %s", l.Name, a)
	}
	return res, nil
}
