package hw

import (
	"math/rand"

	"spotlight/internal/sched"
)

// Space describes the range of each hardware parameter (Figure 3 of the
// paper). PE count, SIMD lanes, and bandwidth are cardinal; register-file
// and scratchpad capacities are ordinal with a stride; the PE aspect
// ratio is ordinal over the divisors of the PE count.
type Space struct {
	Name                       string
	PEMin, PEMax               int
	SIMDMin, SIMDMax           int
	BWMin, BWMax               int
	RFMinKB, RFMaxKB, RFStride int
	L2MinKB, L2MaxKB, L2Stride int
}

// EdgeSpace returns the edge-scale parameter ranges of Figure 3:
// 128-300 PEs, 2-16 SIMD lanes, 64-256 B/cycle bandwidth, and 64-256 KB
// scratchpad and register-file capacities with an 8 KB stride.
func EdgeSpace() Space {
	return Space{
		Name:  "edge",
		PEMin: 128, PEMax: 300,
		SIMDMin: 2, SIMDMax: 16,
		BWMin: 64, BWMax: 256,
		RFMinKB: 64, RFMaxKB: 256, RFStride: 8,
		L2MinKB: 64, L2MaxKB: 256, L2Stride: 8,
	}
}

// CloudSpace returns the cloud-scale ranges used in §VII-A (Figure 7).
// The paper emphasizes that moving Spotlight to the cloud setting only
// changes these ranges — nothing else in the tool.
func CloudSpace() Space {
	return Space{
		Name:  "cloud",
		PEMin: 2048, PEMax: 16384,
		SIMDMin: 2, SIMDMax: 16,
		BWMin: 256, BWMax: 2048,
		RFMinKB: 1024, RFMaxKB: 8192, RFStride: 128,
		L2MinKB: 2048, L2MaxKB: 16384, L2Stride: 128,
	}
}

// EdgeBudget returns the area/power envelope used for edge-scale designs.
// It is sized so that the hand-designed edge baselines fit and the upper
// corner of the edge space does not, making the budget constraint active.
func EdgeBudget() Budget { return Budget{AreaMM2: 32, PowerMW: 1200} }

// CloudBudget returns the envelope for cloud-scale designs.
func CloudBudget() Budget { return Budget{AreaMM2: 700, PowerMW: 40000} }

// Random samples a configuration uniformly from the space. The aspect
// ratio (Width) is drawn uniformly from the divisors of the sampled PE
// count, per Figure 3b.
func (s Space) Random(rng *rand.Rand) Accel {
	pes := s.PEMin + rng.Intn(s.PEMax-s.PEMin+1)
	divs := sched.Divisors(pes)
	return Accel{
		PEs:       pes,
		Width:     divs[rng.Intn(len(divs))],
		SIMDLanes: s.SIMDMin + rng.Intn(s.SIMDMax-s.SIMDMin+1),
		RFKB:      randStrided(rng, s.RFMinKB, s.RFMaxKB, s.RFStride),
		L2KB:      randStrided(rng, s.L2MinKB, s.L2MaxKB, s.L2Stride),
		NoCBW:     s.BWMin + rng.Intn(s.BWMax-s.BWMin+1),
	}
}

func randStrided(rng *rand.Rand, lo, hi, stride int) int {
	steps := (hi-lo)/stride + 1
	return lo + rng.Intn(steps)*stride
}

// Contains reports whether a lies within the space's ranges (ignoring
// stride alignment, which only matters for sampling).
func (s Space) Contains(a Accel) bool {
	return a.PEs >= s.PEMin && a.PEs <= s.PEMax &&
		a.SIMDLanes >= s.SIMDMin && a.SIMDLanes <= s.SIMDMax &&
		a.NoCBW >= s.BWMin && a.NoCBW <= s.BWMax &&
		a.RFKB >= s.RFMinKB && a.RFKB <= s.RFMaxKB &&
		a.L2KB >= s.L2MinKB && a.L2KB <= s.L2MaxKB &&
		a.PEs%a.Width == 0
}

// Neighbor perturbs one hardware parameter of a within the space,
// used by the genetic-algorithm baseline's mutation operator.
func (s Space) Neighbor(rng *rand.Rand, a Accel) Accel {
	out := a
	switch rng.Intn(6) {
	case 0:
		out.PEs = s.PEMin + rng.Intn(s.PEMax-s.PEMin+1)
		out.Width = randDivisor(rng, out.PEs)
	case 1:
		out.Width = randDivisor(rng, out.PEs)
	case 2:
		out.SIMDLanes = s.SIMDMin + rng.Intn(s.SIMDMax-s.SIMDMin+1)
	case 3:
		out.RFKB = randStrided(rng, s.RFMinKB, s.RFMaxKB, s.RFStride)
	case 4:
		out.L2KB = randStrided(rng, s.L2MinKB, s.L2MaxKB, s.L2Stride)
	case 5:
		out.NoCBW = s.BWMin + rng.Intn(s.BWMax-s.BWMin+1)
	}
	return out
}

// Crossover mixes two configurations parameter-wise.
func Crossover(rng *rand.Rand, a, b Accel) Accel {
	out := a
	if rng.Intn(2) == 0 {
		out.PEs, out.Width = b.PEs, b.Width
	}
	if rng.Intn(2) == 0 {
		out.SIMDLanes = b.SIMDLanes
	}
	if rng.Intn(2) == 0 {
		out.RFKB = b.RFKB
	}
	if rng.Intn(2) == 0 {
		out.L2KB = b.L2KB
	}
	if rng.Intn(2) == 0 {
		out.NoCBW = b.NoCBW
	}
	return out
}

func randDivisor(rng *rand.Rand, n int) int {
	divs := sched.Divisors(n)
	return divs[rng.Intn(len(divs))]
}
