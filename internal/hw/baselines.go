package hw

import (
	"fmt"

	"spotlight/internal/sched"
)

// Baseline pairs a hand-designed accelerator configuration with the
// software-schedule space its dataflow supports. Following §VII of the
// paper, baselines are evaluated "under our layerwise software optimizer
// daBO_SW" but within their own (often rigid) schedule constraints, and
// they are scaled so all accelerators fit the same area budget.
type Baseline struct {
	Name       string
	Accel      Accel
	Constraint sched.Constraint
}

// EyerissEdge returns the edge-scale Eyeriss-like baseline: a 12×14
// array of narrow PEs with a rigid row-stationary-style X/Y-unrolled
// dataflow, echoing the fabricated Eyeriss chip (168 PEs, ~108 KB on-chip
// SRAM) within the Figure 3 ranges.
func EyerissEdge() Baseline {
	return Baseline{
		Name: "Eyeriss-like",
		Accel: Accel{
			PEs: 168, Width: 14, SIMDLanes: 2,
			RFKB: 80, L2KB: 128, NoCBW: 64,
		},
		Constraint: sched.EyerissLike().WithTilingSearch(),
	}
}

// NVDLAEdge returns the edge-scale NVDLA-like baseline: a wider SIMD
// design that spatially unrolls the K and C channel dimensions, which
// the paper notes gives it an advantage over Eyeriss on mid and late
// layers.
func NVDLAEdge() Baseline {
	return Baseline{
		Name: "NVDLA-like",
		Accel: Accel{
			PEs: 256, Width: 16, SIMDLanes: 4,
			RFKB: 64, L2KB: 256, NoCBW: 128,
		},
		Constraint: sched.NVDLALike().WithTilingSearch(),
	}
}

// MAERIEdge returns the edge-scale MAERI-like baseline: fixed hardware
// (including fixed on-chip memory sizes — the degree of freedom the paper
// notes it loses to Spotlight) but a fully flexible dataflow thanks to
// its reconfigurable interconnect.
func MAERIEdge() Baseline {
	return Baseline{
		Name: "MAERI-like",
		Accel: Accel{
			PEs: 256, Width: 16, SIMDLanes: 4,
			RFKB: 128, L2KB: 192, NoCBW: 256,
		},
		Constraint: sched.MAERILike(),
	}
}

// EdgeBaselines returns the three edge-scale hand-designed baselines in
// the order Figure 6 presents them.
func EdgeBaselines() []Baseline {
	return []Baseline{EyerissEdge(), NVDLAEdge(), MAERIEdge()}
}

// scaleUp produces the cloud-scale variant of an edge baseline by the
// fixed factors the paper's "scaled-up hand-designed accelerators" use:
// 16× the PEs and on-chip SRAM, 8× the interconnect bandwidth.
func scaleUp(b Baseline, width int) Baseline {
	a := b.Accel
	a.PEs *= 16
	a.Width = width
	a.RFKB *= 16
	a.L2KB *= 16
	a.NoCBW *= 8
	return Baseline{Name: b.Name + " (cloud)", Accel: a, Constraint: b.Constraint}
}

// CloudBaselines returns the scaled-up hand-designed baselines of
// Figure 7.
func CloudBaselines() []Baseline {
	return []Baseline{
		scaleUp(EyerissEdge(), 56), // 2688 PEs as 48×56
		scaleUp(NVDLAEdge(), 64),   // 4096 PEs as 64×64
		scaleUp(MAERIEdge(), 64),   // 4096 PEs as 64×64
	}
}

// BaselinesFor returns the baselines for the named scale ("edge" or
// "cloud").
func BaselinesFor(scale string) ([]Baseline, error) {
	switch scale {
	case "edge":
		return EdgeBaselines(), nil
	case "cloud":
		return CloudBaselines(), nil
	}
	return nil, fmt.Errorf("hw: unknown scale %q (want edge or cloud)", scale)
}
