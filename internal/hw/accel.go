// Package hw defines the hardware half of the co-design space: the
// abstract DL accelerator microarchitecture of Figure 2 of the paper (a
// 2-D spatial array of SIMD processing elements under a global L2
// scratchpad, with per-PE register files and a uni-/multi-cast on-chip
// interconnect), the area and power model used for budget constraints,
// the edge- and cloud-scale parameter spaces of Figure 3, and the three
// hand-designed baseline accelerators (Eyeriss-like, NVDLA-like,
// MAERI-like).
package hw

import (
	"fmt"
	"math"
)

// Accel is one point in the hardware design space: the microarchitectural
// parameters of §IV-A1 of the paper. Precision is fixed at 8 bits, so all
// byte quantities equal element counts.
type Accel struct {
	PEs       int // total number of processing elements
	Width     int // PE array width (columns); must divide PEs
	SIMDLanes int // MAC lanes per PE
	RFKB      int // total register-file capacity across all PEs, KB
	L2KB      int // global scratchpad capacity, KB
	NoCBW     int // on-chip interconnect bandwidth, bytes/cycle
}

// Height returns the PE array height (rows of clusters): PEs / Width.
func (a Accel) Height() int { return a.PEs / a.Width }

// RFBytesPerPE returns the register-file capacity of a single PE in bytes.
func (a Accel) RFBytesPerPE() int64 { return int64(a.RFKB) << 10 / int64(a.PEs) }

// L2Bytes returns the global scratchpad capacity in bytes.
func (a Accel) L2Bytes() int64 { return int64(a.L2KB) << 10 }

// Validate reports an error when the configuration is structurally
// impossible (as opposed to merely over budget).
func (a Accel) Validate() error {
	if a.PEs <= 0 || a.Width <= 0 || a.SIMDLanes <= 0 || a.RFKB <= 0 || a.L2KB <= 0 || a.NoCBW <= 0 {
		return fmt.Errorf("hw: non-positive parameter in %+v", a)
	}
	if a.PEs%a.Width != 0 {
		return fmt.Errorf("hw: width %d does not divide PE count %d", a.Width, a.PEs)
	}
	if a.RFBytesPerPE() < 1 {
		return fmt.Errorf("hw: register file too small: %d KB across %d PEs", a.RFKB, a.PEs)
	}
	return nil
}

// String renders the configuration compactly.
func (a Accel) String() string {
	return fmt.Sprintf("PEs=%d(%dx%d) SIMD=%d RF=%dKB L2=%dKB BW=%dB/cy",
		a.PEs, a.Height(), a.Width, a.SIMDLanes, a.RFKB, a.L2KB, a.NoCBW)
}

// Area and power coefficients for the analytical cost model, loosely
// calibrated to published edge accelerators at a 28nm-class node. Only
// relative magnitudes matter: they set the exchange rate between compute,
// register files, scratchpad, and interconnect that the budget constraint
// trades against.
const (
	areaPerLaneMM2  = 0.0006 // one 8-bit MAC lane
	areaPerPEMM2    = 0.0015 // PE control overhead
	areaPerRFKBMM2  = 0.09   // register files (small, multi-ported)
	areaPerL2KBMM2  = 0.045  // scratchpad SRAM (denser banks)
	areaPerBWMM2    = 0.004  // interconnect wiring per byte/cycle
	powerPerLaneMW  = 0.25   // peak dynamic power per active lane
	powerPerRFKBMW  = 0.06
	powerPerL2KBMW  = 0.03
	powerPerBWMW    = 0.12
	leakagePerMM2MW = 0.35
)

// AreaMM2 returns the modeled silicon area of the configuration in mm².
func (a Accel) AreaMM2() float64 {
	return float64(a.PEs)*(areaPerPEMM2+float64(a.SIMDLanes)*areaPerLaneMM2) +
		float64(a.RFKB)*areaPerRFKBMM2 +
		float64(a.L2KB)*areaPerL2KBMM2 +
		float64(a.NoCBW)*areaPerBWMM2*math.Sqrt(float64(a.Height()+a.Width))
}

// PeakPowerMW returns the modeled peak power of the configuration in mW,
// including leakage proportional to area.
func (a Accel) PeakPowerMW() float64 {
	dynamic := float64(a.PEs*a.SIMDLanes)*powerPerLaneMW +
		float64(a.RFKB)*powerPerRFKBMW +
		float64(a.L2KB)*powerPerL2KBMW +
		float64(a.NoCBW)*powerPerBWMW
	return dynamic + a.AreaMM2()*leakagePerMM2MW
}

// Budget caps the area and peak power of acceptable designs. Spotlight
// takes a budget as input (§VI) and discards configurations that exceed
// it; hand-designed baselines are scaled to fit the same budget for a
// fair comparison (§VII).
type Budget struct {
	AreaMM2 float64
	PowerMW float64
}

// Fits reports whether the configuration is within budget.
func (b Budget) Fits(a Accel) bool {
	return a.AreaMM2() <= b.AreaMM2 && a.PeakPowerMW() <= b.PowerMW
}

// Check returns a descriptive error when a exceeds the budget.
func (b Budget) Check(a Accel) error {
	if area := a.AreaMM2(); area > b.AreaMM2 {
		return fmt.Errorf("hw: area %.2f mm² exceeds budget %.2f mm²", area, b.AreaMM2)
	}
	if p := a.PeakPowerMW(); p > b.PowerMW {
		return fmt.Errorf("hw: power %.1f mW exceeds budget %.1f mW", p, b.PowerMW)
	}
	return nil
}
