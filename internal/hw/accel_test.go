package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func validAccel() Accel {
	return Accel{PEs: 168, Width: 14, SIMDLanes: 2, RFKB: 80, L2KB: 128, NoCBW: 64}
}

func TestAccelDerived(t *testing.T) {
	a := validAccel()
	if a.Height() != 12 {
		t.Fatalf("height = %d, want 12", a.Height())
	}
	if a.RFBytesPerPE() != int64(80<<10)/168 {
		t.Fatalf("RF/PE = %d", a.RFBytesPerPE())
	}
	if a.L2Bytes() != 128<<10 {
		t.Fatalf("L2 bytes = %d", a.L2Bytes())
	}
}

func TestAccelValidate(t *testing.T) {
	if err := validAccel().Validate(); err != nil {
		t.Fatalf("valid accel rejected: %v", err)
	}
	bad := validAccel()
	bad.Width = 13 // does not divide 168
	if bad.Validate() == nil {
		t.Fatal("non-dividing width accepted")
	}
	bad = validAccel()
	bad.PEs = 0
	if bad.Validate() == nil {
		t.Fatal("zero PEs accepted")
	}
}

func TestAreaPowerPositiveAndMonotone(t *testing.T) {
	a := validAccel()
	if a.AreaMM2() <= 0 || a.PeakPowerMW() <= 0 {
		t.Fatal("non-positive area or power")
	}
	bigger := a
	bigger.PEs, bigger.Width = 2*a.PEs, a.Width
	if bigger.AreaMM2() <= a.AreaMM2() {
		t.Fatal("area not monotone in PEs")
	}
	bigger = a
	bigger.L2KB = 2 * a.L2KB
	if bigger.AreaMM2() <= a.AreaMM2() || bigger.PeakPowerMW() <= a.PeakPowerMW() {
		t.Fatal("area/power not monotone in L2")
	}
	bigger = a
	bigger.SIMDLanes = 2 * a.SIMDLanes
	if bigger.PeakPowerMW() <= a.PeakPowerMW() {
		t.Fatal("power not monotone in SIMD lanes")
	}
}

func TestBudget(t *testing.T) {
	a := validAccel()
	tight := Budget{AreaMM2: a.AreaMM2() - 1, PowerMW: 1e9}
	if tight.Fits(a) || tight.Check(a) == nil {
		t.Fatal("over-area config accepted")
	}
	tightP := Budget{AreaMM2: 1e9, PowerMW: a.PeakPowerMW() - 1}
	if tightP.Fits(a) || tightP.Check(a) == nil {
		t.Fatal("over-power config accepted")
	}
	loose := Budget{AreaMM2: 1e9, PowerMW: 1e9}
	if !loose.Fits(a) || loose.Check(a) != nil {
		t.Fatal("in-budget config rejected")
	}
}

func TestEdgeSpaceSamplesValid(t *testing.T) {
	s := EdgeSpace()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := s.Random(rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("sample %d invalid: %v (%s)", i, err, a)
		}
		if !s.Contains(a) {
			t.Fatalf("sample %d outside its own space: %s", i, a)
		}
		if a.RFKB%s.RFStride != 0 || a.L2KB%s.L2Stride != 0 {
			t.Fatalf("sample %d violates stride: %s", i, a)
		}
	}
}

func TestCloudSpaceSamplesValid(t *testing.T) {
	s := CloudSpace()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := s.Random(rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("cloud sample invalid: %v", err)
		}
		if !s.Contains(a) {
			t.Fatalf("cloud sample outside space: %s", a)
		}
	}
}

func TestEdgeBudgetIsActive(t *testing.T) {
	// Some edge samples must fit and some must not, so the budget
	// constraint is a real part of the search problem.
	s := EdgeSpace()
	b := EdgeBudget()
	rng := rand.New(rand.NewSource(3))
	var fit, unfit int
	for i := 0; i < 1000; i++ {
		if b.Fits(s.Random(rng)) {
			fit++
		} else {
			unfit++
		}
	}
	if fit == 0 || unfit == 0 {
		t.Fatalf("edge budget not active: %d fit, %d unfit", fit, unfit)
	}
}

func TestNeighborStaysInSpace(t *testing.T) {
	s := EdgeSpace()
	rng := rand.New(rand.NewSource(4))
	a := s.Random(rng)
	for i := 0; i < 300; i++ {
		a = s.Neighbor(rng, a)
		if err := a.Validate(); err != nil {
			t.Fatalf("neighbor invalid: %v", err)
		}
		if !s.Contains(a) {
			t.Fatalf("neighbor escaped space: %s", a)
		}
	}
}

func TestCrossoverValid(t *testing.T) {
	s := EdgeSpace()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		child := Crossover(rng, s.Random(rng), s.Random(rng))
		if err := child.Validate(); err != nil {
			t.Fatalf("crossover child invalid: %v", err)
		}
	}
}

func TestBaselinesFitTheirBudgets(t *testing.T) {
	eb := EdgeBudget()
	for _, b := range EdgeBaselines() {
		if err := b.Accel.Validate(); err != nil {
			t.Errorf("%s invalid: %v", b.Name, err)
		}
		if err := eb.Check(b.Accel); err != nil {
			t.Errorf("%s exceeds edge budget: %v", b.Name, err)
		}
	}
	cb := CloudBudget()
	for _, b := range CloudBaselines() {
		if err := b.Accel.Validate(); err != nil {
			t.Errorf("%s invalid: %v", b.Name, err)
		}
		if err := cb.Check(b.Accel); err != nil {
			t.Errorf("%s exceeds cloud budget: %v", b.Name, err)
		}
	}
}

func TestBaselineConstraintsMatchDataflows(t *testing.T) {
	bs := EdgeBaselines()
	if bs[0].Constraint.Name != "eyeriss-like+tiling" ||
		bs[1].Constraint.Name != "nvdla-like+tiling" ||
		bs[2].Constraint.Name != "maeri-like" {
		t.Fatal("baseline constraints mislabeled")
	}
}

func TestBaselinesFor(t *testing.T) {
	if _, err := BaselinesFor("edge"); err != nil {
		t.Fatal(err)
	}
	if _, err := BaselinesFor("cloud"); err != nil {
		t.Fatal(err)
	}
	if _, err := BaselinesFor("galaxy"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// Property: any sampled edge config has Width dividing PEs and the
// derived height is consistent.
func TestAspectRatioProperty(t *testing.T) {
	s := EdgeSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := s.Random(rng)
		return a.PEs%a.Width == 0 && a.Height()*a.Width == a.PEs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccelString(t *testing.T) {
	if validAccel().String() == "" {
		t.Fatal("empty accel string")
	}
}
