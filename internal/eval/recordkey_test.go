package eval

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/sim"
	"spotlight/internal/timeloop"
	"spotlight/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenKey is a fixed evaluation input exercising every serialized
// field with a distinct value, so any field dropped from or reordered in
// recordKeyBytes changes the golden bytes.
func goldenKey() Key {
	return Key{
		Accel: hw.Accel{PEs: 1024, Width: 32, SIMDLanes: 4, RFKB: 128, L2KB: 2048, NoCBW: 256},
		Sched: sched.Schedule{
			T2:          [workload.NumDims]int{1, 2, 3, 4, 5, 6, 7},
			T1:          [workload.NumDims]int{1, 1, 3, 1, 5, 1, 7},
			OuterOrder:  workload.AllDims,
			InnerOrder:  [workload.NumDims]workload.Dim{workload.DimY, workload.DimX, workload.DimS, workload.DimR, workload.DimC, workload.DimK, workload.DimN},
			OuterUnroll: workload.DimK,
			InnerUnroll: workload.DimC,
		},
		Layer: workload.Layer{
			Name: "golden-layer", Op: workload.OpDepthwise,
			N: 1, K: 96, C: 96, R: 3, S: 3, X: 56, Y: 57,
			StrideX: 2, StrideY: 1, Repeat: 4,
		},
	}
}

// TestRecordKeyGolden pins the canonical record-key serialization and
// its SHA-256 to a golden file. If this fails after an intentional
// layout change, bump RecordKeyVersion (orphaning old journals is the
// point — their keys no longer describe the stored values), then
// regenerate with: go test ./internal/eval -run RecordKeyGolden -update
func TestRecordKeyGolden(t *testing.T) {
	raw := recordKeyBytes("maestro", "maestro/cost-v1", goldenKey())
	sum := RecordKey("maestro", "maestro/cost-v1", goldenKey())
	got := fmt.Sprintf("version: %d\nbytes: %s\nsha256: %s\n",
		RecordKeyVersion, hex.EncodeToString(raw), hex.EncodeToString(sum[:]))

	path := filepath.Join("testdata", "recordkey.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("record-key serialization changed:\n--- got ---\n%s--- want ---\n%s\nEvery persistent journal keyed under the old layout is orphaned. If intentional, bump RecordKeyVersion and rerun with -update.", got, want)
	}
}

// TestRecordKeyDistinguishes: changing any single input must change the
// key — backend, fingerprint, and every struct field feed the hash.
func TestRecordKeyDistinguishes(t *testing.T) {
	base := RecordKey("maestro", "fp", goldenKey())
	mutations := map[string]func() [32]byte{
		"backend":     func() [32]byte { return RecordKey("sim", "fp", goldenKey()) },
		"fingerprint": func() [32]byte { return RecordKey("maestro", "fp2", goldenKey()) },
		"accel.PEs": func() [32]byte {
			k := goldenKey()
			k.Accel.PEs = 512
			return RecordKey("maestro", "fp", k)
		},
		"sched.T2": func() [32]byte {
			k := goldenKey()
			k.Sched.T2[3] = 8
			return RecordKey("maestro", "fp", k)
		},
		"sched.InnerUnroll": func() [32]byte {
			k := goldenKey()
			k.Sched.InnerUnroll = workload.DimS
			return RecordKey("maestro", "fp", k)
		},
		"layer.Name": func() [32]byte {
			k := goldenKey()
			k.Layer.Name = "other"
			return RecordKey("maestro", "fp", k)
		},
		"layer.Repeat": func() [32]byte {
			k := goldenKey()
			k.Layer.Repeat = 1
			return RecordKey("maestro", "fp", k)
		},
	}
	for name, mutate := range mutations {
		if mutate() == base {
			t.Fatalf("mutating %s did not change the record key", name)
		}
	}
	// Length-prefixing keeps adjacent strings unambiguous: moving a byte
	// across the backend/fingerprint boundary must change the key.
	if RecordKey("ab", "c", goldenKey()) == RecordKey("a", "bc", goldenKey()) {
		t.Fatal("string boundary ambiguity in record-key serialization")
	}
}

// TestBackendFingerprints: every bundled backend declares a cost-model
// fingerprint, and unversioned evaluators get the explicit marker.
func TestBackendFingerprints(t *testing.T) {
	for _, tc := range []struct {
		ev   core.Evaluator
		want string
	}{
		{maestro.New(), "maestro/" + maestro.CostModelVersion},
		{sim.NewBackend(sim.Options{}), "sim-hybrid/sim-v1+maestro/" + maestro.CostModelVersion},
		{timeloop.New(), "timeloop/cost-v1"},
	} {
		if got := BackendFingerprint(tc.ev); got != tc.want {
			t.Fatalf("%s fingerprint = %q, want %q", tc.ev.Name(), got, tc.want)
		}
	}
	if got := BackendFingerprint(&fakeEval{}); got != "fake/unversioned" {
		t.Fatalf("unversioned fallback = %q", got)
	}
}
