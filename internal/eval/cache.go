package eval

import (
	"errors"
	"sync"
	"sync/atomic"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// cacheShards is the number of independently locked segments of the memo
// cache. A power of two so shard selection is a mask; 64 keeps lock
// contention negligible at any realistic worker count while costing only
// a few KB of fixed overhead.
const cacheShards = 64

// Key is the canonical cache identity of one evaluation. The three
// inputs are plain value types (ints, int arrays, and the layer name),
// so Go's struct equality is exact — two keys are equal iff the backend
// would see identical inputs — and the key is directly usable as a map
// key with no serialization. The only canonicalization applied is to
// Layer.Repeat, which is zeroed: Repeat weights a layer's cost in
// model-level aggregates but never reaches the backend's per-evaluation
// math, so shapes that differ only in repeat count share one entry.
type Key struct {
	Accel hw.Accel
	Sched sched.Schedule
	Layer workload.Layer
}

// CanonicalKey builds the cache key for one evaluation, applying the
// canonicalization described on Key.
func CanonicalKey(a hw.Accel, s sched.Schedule, l workload.Layer) Key {
	l.Repeat = 0
	return Key{Accel: a, Sched: s, Layer: l}
}

// Fingerprint folds a key into 64 bits with a splitmix64-style mixer.
// The cache uses it only to pick a shard — entry identity is the full
// Key, so fingerprint collisions cost contention, never correctness.
func Fingerprint(k Key) uint64 {
	z := uint64(0x5307159b0a575e11)
	for _, v := range [...]int{k.Accel.PEs, k.Accel.Width, k.Accel.SIMDLanes,
		k.Accel.RFKB, k.Accel.L2KB, k.Accel.NoCBW} {
		z = fpMix(z, uint64(v))
	}
	for i := 0; i < workload.NumDims; i++ {
		z = fpMix(z, uint64(k.Sched.T2[i]))
		z = fpMix(z, uint64(k.Sched.T1[i]))
		z = fpMix(z, uint64(k.Sched.OuterOrder[i]))
		z = fpMix(z, uint64(k.Sched.InnerOrder[i]))
	}
	z = fpMix(z, uint64(k.Sched.OuterUnroll))
	z = fpMix(z, uint64(k.Sched.InnerUnroll))
	for _, c := range k.Layer.Name {
		z = fpMix(z, uint64(c))
	}
	for _, v := range [...]int{int(k.Layer.Op), k.Layer.N, k.Layer.K, k.Layer.C,
		k.Layer.R, k.Layer.S, k.Layer.X, k.Layer.Y,
		k.Layer.StrideX, k.Layer.StrideY, k.Layer.Repeat} {
		z = fpMix(z, uint64(v))
	}
	return z
}

// fpMix is a splitmix64-style finalizer folding s into state z, the same
// construction core and resilience use for seed derivation.
func fpMix(z, s uint64) uint64 {
	z ^= s + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cacheEntry is one memoized (or in-flight) evaluation. done is closed
// when cost/err are final; keep reports whether the outcome was
// memoizable (followers of a non-kept entry re-evaluate themselves).
type cacheEntry struct {
	done chan struct{}
	cost maestro.Cost
	err  error
	keep bool
}

// cacheShard is one locked segment of the memo table.
type cacheShard struct {
	mu sync.Mutex
	m  map[Key]*cacheEntry
}

// Cache memoizes evaluations of its inner evaluator, keyed on the
// canonical (accelerator, schedule, layer) triple. It exists because the
// search runtime re-evaluates many identical triples: BO reruns propose
// duplicate schedules, checkpoint replays re-walk old samples, and the
// Pareto/figure harnesses re-cost the same designs across
// configurations. The table is sharded for concurrency and deduplicates
// in-flight work single-flight style: when several workers ask for the
// same key at once, one evaluates and the rest wait for its result.
//
// Memoization preserves the evaluator contract bit-exactly: a hit
// returns the identical maestro.Cost value and the identical error the
// miss produced. Successful evaluations and infeasibility verdicts
// (errors wrapping maestro.ErrInvalid) are memoized — both are
// deterministic properties of the design point. Any other error
// (timeouts, injected transients, panics converted by a guard below) is
// returned but NOT memoized, so a fault never poisons the cache.
//
// Entries are never evicted: a co-design run's working set is bounded by
// its sample budget, and the figure harnesses want cross-trial reuse.
// The zero value is not usable; build one with WithCache.
type Cache struct {
	inner  core.Evaluator
	shards [cacheShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	entries   atomic.Int64

	tr obs.Tracer // emits cache.hit/miss/leaderpanic; nil disables
}

// SetTracer attaches a tracer that receives one event per cache hit,
// miss, and leader panic. Call it before evaluation begins (FromSpec
// does); the field is not synchronized against in-flight Evaluate calls.
func (c *Cache) SetTracer(tr obs.Tracer) { c.tr = tr }

// WithCache returns the memo-cache middleware.
func WithCache() Middleware {
	return func(inner core.Evaluator) core.Evaluator {
		c := &Cache{inner: inner}
		for i := range c.shards {
			c.shards[i].m = make(map[Key]*cacheEntry)
		}
		return c
	}
}

// Name implements core.Evaluator. The cache is trajectory-neutral — a
// cached pipeline returns bit-identical results to an uncached one — so
// it is transparent in the name (and the checkpoint fingerprint).
func (c *Cache) Name() string { return c.inner.Name() }

// Evaluate implements core.Evaluator with memoization and single-flight
// deduplication.
func (c *Cache) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return c.evaluateSpan(nil, a, s, l)
}

// EvaluateSpan implements core.SpanEvaluator: identical memoization, but
// the cache.hit/miss/leaderpanic events this call emits are parented
// under sp and delivered to sp's sink — so on a shared pipeline each job
// sees only its own cache traffic.
func (c *Cache) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return c.evaluateSpan(sp, a, s, l)
}

func (c *Cache) evaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	key := CanonicalKey(a, s, l)
	shard := &c.shards[Fingerprint(key)&(cacheShards-1)]
	for {
		shard.mu.Lock()
		if e, ok := shard.m[key]; ok {
			shard.mu.Unlock()
			inFlight := false
			select {
			case <-e.done:
			default:
				inFlight = true // wait for the leader, single-flight style
			}
			<-e.done
			if inFlight {
				c.coalesced.Add(1)
			}
			if e.keep {
				c.hits.Add(1)
				if obs.Active(sp, c.tr) {
					sp.EmitTo(c.tr, obs.Event{Type: obs.CacheHit})
				}
				return e.cost, e.err
			}
			// The leader's outcome was not memoizable (transient fault,
			// or the leader panicked); it withdrew the entry, so retry
			// as a leader.
			continue
		}
		e := &cacheEntry{done: make(chan struct{})}
		shard.m[key] = e
		shard.mu.Unlock()
		return c.lead(sp, shard, key, e, a, s, l)
	}
}

// lead runs the one real evaluation for a key and publishes the result.
// If the evaluation panics (no guard below the cache), the entry is
// withdrawn before the panic propagates so waiting followers retry
// instead of blocking forever.
func (c *Cache) lead(sp *obs.Span, shard *cacheShard, key Key, e *cacheEntry,
	a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {

	finished := false
	defer func() {
		if !finished { // panicking: withdraw and release followers
			shard.mu.Lock()
			delete(shard.m, key)
			shard.mu.Unlock()
			close(e.done)
			if obs.Active(sp, c.tr) {
				sp.EmitTo(c.tr, obs.Event{Type: obs.CachePanic})
			}
		}
	}()
	cost, err := core.EvaluateSpan(c.inner, sp, a, s, l)
	finished = true

	e.cost, e.err = cost, err
	e.keep = err == nil || errors.Is(err, maestro.ErrInvalid)
	if e.keep {
		c.entries.Add(1)
	} else {
		shard.mu.Lock()
		delete(shard.m, key)
		shard.mu.Unlock()
	}
	c.misses.Add(1)
	if obs.Active(sp, c.tr) {
		sp.EmitTo(c.tr, obs.Event{Type: obs.CacheMiss})
	}
	close(e.done)
	return cost, err
}

// CacheSnapshot is a point-in-time view of the cache counters.
type CacheSnapshot struct {
	Hits      int64 // calls answered from a memoized entry
	Misses    int64 // calls that reached the inner evaluator
	Coalesced int64 // calls that waited on another caller's in-flight evaluation
	Entries   int64 // memoized results currently resident
}

// Snapshot returns the current counters. It is safe to call
// concurrently with Evaluate; the fields are read individually, so a
// snapshot taken mid-flight may be off by in-flight calls.
func (c *Cache) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   c.entries.Load(),
	}
}
