// Package eval unifies access to the cost-model backends behind one
// composable evaluation pipeline. The paper's §VIII anticipates swapping
// in "more costly but more accurate evaluation backends", and every
// consumer of the cost model — the nested daBO driver in internal/core,
// the baselines in internal/search, the figure harnesses in
// internal/exp, and both CLIs — needs the same supporting machinery
// around whichever backend it runs: fault containment, memoization, and
// instrumentation. This package provides that machinery once:
//
//   - A named backend registry: Register associates a name with a
//     constructor, Open instantiates by name, and Backends lists what is
//     available. The three bundled backends (maestro, timeloop, sim)
//     self-register.
//   - A middleware chain: Chain(backend, mw...) wraps a backend in
//     layers that each preserve the evaluator contract. The bundled
//     middlewares are WithCache (a sharded, concurrency-safe memo cache
//     with single-flight deduplication), WithStats (atomic per-backend
//     eval/invalid/error/latency counters), and WithGuard (the
//     resilience.Guard panic/timeout/retry policy).
//   - A spec language: FromSpec("sim,cache,guard") builds the whole
//     pipeline from one flag-friendly string, which is how the CLIs and
//     the experiment harness configure evaluation.
//
// A Pipeline satisfies core.Evaluator, so it drops into
// core.RunConfig.Eval unchanged. An uncached, unguarded pipeline is a
// pure pass-through: it produces bit-identical results (and therefore
// bit-identical search History) to calling the backend directly.
package eval

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/sim"
	"spotlight/internal/workload"
)

// Factory constructs one backend instance. Factories are invoked once
// per Open call, so every pipeline owns its backend (stateful backends
// like sim's hybrid never alias across pipelines).
type Factory func() (core.Evaluator, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register associates a backend name with its constructor. Registering
// an empty name, a nil factory, or a duplicate name panics: registration
// happens at init time, where a loud failure beats a shadowed backend.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("eval: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("eval: Register called twice for backend " + name)
	}
	registry[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// UnknownBackendError is returned by Open (and FromSpec) for a name with
// no registered backend. It lists what is registered so CLIs can print
// an actionable message instead of a bare failure.
type UnknownBackendError struct {
	Name       string
	Registered []string
}

// Error implements error.
func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("eval: unknown backend %q (registered backends: %s)",
		e.Name, strings.Join(e.Registered, ", "))
}

// Open instantiates the named backend. An unknown name returns an
// *UnknownBackendError listing the registered names.
func Open(name string) (core.Evaluator, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownBackendError{Name: name, Registered: Backends()}
	}
	return f()
}

// Middleware is one layer of an evaluation pipeline: it wraps an
// evaluator in another evaluator. Middlewares must preserve the
// evaluator contract — in particular the error classification (errors
// wrapping maestro.ErrInvalid mark infeasible points) — and must be safe
// for concurrent Evaluate calls whenever the wrapped evaluator is.
type Middleware func(core.Evaluator) core.Evaluator

// Pipeline is a backend composed with its middleware stack. It
// implements core.Evaluator (Evaluate and Name delegate to the outermost
// layer) plus Validate, which core.RunConfig checks before a run starts.
// Handles to the cache and stats layers, when present, are retained for
// reporting.
type Pipeline struct {
	backend core.Evaluator // innermost layer
	outer   core.Evaluator // fully composed chain
	cache   *Cache         // nil when the chain has no cache layer
	stats   *Stats         // nil when the chain has no stats layer
	disk    *Disk          // nil when the chain has no persistent cache layer
	spec    string         // the spec the pipeline was built from, if any
}

// Chain composes a backend with middlewares, innermost first: the first
// middleware wraps the backend directly, the last sees every call first.
// When the backend is sim's hybrid and the chain contains a stats layer,
// the backend's path events (simulated/fallback) are wired into that
// layer, so backend-specific counters live in the middleware rather
// than the backend.
func Chain(backend core.Evaluator, mw ...Middleware) *Pipeline {
	p := &Pipeline{backend: backend, outer: backend}
	for _, m := range mw {
		if m == nil {
			continue
		}
		p.outer = m(p.outer)
		switch layer := p.outer.(type) {
		case *Cache:
			p.cache = layer
		case *Stats:
			p.stats = layer
		case *Disk:
			p.disk = layer
		}
	}
	if b, ok := backend.(*sim.Backend); ok && p.stats != nil {
		b.Events = p.stats
	}
	return p
}

// Evaluate implements core.Evaluator.
func (p *Pipeline) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return p.outer.Evaluate(a, s, l)
}

// EvaluateSpan implements core.SpanEvaluator, handing the caller's span
// to the outermost layer. Layers that understand spans thread them
// inward; the first one that does not silently drops the span and the
// rest of the chain behaves exactly as an un-spanned call — results are
// identical either way.
func (p *Pipeline) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return core.EvaluateSpan(p.outer, sp, a, s, l)
}

// Name implements core.Evaluator. Trajectory-neutral layers (cache,
// stats) are name-transparent, so a pipeline's name — and with it the
// checkpoint fingerprint — depends only on the layers that can change
// what the search observes (the backend, and guard under faults).
func (p *Pipeline) Name() string { return p.outer.Name() }

// Validate reports whether the pipeline is runnable: a backend must be
// present, and every layer must have wrapped rather than dropped its
// inner evaluator. core.RunConfig calls this before a search starts.
func (p *Pipeline) Validate() error {
	if p == nil {
		return errors.New("eval: nil pipeline")
	}
	if p.backend == nil {
		return errors.New("eval: pipeline has no backend")
	}
	if p.outer == nil {
		return errors.New("eval: pipeline chain is broken (middleware returned nil)")
	}
	if p.backend.Name() == "" {
		return errors.New("eval: backend has an empty name")
	}
	return nil
}

// Backend returns the innermost layer of the pipeline.
func (p *Pipeline) Backend() core.Evaluator { return p.backend }

// Cache returns the pipeline's cache layer, or nil.
func (p *Pipeline) Cache() *Cache { return p.cache }

// Stats returns the pipeline's stats layer, or nil.
func (p *Pipeline) Stats() *Stats { return p.stats }

// Disk returns the pipeline's persistent cache layer, or nil.
func (p *Pipeline) Disk() *Disk { return p.disk }

// Close releases pipeline resources — today, flushing and closing the
// persistent cache journal. Pipelines without a disk layer close
// trivially; the CLIs call this (and check the error) on every exit
// path, including signal-driven ones.
func (p *Pipeline) Close() error {
	if p.disk == nil {
		return nil
	}
	return p.disk.Close()
}

// Spec returns the spec string the pipeline was built from (empty for
// hand-assembled chains).
func (p *Pipeline) Spec() string { return p.spec }

// Report renders the pipeline's counters — per-backend stats first, then
// the cache — as human-readable lines, for the CLIs to print after a
// run. It returns "" when the pipeline has neither layer.
func (p *Pipeline) Report() string {
	var b strings.Builder
	if p.stats != nil {
		s := p.stats.Snapshot()
		fmt.Fprintf(&b, "eval stats [%s]: evals=%d ok=%d invalid=%d errors=%d avg=%s\n",
			s.Backend, s.Evals, s.OK, s.Invalid, s.Errors, s.AvgLatency())
		for _, ev := range s.EventNames() {
			fmt.Fprintf(&b, "eval stats [%s]: %s=%d\n", s.Backend, ev, s.Events[ev])
		}
	}
	if p.cache != nil {
		c := p.cache.Snapshot()
		fmt.Fprintf(&b, "eval cache: hits=%d misses=%d coalesced=%d entries=%d\n",
			c.Hits, c.Misses, c.Coalesced, c.Entries)
	}
	if p.disk != nil {
		if s := p.disk.Store(); s != nil {
			d := s.Snapshot()
			mode := "rw"
			switch {
			case d.Degraded:
				mode = "degraded"
			case d.ReadOnly:
				mode = "ro"
			}
			fmt.Fprintf(&b, "eval diskcache [%s]: hits=%d misses=%d appends=%d entries=%d recovered=%d dropped=%dB mode=%s\n",
				s.Path(), d.Hits, d.Misses, d.Puts, d.Entries, d.Recovered, d.DroppedBytes, mode)
		} else {
			fmt.Fprintf(&b, "eval diskcache: disabled (%v)\n", p.disk.OpenErr())
		}
	}
	return b.String()
}
