package eval

import (
	"errors"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Outcome classifications shared by the trace middleware and the stats
// layer, so "what counts as invalid" is defined exactly once.
const (
	OutcomeOK      = "ok"      // evaluation succeeded
	OutcomeInvalid = "invalid" // error wrapping maestro.ErrInvalid: infeasible point
	OutcomeError   = "error"   // any other fault (timeout, panic, transient)
)

// Outcome classifies an evaluation result the way every counter and
// trace event reports it.
func Outcome(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, maestro.ErrInvalid):
		return OutcomeInvalid
	default:
		return OutcomeError
	}
}

// Trace is the trace middleware: it emits one obs.EvalDone event per
// call that reaches its inner evaluator, carrying the measured duration
// and the outcome classification. FromSpec places it directly above the
// backend, so — like the stats layer — it records true backend work:
// cache hits never reach it. It is observe-only and therefore
// name-transparent, exactly like cache and stats.
type Trace struct {
	inner core.Evaluator
	tr    obs.Tracer
	scope string // the wrapped evaluator's name, carried as Event.Scope
}

// WithTrace returns the trace middleware. A nil (or disabled) tracer
// makes the layer a pure pass-through with one branch of overhead. The
// inner evaluator's name at construction time is stamped on every
// eval.done/eval.batch event as its Scope, which is what lets tracestat
// attribute evaluation time per backend.
func WithTrace(tr obs.Tracer) Middleware {
	return func(inner core.Evaluator) core.Evaluator {
		return &Trace{inner: inner, tr: tr, scope: inner.Name()}
	}
}

// Name implements core.Evaluator; tracing never changes results, so it
// is transparent in the name (and the checkpoint fingerprint).
func (t *Trace) Name() string { return t.inner.Name() }

// Evaluate implements core.Evaluator.
func (t *Trace) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return t.EvaluateSpan(nil, a, s, l)
}

// EvaluateSpan implements core.SpanEvaluator: the eval.done event is
// parented under sp and follows sp's sink, so each spotlightd job sees
// its own evaluations even though the pipeline is shared.
func (t *Trace) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	if !obs.Active(sp, t.tr) {
		return t.inner.Evaluate(a, s, l)
	}
	start := obs.Now()
	cost, err := core.EvaluateSpan(t.inner, sp, a, s, l)
	sp.EmitTo(t.tr, obs.Event{
		Type:   obs.EvalDone,
		Scope:  t.scope,
		DurMS:  obs.MS(obs.Since(start)),
		Detail: Outcome(err),
	})
	return cost, err
}
