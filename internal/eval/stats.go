package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// Stats counts what its inner evaluator does: evaluations, outcomes by
// classification (ok / infeasible / other error), and cumulative
// latency. All counters are atomic, so the layer adds no lock to the
// hot path and is safe under any worker count. It also implements
// sim.EventSink, absorbing backend-specific path events (the hybrid
// backend's simulated/fallback decision) so backends keep no counters of
// their own.
//
// Placed directly above the backend (where FromSpec puts it), Stats
// measures true backend work — cache hits never reach it. Placed
// outermost it measures request traffic instead; both are valid, the
// spec order chooses.
type Stats struct {
	inner core.Evaluator

	evals     atomic.Int64
	ok        atomic.Int64
	invalid   atomic.Int64
	errs      atomic.Int64
	latencyNS atomic.Int64

	eventMu sync.Mutex
	events  map[string]int64

	tr obs.Tracer // forwards backend path events; nil disables
}

// WithStats returns the stats middleware.
func WithStats() Middleware {
	return func(inner core.Evaluator) core.Evaluator {
		return &Stats{inner: inner, events: make(map[string]int64)}
	}
}

// Name implements core.Evaluator. Stats never changes results, so it is
// transparent in the name (and the checkpoint fingerprint).
func (st *Stats) Name() string { return st.inner.Name() }

// Evaluate implements core.Evaluator, counting the call and its outcome.
// Latency is an observability counter: it is reported, never fed back
// into the search, and the wall-clock read goes through obs — the one
// package sanctioned to touch the clock.
func (st *Stats) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return st.EvaluateSpan(nil, a, s, l)
}

// EvaluateSpan implements core.SpanEvaluator. Stats itself emits no
// events on the evaluate path — it only counts — so the span is purely
// forwarded inward for the trace layer and backend to attribute.
func (st *Stats) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	start := obs.Now()
	cost, err := core.EvaluateSpan(st.inner, sp, a, s, l)
	st.latencyNS.Add(int64(obs.Since(start)))
	st.evals.Add(1)
	switch Outcome(err) {
	case OutcomeOK:
		st.ok.Add(1)
	case OutcomeInvalid:
		st.invalid.Add(1)
	default:
		st.errs.Add(1)
	}
	return cost, err
}

// Event implements sim.EventSink: named backend events are tallied into
// the snapshot's Events map and, when a tracer is attached, forwarded as
// backend.path trace events — counters and traces share this one entry
// point, so the two can never disagree about what the backend did.
func (st *Stats) Event(name string) {
	st.eventMu.Lock()
	st.events[name]++
	st.eventMu.Unlock()
	if obs.Enabled(st.tr) {
		st.tr.Emit(obs.Event{Type: obs.BackendPath, Detail: name})
	}
}

// SetTracer attaches a tracer that receives one backend.path event per
// backend event. Call it before evaluation begins (FromSpec does); the
// field is not synchronized against in-flight Evaluate calls.
func (st *Stats) SetTracer(tr obs.Tracer) { st.tr = tr }

// StatsSnapshot is a point-in-time view of the stats counters.
type StatsSnapshot struct {
	Backend string // name of the evaluator the layer wraps
	Evals   int64  // calls that reached the inner evaluator
	OK      int64  // successful evaluations
	Invalid int64  // errors wrapping maestro.ErrInvalid (infeasible points)
	Errors  int64  // any other error (faults, timeouts)
	Latency time.Duration
	Events  map[string]int64 // named backend events (e.g. sim's simulated/fallback)
}

// AvgLatency returns the mean per-call latency, or 0 before any call.
func (s StatsSnapshot) AvgLatency() time.Duration {
	if s.Evals == 0 {
		return 0
	}
	return s.Latency / time.Duration(s.Evals)
}

// EventNames returns the snapshot's event names, sorted for stable
// reporting.
func (s StatsSnapshot) EventNames() []string {
	names := make([]string, 0, len(s.Events))
	for name := range s.Events {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot compactly, including any backend events in
// sorted name order.
func (s StatsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: evals=%d ok=%d invalid=%d errors=%d avg=%s",
		s.Backend, s.Evals, s.OK, s.Invalid, s.Errors, s.AvgLatency())
	for _, name := range s.EventNames() {
		fmt.Fprintf(&b, " %s=%d", name, s.Events[name])
	}
	return b.String()
}

// Snapshot returns the current counters. The Events map is a copy.
func (st *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Backend: st.inner.Name(),
		Evals:   st.evals.Load(),
		OK:      st.ok.Load(),
		Invalid: st.invalid.Load(),
		Errors:  st.errs.Load(),
		Latency: time.Duration(st.latencyNS.Load()),
	}
	st.eventMu.Lock()
	if len(st.events) > 0 {
		snap.Events = make(map[string]int64, len(st.events))
		for k, v := range st.events {
			snap.Events[k] = v
		}
	}
	st.eventMu.Unlock()
	return snap
}
