package eval

import (
	"fmt"
	"strings"
	"time"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/resilience"
	"spotlight/internal/sim"
	"spotlight/internal/timeloop"
)

// The three bundled backends self-register, so eval.Open and -eval spec
// strings know them by name with no further wiring.
func init() {
	Register("maestro", func() (core.Evaluator, error) { return maestro.New(), nil })
	Register("timeloop", func() (core.Evaluator, error) { return timeloop.New(), nil })
	Register("sim", func() (core.Evaluator, error) { return sim.NewBackend(sim.Options{}), nil })
}

// GuardOptions configures the guard middleware — the resilience.Guard
// policy refitted as a pipeline layer. The zero value disables timeout
// and retries but keeps panic-to-error conversion, exactly like the
// underlying Guard.
type GuardOptions struct {
	Timeout time.Duration // bound on one evaluation; 0 disables
	Retries int           // retries for transient faults
	Backoff time.Duration // base retry backoff, doubling per attempt
	Seed    int64         // decorrelates backoff jitter across runs
	Tracer  obs.Tracer    // receives guard.retry/guard.timeout events; nil disables
}

// configured reports whether the options ask for more than the
// unconditional panic conversion.
func (g GuardOptions) configured() bool { return g.Timeout > 0 || g.Retries > 0 }

// WithGuard returns the fault-containment middleware: panic recovery, a
// per-call timeout, and seeded retry-with-backoff for transient faults.
// This is the only place in the tree that constructs a resilience.Guard;
// call sites compose it by putting "guard" in their pipeline spec.
func WithGuard(opts GuardOptions) Middleware {
	return func(inner core.Evaluator) core.Evaluator {
		return &resilience.Guard{
			Eval:    inner,
			Timeout: opts.Timeout,
			Retries: opts.Retries,
			Backoff: opts.Backoff,
			Seed:    opts.Seed,
			Tracer:  opts.Tracer,
		}
	}
}

// SpecOptions parameterizes FromSpec: the guard layer's policy and
// whether a stats layer is guaranteed.
type SpecOptions struct {
	// Guard configures any "guard" token in the spec. When Guard asks
	// for a timeout or retries and the spec has no "guard" token, a
	// guard layer is appended outermost — so a CLI's -eval-timeout
	// keeps working whatever the -eval spec says.
	Guard GuardOptions
	// EnsureStats inserts a stats layer directly above the backend when
	// the spec does not name one, so callers that report statistics
	// always have a layer to read.
	EnsureStats bool
	// Tracer, when set, threads trace emission through the whole
	// pipeline: a trace layer is inserted innermost (so, like stats, it
	// times true backend work — cache hits never reach it), the cache
	// and stats layers report their events to it, and any guard layer
	// reports retries and timeouts. Tracing is observe-only: a traced
	// pipeline returns bit-identical results to an untraced one.
	Tracer obs.Tracer
	// CacheDir, when non-empty, enables the persistent disk cache: a
	// diskcache layer is inserted directly above the backend (under any
	// memo cache) when the spec has no "diskcache" token, journaling to
	// <CacheDir>/<backend>.journal. This is how the CLIs' -cache-dir
	// flag works whatever the -eval spec says. A "diskcache(path=...)"
	// token in the spec overrides the derived location.
	CacheDir string
	// DiskFault injects write faults into the persistent cache journal
	// (test instrumentation; see resilience.FileFault).
	DiskFault *resilience.FileFault
}

// FromSpec builds a pipeline from a comma-separated spec string: the
// first element names the backend (see Backends), each following element
// names a middleware applied in order, innermost first. "sim,cache,guard"
// is the sim backend, memoized, with the guard outermost (so retried
// faults re-enter the cache, and cache hits skip the guard's machinery).
//
// Middleware tokens: "cache" (memo cache with single-flight dedup),
// "diskcache(path=FILE)" (crash-safe persistent cache journaling to
// FILE; bare "diskcache" derives the path from SpecOptions.CacheDir),
// "stats" (per-backend counters), "guard" (panic/timeout/retry policy).
// An unknown backend name returns *UnknownBackendError; an unknown
// middleware token returns a plain error naming the valid tokens.
func FromSpec(spec string, opts SpecOptions) (*Pipeline, error) {
	if opts.Guard.Tracer == nil {
		opts.Guard.Tracer = opts.Tracer // the pipeline tracer covers the guard too
	}
	parts := strings.Split(spec, ",")
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return nil, fmt.Errorf("eval: empty pipeline spec (want \"backend[,middleware...]\", e.g. %q)", "sim,cache,guard")
	}
	backend, err := Open(name)
	if err != nil {
		return nil, err
	}
	disk := func(path string) Middleware {
		return WithDisk(DiskOptions{
			Dir:         opts.CacheDir,
			Path:        path,
			Backend:     backend.Name(),
			Fingerprint: BackendFingerprint(backend),
			Tracer:      opts.Tracer,
			Fault:       opts.DiskFault,
		})
	}

	var mws []Middleware
	hasStats, hasGuard, hasDisk := false, false, false
	for _, tok := range parts[1:] {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "cache":
			mws = append(mws, WithCache())
		case tok == "stats":
			mws = append(mws, WithStats())
			hasStats = true
		case tok == "guard":
			mws = append(mws, WithGuard(opts.Guard))
			hasGuard = true
		case tok == "diskcache" || strings.HasPrefix(tok, "diskcache("):
			path, err := parseDiskToken(tok, spec)
			if err != nil {
				return nil, err
			}
			if path == "" && opts.CacheDir == "" {
				return nil, fmt.Errorf("eval: %q in spec %q needs a path (diskcache(path=FILE)) or a cache directory (-cache-dir)", tok, spec)
			}
			mws = append(mws, disk(path))
			hasDisk = true
		case tok == "":
			return nil, fmt.Errorf("eval: empty middleware token in spec %q", spec)
		default:
			return nil, fmt.Errorf("eval: unknown middleware %q in spec %q (middlewares: cache, diskcache(path=FILE), guard, stats)", tok, spec)
		}
	}
	if opts.CacheDir != "" && !hasDisk {
		mws = append([]Middleware{disk("")}, mws...)
	}
	if opts.EnsureStats && !hasStats {
		mws = append([]Middleware{WithStats()}, mws...)
	}
	if obs.Enabled(opts.Tracer) {
		mws = append([]Middleware{WithTrace(opts.Tracer)}, mws...)
	}
	if opts.Guard.configured() && !hasGuard {
		mws = append(mws, WithGuard(opts.Guard))
	}
	p := Chain(backend, mws...)
	p.spec = spec
	if obs.Enabled(opts.Tracer) {
		if p.cache != nil {
			p.cache.SetTracer(opts.Tracer)
		}
		if p.stats != nil {
			p.stats.SetTracer(opts.Tracer)
		}
	}
	return p, nil
}

// parseDiskToken extracts the optional path argument of a diskcache
// spec token: "" for bare "diskcache", FILE for "diskcache(path=FILE)".
func parseDiskToken(tok, spec string) (string, error) {
	if tok == "diskcache" {
		return "", nil
	}
	inner, closed := strings.CutSuffix(strings.TrimPrefix(tok, "diskcache("), ")")
	path, hasPath := strings.CutPrefix(inner, "path=")
	if !closed || !hasPath || path == "" {
		return "", fmt.Errorf("eval: malformed %q in spec %q (want diskcache(path=FILE))", tok, spec)
	}
	return path, nil
}

// MustFromSpec is FromSpec for static specs known to be valid; it panics
// on error. Intended for defaults and tests, not user input.
func MustFromSpec(spec string, opts SpecOptions) *Pipeline {
	p, err := FromSpec(spec, opts)
	if err != nil {
		panic(err)
	}
	return p
}
