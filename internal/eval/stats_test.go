package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/resilience"
)

// TestStatsEventConcurrent hammers Stats.Event from racing workers: the
// tallies must come out exact, and the race detector vouches for the
// lock discipline.
func TestStatsEventConcurrent(t *testing.T) {
	st := &Stats{inner: maestro.New(), events: make(map[string]int64)}
	const workers, per = 8, 500
	names := []string{"simulated", "fallback", "refit"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.Event(names[(w+i)%len(names)])
			}
		}(w)
	}
	wg.Wait()
	snap := st.Snapshot()
	var total int64
	for _, n := range snap.Events {
		total += n
	}
	if total != workers*per {
		t.Fatalf("event total = %d, want %d (events: %v)", total, workers*per, snap.Events)
	}
}

// TestStatsSnapshotStringIncludesEvents: the compact rendering must show
// backend events, in sorted name order, after the counters.
func TestStatsSnapshotStringIncludesEvents(t *testing.T) {
	s := StatsSnapshot{
		Backend: "sim", Evals: 3, OK: 2, Invalid: 1,
		Events: map[string]int64{"simulated": 2, "fallback": 1},
	}
	got := s.String()
	want := "sim: evals=3 ok=2 invalid=1 errors=0 avg=0s fallback=1 simulated=2"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if plain := (StatsSnapshot{Backend: "sim"}).String(); strings.Contains(plain, "  ") {
		t.Fatalf("event-free String() has stray spacing: %q", plain)
	}
}

// TestOutcomeClassification pins the shared classifier that stats
// counters and trace events both report through.
func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, OutcomeOK},
		{fmt.Errorf("wrapped: %w", maestro.ErrInvalid), OutcomeInvalid},
		{errors.New("boom"), OutcomeError},
		{resilience.ErrTimeout, OutcomeError},
	}
	for _, c := range cases {
		if got := Outcome(c.err); got != c.want {
			t.Errorf("Outcome(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestTraceTransparency is the property test for the trace layer: a
// stats+trace pipeline is name-transparent (so checkpoint fingerprints
// are unchanged) and returns bit-identical costs and errors to a bare
// backend over a population of random design points — while the tracer
// sees exactly one schema-valid eval.done event per call.
func TestTraceTransparency(t *testing.T) {
	rec := &recordingTracer{}
	traced, err := FromSpec("maestro,stats", SpecOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if got := traced.Name(); got != "maestro" {
		t.Fatalf("traced pipeline Name() = %q, want maestro (trace must be name-transparent)", got)
	}
	bare := maestro.New()
	trs := randomTriples(23, 60)
	for i, tr := range trs {
		wantCost, wantErr := bare.Evaluate(tr.a, tr.s, tr.l)
		gotCost, gotErr := traced.Evaluate(tr.a, tr.s, tr.l)
		if !costBitsEqual(gotCost, wantCost) {
			t.Fatalf("triple %d: traced cost %+v != bare cost %+v", i, gotCost, wantCost)
		}
		if (gotErr == nil) != (wantErr == nil) ||
			(gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("triple %d: traced err %v != bare err %v", i, gotErr, wantErr)
		}
	}
	if len(rec.events) != len(trs) {
		t.Fatalf("tracer saw %d events, want %d (one eval.done per call)", len(rec.events), len(trs))
	}
	for i, e := range rec.events {
		if e.Type != obs.EvalDone {
			t.Fatalf("event %d has type %q, want %q", i, e.Type, obs.EvalDone)
		}
		e.Seq = int64(i) + 1 // the recording tracer stamps no seq
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d fails schema: %v", i, err)
		}
	}
	snap := traced.Stats().Snapshot()
	if snap.Evals != int64(len(trs)) {
		t.Fatalf("stats saw %d evals, want %d", snap.Evals, len(trs))
	}
	// The shared classifier keeps the two observation paths consistent.
	var okEvents, invalidEvents int64
	for _, e := range rec.events {
		switch e.Detail {
		case OutcomeOK:
			okEvents++
		case OutcomeInvalid:
			invalidEvents++
		}
	}
	if okEvents != snap.OK || invalidEvents != snap.Invalid {
		t.Fatalf("trace outcomes ok=%d invalid=%d disagree with stats ok=%d invalid=%d",
			okEvents, invalidEvents, snap.OK, snap.Invalid)
	}
}

// recordingTracer captures events in memory for assertions.
type recordingTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recordingTracer) Enabled() bool { return true }

func (r *recordingTracer) Emit(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestFromSpecWiresTracerEverywhere: one SpecOptions.Tracer reaches the
// cache and stats layers, so cache.hit / cache.miss / backend events all
// land in the same stream.
func TestFromSpecWiresTracerEverywhere(t *testing.T) {
	rec := &recordingTracer{}
	p, err := FromSpec("maestro,cache,stats", SpecOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	trs := randomTriples(31, 8)
	tr := trs[0]
	p.Evaluate(tr.a, tr.s, tr.l)
	p.Evaluate(tr.a, tr.s, tr.l) // second call is a hit
	byType := map[obs.EventType]int{}
	for _, e := range rec.events {
		byType[e.Type]++
	}
	if byType[obs.CacheMiss] != 1 || byType[obs.CacheHit] != 1 || byType[obs.EvalDone] != 1 {
		t.Fatalf("event counts = %v, want one miss, one hit, one eval.done", byType)
	}
}
