package eval

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

func TestRegistryOpensBundledBackends(t *testing.T) {
	names := Backends()
	for _, want := range []string{"maestro", "sim", "timeloop"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
	for _, n := range names {
		ev, err := Open(n)
		if err != nil {
			t.Fatalf("Open(%q): %v", n, err)
		}
		if ev.Name() == "" {
			t.Fatalf("Open(%q): backend has empty name", n)
		}
	}
}

func TestOpenUnknownBackendTypedError(t *testing.T) {
	_, err := Open("no-such-backend")
	if err == nil {
		t.Fatal("Open of unknown backend succeeded")
	}
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("error is %T, want *UnknownBackendError", err)
	}
	if unknown.Name != "no-such-backend" {
		t.Fatalf("unknown.Name = %q", unknown.Name)
	}
	msg := err.Error()
	for _, want := range []string{"no-such-backend", "maestro", "sim", "timeloop"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

func TestRegisterRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	factory := func() (core.Evaluator, error) { return maestro.New(), nil }
	mustPanic("empty name", func() { Register("", factory) })
	mustPanic("nil factory", func() { Register("test-nil-factory", nil) })
	Register("test-dup", factory)
	mustPanic("duplicate", func() { Register("test-dup", factory) })
}

func TestNameTransparency(t *testing.T) {
	// Trajectory-neutral layers pass the backend name through, so the
	// checkpoint fingerprint of a default pipeline matches a bare backend.
	p := MustFromSpec("maestro,cache,stats", SpecOptions{})
	if got := p.Name(); got != "maestro" {
		t.Fatalf("cached+statsed pipeline Name() = %q, want maestro", got)
	}
	// The guard can change what the search observes under faults, so it
	// stays visible in the name.
	g := MustFromSpec("maestro,guard", SpecOptions{})
	if got := g.Name(); got != "guard(maestro)" {
		t.Fatalf("guarded pipeline Name() = %q, want guard(maestro)", got)
	}
}

func TestChainSkipsNilMiddleware(t *testing.T) {
	p := Chain(maestro.New(), nil, WithCache(), nil)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Cache() == nil {
		t.Fatal("cache layer not retained")
	}
}

func TestValidate(t *testing.T) {
	var nilPipe *Pipeline
	if err := nilPipe.Validate(); err == nil {
		t.Fatal("nil pipeline validated")
	}
	if err := (&Pipeline{}).Validate(); err == nil {
		t.Fatal("empty pipeline validated")
	}
	if err := MustFromSpec("sim,cache,guard", SpecOptions{}).Validate(); err != nil {
		t.Fatalf("valid pipeline rejected: %v", err)
	}
}

// validTriple searches randomly for a design point the backend accepts.
func validTriple(t *testing.T, ev core.Evaluator) (hw.Accel, sched.Schedule, workload.Layer) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	space, free := hw.EdgeSpace(), sched.Free()
	m, err := workload.ByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layers[0]
	for i := 0; i < 200; i++ {
		a := space.Random(rng)
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		if _, err := ev.Evaluate(a, s, l); err == nil {
			return a, s, l
		}
	}
	t.Fatal("no valid design point found in 200 random draws")
	return hw.Accel{}, sched.Schedule{}, workload.Layer{}
}

func TestChainWiresSimEventsIntoStats(t *testing.T) {
	p := MustFromSpec("sim,stats", SpecOptions{})
	a, s, l := validTriple(t, maestro.New())
	if _, err := p.Evaluate(a, s, l); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	snap := p.Stats().Snapshot()
	if snap.Evals != 1 || snap.OK != 1 {
		t.Fatalf("snapshot = %+v, want one ok eval", snap)
	}
	total := int64(0)
	for _, n := range []string{"simulated", "fallback"} {
		total += snap.Events[n]
	}
	if total != 1 {
		t.Fatalf("events = %v, want exactly one simulated/fallback event", snap.Events)
	}
}

func TestReport(t *testing.T) {
	p := MustFromSpec("maestro,cache", SpecOptions{EnsureStats: true})
	a, s, l := validTriple(t, maestro.New())
	p.Evaluate(a, s, l)
	p.Evaluate(a, s, l)
	rep := p.Report()
	for _, want := range []string{"eval stats [maestro]:", "evals=1", "eval cache:", "hits=1", "misses=1"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report %q missing %q", rep, want)
		}
	}
	if (&Pipeline{backend: maestro.New(), outer: maestro.New()}).Report() != "" {
		t.Fatal("bare pipeline should report nothing")
	}
}

// TestUncachedPipelineHistoryBitIdentical is the acceptance check that a
// pass-through pipeline perturbs nothing: the search History through an
// uncached pipeline is bit-identical to the bare backend's, at any
// worker count. (Elapsed is wall clock and inherently differs; the
// trajectory fields are compared bitwise.)
func TestUncachedPipelineHistoryBitIdentical(t *testing.T) {
	m, err := workload.ByName("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	m.Layers = m.Layers[:3]
	run := func(ev core.Evaluator, workers int) core.Result {
		res, err := core.Run(core.RunConfig{
			Models:    []workload.Model{m},
			HWSamples: 5,
			SWSamples: 5,
			Seed:      7,
			Eval:      ev,
			Workers:   workers,
		}, core.NewSpotlight())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	ref := run(maestro.New(), 1)
	for _, workers := range []int{1, 3} {
		got := run(MustFromSpec("maestro", SpecOptions{EnsureStats: true}), workers)
		if len(got.History) != len(ref.History) {
			t.Fatalf("workers=%d: history length %d != %d", workers, len(got.History), len(ref.History))
		}
		for i := range ref.History {
			r, g := ref.History[i], got.History[i]
			if g.Sample != r.Sample ||
				math.Float64bits(g.Value) != math.Float64bits(r.Value) ||
				math.Float64bits(g.BestSoFar) != math.Float64bits(r.BestSoFar) {
				t.Fatalf("workers=%d: history[%d] = %+v, want %+v", workers, i, g, r)
			}
		}
		if math.Float64bits(got.Best.Objective) != math.Float64bits(ref.Best.Objective) {
			t.Fatalf("workers=%d: best objective %v != %v", workers, got.Best.Objective, ref.Best.Objective)
		}
	}
}
