package eval

import (
	"io"
	"math/rand"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
)

// BenchmarkEvalCache measures the memo cache against the bare analytical
// backend: "bare" is the uncached cost of one evaluation, "miss" adds
// the cache's bookkeeping on the cold path, "hit" and "concurrent" are
// the warm path serially and under parallel load. CI runs this with
// -benchtime=1x as a smoke test; see DESIGN.md for recorded numbers.
func BenchmarkEvalCache(b *testing.B) {
	const keys = 256
	trs := randomTriples(9, keys)[:keys]

	b.Run("bare", func(b *testing.B) {
		backend, err := Open("maestro")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trs[i%keys]
			backend.Evaluate(tr.a, tr.s, tr.l)
		}
	})

	b.Run("miss", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		base := trs[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := base.l
			l.N = i + 1 // unique batch size per iteration: every call is cold
			pipe.Evaluate(base.a, base.s, l)
		}
	})

	b.Run("hit", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		for _, tr := range trs {
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
		// The warm path is pinned allocation-free: CanonicalKey builds
		// the key as a value (no serialization buffer to allocate) and a
		// hit touches nothing but the shard map.
		tr := trs[0]
		if avg := testing.AllocsPerRun(100, func() {
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}); avg != 0 {
			b.Fatalf("cache hit allocated %.1f objects/op, want 0", avg)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := trs[i%keys]
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
	})

	b.Run("batch-hit", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		// One search-round-shaped batch: 64 schedules against a single
		// (accelerator, layer) pair.
		rng := rand.New(rand.NewSource(3))
		base := trs[0]
		grp := batchGroup{a: base, ss: make([]sched.Schedule, 64)}
		for i := range grp.ss {
			grp.ss[i] = sched.Free().Random(rng, base.l, base.a.RFBytesPerPE(), base.a.L2Bytes())
		}
		pipe.EvaluateBatch(grp.a.a, grp.ss, grp.a.l)
		// A warm batch allocates only the two result slices the
		// interface hands back; keys, entry pointers, and flags live in
		// the pooled scratch.
		if avg := testing.AllocsPerRun(100, func() {
			pipe.EvaluateBatch(grp.a.a, grp.ss, grp.a.l)
		}); avg > 2 {
			b.Fatalf("warm batch allocated %.1f objects/op, want <= 2 (the result slices)", avg)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.EvaluateBatch(grp.a.a, grp.ss, grp.a.l)
		}
	})

	b.Run("concurrent", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		for _, tr := range trs {
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tr := trs[i%keys]
				i++
				pipe.Evaluate(tr.a, tr.s, tr.l)
			}
		})
	})
}

// BenchmarkTraceOverhead measures what tracing costs an evaluation
// pipeline. "untraced" is the baseline (no trace layer at all), "nil"
// has the layer with a nil tracer (the always-off configuration every
// production run without -trace pays: one branch), "nop" uses the
// disabled obs.Nop sink through the same branch, and "jsonl" streams
// every event to an io.Discard-backed JSONL sink — the full cost of
// -trace minus the disk. The acceptance bar is nil/nop within noise of
// untraced; CI runs this with -benchtime=1x as a smoke test.
func BenchmarkTraceOverhead(b *testing.B) {
	const keys = 256
	trs := randomTriples(9, keys)[:keys]
	run := func(b *testing.B, pipe *Pipeline) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trs[i%keys]
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, MustFromSpec("maestro", SpecOptions{}))
	})
	b.Run("nil", func(b *testing.B) {
		run(b, Chain(mustOpen(b, "maestro"), WithTrace(nil)))
	})
	b.Run("nop", func(b *testing.B) {
		run(b, Chain(mustOpen(b, "maestro"), WithTrace(obs.Nop)))
	})
	b.Run("jsonl", func(b *testing.B) {
		run(b, MustFromSpec("maestro", SpecOptions{Tracer: obs.NewJSONL(io.Discard)}))
	})
}

// mustOpen opens a registered backend or fails the benchmark.
func mustOpen(b *testing.B, name string) core.Evaluator {
	b.Helper()
	backend, err := Open(name)
	if err != nil {
		b.Fatal(err)
	}
	return backend
}
