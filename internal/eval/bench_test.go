package eval

import (
	"testing"
)

// BenchmarkEvalCache measures the memo cache against the bare analytical
// backend: "bare" is the uncached cost of one evaluation, "miss" adds
// the cache's bookkeeping on the cold path, "hit" and "concurrent" are
// the warm path serially and under parallel load. CI runs this with
// -benchtime=1x as a smoke test; see DESIGN.md for recorded numbers.
func BenchmarkEvalCache(b *testing.B) {
	const keys = 256
	trs := randomTriples(9, keys)[:keys]

	b.Run("bare", func(b *testing.B) {
		backend, err := Open("maestro")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trs[i%keys]
			backend.Evaluate(tr.a, tr.s, tr.l)
		}
	})

	b.Run("miss", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		base := trs[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := base.l
			l.N = i + 1 // unique batch size per iteration: every call is cold
			pipe.Evaluate(base.a, base.s, l)
		}
	})

	b.Run("hit", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		for _, tr := range trs {
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := trs[i%keys]
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
	})

	b.Run("concurrent", func(b *testing.B) {
		pipe := MustFromSpec("maestro,cache", SpecOptions{})
		for _, tr := range trs {
			pipe.Evaluate(tr.a, tr.s, tr.l)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tr := trs[i%keys]
				i++
				pipe.Evaluate(tr.a, tr.s, tr.l)
			}
		})
	})
}
