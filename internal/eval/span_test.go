package eval

import (
	"sync"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
)

// spanSink is an enabled tracer retaining every event, for asserting on
// where the middleware routes its emissions.
type spanSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *spanSink) Enabled() bool { return true }

func (c *spanSink) Emit(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *spanSink) byType(t obs.EventType) []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.Event
	for _, e := range c.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// TestSpanThreadingRoutesMiddlewareEvents proves the per-job telemetry
// mechanism end to end at the middleware layer: with a span threaded
// through EvaluateSpan, the trace and cache middleware parent their
// events under the span and follow the SPAN's sink — not the pipeline's
// construction-time tracer — which is what keeps per-job registries
// isolated even though spotlightd's eval pipeline is shared. Without a
// span, events fall back to the construction tracer, unparented.
func TestSpanThreadingRoutesMiddlewareEvents(t *testing.T) {
	fallback, jobSink := &spanSink{}, &spanSink{}
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{DelayCycles: 1}, nil }}
	pipe := Chain(fake, WithTrace(fallback), WithCache())
	tr := randomTriples(7, 2)

	// Under a span: every event routes to the span's sink, parented.
	sp := obs.StartSpan(jobSink, "trial")
	if _, err := core.EvaluateSpan(pipe, sp, tr[0].a, tr[0].s, tr[0].l); err != nil {
		t.Fatal(err)
	}
	if _, err := core.EvaluateSpan(pipe, sp, tr[0].a, tr[0].s, tr[0].l); err != nil { // memo hit
		t.Fatal(err)
	}
	sp.End()
	if n := len(fallback.events); n != 0 {
		t.Fatalf("span-threaded events leaked to the construction tracer: %+v", fallback.events)
	}
	done := jobSink.byType(obs.EvalDone)
	if len(done) != 1 {
		t.Fatalf("span sink saw %d eval.done, want 1 (the memo hit never reaches the backend)", len(done))
	}
	if done[0].Parent != sp.ID() {
		t.Errorf("eval.done parent = %d, want span id %d", done[0].Parent, sp.ID())
	}
	if done[0].Scope == "" || done[0].DurMS < 0 {
		t.Errorf("eval.done scope/duration not stamped: %+v", done[0])
	}
	hits := jobSink.byType(obs.CacheHit)
	if len(hits) != 1 || hits[0].Parent != sp.ID() {
		t.Fatalf("cache.hit not routed under the span: %+v", hits)
	}

	// Without a span: the construction tracer gets the events, unparented.
	if _, err := pipe.Evaluate(tr[2].a, tr[2].s, tr[2].l); err != nil {
		t.Fatal(err)
	}
	done = fallback.byType(obs.EvalDone)
	if len(done) != 1 || done[0].Parent != 0 {
		t.Fatalf("fallback path wrong: %+v", fallback.events)
	}

	// The fan-out is observe-only: the backend ran once per distinct
	// point however the events were routed.
	if got := fake.calls.Load(); got != 2 {
		t.Errorf("backend ran %d times, want 2", got)
	}
}
