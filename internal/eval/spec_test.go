package eval

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFromSpecUnknownBackend(t *testing.T) {
	_, err := FromSpec("no-such-backend,cache", SpecOptions{})
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v (%T), want *UnknownBackendError", err, err)
	}
}

func TestFromSpecRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{"", " ", "maestro,", "maestro,,cache", "maestro,turbo"} {
		if _, err := FromSpec(spec, SpecOptions{}); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
	if _, err := FromSpec("maestro,turbo", SpecOptions{}); !strings.Contains(err.Error(), "cache, diskcache(path=FILE), guard, stats") {
		t.Fatalf("unknown-middleware error %v does not list the valid tokens", err)
	}
}

func TestFromSpecLayerSelection(t *testing.T) {
	p := MustFromSpec("sim,cache,guard", SpecOptions{})
	if p.Cache() == nil {
		t.Fatal("cache layer missing")
	}
	if p.Stats() != nil {
		t.Fatal("stats layer present without EnsureStats or a stats token")
	}
	if got := p.Name(); got != "guard(sim-hybrid)" {
		t.Fatalf("Name() = %q, want guard(sim-hybrid)", got)
	}
	if p.Spec() != "sim,cache,guard" {
		t.Fatalf("Spec() = %q", p.Spec())
	}
}

func TestFromSpecEnsureStats(t *testing.T) {
	p := MustFromSpec("maestro,cache", SpecOptions{EnsureStats: true})
	if p.Stats() == nil {
		t.Fatal("EnsureStats did not add a stats layer")
	}
	// The implicit stats layer sits directly above the backend: it
	// reports the backend's name, and cache hits never reach it.
	if got := p.Stats().Snapshot().Backend; got != "maestro" {
		t.Fatalf("stats wraps %q, want the backend", got)
	}
}

func TestFromSpecGuardAutoAppend(t *testing.T) {
	opts := SpecOptions{Guard: GuardOptions{Timeout: time.Second}}
	// A configured guard policy is honored even when the spec omits it...
	p := MustFromSpec("maestro", opts)
	if got := p.Name(); got != "guard(maestro)" {
		t.Fatalf("Name() = %q, want auto-appended guard", got)
	}
	// ...and not doubled when the spec already has one.
	p = MustFromSpec("maestro,guard", opts)
	if got := p.Name(); got != "guard(maestro)" {
		t.Fatalf("Name() = %q, guard appears doubled", got)
	}
	// An unconfigured policy adds nothing.
	p = MustFromSpec("maestro", SpecOptions{})
	if got := p.Name(); got != "maestro" {
		t.Fatalf("Name() = %q, want bare backend", got)
	}
}

func TestMustFromSpecPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromSpec did not panic")
		}
	}()
	MustFromSpec("no-such-backend", SpecOptions{})
}
