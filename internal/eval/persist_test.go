package eval

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/resilience"
	"spotlight/internal/workload"
)

func TestPersistCodecRoundTrip(t *testing.T) {
	// Every float round-trips bitwise, non-finite values included.
	cost := maestro.Cost{
		DelayCycles: math.Inf(1),
		EnergyNJ:    math.NaN(),
		AreaMM2:     -0.0,
		Utilization: 0.87,
	}
	val := encodeResult(cost, nil)
	if val == nil {
		t.Fatal("ok result not persistable")
	}
	got, verdict, ok := decodeResult(val)
	if !ok || verdict != nil {
		t.Fatalf("decodeResult = %v, %v", verdict, ok)
	}
	for i, pair := range [][2]float64{
		{got.DelayCycles, cost.DelayCycles},
		{got.EnergyNJ, cost.EnergyNJ},
		{got.AreaMM2, cost.AreaMM2},
		{got.Utilization, cost.Utilization},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("field %d: bits %x != %x", i, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
		}
	}

	// An infeasibility verdict keeps its exact wording and still
	// classifies as invalid for every outcome-aware layer.
	inv := fmt.Errorf("PE array underutilized: %w", maestro.ErrInvalid)
	val = encodeResult(maestro.Cost{}, inv)
	if val == nil {
		t.Fatal("invalid verdict not persistable")
	}
	_, verdict, ok = decodeResult(val)
	if !ok || verdict == nil {
		t.Fatalf("decodeResult = %v, %v", verdict, ok)
	}
	if verdict.Error() != inv.Error() {
		t.Fatalf("verdict text %q != %q", verdict.Error(), inv.Error())
	}
	if !errors.Is(verdict, maestro.ErrInvalid) || Outcome(verdict) != OutcomeInvalid {
		t.Fatalf("decoded verdict classifies as %q", Outcome(verdict))
	}

	// Transient faults are never persisted — the cache contract.
	if v := encodeResult(maestro.Cost{}, errors.New("timeout")); v != nil {
		t.Fatalf("transient fault persisted as %x", v)
	}
}

func TestPersistCodecRejectsCorruptValues(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{},
		{persistOK},                // truncated payload
		{persistOK, 1, 2, 3},       // short of costFloats
		{42, 0, 0},                 // unknown outcome byte (a future codec)
		make([]byte, 8*costFloats), // reads as persistOK but one byte short
	} {
		if _, _, ok := decodeResult(b); ok {
			t.Fatalf("decodeResult(%x) accepted a corrupt value", b)
		}
	}
}

// TestCostFloatsMatchesStruct pins the codec to maestro.Cost by
// reflection: every field must be a float64 and the count must equal
// costFloats, so adding a Cost field fails here until the codec (and
// the model fingerprints) are updated.
func TestCostFloatsMatchesStruct(t *testing.T) {
	rt := reflect.TypeOf(maestro.Cost{})
	if rt.NumField() != costFloats {
		t.Fatalf("maestro.Cost has %d fields, codec persists %d: extend encodeCost/decodeCost and bump the backend cost-model fingerprints", rt.NumField(), costFloats)
	}
	for i := 0; i < rt.NumField(); i++ {
		if f := rt.Field(i); f.Type.Kind() != reflect.Float64 {
			t.Fatalf("maestro.Cost.%s is %s, codec assumes float64", f.Name, f.Type)
		}
	}

	// Every field round-trips: give each a distinct value via reflection
	// and require the decoded struct to match exactly. A field missing
	// from encodeCost or decodeCost shows up as a zero here.
	var cost maestro.Cost
	cv := reflect.ValueOf(&cost).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetFloat(float64(i + 1))
	}
	got := decodeCost(encodeCost(nil, cost))
	if got != cost {
		t.Fatalf("decode(encode(cost)) = %+v, want %+v", got, cost)
	}
}

func TestDiskHitSkipsInner(t *testing.T) {
	a, s, l := validTriple(t, maestro.New())
	want, _ := maestro.New().Evaluate(a, s, l)
	path := filepath.Join(t.TempDir(), "maestro.journal")

	inner := &fakeEval{fn: func() (maestro.Cost, error) { return want, nil }}
	mw := WithDisk(DiskOptions{Path: path, Backend: "maestro", Fingerprint: "fp-v1"})
	d := mw(inner).(*Disk)
	if d.OpenErr() != nil {
		t.Fatalf("OpenErr: %v", d.OpenErr())
	}
	if _, err := d.Evaluate(a, s, l); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Evaluate(a, s, l); err != nil {
		t.Fatal(err)
	}
	if n := inner.calls.Load(); n != 1 {
		t.Fatalf("inner saw %d calls, want 1 (second was a disk hit)", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh layer over the same journal starts warm.
	inner2 := &fakeEval{fn: func() (maestro.Cost, error) { return want, nil }}
	d2 := mw(inner2).(*Disk)
	defer d2.Close()
	got, err := d2.Evaluate(a, s, l)
	if err != nil {
		t.Fatal(err)
	}
	if inner2.calls.Load() != 0 {
		t.Fatal("warm journal did not serve the hit")
	}
	if math.Float64bits(got.DelayCycles) != math.Float64bits(want.DelayCycles) ||
		math.Float64bits(got.EnergyNJ) != math.Float64bits(want.EnergyNJ) {
		t.Fatalf("warm cost %+v != %+v", got, want)
	}
}

// smallRun is the shared fig6-shaped search for the persistence bit-
// identity tests, mirroring TestUncachedPipelineHistoryBitIdentical.
func smallRun(t *testing.T, ev core.Evaluator, workers int) core.Result {
	t.Helper()
	m, err := workload.ByName("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	m.Layers = m.Layers[:3]
	res, err := core.Run(core.RunConfig{
		Models:    []workload.Model{m},
		HWSamples: 5,
		SWSamples: 5,
		Seed:      7,
		Eval:      ev,
		Workers:   workers,
	}, core.NewSpotlight())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func requireSameHistory(t *testing.T, label string, ref, got core.Result) {
	t.Helper()
	if len(got.History) != len(ref.History) {
		t.Fatalf("%s: history length %d != %d", label, len(got.History), len(ref.History))
	}
	for i := range ref.History {
		r, g := ref.History[i], got.History[i]
		if g.Sample != r.Sample ||
			math.Float64bits(g.Value) != math.Float64bits(r.Value) ||
			math.Float64bits(g.BestSoFar) != math.Float64bits(r.BestSoFar) {
			t.Fatalf("%s: history[%d] = %+v, want %+v", label, i, g, r)
		}
	}
	if math.Float64bits(got.Best.Objective) != math.Float64bits(ref.Best.Objective) {
		t.Fatalf("%s: best objective %v != %v", label, got.Best.Objective, ref.Best.Objective)
	}
}

// TestPersistentCacheHistoryBitIdentical is the tentpole acceptance
// test: cold, warm, and crash-recovered runs over one cache directory
// produce a History bit-identical to the bare backend's, at any worker
// count — the disk layer accelerates, it never perturbs.
func TestPersistentCacheHistoryBitIdentical(t *testing.T) {
	ref := smallRun(t, maestro.New(), 1)

	for _, workers := range []int{1, 8} {
		dir := t.TempDir()
		mk := func() *Pipeline {
			return MustFromSpec("maestro,cache", SpecOptions{EnsureStats: true, CacheDir: dir})
		}

		cold := mk()
		requireSameHistory(t, fmt.Sprintf("cold/workers=%d", workers), ref, smallRun(t, cold, workers))
		coldEvals := cold.Stats().Snapshot().Evals
		if coldEvals == 0 {
			t.Fatal("cold run did no backend work")
		}
		if snap := cold.Disk().Store().Snapshot(); snap.Puts == 0 {
			t.Fatalf("cold run persisted nothing: %+v", snap)
		}
		if err := cold.Close(); err != nil {
			t.Fatalf("cold Close: %v", err)
		}

		warm := mk()
		requireSameHistory(t, fmt.Sprintf("warm/workers=%d", workers), ref, smallRun(t, warm, workers))
		if n := warm.Stats().Snapshot().Evals; n != 0 {
			t.Fatalf("warm run reached the backend %d times, want 0", n)
		}
		snap := warm.Disk().Store().Snapshot()
		if snap.Hits == 0 {
			t.Fatalf("warm run had no disk hits: %+v", snap)
		}
		// Acceptance: the warm hit rate is no worse than the in-memory
		// cache's on the identical repeated run — every unique evaluation
		// is served from disk, so misses stay at zero.
		if snap.Misses != 0 {
			t.Fatalf("warm run missed %d times, want 0: %+v", snap.Misses, snap)
		}
		if err := warm.Close(); err != nil {
			t.Fatalf("warm Close: %v", err)
		}

		// Crash: tear the last record off the journal. The recovered run
		// must still be bit-identical — the torn entry is recomputed.
		journal := filepath.Join(dir, "maestro.journal")
		info, err := os.Stat(journal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(journal, info.Size()-7); err != nil {
			t.Fatal(err)
		}
		rec := mk()
		recSnap := rec.Disk().Store().Snapshot()
		if recSnap.DroppedBytes == 0 || recSnap.Recovered == 0 {
			t.Fatalf("torn journal not detected: %+v", recSnap)
		}
		requireSameHistory(t, fmt.Sprintf("recovered/workers=%d", workers), ref, smallRun(t, rec, workers))
		if n := rec.Stats().Snapshot().Evals; n == 0 || n >= coldEvals {
			t.Fatalf("recovered run did %d backend evals, want >0 and < cold's %d", n, coldEvals)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("recovered Close: %v", err)
		}
	}
}

// TestPersistDegradationObserveOnly injects a byte-budget write fault
// under a full search: the search must complete bit-identically on the
// in-memory path with exactly one degradation event in the trace.
func TestPersistDegradationObserveOnly(t *testing.T) {
	ref := smallRun(t, maestro.New(), 1)
	rec := &recordingTracer{}
	p := MustFromSpec("maestro,cache", SpecOptions{
		EnsureStats: true,
		CacheDir:    t.TempDir(),
		DiskFault:   resilience.NewFileFault(512, errors.New("injected ENOSPC")),
		Tracer:      rec,
	})
	defer p.Close()
	requireSameHistory(t, "degraded", ref, smallRun(t, p, 3))
	if snap := p.Disk().Store().Snapshot(); !snap.Degraded {
		t.Fatalf("fault never degraded the store: %+v", snap)
	}

	degraded := 0
	for _, e := range rec.events {
		if e.Type == obs.CachePersist && strings.HasPrefix(e.Detail, "degraded") {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("saw %d degradation events, want exactly 1", degraded)
	}
}

// TestPersistOpenFailurePassThrough: an unusable cache path (its parent
// is a file) must not fail pipeline construction or evaluation — one
// degradation event, then pure pass-through.
func TestPersistOpenFailurePassThrough(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := &recordingTracer{}
	p, err := FromSpec("maestro,cache", SpecOptions{
		CacheDir: filepath.Join(blocker, "cache"),
		Tracer:   rec,
	})
	if err != nil {
		t.Fatalf("FromSpec failed on an unusable cache dir: %v", err)
	}
	defer p.Close()
	if p.Disk() == nil || p.Disk().OpenErr() == nil {
		t.Fatal("open failure not recorded on the layer")
	}
	a, s, l := validTriple(t, maestro.New())
	if _, err := p.Evaluate(a, s, l); err != nil {
		t.Fatalf("pass-through Evaluate: %v", err)
	}
	degraded := 0
	for _, e := range rec.events {
		if e.Type == obs.CachePersist && strings.HasPrefix(e.Detail, "degraded") {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("saw %d degradation events, want exactly 1", degraded)
	}
}

// TestFromSpecDiskToken covers the explicit diskcache(path=...) spec
// form and its error cases.
func TestFromSpecDiskToken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "explicit.journal")
	p := MustFromSpec("maestro,diskcache(path="+path+"),cache", SpecOptions{})
	defer p.Close()
	if p.Disk() == nil || p.Disk().Store() == nil {
		t.Fatal("diskcache token did not build a store")
	}
	if got := p.Disk().Store().Path(); got != path {
		t.Fatalf("journal path %q, want %q", got, path)
	}
	if p.Name() != "maestro" {
		t.Fatalf("Name() = %q: the disk layer must be name-transparent", p.Name())
	}

	if _, err := FromSpec("maestro,diskcache", SpecOptions{}); err == nil {
		t.Fatal("bare diskcache without CacheDir accepted")
	}
	if _, err := FromSpec("maestro,diskcache(path=)", SpecOptions{}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := FromSpec("maestro,diskcache(file=x)", SpecOptions{}); err == nil {
		t.Fatal("malformed token accepted")
	}

	// A bare diskcache token with CacheDir set resolves to the derived
	// per-backend journal.
	dir := t.TempDir()
	p2 := MustFromSpec("maestro,diskcache,cache", SpecOptions{CacheDir: dir})
	defer p2.Close()
	if got, want := p2.Disk().Store().Path(), filepath.Join(dir, "maestro.journal"); got != want {
		t.Fatalf("derived journal path %q, want %q", got, want)
	}
}
