// Package diskcache is a crash-safe, append-only journaled key/value
// store: the persistence layer under internal/eval's disk-cache
// middleware. It stores opaque values under 32-byte content-addressed
// keys (the SHA-256 record keys eval computes over the canonical
// evaluation inputs) in a single journal file, and is built around three
// robustness rules:
//
//   - Every record is independently verifiable: length-framed and
//     checksummed (CRC32-Castagnoli), so a torn append — a crash,
//     SIGKILL, or full disk partway through a write — is detected by
//     scanning, never by trusting.
//   - Recovery is truncation, not failure: Open rebuilds the in-memory
//     index by scanning the journal and cuts the file back to the last
//     complete record. Complete records always survive; a torn or
//     corrupt tail costs only the entries it contained, which a cache
//     can simply recompute.
//   - Degradation is strictly observe-only: any I/O error after open
//     (ENOSPC, EIO, a revoked permission) flips the store into a sticky
//     degraded mode that silently drops further appends. Reads keep
//     serving the already-loaded index, the OnDegrade hook fires exactly
//     once, and no error ever propagates into the evaluation path.
//
// One process owns the journal at a time: Open takes a non-blocking
// flock on the file, and a second opener falls back to a read-only
// snapshot of the complete records present at its open. The file starts
// with a fingerprint header naming the cost-model version that produced
// the entries; Open with a different fingerprint wipes the store, which
// is how stale results are invalidated when the model changes.
package diskcache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"spotlight/internal/resilience"
)

// Journal geometry. A record on disk is
//
//	[4B payload length][4B CRC32C(payload)][payload]
//
// where payload = 32-byte key ‖ value. The file opens with a header:
//
//	[8B magic "SPOTJRN1"][4B format version][4B fingerprint length]
//	[fingerprint bytes][4B CRC32C(everything before it)]
//
// All integers are little-endian.
const (
	magic         = "SPOTJRN1"
	formatVersion = 1
	recordHdrLen  = 8 // length + checksum framing
	// maxValueLen bounds one record's value. Cache values are a few
	// hundred bytes; anything larger in a length field means the field
	// itself is corrupt, so the scanner treats it as a torn tail.
	maxValueLen = 1 << 20
)

// Key is the 32-byte content-addressed record identity.
type Key [32]byte

// castagnoli is the CRC32C table shared by every checksum in the file.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Path is the journal file; parent directories are created.
	Path string
	// Fingerprint identifies the producer of the cached values
	// (backend name + cost-model version). A journal written under a
	// different fingerprint is wiped at open.
	Fingerprint string
	// OnDegrade, when non-nil, is called exactly once if the store
	// degrades (any post-open I/O error). It is invoked with the store's
	// mutex held; do not call back into the store.
	OnDegrade func(error)
	// Fault, when non-nil, injects write faults on the journal's append
	// path (see resilience.FileFault). Test instrumentation: the
	// production callers leave it nil.
	Fault *resilience.FileFault
}

// Store is an open journal with its in-memory index. All methods are
// safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	w     io.Writer // f behind the optional fault injector
	index map[Key][]byte
	size  int64 // end offset of the last complete record

	path        string
	fingerprint string
	readOnly    bool
	degraded    bool
	onDegrade   func(error)

	hits, misses, puts int64
	recovered          int   // complete records loaded at open
	droppedBytes       int64 // torn/corrupt tail truncated at open
	invalidated        bool  // fingerprint mismatch wiped a prior store
}

// Snapshot is a point-in-time view of the store's counters and state.
type Snapshot struct {
	Hits, Misses, Puts int64
	Entries            int
	Recovered          int   // complete records recovered at open
	DroppedBytes       int64 // torn/corrupt bytes truncated at open
	ReadOnly           bool  // lock was held elsewhere: serving a snapshot
	Degraded           bool  // an I/O error disabled persistence
	Invalidated        bool  // a stale store (fingerprint mismatch) was wiped
}

// Open opens (creating if needed) the journal at opts.Path, replays it
// into memory, and truncates any torn tail. It returns an error only
// when no usable store can be produced at all (the path is unwritable
// AND unreadable); every recoverable condition — torn tail, corrupt
// header, stale fingerprint, lock held by another process — resolves to
// an open store in the appropriate mode.
func Open(opts Options) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("diskcache: empty journal path")
	}
	if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: creating cache directory: %w", err)
	}
	s := &Store{
		path:        opts.Path,
		fingerprint: opts.Fingerprint,
		onDegrade:   opts.OnDegrade,
		index:       map[Key][]byte{},
	}

	f, err := os.OpenFile(opts.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		// Unwritable (read-only filesystem, permissions): fall back to a
		// read-only snapshot if the file at least opens for reading.
		rf, rerr := os.Open(opts.Path)
		if rerr != nil {
			return nil, fmt.Errorf("diskcache: opening journal: %w", err)
		}
		f, s.readOnly = rf, true
	}
	s.f = f
	s.w = opts.Fault.Writer(f)

	if !s.readOnly {
		locked, lerr := flockExclusive(f)
		if lerr != nil {
			closeDiscard(f)
			return nil, fmt.Errorf("diskcache: locking journal: %w", lerr)
		}
		if !locked { // another process is the writer: snapshot mode
			s.readOnly = true
		}
	}

	if err := s.load(); err != nil {
		closeDiscard(f)
		return nil, err
	}
	return s, nil
}

// load replays the journal: header check (writing or rewriting it as
// needed), then record scan with truncation at the first torn or
// corrupt record.
func (s *Store) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("diskcache: stat journal: %w", err)
	}
	hdr := headerBytes(s.fingerprint)

	fresh := info.Size() == 0
	if !fresh {
		ok, err := s.checkHeader()
		if err != nil {
			return err
		}
		if !ok {
			// Corrupt header or stale fingerprint: the entries are
			// unusable. A writer wipes and starts over; a reader serves
			// an empty snapshot.
			s.invalidated = true
			fresh = true
			if !s.readOnly {
				if err := s.f.Truncate(0); err != nil {
					return fmt.Errorf("diskcache: wiping stale journal: %w", err)
				}
			}
		}
	}
	if fresh {
		s.size = int64(len(hdr))
		if s.readOnly {
			return nil
		}
		if _, err := s.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("diskcache: seeking journal: %w", err)
		}
		if _, err := s.w.Write(hdr); err != nil {
			// Cannot even write the header: open degraded, in-memory only.
			s.degrade(err)
			return nil
		}
		return nil
	}
	return s.scan(int64(len(hdr)))
}

// headerBytes renders the journal header for a fingerprint.
func headerBytes(fingerprint string) []byte {
	b := make([]byte, 0, len(magic)+12+len(fingerprint))
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, formatVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fingerprint)))
	b = append(b, fingerprint...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// checkHeader reports whether the file starts with a valid header for
// this store's fingerprint. I/O errors are real errors; a short,
// corrupt, or mismatched header is (false, nil) — grounds for
// invalidation, not failure.
func (s *Store) checkHeader() (bool, error) {
	want := headerBytes(s.fingerprint)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(len(got))), got); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, fmt.Errorf("diskcache: reading journal header: %w", err)
	}
	for i := range want {
		if got[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

// scan replays records from off, indexing every complete one and
// truncating the journal at the first torn or corrupt record.
func (s *Store) scan(off int64) error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("diskcache: stat journal: %w", err)
	}
	fileSize := info.Size()
	r := io.NewSectionReader(s.f, off, fileSize-off)

	good := off
	var frame [recordHdrLen]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			break // clean EOF or torn frame: either way, stop at `good`
		}
		payloadLen := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if payloadLen < 32 || payloadLen > 32+maxValueLen {
			break // corrupt length field
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot or a torn record overwritten by a later open
		}
		var k Key
		copy(k[:], payload[:32])
		s.index[k] = payload[32:]
		s.recovered++
		good += recordHdrLen + int64(payloadLen)
	}
	s.size = good
	s.droppedBytes = fileSize - good
	if s.droppedBytes > 0 && !s.readOnly {
		if err := s.f.Truncate(good); err != nil {
			// Cannot repair in place; serve what was recovered and stop
			// appending, otherwise new records would land after garbage.
			s.degrade(err)
			return nil
		}
	}
	if !s.readOnly {
		if _, err := s.f.Seek(good, io.SeekStart); err != nil {
			s.degrade(err)
		}
	}
	return nil
}

// Get returns the value stored under key. The returned slice is the
// index's backing memory: callers must treat it as read-only.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return v, ok
}

// Put appends a record and indexes it. In read-only or degraded mode
// the index is still updated (so the running process keeps its result)
// but nothing is written. Append errors never propagate: they degrade
// the store — truncating any partial record so the on-disk journal
// stays a clean prefix of complete records — and the evaluation that
// produced the value continues unaffected.
func (s *Store) Put(key Key, value []byte) {
	if len(value) > maxValueLen {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[key]; dup {
		// First write wins, matching the memo cache above this layer; a
		// duplicate must not reach the journal either, or replay (which
		// indexes in file order) would resurrect it on reopen.
		return
	}
	s.index[key] = append([]byte(nil), value...)
	if s.readOnly || s.degraded {
		return
	}
	payloadLen := 32 + len(value)
	rec := make([]byte, 0, recordHdrLen+payloadLen)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(payloadLen))
	rec = append(rec, 0, 0, 0, 0) // checksum patched below
	rec = append(rec, key[:]...)
	rec = append(rec, value...)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[recordHdrLen:], castagnoli))

	if _, err := s.w.Write(rec); err != nil {
		// A partial append may be on disk. Cut back to the last complete
		// record so a same-process reopen is not needed to stay clean;
		// if even the truncate fails, the next Open's scan repairs it.
		if terr := s.f.Truncate(s.size); terr == nil {
			if _, serr := s.f.Seek(s.size, io.SeekStart); serr != nil {
				s.degrade(err)
				return
			}
		}
		s.degrade(err)
		return
	}
	s.size += int64(len(rec))
	s.puts++
}

// degrade flips the sticky degraded state and fires OnDegrade once.
// Callers hold s.mu.
func (s *Store) degrade(err error) {
	if s.degraded {
		return
	}
	s.degraded = true
	if s.onDegrade != nil {
		s.onDegrade(err)
	}
}

// Sync flushes appended records to stable storage. A sync failure
// degrades the store like any other I/O error and is not returned: by
// the degradation contract the caller's work is never disturbed.
func (s *Store) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly || s.degraded {
		return
	}
	if err := s.f.Sync(); err != nil {
		s.degrade(err)
	}
}

// Close syncs and closes the journal, releasing the writer lock. The
// returned error reports a failed flush — data that may not have
// reached disk — which callers surface but never fail on.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if !s.readOnly && !s.degraded {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Path returns the journal file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Snapshot returns the current counters and mode flags.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Hits:         s.hits,
		Misses:       s.misses,
		Puts:         s.puts,
		Entries:      len(s.index),
		Recovered:    s.recovered,
		DroppedBytes: s.droppedBytes,
		ReadOnly:     s.readOnly,
		Degraded:     s.degraded,
		Invalidated:  s.invalidated,
	}
}

// closeDiscard closes f on an abandoned open, where nothing was written
// and the close error carries no information.
func closeDiscard(f *os.File) {
	_ = f.Close() //lint:allow closecheck(abandoned open: nothing was written, the close error carries no data)
}
