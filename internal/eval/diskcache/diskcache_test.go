package diskcache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"spotlight/internal/resilience"
)

func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = 0xA5
	return k
}

func testValue(i int) []byte {
	return []byte(fmt.Sprintf("value-%d-%s", i, "payload"))
}

func openT(t *testing.T, path, fp string) *Store {
	t.Helper()
	s, err := Open(Options{Path: path, Fingerprint: fp})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

func TestPutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache", "test.journal")
	s := openT(t, path, "fp-v1")
	for i := 0; i < 20; i++ {
		s.Put(testKey(i), testValue(i))
	}
	if got, ok := s.Get(testKey(7)); !ok || !bytes.Equal(got, testValue(7)) {
		t.Fatalf("Get(7) = %q, %v", got, ok)
	}
	if _, ok := s.Get(testKey(99)); ok {
		t.Fatal("Get(99) hit on a never-stored key")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, path, "fp-v1")
	defer r.Close()
	if r.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		if got, ok := r.Get(testKey(i)); !ok || !bytes.Equal(got, testValue(i)) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, got, ok)
		}
	}
	snap := r.Snapshot()
	if snap.Recovered != 20 || snap.DroppedBytes != 0 || snap.ReadOnly || snap.Degraded || snap.Invalidated {
		t.Fatalf("reopened snapshot = %+v", snap)
	}
}

// TestCrashRecoveryAtEveryOffset is the crash-injection property test:
// whatever byte offset a crash truncates the journal at, reopening
// recovers exactly the records that were completely written before that
// offset, truncates the torn tail, and accepts new appends.
func TestCrashRecoveryAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.journal")
	s := openT(t, ref, "fp-v1")
	const n = 12
	// recordEnds[i] = journal size after i complete records.
	var recordEnds []int64
	recordEnds = append(recordEnds, journalEnd(s))
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testValue(i))
		recordEnds = append(recordEnds, journalEnd(s))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(whole)) != recordEnds[n] {
		t.Fatalf("journal size %d, want %d", len(whole), recordEnds[n])
	}

	completeBefore := func(off int64) int {
		k := 0
		for k < n && recordEnds[k+1] <= off {
			k++
		}
		return k
	}

	rng := rand.New(rand.NewSource(1))
	offsets := []int64{0, 1, recordEnds[0] - 1, recordEnds[0], recordEnds[0] + 1,
		recordEnds[n] - 1, recordEnds[n]}
	for i := 0; i < 60; i++ {
		offsets = append(offsets, rng.Int63n(int64(len(whole))+1))
	}
	for _, off := range offsets {
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.journal", off))
		if err := os.WriteFile(path, whole[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		r := openT(t, path, "fp-v1")
		want := completeBefore(off)
		if r.Len() != want {
			t.Fatalf("off=%d: recovered %d records, want %d", off, r.Len(), want)
		}
		for i := 0; i < want; i++ {
			if got, ok := r.Get(testKey(i)); !ok || !bytes.Equal(got, testValue(i)) {
				t.Fatalf("off=%d: Get(%d) = %q, %v", off, i, got, ok)
			}
		}
		// The store must keep working after recovery: append and reopen.
		r.Put(testKey(100), testValue(100))
		if err := r.Close(); err != nil {
			t.Fatalf("off=%d: Close: %v", off, err)
		}
		rr := openT(t, path, "fp-v1")
		if got, ok := rr.Get(testKey(100)); !ok || !bytes.Equal(got, testValue(100)) {
			t.Fatalf("off=%d: post-recovery append lost: %q, %v", off, got, ok)
		}
		if rr.Len() != want+1 {
			t.Fatalf("off=%d: second reopen Len = %d, want %d", off, rr.Len(), want+1)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("off=%d: second Close: %v", off, err)
		}
	}
}

// journalEnd exposes the journal's logical end offset for the crash
// offset table.
func journalEnd(s *Store) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// TestTornWriteDegradesAndRecovers drives the append path into a torn
// write with the shared fault injector: the store degrades (once),
// in-memory service continues, and a clean reopen recovers exactly the
// fully-written records.
func TestTornWriteDegradesAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	// Budget: header plus two records plus a few bytes — the third append
	// tears partway through.
	hdr := int64(len(headerBytes("fp-v1")))
	rec := int64(recordHdrLen + 32 + len(testValue(0)))
	var degradations int
	var degradeErr error
	fault := resilience.NewFileFault(hdr+2*rec+5, errors.New("injected ENOSPC"))
	s, err := Open(Options{
		Path:        path,
		Fingerprint: "fp-v1",
		Fault:       fault,
		OnDegrade:   func(err error) { degradations++; degradeErr = err },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 6; i++ {
		s.Put(testKey(i), testValue(i))
	}
	if !fault.Tripped() {
		t.Fatal("fault never tripped")
	}
	if degradations != 1 {
		t.Fatalf("OnDegrade fired %d times, want exactly 1", degradations)
	}
	if degradeErr == nil || degradeErr.Error() != "injected ENOSPC" {
		t.Fatalf("OnDegrade error = %v", degradeErr)
	}
	snap := s.Snapshot()
	if !snap.Degraded {
		t.Fatalf("snapshot = %+v, want Degraded", snap)
	}
	// In-memory service continues for every key, persisted or not.
	for i := 0; i < 6; i++ {
		if got, ok := s.Get(testKey(i)); !ok || !bytes.Equal(got, testValue(i)) {
			t.Fatalf("degraded Get(%d) = %q, %v", i, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, path, "fp-v1")
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("reopen after torn write: Len = %d, want the 2 complete records", r.Len())
	}
	if rs := r.Snapshot(); rs.Degraded {
		t.Fatalf("fresh open inherited degradation: %+v", rs)
	}
}

// TestMidFileCorruption flips one byte inside an interior record: the
// scan must stop there, serving the intact prefix and truncating the
// rest (recompute-and-repair then refills it).
func TestMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	s := openT(t, path, "fp-v1")
	for i := 0; i < 10; i++ {
		s.Put(testKey(i), testValue(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := int64(len(headerBytes("fp-v1")))
	rec := int64(recordHdrLen + 32 + len(testValue(0)))
	// Corrupt a payload byte of record 4 (checksum now fails there).
	data[hdr+4*rec+recordHdrLen+40] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, path, "fp-v1")
	if r.Len() != 4 {
		t.Fatalf("Len = %d after mid-file corruption, want the 4-record prefix", r.Len())
	}
	snap := r.Snapshot()
	if snap.DroppedBytes != 6*rec {
		t.Fatalf("DroppedBytes = %d, want %d", snap.DroppedBytes, 6*rec)
	}
	// Repair: the dropped keys recompute and append cleanly.
	for i := 4; i < 10; i++ {
		r.Put(testKey(i), testValue(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr := openT(t, path, "fp-v1")
	defer rr.Close()
	if rr.Len() != 10 {
		t.Fatalf("repaired Len = %d, want 10", rr.Len())
	}
}

// TestFingerprintInvalidation: a journal written under one cost-model
// fingerprint is wiped when opened under another — stale results must
// never be served.
func TestFingerprintInvalidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	s := openT(t, path, "model-v1")
	s.Put(testKey(1), testValue(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := openT(t, path, "model-v2")
	if v2.Len() != 0 {
		t.Fatalf("v2 open served %d stale entries", v2.Len())
	}
	if snap := v2.Snapshot(); !snap.Invalidated {
		t.Fatalf("snapshot = %+v, want Invalidated", snap)
	}
	v2.Put(testKey(2), testValue(2))
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}

	again := openT(t, path, "model-v2")
	defer again.Close()
	if again.Len() != 1 {
		t.Fatalf("Len = %d after rewrite, want 1", again.Len())
	}
	if _, ok := again.Get(testKey(1)); ok {
		t.Fatal("stale v1 entry survived invalidation")
	}
	if got, ok := again.Get(testKey(2)); !ok || !bytes.Equal(got, testValue(2)) {
		t.Fatalf("v2 entry lost: %q, %v", got, ok)
	}
}

// TestCorruptHeaderInvalidates: garbage at the front of the file is
// indistinguishable from a stale store — wiped, not fatal.
func TestCorruptHeaderInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, path, "fp-v1")
	if snap := s.Snapshot(); !snap.Invalidated || snap.Entries != 0 {
		t.Fatalf("snapshot = %+v, want empty Invalidated store", snap)
	}
	s.Put(testKey(1), testValue(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, "fp-v1")
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("rewritten journal Len = %d, want 1", r.Len())
	}
}

// TestSecondOpenerIsReadOnly: the flock makes one process (here: one
// handle) the writer; a concurrent opener serves a read-only snapshot
// and its puts are not persisted.
func TestSecondOpenerIsReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	w := openT(t, path, "fp-v1")
	defer w.Close()
	w.Put(testKey(1), testValue(1))

	r := openT(t, path, "fp-v1")
	snap := r.Snapshot()
	if !snap.ReadOnly {
		t.Fatalf("second opener snapshot = %+v, want ReadOnly", snap)
	}
	if got, ok := r.Get(testKey(1)); !ok || !bytes.Equal(got, testValue(1)) {
		t.Fatalf("read-only Get(1) = %q, %v", got, ok)
	}
	r.Put(testKey(2), testValue(2)) // indexed in memory, never written
	if got, ok := r.Get(testKey(2)); !ok || !bytes.Equal(got, testValue(2)) {
		t.Fatalf("read-only in-memory Put lost: %q, %v", got, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("read-only Close: %v", err)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := openT(t, path, "fp-v1")
	defer fresh.Close()
	if _, ok := fresh.Get(testKey(2)); ok {
		t.Fatal("read-only opener's Put reached the journal")
	}
	if snap := fresh.Snapshot(); snap.ReadOnly {
		t.Fatal("lock not released by the writer's Close")
	}
}

// TestOversizedValueSkipped: a value over the frame bound is neither
// persisted nor indexed — the length field doubles as the corruption
// heuristic, so such records must never be written.
func TestOversizedValueSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	s := openT(t, path, "fp-v1")
	defer s.Close()
	s.Put(testKey(1), make([]byte, maxValueLen+1))
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("oversized value was indexed")
	}
	if snap := s.Snapshot(); snap.Degraded {
		t.Fatal("oversized value degraded the store")
	}
}

// TestFirstWriteWins: duplicate puts keep the original value — matching
// the memo-cache semantics the disk layer sits under.
func TestFirstWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	s := openT(t, path, "fp-v1")
	s.Put(testKey(1), []byte("first"))
	s.Put(testKey(1), []byte("second"))
	if got, _ := s.Get(testKey(1)); !bytes.Equal(got, []byte("first")) {
		t.Fatalf("duplicate Put replaced the value: %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, "fp-v1")
	defer r.Close()
	if got, _ := r.Get(testKey(1)); !bytes.Equal(got, []byte("first")) {
		t.Fatalf("reopened duplicate value: %q", got)
	}
}

// TestConcurrentPutGet exercises the store under the race detector the
// way the layer-search pool drives it: many goroutines reading and
// writing overlapping keys.
func TestConcurrentPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	s := openT(t, path, "fp-v1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g*13 + i) % 40
				s.Put(testKey(k), testValue(k))
				if got, ok := s.Get(testKey(k)); !ok || !bytes.Equal(got, testValue(k)) {
					t.Errorf("concurrent Get(%d) = %q, %v", k, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, "fp-v1")
	defer r.Close()
	if r.Len() != 40 {
		t.Fatalf("Len = %d after concurrent writes, want 40", r.Len())
	}
}

// TestOpenUnreachablePath: a journal path that cannot exist (its parent
// is a file) is a real open error — the middleware turns it into
// degraded pass-through.
func TestOpenUnreachablePath(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: filepath.Join(blocker, "sub", "x.journal"), Fingerprint: "fp"}); err == nil {
		t.Fatal("Open under a file succeeded")
	}
	if _, err := Open(Options{Fingerprint: "fp"}); err == nil {
		t.Fatal("Open with empty path succeeded")
	}
}
