//go:build !unix

package diskcache

import "os"

// flockExclusive on platforms without flock grants the lock
// unconditionally: single-writer protection is advisory hardening, and
// the journal's checksummed records keep a concurrent-writer accident
// detectable (corrupt interleavings fail their CRC and are truncated at
// the next open).
func flockExclusive(*os.File) (bool, error) { return true, nil }
