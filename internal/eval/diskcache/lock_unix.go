//go:build unix

package diskcache

import (
	"errors"
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f. It returns
// (false, nil) when another process holds the lock — the caller falls
// back to a read-only snapshot — and an error only for real failures.
// The lock is advisory and released automatically when f closes (or the
// process dies, which is what makes it crash-safe: a killed writer
// never leaves a stale lock behind).
func flockExclusive(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return false, nil
	}
	return false, err
}
