package eval

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"strings"

	"spotlight/internal/core"
	"spotlight/internal/eval/diskcache"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/resilience"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// DiskOptions configures the persistent-cache middleware.
type DiskOptions struct {
	// Dir is the cache directory; the journal lives at
	// <Dir>/<backend-name>.journal, so stores for different backends
	// coexist in one directory.
	Dir string
	// Path overrides the derived journal path with an explicit file.
	Path string
	// Backend and Fingerprint identify the producer of the cached
	// values; both feed every record key, and Fingerprint also gates
	// the journal header (a mismatch wipes the store). FromSpec fills
	// them from the opened backend.
	Backend     string
	Fingerprint string
	// Tracer receives cache.persist events; nil disables.
	Tracer obs.Tracer
	// Fault injects write faults on the journal (test instrumentation).
	Fault *resilience.FileFault
}

// journalPath resolves the journal file for the options.
func (o DiskOptions) journalPath() string {
	if o.Path != "" {
		return o.Path
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, o.Backend)
	return filepath.Join(o.Dir, name+".journal")
}

// Disk is the persistent-cache middleware: a content-addressed on-disk
// memo layered *under* the in-memory cache (spec order
// "backend,diskcache(path=...),cache,..."), so within-run duplicates
// are absorbed by memory and the journal sees each unique evaluation
// once per run. A disk hit returns the bit-identical cost (raw IEEE-754
// bits round-trip through the journal) or the identically-worded
// infeasibility verdict the original evaluation produced, so a warm
// search trajectory is indistinguishable from a cold one.
//
// Robustness contract: the disk is an accelerator, never a dependency.
// An unopenable store, a stale fingerprint, a held writer lock, a torn
// journal, or any append-time I/O error degrade persistence — one
// cache.persist trace event, then the layer passes straight through —
// and the search continues on the in-memory path. Undecodable entries
// (a corrupt record that survived framing, or a value from a newer
// codec) are treated as misses and repaired by recomputation.
type Disk struct {
	inner       core.Evaluator
	store       *diskcache.Store // nil when persistence is disabled
	backend     string
	fingerprint string
	tr          obs.Tracer
	openErr     error // why the store is nil, for CLI reporting
}

// persistValue layout: one outcome byte, then the outcome's payload.
const (
	persistOK      = 0 // payload: costFloats float64s, little-endian IEEE bits
	persistInvalid = 1 // payload: the error string of the ErrInvalid verdict
)

// costFloats is the number of float64 fields persisted for a successful
// evaluation — all of maestro.Cost, in declaration order. The codec
// test pins this against the struct via reflection: adding a Cost field
// means extending encodeCost/decodeCost AND bumping the backend
// cost-model fingerprints (the layout is part of the model's identity).
const costFloats = 17

// encodeCost serializes a Cost's raw bits, preserving every value —
// including any non-finite — exactly.
func encodeCost(b []byte, c maestro.Cost) []byte {
	for _, v := range [...]float64{
		c.DelayCycles, c.EnergyNJ, c.AreaMM2, c.PowerMW, c.Utilization,
		c.ComputeCycles, c.DRAMCycles, c.NoCCycles,
		c.DRAMBytes, c.NoCBytes, c.L2Bytes, c.RFBytes,
		c.DRAMInputBytes, c.DRAMWeightBytes, c.DRAMOutputBytes,
		c.RFInputReuse, c.L2InputReuse,
	} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// decodeCost is encodeCost's inverse.
func decodeCost(b []byte) maestro.Cost {
	f := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])) //lint:allow nonfinite(decoding persisted bits: the journal stores exactly what the backend returned, non-finite included)
	}
	return maestro.Cost{
		DelayCycles: f(0), EnergyNJ: f(1), AreaMM2: f(2), PowerMW: f(3), Utilization: f(4),
		ComputeCycles: f(5), DRAMCycles: f(6), NoCCycles: f(7),
		DRAMBytes: f(8), NoCBytes: f(9), L2Bytes: f(10), RFBytes: f(11),
		DRAMInputBytes: f(12), DRAMWeightBytes: f(13), DRAMOutputBytes: f(14),
		RFInputReuse: f(15), L2InputReuse: f(16),
	}
}

// encodeResult renders a persistable outcome, or nil for outcomes the
// cache contract excludes (transient faults are never memoized, in
// memory or on disk).
func encodeResult(cost maestro.Cost, err error) []byte {
	switch Outcome(err) {
	case OutcomeOK:
		b := make([]byte, 0, 1+8*costFloats)
		b = append(b, persistOK)
		return encodeCost(b, cost)
	case OutcomeInvalid:
		msg := err.Error()
		b := make([]byte, 0, 1+len(msg))
		b = append(b, persistInvalid)
		return append(b, msg...)
	}
	return nil
}

// persistedInvalid is the decoded form of a stored infeasibility
// verdict: same error text as the original, and it unwraps to
// maestro.ErrInvalid so every classifier treats it identically.
type persistedInvalid struct{ msg string }

func (e *persistedInvalid) Error() string { return e.msg }
func (e *persistedInvalid) Unwrap() error { return maestro.ErrInvalid }

// decodeResult parses a stored value. ok=false marks a corrupt or
// unknown-codec value: the caller recomputes (and thereby repairs) it.
func decodeResult(b []byte) (maestro.Cost, error, bool) {
	if len(b) == 0 {
		return maestro.Cost{}, nil, false
	}
	switch b[0] {
	case persistOK:
		if len(b) != 1+8*costFloats {
			return maestro.Cost{}, nil, false
		}
		return decodeCost(b[1:]), nil, true
	case persistInvalid:
		return maestro.Cost{}, &persistedInvalid{msg: string(b[1:])}, true
	}
	return maestro.Cost{}, nil, false
}

// WithDisk returns the persistent-cache middleware. Opening the store
// happens here, once, when the chain is assembled; failures degrade to
// a pass-through layer rather than failing pipeline construction.
func WithDisk(opts DiskOptions) Middleware {
	return func(inner core.Evaluator) core.Evaluator {
		d := &Disk{
			inner:       inner,
			backend:     opts.Backend,
			fingerprint: opts.Fingerprint,
			tr:          opts.Tracer,
		}
		store, err := diskcache.Open(diskcache.Options{
			Path:        opts.journalPath(),
			Fingerprint: opts.Fingerprint,
			Fault:       opts.Fault,
			OnDegrade: func(err error) {
				if obs.Enabled(opts.Tracer) {
					opts.Tracer.Emit(obs.Event{Type: obs.CachePersist,
						Detail: "degraded: " + err.Error()})
				}
			},
		})
		if err != nil {
			d.openErr = err
			if obs.Enabled(opts.Tracer) {
				opts.Tracer.Emit(obs.Event{Type: obs.CachePersist,
					Detail: "degraded: " + err.Error()})
			}
			return d
		}
		d.store = store
		if obs.Enabled(opts.Tracer) {
			snap := store.Snapshot()
			switch {
			case snap.ReadOnly:
				opts.Tracer.Emit(obs.Event{Type: obs.CachePersist,
					Detail: "readonly", N: snap.Entries})
			case snap.Invalidated:
				opts.Tracer.Emit(obs.Event{Type: obs.CachePersist,
					Detail: "invalidated"})
			default:
				opts.Tracer.Emit(obs.Event{Type: obs.CachePersist,
					Detail: "recovered", N: snap.Recovered})
			}
		}
		return d
	}
}

// Name implements core.Evaluator. The disk cache returns bit-identical
// results, so — like the in-memory cache — it is transparent in the
// name and therefore in the checkpoint fingerprint.
func (d *Disk) Name() string { return d.inner.Name() }

// Store returns the underlying journal store, or nil when persistence
// is disabled.
func (d *Disk) Store() *diskcache.Store { return d.store }

// OpenErr reports why persistence is disabled (nil when it is active or
// was never requested to this path).
func (d *Disk) OpenErr() error { return d.openErr }

// Close flushes and closes the journal. Safe on a degraded layer.
func (d *Disk) Close() error {
	if d.store == nil {
		return nil
	}
	return d.store.Close()
}

// Sync flushes appended records to stable storage (signal handlers call
// this before exiting).
func (d *Disk) Sync() {
	if d.store != nil {
		d.store.Sync()
	}
}

// Evaluate implements core.Evaluator.
func (d *Disk) Evaluate(a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	return d.EvaluateSpan(nil, a, s, l)
}

// EvaluateSpan implements core.SpanEvaluator: the hit/append persistence
// events are parented under sp (when given) and follow its sink.
func (d *Disk) EvaluateSpan(sp *obs.Span, a hw.Accel, s sched.Schedule, l workload.Layer) (maestro.Cost, error) {
	if d.store == nil {
		return core.EvaluateSpan(d.inner, sp, a, s, l)
	}
	key := diskcache.Key(RecordKey(d.backend, d.fingerprint, CanonicalKey(a, s, l)))
	if val, ok := d.store.Get(key); ok {
		if cost, verdict, ok := decodeResult(val); ok {
			if obs.Active(sp, d.tr) {
				sp.EmitTo(d.tr, obs.Event{Type: obs.CachePersist, Detail: "hit"})
			}
			return cost, verdict
		}
		// Undecodable entry: fall through, recompute, and re-Put below —
		// the repair path for corrupt-but-framed records.
	}
	cost, err := core.EvaluateSpan(d.inner, sp, a, s, l)
	if val := encodeResult(cost, err); val != nil {
		d.store.Put(key, val)
		if obs.Active(sp, d.tr) {
			sp.EmitTo(d.tr, obs.Event{Type: obs.CachePersist, Detail: "append"})
		}
	}
	return cost, err
}

// EvaluateBatch implements core.BatchEvaluator: disk hits are answered
// from the index, and the misses go to the inner evaluator in ONE batch
// call (preserving the batch fast path), each persistable result
// appended as it is published.
func (d *Disk) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return d.EvaluateBatchSpan(nil, a, ss, l)
}

// EvaluateBatchSpan implements core.SpanBatchEvaluator with the same
// hit/miss partitioning; the span rides inward on the one miss-set call.
func (d *Disk) EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	if d.store == nil {
		return core.EvaluateBatchSpan(d.inner, sp, a, ss, l)
	}
	costs := make([]maestro.Cost, len(ss))
	errs := make([]error, len(ss))
	keys := make([]diskcache.Key, len(ss))
	var missIdx []int
	var missSS []sched.Schedule
	for i := range ss {
		keys[i] = diskcache.Key(RecordKey(d.backend, d.fingerprint, CanonicalKey(a, ss[i], l)))
		if val, ok := d.store.Get(keys[i]); ok {
			if cost, verdict, ok := decodeResult(val); ok {
				if obs.Active(sp, d.tr) {
					sp.EmitTo(d.tr, obs.Event{Type: obs.CachePersist, Detail: "hit"})
				}
				costs[i], errs[i] = cost, verdict
				continue
			}
		}
		missIdx = append(missIdx, i)
		missSS = append(missSS, ss[i])
	}
	if len(missIdx) == 0 {
		return costs, errs
	}
	missCosts, missErrs := core.EvaluateBatchSpan(d.inner, sp, a, missSS, l)
	for j, i := range missIdx {
		costs[i], errs[i] = missCosts[j], missErrs[j]
		if val := encodeResult(costs[i], errs[i]); val != nil {
			d.store.Put(keys[i], val)
			if obs.Active(sp, d.tr) {
				sp.EmitTo(d.tr, obs.Event{Type: obs.CachePersist, Detail: "append"})
			}
		}
	}
	return costs, errs
}
