package eval

import (
	"crypto/sha256"
	"encoding/binary"

	"spotlight/internal/core"
	"spotlight/internal/workload"
)

// RecordKeyVersion is the version byte leading the canonical record-key
// serialization. Bump it on ANY change to recordKeyBytes' layout; the
// golden-file test (TestRecordKeyGolden) pins the bytes so an
// accidental layout change — a Go version, a struct reordering, a new
// field — fails loudly instead of silently orphaning every persistent
// store.
const RecordKeyVersion = 1

// recordKeyPrefix domain-separates the hash from any other SHA-256 use.
const recordKeyPrefix = "spotlight/evalkey"

// RecordKey is the canonical content address of one evaluation in the
// persistent disk cache: the SHA-256 of a fixed, explicitly-serialized
// encoding of (backend name, backend cost-model fingerprint, canonical
// evaluation key). Unlike Fingerprint — a 64-bit shard selector whose
// collisions are harmless — RecordKey IS the stored identity, so it
// hashes an unambiguous byte layout (every variable-length field is
// length-prefixed) and must be stable across processes, architectures,
// and releases. Pass a CanonicalKey-produced key so Layer.Repeat is
// canonicalized exactly as the in-memory cache does.
func RecordKey(backend, fingerprint string, k Key) [32]byte {
	return sha256.Sum256(recordKeyBytes(backend, fingerprint, k))
}

// recordKeyBytes is the canonical serialization RecordKey hashes. Layout
// (all integers little-endian uint64 unless noted):
//
//	"spotlight/evalkey" ‖ version byte ‖
//	len(backend) ‖ backend ‖ len(fingerprint) ‖ fingerprint ‖
//	accel{PEs,Width,SIMDLanes,RFKB,L2KB,NoCBW} ‖
//	sched{T2[·],T1[·],OuterOrder[·],InnerOrder[·],OuterUnroll,InnerUnroll} ‖
//	len(layer.Name) ‖ layer.Name ‖
//	layer{Op,N,K,C,R,S,X,Y,StrideX,StrideY,Repeat}
func recordKeyBytes(backend, fingerprint string, k Key) []byte {
	b := make([]byte, 0, 512)
	b = append(b, recordKeyPrefix...)
	b = append(b, RecordKeyVersion)
	b = appendString(b, backend)
	b = appendString(b, fingerprint)
	for _, v := range [...]int{k.Accel.PEs, k.Accel.Width, k.Accel.SIMDLanes,
		k.Accel.RFKB, k.Accel.L2KB, k.Accel.NoCBW} {
		b = appendInt(b, v)
	}
	for i := 0; i < workload.NumDims; i++ {
		b = appendInt(b, k.Sched.T2[i])
	}
	for i := 0; i < workload.NumDims; i++ {
		b = appendInt(b, k.Sched.T1[i])
	}
	for i := 0; i < workload.NumDims; i++ {
		b = appendInt(b, int(k.Sched.OuterOrder[i]))
	}
	for i := 0; i < workload.NumDims; i++ {
		b = appendInt(b, int(k.Sched.InnerOrder[i]))
	}
	b = appendInt(b, int(k.Sched.OuterUnroll))
	b = appendInt(b, int(k.Sched.InnerUnroll))
	b = appendString(b, k.Layer.Name)
	for _, v := range [...]int{int(k.Layer.Op), k.Layer.N, k.Layer.K, k.Layer.C,
		k.Layer.R, k.Layer.S, k.Layer.X, k.Layer.Y,
		k.Layer.StrideX, k.Layer.StrideY, k.Layer.Repeat} {
		b = appendInt(b, v)
	}
	return b
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s)))
	return append(b, s...)
}

// appendInt appends one int as a little-endian uint64 (two's
// complement, so negative values — which never occur in valid design
// points — still serialize deterministically).
func appendInt(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(int64(v)))
}

// Versioned is implemented by backends that declare a cost-model
// fingerprint for persistent caching: a string that changes whenever
// the model's outputs could change (math, calibration constants, Cost
// layout).
type Versioned interface {
	ModelFingerprint() string
}

// BackendFingerprint returns the backend's cost-model fingerprint for
// persistent cache keys. Backends that do not declare one get their
// name with an explicit "/unversioned" marker: such stores are safe
// (the name still separates backends) but never invalidate on model
// changes, so bundled backends all implement Versioned.
func BackendFingerprint(b core.Evaluator) string {
	if v, ok := b.(Versioned); ok {
		return v.ModelFingerprint()
	}
	return b.Name() + "/unversioned"
}
