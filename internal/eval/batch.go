package eval

import (
	"errors"
	"sync"

	"spotlight/internal/core"
	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// BatchEvaluator is the batch fast path of the evaluator contract; see
// core.BatchEvaluator for the full semantics (positional results,
// bit-identity with per-item Evaluate, concurrency safety). The alias
// exists so eval-facing code can name the interface without importing
// core directly.
type BatchEvaluator = core.BatchEvaluator

// EvaluateBatch implements core.BatchEvaluator by delegating to the
// outermost layer of the chain. Each batch-aware layer forwards the
// whole batch inward; the first layer without a batch path (e.g. the
// resilience guard, or the timeloop/sim backends) degrades the rest of
// the chain to per-item Evaluate calls via core.EvaluateBatch's
// fallback loop. Either way the results are bit-identical, so every
// FromSpec composition keeps working unchanged.
func (p *Pipeline) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return core.EvaluateBatch(p.outer, a, ss, l)
}

// EvaluateBatchSpan implements core.SpanBatchEvaluator by threading the
// caller's span through the outermost layer; each span-aware layer
// forwards it inward the same way the batch itself flows.
func (p *Pipeline) EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return core.EvaluateBatchSpan(p.outer, sp, a, ss, l)
}

// EvaluateBatch implements core.BatchEvaluator for the stats layer: one
// latency sample covering the whole batch, per-item outcome counting,
// and len(ss) evals. Counters are tallied locally and published with
// one atomic add per counter, so a batch costs four atomic operations
// instead of 4×len(ss).
func (st *Stats) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return st.EvaluateBatchSpan(nil, a, ss, l)
}

// EvaluateBatchSpan implements core.SpanBatchEvaluator; like the
// sequential path, the span is forwarded inward untouched.
func (st *Stats) EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	start := obs.Now()
	costs, errs := core.EvaluateBatchSpan(st.inner, sp, a, ss, l)
	st.latencyNS.Add(int64(obs.Since(start)))
	st.evals.Add(int64(len(ss)))
	var ok, invalid, failed int64
	for _, err := range errs {
		switch Outcome(err) {
		case OutcomeOK:
			ok++
		case OutcomeInvalid:
			invalid++
		default:
			failed++
		}
	}
	if ok > 0 {
		st.ok.Add(ok)
	}
	if invalid > 0 {
		st.invalid.Add(invalid)
	}
	if failed > 0 {
		st.errs.Add(failed)
	}
	return costs, errs
}

// EvaluateBatch implements core.BatchEvaluator for the trace layer: one
// eval.done event per item (outcome only — per-item durations do not
// exist inside a batch, so DurMS stays zero) followed by a single
// eval.batch event carrying the batch size and the whole-batch
// duration. tracestat reports the two together: per-item outcomes keep
// their taxonomy, eval.batch carries the amortization signal.
func (t *Trace) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return t.EvaluateBatchSpan(nil, a, ss, l)
}

// EvaluateBatchSpan implements core.SpanBatchEvaluator: the per-item
// eval.done events and the closing eval.batch event carry the backend
// scope and are parented under sp when one is supplied.
func (t *Trace) EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	if !obs.Active(sp, t.tr) {
		return core.EvaluateBatch(t.inner, a, ss, l)
	}
	start := obs.Now()
	costs, errs := core.EvaluateBatchSpan(t.inner, sp, a, ss, l)
	dur := obs.MS(obs.Since(start))
	for i := range errs {
		sp.EmitTo(t.tr, obs.Event{Type: obs.EvalDone, Scope: t.scope, Detail: Outcome(errs[i])})
	}
	if len(ss) > 0 {
		sp.EmitTo(t.tr, obs.Event{Type: obs.EvalBatch, Scope: t.scope, N: len(ss), DurMS: dur})
	}
	return costs, errs
}

// batchScratch is the reusable per-call working set of
// Cache.EvaluateBatch: canonical keys, per-item entry pointers and role
// flags, and the miss subset. Pooled so steady-state batched evaluation
// allocates only the two result slices the interface requires.
type batchScratch struct {
	keys    []Key
	ents    []*cacheEntry
	flags   []uint8
	missIdx []int
	missSS  []sched.Schedule
}

// role flags for batchScratch.flags.
const (
	flagLeader   uint8 = 1 << iota // this call owns the entry and must publish it
	flagInFlight                   // follower found the entry unresolved (counts as coalesced)
)

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (b *batchScratch) reset(n int) {
	if cap(b.keys) < n {
		b.keys = make([]Key, n)
		b.ents = make([]*cacheEntry, n)
		b.flags = make([]uint8, n)
	}
	b.keys = b.keys[:n]
	b.ents = b.ents[:n]
	b.flags = b.flags[:n]
	for i := 0; i < n; i++ {
		b.ents[i] = nil
		b.flags[i] = 0
	}
	b.missIdx = b.missIdx[:0]
	b.missSS = b.missSS[:0]
}

// EvaluateBatch implements core.BatchEvaluator for the cache: the batch
// is partitioned into memoized hits, a miss set this call leads, and
// followers of in-flight entries (other callers' or this very batch's
// leaders, for duplicate keys). The misses go to the inner evaluator in
// ONE batch call; followers are resolved only after the leaders
// publish, which is what makes in-batch duplicates safe — a follower of
// its own batch's leader would otherwise deadlock waiting on work that
// has not been submitted yet.
//
// Per-item outcomes, memoization rules (keep successes and ErrInvalid
// verdicts, withdraw faults), counters, and trace events all match the
// sequential path item for item. The one intentional difference is
// bookkeeping-only: an in-batch duplicate counts as coalesced+hit here
// where strict sequencing would count a plain hit, because the
// duplicate genuinely waited on the in-flight leader.
func (c *Cache) EvaluateBatch(a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	return c.EvaluateBatchSpan(nil, a, ss, l)
}

// EvaluateBatchSpan implements core.SpanBatchEvaluator with the exact
// partitioning above; the span parents every cache event this batch
// emits and rides inward on the one miss-set call.
func (c *Cache) EvaluateBatchSpan(sp *obs.Span, a hw.Accel, ss []sched.Schedule, l workload.Layer) ([]maestro.Cost, []error) {
	costs := make([]maestro.Cost, len(ss))
	errs := make([]error, len(ss))
	if len(ss) == 0 {
		return costs, errs
	}

	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.reset(len(ss))

	// Phase 1: register every item, becoming leader or follower per key.
	for i := range ss {
		sc.keys[i] = CanonicalKey(a, ss[i], l)
		shard := &c.shards[Fingerprint(sc.keys[i])&(cacheShards-1)]
		shard.mu.Lock()
		if e, ok := shard.m[sc.keys[i]]; ok {
			shard.mu.Unlock()
			sc.ents[i] = e
			select {
			case <-e.done:
			default:
				sc.flags[i] |= flagInFlight
			}
			continue
		}
		e := &cacheEntry{done: make(chan struct{})}
		shard.m[sc.keys[i]] = e
		shard.mu.Unlock()
		sc.ents[i] = e
		sc.flags[i] |= flagLeader
		sc.missIdx = append(sc.missIdx, i)
		sc.missSS = append(sc.missSS, ss[i])
	}

	// Phase 2: one inner batch call for all misses, with the same
	// panic containment as the sequential leader: if the inner
	// evaluator panics, every unpublished leader entry is withdrawn and
	// released before the panic propagates, so followers retry instead
	// of blocking forever.
	if len(sc.missIdx) > 0 {
		finished := false
		missCosts, missErrs := func() ([]maestro.Cost, []error) {
			defer func() {
				if !finished {
					for _, i := range sc.missIdx {
						shard := &c.shards[Fingerprint(sc.keys[i])&(cacheShards-1)]
						shard.mu.Lock()
						delete(shard.m, sc.keys[i])
						shard.mu.Unlock()
						close(sc.ents[i].done)
						if obs.Active(sp, c.tr) {
							sp.EmitTo(c.tr, obs.Event{Type: obs.CachePanic})
						}
					}
				}
			}()
			cs, es := core.EvaluateBatchSpan(c.inner, sp, a, sc.missSS, l)
			finished = true
			return cs, es
		}()

		// Phase 3: publish the leaders' results.
		for j, i := range sc.missIdx {
			e := sc.ents[i]
			e.cost, e.err = missCosts[j], missErrs[j]
			e.keep = e.err == nil || errors.Is(e.err, maestro.ErrInvalid)
			if e.keep {
				c.entries.Add(1)
			} else {
				shard := &c.shards[Fingerprint(sc.keys[i])&(cacheShards-1)]
				shard.mu.Lock()
				delete(shard.m, sc.keys[i])
				shard.mu.Unlock()
			}
			c.misses.Add(1)
			if obs.Active(sp, c.tr) {
				sp.EmitTo(c.tr, obs.Event{Type: obs.CacheMiss})
			}
			close(e.done)
			costs[i], errs[i] = e.cost, e.err
		}
	}

	// Phase 4: resolve followers, now that every leader in this batch
	// has published. A withdrawn entry (non-memoizable outcome) sends
	// the follower through the sequential path, where it retries as a
	// leader — exactly the sequential follower loop.
	for i := range ss {
		if sc.flags[i]&flagLeader != 0 {
			continue
		}
		e := sc.ents[i]
		<-e.done
		if sc.flags[i]&flagInFlight != 0 {
			c.coalesced.Add(1)
		}
		if e.keep {
			c.hits.Add(1)
			if obs.Active(sp, c.tr) {
				sp.EmitTo(c.tr, obs.Event{Type: obs.CacheHit})
			}
			costs[i], errs[i] = e.cost, e.err
			continue
		}
		costs[i], errs[i] = c.evaluateSpan(sp, a, ss[i], l)
	}
	return costs, errs
}
