package eval

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spotlight/internal/core"
	"spotlight/internal/maestro"
	"spotlight/internal/obs"
	"spotlight/internal/sched"
)

// batchFromTriples groups the triples by (accel, layer) — the shape
// EvaluateBatch requires — preserving order within each group.
type batchGroup struct {
	a  triple
	ss []sched.Schedule
}

func groupTriples(trs []triple) []batchGroup {
	var out []batchGroup
	for _, tr := range trs {
		matched := false
		for i := range out {
			if out[i].a.a == tr.a && out[i].a.l == tr.l {
				out[i].ss = append(out[i].ss, tr.s)
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, batchGroup{a: tr, ss: []sched.Schedule{tr.s}})
		}
	}
	return out
}

// assertPipelineBatchMatchesBare checks the flagship property at the
// pipeline level: every batched result must be bitwise identical (cost
// bits, error strings, ErrInvalid classification) to a fresh bare
// backend evaluated sequentially.
func assertPipelineBatchMatchesBare(t *testing.T, p core.BatchEvaluator, groups []batchGroup) {
	t.Helper()
	bare := maestro.New()
	for g, grp := range groups {
		costs, errs := p.EvaluateBatch(grp.a.a, grp.ss, grp.a.l)
		if len(costs) != len(grp.ss) || len(errs) != len(grp.ss) {
			t.Fatalf("group %d: %d costs / %d errs for %d schedules", g, len(costs), len(errs), len(grp.ss))
		}
		for i, s := range grp.ss {
			wantCost, wantErr := bare.Evaluate(grp.a.a, s, grp.a.l)
			if (errs[i] == nil) != (wantErr == nil) {
				t.Fatalf("group %d item %d: err=%v, want %v", g, i, errs[i], wantErr)
			}
			if wantErr != nil {
				if errs[i].Error() != wantErr.Error() ||
					errors.Is(errs[i], maestro.ErrInvalid) != errors.Is(wantErr, maestro.ErrInvalid) {
					t.Fatalf("group %d item %d: error mismatch: %q vs %q", g, i, errs[i], wantErr)
				}
				continue
			}
			if !costBitsEqual(costs[i], wantCost) {
				t.Fatalf("group %d item %d: cost not bit-identical:\n%+v\n%+v", g, i, costs[i], wantCost)
			}
		}
	}
}

// TestPipelineBatchMatchesBareBackend runs the full default middleware
// stack (maestro,cache,stats + trace) through EvaluateBatch under 8
// racing workers — the satellite-1 property at the eval layer. The
// duplicated triples from randomTriples land as in-batch duplicate keys
// and cross-worker races on the same entries.
func TestPipelineBatchMatchesBareBackend(t *testing.T) {
	rec := &recordingTracer{}
	p := MustFromSpec("maestro,cache,stats", SpecOptions{Tracer: rec})
	groups := groupTriples(randomTriples(77, 48))

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			assertPipelineBatchMatchesBare(t, p, groups)
		}()
	}
	wg.Wait()

	var items int
	for _, g := range groups {
		items += len(g.ss)
	}
	snap := p.Cache().Snapshot()
	if got := snap.Hits + snap.Misses; got != int64(workers*items) {
		t.Fatalf("hits(%d)+misses(%d) != %d batched items", snap.Hits, snap.Misses, workers*items)
	}
	if snap.Hits == 0 {
		t.Fatal("no cache hits despite duplicate keys across 8 workers")
	}
	// In "maestro,cache,stats" the stats layer sits outermost, so it
	// counts request traffic: every batched item from every worker.
	if st := p.Stats().Snapshot(); st.Evals != int64(workers*items) {
		t.Fatalf("stats evals %d != %d batched requests", st.Evals, workers*items)
	}
}

// TestBatchTraceEvents: the trace layer emits one eval.done per batched
// item plus one eval.batch carrying the batch size, and every event
// passes the obs schema (what `tracestat -check` enforces).
func TestBatchTraceEvents(t *testing.T) {
	rec := &recordingTracer{}
	p := MustFromSpec("maestro", SpecOptions{Tracer: rec})
	grp := groupTriples(randomTriples(9, 6))[0]

	p.EvaluateBatch(grp.a.a, grp.ss, grp.a.l)
	var done, batch int
	for _, e := range rec.events {
		e.Seq, e.TMS = 1, 0 // sink stamps, absent from a bare recorder
		if err := e.Validate(); err != nil {
			t.Fatalf("batched trace event fails schema: %v", err)
		}
		switch e.Type {
		case obs.EvalDone:
			done++
		case obs.EvalBatch:
			batch++
			if e.N != len(grp.ss) {
				t.Fatalf("eval.batch N=%d, want %d", e.N, len(grp.ss))
			}
		}
	}
	if done != len(grp.ss) || batch != 1 {
		t.Fatalf("got %d eval.done and %d eval.batch events, want %d and 1", done, batch, len(grp.ss))
	}
}

// TestBatchFallbackForNonBatchBackend: a backend without EvaluateBatch
// (the scriptable fake) still serves batches through the per-item
// fallback loop, preserving order and per-item outcomes.
func TestBatchFallbackForNonBatchBackend(t *testing.T) {
	var n int
	fake := &fakeEval{fn: func() (maestro.Cost, error) {
		n++
		if n%2 == 0 {
			return maestro.Cost{}, fmt.Errorf("point %d: %w", n, maestro.ErrInvalid)
		}
		return maestro.Cost{DelayCycles: float64(n)}, nil
	}}
	p := Chain(fake, WithStats())
	trs := randomTriples(13, 4)
	ss := make([]sched.Schedule, len(trs))
	for i, tr := range trs {
		ss[i] = tr.s
	}
	costs, errs := p.EvaluateBatch(trs[0].a, ss, trs[0].l)
	if fake.calls.Load() != int64(len(ss)) {
		t.Fatalf("fallback reached backend %d times, want %d", fake.calls.Load(), len(ss))
	}
	for i := range ss {
		odd := i%2 == 0 // n starts at 1
		if odd && (errs[i] != nil || costs[i].DelayCycles != float64(i+1)) {
			t.Fatalf("item %d: cost=%+v err=%v", i, costs[i], errs[i])
		}
		if !odd && !errors.Is(errs[i], maestro.ErrInvalid) {
			t.Fatalf("item %d: want ErrInvalid, got %v", i, errs[i])
		}
	}
	wantOK, wantInvalid := int64((len(ss)+1)/2), int64(len(ss)/2)
	if st := p.Stats().Snapshot(); st.Evals != int64(len(ss)) || st.OK != wantOK || st.Invalid != wantInvalid {
		t.Fatalf("stats snapshot %+v, want evals=%d ok=%d invalid=%d", st, len(ss), wantOK, wantInvalid)
	}
}

// TestBatchCacheTransientNotMemoized: a transient (non-ErrInvalid)
// fault inside a batch is returned but withdrawn, exactly like the
// sequential path — a later batch re-evaluates instead of reusing it.
func TestBatchCacheTransientNotMemoized(t *testing.T) {
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{}, errors.New("transient") }}
	c := WithCache()(fake).(*Cache)
	tr := randomTriples(21, 1)[0]
	ss := []sched.Schedule{tr.s}

	if _, errs := c.EvaluateBatch(tr.a, ss, tr.l); errs[0] == nil {
		t.Fatal("fault swallowed")
	}
	if _, errs := c.EvaluateBatch(tr.a, ss, tr.l); errs[0] == nil {
		t.Fatal("fault swallowed on retry")
	}
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("backend called %d times, want 2 (faults must not be memoized)", got)
	}
	if snap := c.Snapshot(); snap.Entries != 0 || snap.Hits != 0 {
		t.Fatalf("snapshot %+v, want no entries and no hits", snap)
	}
}

// TestBatchCacheDuplicateKeysSingleFlight: duplicates of one key inside
// a single batch produce exactly one inner evaluation; the duplicates
// resolve from the in-batch leader's entry after it publishes (no
// deadlock), and all copies agree.
func TestBatchCacheDuplicateKeysSingleFlight(t *testing.T) {
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{DelayCycles: 5}, nil }}
	c := WithCache()(fake).(*Cache)
	tr := randomTriples(22, 1)[0]
	ss := []sched.Schedule{tr.s, tr.s, tr.s, tr.s}

	costs, errs := c.EvaluateBatch(tr.a, ss, tr.l)
	for i := range ss {
		if errs[i] != nil || costs[i].DelayCycles != 5 {
			t.Fatalf("item %d: cost=%+v err=%v", i, costs[i], errs[i])
		}
	}
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times for one key, want 1", got)
	}
	snap := c.Snapshot()
	if snap.Misses != 1 || snap.Hits != int64(len(ss)-1) || snap.Entries != 1 {
		t.Fatalf("snapshot %+v, want 1 miss, %d hits, 1 entry", snap, len(ss)-1)
	}
}

// TestBatchCachePanicWithdrawsLeaders: a backend panic mid-batch must
// withdraw every unpublished leader entry before propagating, so later
// callers re-evaluate instead of deadlocking on dead entries.
func TestBatchCachePanicWithdrawsLeaders(t *testing.T) {
	first := true
	fake := &fakeEval{fn: func() (maestro.Cost, error) {
		if first {
			first = false
			panic("backend crash")
		}
		return maestro.Cost{DelayCycles: 2}, nil
	}}
	c := WithCache()(fake).(*Cache)
	trs := randomTriples(23, 3)
	ss := make([]sched.Schedule, len(trs))
	for i, tr := range trs {
		ss[i] = tr.s
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate through the batch cache")
			}
		}()
		c.EvaluateBatch(trs[0].a, ss, trs[0].l)
	}()

	costs, errs := c.EvaluateBatch(trs[0].a, ss, trs[0].l)
	for i := range ss {
		if errs[i] != nil || costs[i].DelayCycles != 2 {
			t.Fatalf("post-panic item %d: cost=%+v err=%v", i, costs[i], errs[i])
		}
	}
}

// TestBatchEmpty: zero-length batches are legal no-ops at every layer.
func TestBatchEmpty(t *testing.T) {
	p := MustFromSpec("maestro,cache,stats", SpecOptions{})
	tr := randomTriples(24, 1)[0]
	costs, errs := p.EvaluateBatch(tr.a, nil, tr.l)
	if len(costs) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(costs), len(errs))
	}
	if st := p.Stats().Snapshot(); st.Evals != 0 {
		t.Fatalf("empty batch counted %d evals", st.Evals)
	}
}
