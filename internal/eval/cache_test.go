package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"spotlight/internal/hw"
	"spotlight/internal/maestro"
	"spotlight/internal/sched"
	"spotlight/internal/workload"
)

// fakeEval is a scriptable evaluator that counts how many calls reach it.
type fakeEval struct {
	calls atomic.Int64
	fn    func() (maestro.Cost, error)
}

func (f *fakeEval) Name() string { return "fake" }

func (f *fakeEval) Evaluate(hw.Accel, sched.Schedule, workload.Layer) (maestro.Cost, error) {
	f.calls.Add(1)
	return f.fn()
}

// triple is one evaluation input.
type triple struct {
	a hw.Accel
	s sched.Schedule
	l workload.Layer
}

// randomTriples draws count random design points (deterministically) over
// the edge space, duplicating every third so the cache sees repeats.
func randomTriples(seed int64, count int) []triple {
	rng := rand.New(rand.NewSource(seed))
	space, free := hw.EdgeSpace(), sched.Free()
	m, err := workload.ByName("ResNet-50")
	if err != nil {
		panic(err)
	}
	layers := m.Layers[:4]
	out := make([]triple, 0, count*4/3)
	for i := 0; i < count; i++ {
		l := layers[rng.Intn(len(layers))]
		a := space.Random(rng)
		s := free.Random(rng, l, a.RFBytesPerPE(), a.L2Bytes())
		out = append(out, triple{a, s, l})
		if i%3 == 0 {
			out = append(out, triple{a, s, l})
		}
	}
	return out
}

// costBitsEqual compares two costs field by field on their float64 bit
// patterns, so even NaN-for-NaN agreement counts as identical.
func costBitsEqual(x, y maestro.Cost) bool {
	vx, vy := reflect.ValueOf(x), reflect.ValueOf(y)
	for i := 0; i < vx.NumField(); i++ {
		if math.Float64bits(vx.Field(i).Float()) != math.Float64bits(vy.Field(i).Float()) {
			return false
		}
	}
	return true
}

// TestCachedPipelineMatchesBareBackend is the satellite property test: a
// cached pipeline must return byte-identical costs and identically
// classified errors to the bare backend, for every input, including when
// many goroutines hit the same keys concurrently (run under -race).
func TestCachedPipelineMatchesBareBackend(t *testing.T) {
	cases := randomTriples(42, 60)
	bare := maestro.New()
	type expectation struct {
		cost    maestro.Cost
		ok      bool
		invalid bool
		msg     string
	}
	want := make([]expectation, len(cases))
	for i, c := range cases {
		cost, err := bare.Evaluate(c.a, c.s, c.l)
		want[i] = expectation{cost: cost, ok: err == nil, invalid: errors.Is(err, maestro.ErrInvalid)}
		if err != nil {
			want[i].msg = err.Error()
		}
	}

	pipe := MustFromSpec("maestro,cache", SpecOptions{})
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the cases from a different offset, so
			// leaders and followers interleave across keys.
			for i := range cases {
				j := (i + w*7) % len(cases)
				c, exp := cases[j], want[j]
				cost, err := pipe.Evaluate(c.a, c.s, c.l)
				switch {
				case (err == nil) != exp.ok:
					errCh <- fmt.Errorf("case %d: error presence mismatch: %v", j, err)
					return
				case errors.Is(err, maestro.ErrInvalid) != exp.invalid:
					errCh <- fmt.Errorf("case %d: ErrInvalid classification mismatch: %v", j, err)
					return
				case err != nil && err.Error() != exp.msg:
					errCh <- fmt.Errorf("case %d: error %q, want %q", j, err, exp.msg)
					return
				case !costBitsEqual(cost, exp.cost):
					errCh <- fmt.Errorf("case %d: cost %+v not bit-identical to %+v", j, cost, exp.cost)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	snap := pipe.Cache().Snapshot()
	wantTotal := int64(workers * len(cases))
	if snap.Hits+snap.Misses != wantTotal {
		t.Fatalf("hits(%d)+misses(%d) != %d calls", snap.Hits, snap.Misses, wantTotal)
	}
	if snap.Hits == 0 {
		t.Fatal("no cache hits despite duplicated inputs and 8 workers")
	}
	if snap.Entries > snap.Misses {
		t.Fatalf("entries %d exceeds misses %d", snap.Entries, snap.Misses)
	}
}

func TestSingleFlightCoalescesConcurrentCallers(t *testing.T) {
	const followers = 7
	var arrived atomic.Int64
	release := make(chan struct{})
	fake := &fakeEval{fn: func() (maestro.Cost, error) {
		<-release
		return maestro.Cost{DelayCycles: 1}, nil
	}}
	cache := WithCache()(fake).(*Cache)
	tr := randomTriples(1, 1)[0]

	var wg sync.WaitGroup
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			if _, err := cache.Evaluate(tr.a, tr.s, tr.l); err != nil {
				t.Errorf("Evaluate: %v", err)
			}
		}()
	}
	// Let every goroutine start before the leader's evaluation finishes;
	// all of them then share one inner call.
	for arrived.Load() < followers+1 {
	}
	close(release)
	wg.Wait()

	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("inner evaluator called %d times, want 1", got)
	}
	snap := cache.Snapshot()
	if snap.Hits != followers || snap.Misses != 1 || snap.Entries != 1 {
		t.Fatalf("snapshot = %+v, want hits=%d misses=1 entries=1", snap, followers)
	}
}

func TestInvalidVerdictIsMemoized(t *testing.T) {
	invalid := fmt.Errorf("pe array too small: %w", maestro.ErrInvalid)
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{}, invalid }}
	cache := WithCache()(fake).(*Cache)
	tr := randomTriples(2, 1)[0]

	_, err1 := cache.Evaluate(tr.a, tr.s, tr.l)
	_, err2 := cache.Evaluate(tr.a, tr.s, tr.l)
	if !errors.Is(err1, maestro.ErrInvalid) || !errors.Is(err2, maestro.ErrInvalid) {
		t.Fatalf("classification lost: %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("memoized error %q differs from original %q", err2, err1)
	}
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("inner evaluator called %d times for a memoizable verdict, want 1", got)
	}
	if snap := cache.Snapshot(); snap.Hits != 1 || snap.Entries != 1 {
		t.Fatalf("snapshot = %+v, want one hit and one entry", snap)
	}
}

func TestTransientErrorIsNotMemoized(t *testing.T) {
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{}, errors.New("transient fault") }}
	cache := WithCache()(fake).(*Cache)
	tr := randomTriples(3, 1)[0]

	for i := 0; i < 2; i++ {
		if _, err := cache.Evaluate(tr.a, tr.s, tr.l); err == nil {
			t.Fatal("fault swallowed")
		}
	}
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("inner evaluator called %d times, want 2 (faults must not be cached)", got)
	}
	if snap := cache.Snapshot(); snap.Entries != 0 || snap.Hits != 0 {
		t.Fatalf("snapshot = %+v, want no entries and no hits", snap)
	}
}

func TestLeaderPanicWithdrawsEntry(t *testing.T) {
	first := true
	fake := &fakeEval{fn: func() (maestro.Cost, error) {
		if first {
			first = false
			panic("backend crash")
		}
		return maestro.Cost{DelayCycles: 2}, nil
	}}
	cache := WithCache()(fake).(*Cache)
	tr := randomTriples(4, 1)[0]

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate through the cache")
			}
		}()
		cache.Evaluate(tr.a, tr.s, tr.l)
	}()

	// The panicked entry must be withdrawn: the next caller re-evaluates
	// instead of deadlocking on (or hitting) a dead entry.
	cost, err := cache.Evaluate(tr.a, tr.s, tr.l)
	if err != nil || cost.DelayCycles != 2 {
		t.Fatalf("post-panic Evaluate = %+v, %v", cost, err)
	}
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("inner evaluator called %d times, want 2", got)
	}
}

func TestCanonicalKeyIgnoresRepeat(t *testing.T) {
	fake := &fakeEval{fn: func() (maestro.Cost, error) { return maestro.Cost{DelayCycles: 3}, nil }}
	cache := WithCache()(fake).(*Cache)
	tr := randomTriples(5, 1)[0]

	tr.l.Repeat = 1
	cache.Evaluate(tr.a, tr.s, tr.l)
	tr.l.Repeat = 16
	cache.Evaluate(tr.a, tr.s, tr.l)
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("Repeat-only variants evaluated %d times, want 1 shared entry", got)
	}

	// Any other dimension change is a different key.
	tr.l.K++
	cache.Evaluate(tr.a, tr.s, tr.l)
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("distinct layer reused a stale entry (calls=%d)", got)
	}
}

func TestFingerprintIsDeterministic(t *testing.T) {
	trs := randomTriples(6, 20)
	for _, tr := range trs {
		k := CanonicalKey(tr.a, tr.s, tr.l)
		if Fingerprint(k) != Fingerprint(k) {
			t.Fatal("fingerprint not deterministic")
		}
	}
	// Not a collision-freedom guarantee — just a sanity check that the
	// mixer actually differentiates nearby keys.
	k1 := CanonicalKey(trs[0].a, trs[0].s, trs[0].l)
	k2 := k1
	k2.Layer.K++
	if Fingerprint(k1) == Fingerprint(k2) {
		t.Fatal("adjacent keys share a fingerprint")
	}
}
