// Package pool provides the bounded worker pool shared by the parallel
// layer search in core and the parallel trial runner in exp. It is a
// deliberately small primitive: indexed fan-out with a concurrency cap,
// no channels to drain and no error plumbing — callers write fn(i)'s
// result into slot i of a pre-sized slice, which keeps output ordering
// (and therefore reproducibility) independent of scheduling.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) exactly once for every i in [0, n), using at most
// workers concurrent goroutines, and returns when all invocations have
// completed. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 (or
// n <= 1) runs inline with zero goroutine overhead. Work is handed out
// dynamically, so fn must not depend on execution order.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
