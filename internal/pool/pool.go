// Package pool provides the bounded worker pool shared by the parallel
// layer search in core and the parallel trial runner in exp. It is a
// deliberately small primitive: indexed fan-out with a concurrency cap,
// no channels to drain and no error plumbing — callers write fn(i)'s
// result into slot i of a pre-sized slice, which keeps output ordering
// (and therefore reproducibility) independent of scheduling.
//
// Granularity: each index is a whole unit of work, not a single
// evaluation. The layer search hands the pool one index per layer, and
// inside fn(i) the driver evaluates that layer's candidate rounds
// through core.EvaluateBatch — so a worker amortizes per-layer setup
// across its round's candidates in one call instead of paying it per
// candidate. The pool needs no batch awareness of its own; keeping the
// fan-out boundary at the layer is what lets the batched and sequential
// paths produce bit-identical results at any worker count.
//
// Fault containment: a panic inside fn does not take down sibling
// workers or leak goroutines. The pool stops handing out new indices,
// drains the workers that are mid-task, and re-raises the first captured
// panic (as a *WorkerPanic carrying the original value and stack) on the
// calling goroutine. Slots whose fn never ran, or panicked mid-write,
// are untrustworthy — but the caller observes the panic, so it never
// consumes them.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"spotlight/internal/obs"
)

// WorkerPanic is the value re-raised by Run/RunCtx on the calling
// goroutine when a worker's fn panicked. Value is the original panic
// value; Stack is the panicking worker's stack trace, captured at
// recovery time (the re-raise necessarily unwinds from the caller, so
// the original stack would otherwise be lost).
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Error makes a WorkerPanic usable with recover-and-inspect error
// handling (e.g. resilience wrappers converting panics to errors).
func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", w.Value, w.Stack)
}

// Run invokes fn(i) exactly once for every i in [0, n), using at most
// workers concurrent goroutines, and returns when all invocations have
// completed. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 (or
// n <= 1) runs inline with zero goroutine overhead. Work is handed out
// dynamically, so fn must not depend on execution order. If fn panics,
// Run drains the pool and re-raises the first panic as a *WorkerPanic.
func Run(n, workers int, fn func(i int)) {
	// The background context is never canceled, so the only possible
	// error is a re-raised panic, which never reaches the return.
	_ = RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run with cooperative cancellation: when ctx is canceled,
// no further indices are dispatched, in-flight invocations are drained,
// and ctx.Err() is returned. fn(i) either runs to completion or not at
// all — cancellation never abandons a running invocation, so there are
// no torn writes into slot i and no leaked goroutines. It returns nil
// when all n invocations completed.
func RunCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next      atomic.Int64
		completed atomic.Int64
		stop      atomic.Bool
		panicked  atomic.Pointer[WorkerPanic]
	)
	if workers == 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			invoke(fn, i, &stop, &panicked)
		}
		if p := panicked.Load(); p != nil {
			panic(p)
		}
		return nil
	}
	var wg sync.WaitGroup
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if invoke(fn, i, &stop, &panicked) {
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	if int(completed.Load()) < n {
		return ctx.Err()
	}
	return nil
}

// RunCtxTraced is RunCtx with trace emission: one pool.queue event for
// the batch, and a pool.start / pool.done pair (the latter carrying the
// invocation's duration) around every fn(i). With a nil or disabled
// tracer it is exactly RunCtx — one branch, no wrapping — so callers
// thread their tracer through unconditionally. Tracing is observe-only:
// it never changes which indices run or what fn observes.
func RunCtxTraced(ctx context.Context, n, workers int, tr obs.Tracer, fn func(i int)) error {
	return RunCtxSpan(ctx, n, workers, tr, nil, fn)
}

// RunCtxSpan is RunCtxTraced with causal attribution: when sp is
// non-nil, the pool events carry Parent = sp's id and are routed to the
// span's sink (in core, sp is the enclosing trial span). The span
// merely parents the events — the pool never opens sub-spans of its
// own, since the interesting nested spans (sw.layer) are fn's to make.
// With a nil span and a nil or disabled tracer it is exactly RunCtx.
func RunCtxSpan(ctx context.Context, n, workers int, tr obs.Tracer, sp *obs.Span, fn func(i int)) error {
	if !obs.Active(sp, tr) {
		return RunCtx(ctx, n, workers, fn)
	}
	sp.EmitTo(tr, obs.Event{Type: obs.PoolQueue, N: n})
	return RunCtx(ctx, n, workers, func(i int) {
		sp.EmitTo(tr, obs.Event{Type: obs.PoolStart, N: i})
		start := obs.Now()
		fn(i)
		sp.EmitTo(tr, obs.Event{Type: obs.PoolDone, N: i, DurMS: obs.MS(obs.Since(start))})
	})
}

// invoke runs fn(i) with panic containment, recording the first panic
// and poisoning the dispenser so siblings wind down. It reports whether
// fn completed normally.
func invoke(fn func(int), i int, stop *atomic.Bool, panicked *atomic.Pointer[WorkerPanic]) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
			stop.Store(true)
		}
	}()
	fn(i)
	return true
}
