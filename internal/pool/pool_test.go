package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int64
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 200, 4
	var inflight, peak atomic.Int64
	Run(n, workers, func(int) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inflight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent invocations, cap is %d", p, workers)
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	Run(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	Run(1, 4, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran fn %d times", ran)
	}
}
